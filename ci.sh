#!/usr/bin/env bash
# CI entry point.
#
#   ./ci.sh            tier-1 verify + ASan/UBSan test configuration
#   ./ci.sh --tier1    tier-1 only (configure, build, ctest)
#   ./ci.sh --asan     sanitizer configuration only
#
# Tier-1 is the gate every change must keep green (see ROADMAP.md); the
# sanitizer pass rebuilds the tree with AddressSanitizer + UBSan and
# re-runs the full suite.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TIER1=1
RUN_ASAN=1
case "${1:-}" in
  --tier1) RUN_ASAN=0 ;;
  --asan) RUN_TIER1=0 ;;
  "") ;;
  *)
    echo "usage: ./ci.sh [--tier1 | --asan]" >&2
    exit 2
    ;;
esac

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "== tier-1: configure + build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  echo "== tier-1: ctest =="
  ctest --test-dir build --output-on-failure -j"$JOBS"
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== asan+ubsan: configure + build =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    >/dev/null
  cmake --build build-asan -j"$JOBS"
  echo "== asan+ubsan: ctest =="
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"
fi

echo "CI OK"
