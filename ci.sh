#!/usr/bin/env bash
# CI entry point. Legs are composable: pass any subset in any order.
#
#   ./ci.sh                      tier-1 + ASan/UBSan (the historical default)
#   ./ci.sh --tier1              configure, build, ctest (the gate, ROADMAP.md)
#   ./ci.sh --asan               AddressSanitizer + UBSan, Debug, full suite
#   ./ci.sh --tsan               ThreadSanitizer, full suite (data races in the
#                                hot-path pool / parallel kernels / obs layer)
#   ./ci.sh --paranoid           STAYAWAY_PARANOID=ON Debug build: every
#                                SA_INVARIANT audit enabled, full suite
#   ./ci.sh --tidy               best-effort clang-tidy over src/ (skipped
#                                when clang-tidy is not installed)
#   ./ci.sh --faults             fault-injection smoke: stayaway_sim under a
#                                generated fault plan in the ASan tree, so the
#                                degraded-mode path runs sanitized end to end
#   ./ci.sh --fleet              fleet gate (DESIGN.md §13): the fleet tests
#                                (byte-identical fleet-of-1 golden, scenario
#                                overlays, worker invariance) in the tier-1
#                                tree, then the fleet concurrency surfaces
#                                under ThreadSanitizer
#   ./ci.sh --fuzz               record/replay gate (DESIGN.md §14): replay
#                                every committed tests/regressions/*.runlog
#                                byte-identically, then a budgeted
#                                stayaway_fuzz batch over the pinned seed
#                                set (must keep reproducing findings)
#   ./ci.sh --ingest             streaming-ingestion gate (DESIGN.md §15):
#                                the ingest test suite plus the bench_ingest
#                                bounds (--smoke) in the tier-1 tree, then
#                                the producer/consumer surfaces — 8 ring-fed
#                                pipelines on a 4-worker pool — under
#                                ThreadSanitizer
#   ./ci.sh --recovery           crash-recovery gate (DESIGN.md §17): the
#                                checkpoint/restore test suite plus the
#                                bench_recovery acceptance bounds (--smoke:
#                                zero aborted runs with 1-of-8 hosts
#                                crashing) in the tier-1 tree, then an
#                                end-to-end checkpoint -> corrupt ->
#                                restore round trip through stayaway_sim
#   ./ci.sh --cluster            cluster-coordination gate (DESIGN.md §18):
#                                the cluster test suite plus the
#                                bench_cluster acceptance bound (--smoke:
#                                migration strictly beats per-host pausing
#                                on both violations and batch progress) in
#                                the tier-1 tree, then a coordinated
#                                migration run through a record -> replay
#                                round trip
#   ./ci.sh --analyze            static-analysis gate (DESIGN.md §16):
#                                stayaway_analyze self-test, then the
#                                include-graph / lock-discipline /
#                                determinism / style passes over src,
#                                tools and tests; when clang++ is on
#                                PATH, additionally a
#                                -DSTAYAWAY_ANALYZE=ON build so Clang's
#                                -Wthread-safety checks the SA_*
#                                annotations (skipped otherwise)
#   ./ci.sh --all                every leg above
#
# Each leg builds in its own tree (build, build-asan, build-tsan,
# build-paranoid) so configurations never contaminate each other. A
# per-leg pass/fail summary prints at the end; the exit code is non-zero
# when any requested leg failed. Warnings are errors in every leg
# (-Wall -Wextra -Wpedantic -Wshadow -Wconversion -Werror via
# STAYAWAY_STRICT_WARNINGS/STAYAWAY_WERROR, default ON).
set -uo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

LEGS=()
for arg in "$@"; do
  case "$arg" in
    --tier1) LEGS+=(tier1) ;;
    --asan) LEGS+=(asan) ;;
    --tsan) LEGS+=(tsan) ;;
    --paranoid) LEGS+=(paranoid) ;;
    --tidy) LEGS+=(tidy) ;;
    --faults) LEGS+=(faults) ;;
    --fleet) LEGS+=(fleet) ;;
    --fuzz) LEGS+=(fuzz) ;;
    --ingest) LEGS+=(ingest) ;;
    --recovery) LEGS+=(recovery) ;;
    --analyze) LEGS+=(analyze) ;;
    --cluster) LEGS+=(cluster) ;;
    --all) LEGS+=(tier1 asan tsan paranoid tidy faults fleet fuzz ingest recovery cluster analyze) ;;
    *)
      echo "usage: ./ci.sh [--tier1] [--asan] [--tsan] [--paranoid] [--tidy] [--faults] [--fleet] [--fuzz] [--ingest] [--recovery] [--cluster] [--analyze] [--all]" >&2
      exit 2
      ;;
  esac
done
if [[ ${#LEGS[@]} -eq 0 ]]; then
  LEGS=(tier1 asan)
fi

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null &&
    cmake --build "$dir" -j"$JOBS" &&
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
}

run_leg() {
  case "$1" in
    tier1)
      build_and_test build
      ;;
    asan)
      build_and_test build-asan \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
      ;;
    tsan)
      build_and_test build-tsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
      ;;
    paranoid)
      build_and_test build-paranoid \
        -DCMAKE_BUILD_TYPE=Debug \
        -DSTAYAWAY_PARANOID=ON
      ;;
    faults)
      # Degraded-mode smoke: drive stayaway_sim end to end under a fault
      # plan, sanitized, so sensor dropout / QoS blindness / failed
      # actuation exercise the quarantine + failsafe + retry paths.
      cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
        >/dev/null &&
        cmake --build build-asan -j"$JOBS" --target stayaway_sim || return 1
      local tmpdir
      tmpdir="$(mktemp -d)" || return 1
      cat >"$tmpdir/scenario.conf" <<'EOF'
sensitive     = vlc-stream
batch         = cpubomb
policy        = stay-away
duration_s    = 60
batch_start_s = 5
EOF
      cat >"$tmpdir/faults.conf" <<'EOF'
seed  = 7
fault = sensor-dropout start=10 end=40 p=0.2
fault = qos-blind start=20 end=30
fault = pause-fail start=10 end=40 p=0.5
EOF
      local out rc
      out="$(./build-asan/tools/stayaway_sim \
        --faults "$tmpdir/faults.conf" "$tmpdir/scenario.conf")"
      rc=$?
      rm -rf "$tmpdir"
      echo "$out"
      [[ $rc -eq 0 ]] || return 1
      # The degraded path must actually have been exercised.
      grep -q "fault plan loaded" <<<"$out" &&
        grep -q "readings quarantined" <<<"$out"
      ;;
    fleet)
      # Fleet gate: the golden fleet-of-1 / overlay / invariance tests in
      # the tier-1 tree first (fast failure), then the fleet concurrency
      # surfaces — 8 pipelines on a 4-worker pool sharing one observer —
      # under ThreadSanitizer.
      cmake -B build -S . >/dev/null &&
        cmake --build build -j"$JOBS" \
          --target test_fleet test_scenario_file test_concurrency ||
        return 1
      ctest --test-dir build --output-on-failure -R 'Fleet' || return 1
      cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
        >/dev/null &&
        cmake --build build-tsan -j"$JOBS" \
          --target test_fleet test_concurrency || return 1
      ./build-tsan/tests/test_fleet &&
        ./build-tsan/tests/test_concurrency \
          --gtest_filter='FleetConcurrency.*'
      ;;
    fuzz)
      # Record/replay gate (DESIGN.md §14). Budgeted to ~2 min: the
      # committed regression logs replay byte-identically (the recovery
      # one re-runs its host-crash -> restore path mid-retry-ledger on
      # every replay), then the pinned fuzz seed sets re-run and must
      # keep producing findings — at least one regenerated default-mode
      # log byte-identical to a committed one, and the recovery-mode
      # regression regenerated exactly (same seed, same budget, same
      # shrink => same bytes).
      cmake -B build -S . >/dev/null &&
        cmake --build build -j"$JOBS" \
          --target stayaway_sim stayaway_fuzz || return 1
      local log
      for log in tests/regressions/*.runlog; do
        [[ -f "$log" ]] || { echo "no committed regression logs" >&2; return 1; }
        ./build/tools/stayaway_sim --replay "$log" || return 1
      done
      local tmpdir rc
      tmpdir="$(mktemp -d)" || return 1
      ./build/tools/stayaway_fuzz --seed 8,10 --runs 20 --budget 30000 \
        --out "$tmpdir" --expect-findings
      rc=$?
      if [[ $rc -eq 0 ]]; then
        rc=1
        for log in tests/regressions/*.runlog; do
          if cmp -s "$log" "$tmpdir/$(basename "$log")"; then
            echo "regenerated byte-identically: $(basename "$log")"
            rc=0
          fi
        done
        [[ $rc -eq 0 ]] || echo "no regenerated log matches a committed one" >&2
      fi
      if [[ $rc -eq 0 ]]; then
        # Recovery palette (DESIGN.md §17): the crash-class mutation mode
        # must keep reproducing the committed regression whose host-crash
        # lands inside an active actuation retry ledger.
        ./build/tools/stayaway_fuzz --recovery --seed 13 --runs 20 \
          --budget 30000 --out "$tmpdir" --expect-findings &&
          cmp -s tests/regressions/qos-violation-burst-s13-2.runlog \
            "$tmpdir/qos-violation-burst-s13-2.runlog"
        rc=$?
        if [[ $rc -eq 0 ]]; then
          echo "regenerated byte-identically: qos-violation-burst-s13-2.runlog (--recovery)"
        else
          echo "recovery-mode regression did not regenerate" >&2
        fi
      fi
      rm -rf "$tmpdir"
      return $rc
      ;;
    cluster)
      # Cluster-coordination gate (DESIGN.md §18): the cluster test suite
      # (scoring, idle-coordinator byte identity, migration/admission,
      # coordinator checkpoint) plus the bench_cluster acceptance bound
      # (migration strictly beats per-host pausing on both violations and
      # batch progress) in the tier-1 tree, then a migration run driven
      # through a full record -> replay round trip via stayaway_sim.
      cmake -B build -S . >/dev/null &&
        cmake --build build -j"$JOBS" \
          --target test_cluster bench_cluster stayaway_sim || return 1
      ./build/tests/test_cluster || return 1
      ./build/bench/bench_cluster --smoke || return 1
      local tmpdir
      tmpdir="$(mktemp -d)" || return 1
      cat >"$tmpdir/cluster.conf" <<'EOF'
sensitive  = webservice-cpu
batch      = none
policy     = stay-away
duration_s = 120
workload   = constant
[host "web-a"]
seed = 3
[host "web-b"]
seed = 5
[host "web-c"]
seed = 7
[cluster]
mobile = crunch:cpubomb:web-a:20
admit  = late:soplex:90
EOF
      ./build/tools/stayaway_sim --record "$tmpdir/cluster.runlog" \
        "$tmpdir/cluster.conf" >/dev/null || { rm -rf "$tmpdir"; return 1; }
      grep -q "cluster-events" "$tmpdir/cluster.runlog" || {
        echo "cluster run recorded no coordinator events" >&2
        rm -rf "$tmpdir"
        return 1
      }
      ./build/tools/stayaway_sim --replay "$tmpdir/cluster.runlog" ||
        { rm -rf "$tmpdir"; return 1; }
      rm -rf "$tmpdir"
      echo "cluster record -> replay round trip: ok"
      ;;
    ingest)
      # Streaming-ingestion gate (DESIGN.md §15): the ingest suite and the
      # bench_ingest acceptance bounds (>=5x ring throughput, flat
      # landmark-incremental embed cost) in the tier-1 tree, then the
      # producer/consumer protocol — one producer thread per host, 8
      # ring-fed pipelines on a 4-worker fleet pool — under TSan.
      cmake -B build -S . >/dev/null &&
        cmake --build build -j"$JOBS" --target test_ingest bench_ingest ||
        return 1
      ./build/tests/test_ingest || return 1
      ./build/bench/bench_ingest --smoke || return 1
      cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
        >/dev/null &&
        cmake --build build-tsan -j"$JOBS" --target test_concurrency ||
        return 1
      ./build-tsan/tests/test_concurrency \
        --gtest_filter='IngestConcurrency.*'
      ;;
    recovery)
      # Crash-recovery gate (DESIGN.md §17): the checkpoint codec + super-
      # visor test suite and the bench_recovery acceptance bounds (full
      # record streams, zero divergences, 1-of-8 hosts crashing) in the
      # tier-1 tree, then stayaway_sim driven through a full checkpoint ->
      # restore round trip — including a corrupted blob, which must be
      # rejected by checksum, not silently restored.
      cmake -B build -S . >/dev/null &&
        cmake --build build -j"$JOBS" \
          --target test_checkpoint bench_recovery stayaway_sim || return 1
      ./build/tests/test_checkpoint || return 1
      ./build/bench/bench_recovery --smoke || return 1
      local tmpdir out rc
      tmpdir="$(mktemp -d)" || return 1
      cat >"$tmpdir/scenario.conf" <<'EOF'
sensitive     = vlc-stream
batch         = cpubomb
policy        = stay-away
duration_s    = 40
batch_start_s = 5
EOF
      ./build/tools/stayaway_sim --supervise --checkpoint-every 5 \
        --checkpoint-dir "$tmpdir/ckpt" "$tmpdir/scenario.conf" >/dev/null &&
        [[ -s "$tmpdir/ckpt/host0.ckpt" ]] || { rm -rf "$tmpdir"; return 1; }
      ./build/tools/stayaway_sim --restore "$tmpdir/ckpt" \
        "$tmpdir/scenario.conf" >/dev/null || { rm -rf "$tmpdir"; return 1; }
      # Flip one body byte; the restore must fail closed on the checksum.
      printf 'X' | dd of="$tmpdir/ckpt/host0.ckpt" bs=1 seek=64 conv=notrunc \
        status=none || { rm -rf "$tmpdir"; return 1; }
      out="$(./build/tools/stayaway_sim --restore "$tmpdir/ckpt" \
        "$tmpdir/scenario.conf" 2>&1)"
      rc=$?
      rm -rf "$tmpdir"
      [[ $rc -ne 0 ]] && grep -q "checksum mismatch" <<<"$out" || {
        echo "corrupted checkpoint was not rejected" >&2
        return 1
      }
      echo "checkpoint round trip + corrupt-blob rejection: ok"
      ;;
    analyze)
      # Static-analysis gate (DESIGN.md §16). The textual passes always
      # run; the Clang thread-safety build is best-effort because the
      # SA_* annotations are no-ops under GCC.
      cmake -B build -S . >/dev/null &&
        cmake --build build -j"$JOBS" --target stayaway_analyze || return 1
      ./build/tools/stayaway_analyze --self-test || return 1
      ./build/tools/stayaway_analyze src tools tests || return 1
      if command -v clang++ >/dev/null 2>&1; then
        cmake -B build-analyze -S . \
          -DCMAKE_CXX_COMPILER=clang++ \
          -DSTAYAWAY_ANALYZE=ON \
          >/dev/null &&
          cmake --build build-analyze -j"$JOBS" || return 1
        echo "clang -Wthread-safety: clean"
      else
        echo "clang++ not installed; -Wthread-safety build skipped" \
             "(the stayaway_analyze lock-discipline pass still ran)"
      fi
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping (best-effort leg)"
        return 77
      fi
      # compile_commands.json comes from the tier-1 tree; configure it if
      # this leg runs alone.
      [[ -f build/compile_commands.json ]] || cmake -B build -S . >/dev/null
      local files
      files="$(find src -name '*.cpp')"
      # shellcheck disable=SC2086
      clang-tidy -p build --quiet $files
      ;;
  esac
}

declare -A RESULT
FAILED=0
for leg in "${LEGS[@]}"; do
  echo
  echo "== leg: $leg =="
  if run_leg "$leg"; then
    RESULT[$leg]=pass
  elif [[ $? -eq 77 ]]; then
    RESULT[$leg]=skipped
  else
    RESULT[$leg]=FAIL
    FAILED=1
  fi
done

echo
echo "== summary =="
for leg in "${LEGS[@]}"; do
  printf '  %-10s %s\n' "$leg" "${RESULT[$leg]}"
done
if [[ "$FAILED" == 1 ]]; then
  echo "CI FAILED"
  exit 1
fi
echo "CI OK"
