#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::linalg {

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  SA_REQUIRE(a.rows() == a.cols(), "solve requires a square matrix");
  SA_REQUIRE(a.rows() == b.size(), "dimension mismatch between A and b");
  const std::size_t n = a.rows();
  Matrix m = a;
  std::vector<double> x = b;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: bring the largest remaining entry into the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m.at(r, col)) > std::abs(m.at(pivot, col))) pivot = r;
    }
    if (std::abs(m.at(pivot, col)) < 1e-12) {
      throw PreconditionError("solve: matrix is singular or near-singular");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m.at(pivot, c), m.at(col, c));
      std::swap(x[pivot], x[col]);
    }
    double inv = 1.0 / m.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      double factor = m.at(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m.at(r, c) -= factor * m.at(col, c);
      x[r] -= factor * x[col];
    }
  }

  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m.at(ri, c) * x[c];
    x[ri] = acc / m.at(ri, ri);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double lambda) {
  SA_REQUIRE(a.rows() == b.size(), "dimension mismatch between A and b");
  SA_REQUIRE(lambda >= 0.0, "ridge parameter must be non-negative");
  Matrix at = a.transposed();
  Matrix ata = at.multiply(a);
  for (std::size_t i = 0; i < ata.rows(); ++i) ata.at(i, i) += lambda;
  std::vector<double> atb(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) atb[c] += a.at(r, c) * b[r];
  }
  return solve(ata, atb);
}

}  // namespace stayaway::linalg
