#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace stayaway::linalg {

EigenDecomposition eigen_symmetric(const Matrix& a, std::size_t max_sweeps) {
  SA_REQUIRE(a.rows() == a.cols(), "eigendecomposition requires a square matrix");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = r + 1; c < n; ++c) off += d.at(r, c) * d.at(r, c);
    }
    if (off < 1e-20) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double apq = d.at(p, q);
        if (std::abs(apq) < 1e-15) continue;
        double app = d.at(p, p);
        double aqq = d.at(q, q);
        double theta = 0.5 * (aqq - app) / apq;
        double t = ((theta >= 0.0) ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          double dkp = d.at(k, p);
          double dkq = d.at(k, q);
          d.at(k, p) = c * dkp - s * dkq;
          d.at(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          double dpk = d.at(p, k);
          double dqk = d.at(q, k);
          d.at(p, k) = c * dpk - s * dqk;
          d.at(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          double vkp = v.at(k, p);
          double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t lhs, std::size_t rhs) {
    return d.at(lhs, lhs) > d.at(rhs, rhs);
  });

  EigenDecomposition out;
  out.values.reserve(n);
  out.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values.push_back(d.at(order[i], order[i]));
    for (std::size_t k = 0; k < n; ++k) out.vectors.at(i, k) = v.at(k, order[i]);
  }
  return out;
}

}  // namespace stayaway::linalg
