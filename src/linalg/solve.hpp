// Dense linear solves via Gaussian elimination with partial pivoting.
// Used by the VAR(1) forecaster's normal equations.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace stayaway::linalg {

/// Solves A x = b for square A. Throws PreconditionError if A is singular
/// (pivot below tolerance).
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

/// Solves the least-squares problem min ||A x - b||_2 via normal equations
/// with Tikhonov ridge `lambda` (>= 0) for conditioning.
std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double lambda = 0.0);

}  // namespace stayaway::linalg
