// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Classical MDS (Torgerson) and PCA both need the top eigenpairs of a
// symmetric matrix: the double-centred Gram matrix (n x n, n bounded by
// the representative-set size) or a metric covariance (m x m, m small).
// Jacobi is simple, robust and plenty fast at these sizes.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace stayaway::linalg {

struct EigenDecomposition {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// eigenvectors.row(i) is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix. Requires square input;
/// symmetry is assumed (the strictly-lower triangle is ignored in checks).
EigenDecomposition eigen_symmetric(const Matrix& a, std::size_t max_sweeps = 64);

}  // namespace stayaway::linalg
