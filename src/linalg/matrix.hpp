// Small dense row-major matrix. Sized for this library's needs: MDS
// observation matrices of a few hundred rows and metric spaces of a few
// dozen dimensions. Not a general-purpose BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace stayaway::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// From nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  /// Builds a matrix whose rows are the given equal-length vectors.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  Matrix transposed() const;
  Matrix multiply(const Matrix& other) const;
  Matrix scaled(double factor) const;
  Matrix plus(const Matrix& other) const;
  Matrix minus(const Matrix& other) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Maximum absolute entry difference against another same-shape matrix.
  double max_abs_difference(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace stayaway::linalg
