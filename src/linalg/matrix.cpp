#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SA_REQUIRE(r.size() == cols_, "all rows must have equal length");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  SA_REQUIRE(!rows.empty(), "from_rows requires at least one row");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    SA_REQUIRE(rows[r].size() == m.cols_, "all rows must have equal length");
    std::copy(rows[r].begin(), rows[r].end(), m.row(r).begin());
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  SA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  SA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  SA_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  SA_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  SA_REQUIRE(cols_ == other.rows_, "matrix shapes do not compose");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += v * other.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::scaled(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

Matrix Matrix::plus(const Matrix& other) const {
  SA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shapes must match");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::minus(const Matrix& other) const {
  SA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shapes must match");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_difference(const Matrix& other) const {
  SA_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shapes must match");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  SA_REQUIRE(a.size() == b.size(), "vectors must have equal length");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace stayaway::linalg
