// Representative-sample reduction (§4 of the paper).
//
// "The SMACOF algorithm ... can become computationally expensive as the
// number of samples increase. ... we significantly reduce this overhead
// by choosing one representative sample from the set of samples that are
// very close to each other (Euclidean distance) and discarding other
// similar samples."
//
// Each incoming normalized vector is assigned to an existing
// representative when one lies within epsilon; otherwise it becomes a new
// representative. The embedding then only ever sees representatives.
#pragma once

#include <cstddef>
#include <vector>

#include "util/statecodec.hpp"

namespace stayaway::monitor {

struct Assignment {
  std::size_t representative = 0;  // index into the representative set
  bool is_new = false;             // true when a new representative was added
  double distance = 0.0;           // distance to the chosen representative
};

class RepresentativeSet {
 public:
  /// epsilon: merge radius in the normalized metric space.
  /// max_size: hard bound on the number of representatives — the
  /// embedding solve is O(n^2..n^3) in this count, so a production
  /// deployment must not let a drifting workload grow it without limit.
  /// Once full, every sample is assigned to its nearest representative
  /// regardless of epsilon. 0 means unbounded.
  explicit RepresentativeSet(double epsilon, std::size_t max_size = 0);

  /// Assigns a vector, inserting a new representative if needed. All
  /// vectors must share a dimension (fixed by the first call).
  Assignment assign(const std::vector<double>& v);

  std::size_t size() const { return reps_.size(); }
  const std::vector<double>& representative(std::size_t i) const;
  const std::vector<std::vector<double>>& all() const { return reps_; }

  /// How many raw samples were merged into representative i (>= 1).
  std::size_t weight(std::size_t i) const;

  /// Total raw samples observed.
  std::size_t total_observed() const { return observed_; }

  double epsilon() const { return epsilon_; }
  std::size_t max_size() const { return max_size_; }
  bool full() const { return max_size_ > 0 && reps_.size() >= max_size_; }

  /// Snapshot of the representative vectors, merge weights and observed
  /// count (DESIGN.md §17). load_state targets a freshly constructed set
  /// with the same epsilon/max_size configuration.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  double epsilon_;
  std::size_t max_size_;
  std::vector<std::vector<double>> reps_;
  std::vector<std::size_t> weights_;
  std::size_t observed_ = 0;
  std::vector<double> scan_dist_;  // reused nearest-scan scratch buffer
};

}  // namespace stayaway::monitor
