#include "monitor/health.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace stayaway::monitor {

SampleQuarantine::SampleQuarantine(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      last_good_(bounds_.size(), 0.0),
      staleness_(bounds_.size(), 0) {
  SA_REQUIRE(!bounds_.empty(), "quarantine needs a non-empty layout");
  for (double b : bounds_) {
    SA_REQUIRE(std::isfinite(b) && b > 0.0,
               "quarantine upper bounds must be finite and positive");
  }
}

SampleQuarantine::Admit SampleQuarantine::admit(double time,
                                                std::uint64_t sequence) {
  if (!seen_sequences_.insert(sequence).second) {
    ++total_duplicates_;
    return Admit::Duplicate;
  }
  if (any_admitted_ && time < newest_time_) {
    ++total_late_;
    return Admit::Late;
  }
  newest_time_ = time;
  any_admitted_ = true;
  return Admit::Ok;
}

SampleHealth SampleQuarantine::validate(std::vector<double>& values) {
  SA_REQUIRE(values.size() == bounds_.size(),
             "measurement does not match the quarantine layout");
  SampleHealth health;
  health.dimension = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    // The comparison form rejects NaN too: NaN >= 0.0 is false.
    bool good = std::isfinite(v) && v >= 0.0 && v <= bounds_[i];
    if (good) {
      last_good_[i] = v;
      staleness_[i] = 0;
      continue;
    }
    values[i] = last_good_[i];
    ++staleness_[i];
    ++health.quarantined;
    ++total_quarantined_;
    health.max_staleness = std::max(health.max_staleness, staleness_[i]);
  }
  return health;
}

void SampleQuarantine::save_state(util::StateWriter& w) const {
  w.reals("last_good", last_good_);
  std::vector<std::uint64_t> staleness(staleness_.begin(), staleness_.end());
  w.u64s("staleness", staleness);
  w.u64("total_quarantined", total_quarantined_);
  w.u64("total_late", total_late_);
  w.u64("total_duplicates", total_duplicates_);
  w.real("newest_time", newest_time_);
  w.boolean("any_admitted", any_admitted_);
  std::vector<std::uint64_t> seen(seen_sequences_.begin(),
                                  seen_sequences_.end());
  std::sort(seen.begin(), seen.end());
  w.u64s("seen_sequences", seen);
}

void SampleQuarantine::load_state(util::StateReader& r) {
  std::vector<double> last_good = r.reals("last_good");
  std::vector<std::uint64_t> staleness = r.u64s("staleness");
  if (last_good.size() != bounds_.size() ||
      staleness.size() != bounds_.size()) {
    throw util::StateCodecError("quarantine state: layout dimension mismatch");
  }
  last_good_ = std::move(last_good);
  staleness_.assign(staleness.begin(), staleness.end());
  total_quarantined_ = static_cast<std::size_t>(r.u64("total_quarantined"));
  total_late_ = static_cast<std::size_t>(r.u64("total_late"));
  total_duplicates_ = static_cast<std::size_t>(r.u64("total_duplicates"));
  newest_time_ = r.real("newest_time");
  any_admitted_ = r.boolean("any_admitted");
  std::vector<std::uint64_t> seen = r.u64s("seen_sequences");
  seen_sequences_.clear();
  seen_sequences_.insert(seen.begin(), seen.end());
}

}  // namespace stayaway::monitor
