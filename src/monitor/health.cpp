#include "monitor/health.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace stayaway::monitor {

SampleQuarantine::SampleQuarantine(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      last_good_(bounds_.size(), 0.0),
      staleness_(bounds_.size(), 0) {
  SA_REQUIRE(!bounds_.empty(), "quarantine needs a non-empty layout");
  for (double b : bounds_) {
    SA_REQUIRE(std::isfinite(b) && b > 0.0,
               "quarantine upper bounds must be finite and positive");
  }
}

SampleQuarantine::Admit SampleQuarantine::admit(double time,
                                                std::uint64_t sequence) {
  if (!seen_sequences_.insert(sequence).second) {
    ++total_duplicates_;
    return Admit::Duplicate;
  }
  if (any_admitted_ && time < newest_time_) {
    ++total_late_;
    return Admit::Late;
  }
  newest_time_ = time;
  any_admitted_ = true;
  return Admit::Ok;
}

SampleHealth SampleQuarantine::validate(std::vector<double>& values) {
  SA_REQUIRE(values.size() == bounds_.size(),
             "measurement does not match the quarantine layout");
  SampleHealth health;
  health.dimension = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    // The comparison form rejects NaN too: NaN >= 0.0 is false.
    bool good = std::isfinite(v) && v >= 0.0 && v <= bounds_[i];
    if (good) {
      last_good_[i] = v;
      staleness_[i] = 0;
      continue;
    }
    values[i] = last_good_[i];
    ++staleness_[i];
    ++health.quarantined;
    ++total_quarantined_;
    health.max_staleness = std::max(health.max_staleness, staleness_[i]);
  }
  return health;
}

}  // namespace stayaway::monitor
