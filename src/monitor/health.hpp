// Validate-and-quarantine stage between the sampler and the normalizer.
//
// Real telemetry goes missing and goes wrong: counters wrap, probes time
// out, readings arrive as NaN or as physically impossible spikes. Nothing
// downstream of the sampler (representative dedup, MDS embedding,
// trajectory models) tolerates a non-finite coordinate, so every raw
// reading passes through SampleQuarantine before normalization: readings
// that are non-finite, negative, or above the dimension's plausible upper
// bound are quarantined — replaced by the dimension's last good value —
// and a per-dimension staleness counter records how long each dimension
// has been running on imputed data. The runtime widens its decisions
// conservatively while any dimension is stale (DESIGN.md §12).
//
// On healthy input the stage is a pure pass-through: it never alters a
// finite in-range reading, so the fault-free control loop is byte-
// identical with or without it (golden test in tests/test_runtime.cpp).
// Under streaming ingestion (DESIGN.md §15) the quarantine is also the
// admission gate: every drained sample passes admit() first, which
// classifies late/out-of-order arrivals (admitted but counted — their
// values still carry information) and duplicate deliveries (rejected).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/statecodec.hpp"

namespace stayaway::monitor {

/// Health summary of one validated sample.
struct SampleHealth {
  std::size_t dimension = 0;
  /// Dimensions imputed in this sample.
  std::size_t quarantined = 0;
  /// Longest run of consecutive imputations across dimensions, ending at
  /// this sample. 0 when every dimension carried a good reading.
  std::size_t max_staleness = 0;

  bool imputed() const { return quarantined > 0; }
};

class SampleQuarantine {
 public:
  /// `upper_bounds[i]` is the largest plausible raw reading of flat
  /// dimension i (host capacity times a spike margin). Readings above it,
  /// below zero, or non-finite are quarantined.
  explicit SampleQuarantine(std::vector<double> upper_bounds);

  std::size_t dimension() const { return bounds_.size(); }

  /// Validates a raw measurement in place: bad readings are replaced with
  /// the dimension's last good value (0 until one exists) and counted.
  SampleHealth validate(std::vector<double>& values);

  /// Admission verdict for one streamed sample (checked before validate).
  enum class Admit {
    Ok,         // in order, first delivery
    Late,       // timestamp older than the newest seen; admitted, counted
    Duplicate,  // sequence already delivered; reject the sample
  };

  /// Admission gate for streamed samples: classifies a (timestamp,
  /// sequence) pair. Duplicates must be dropped by the caller; late
  /// samples are admitted (their values are real readings) but counted.
  /// The synchronous path's strictly increasing clock always returns Ok,
  /// so this is a no-op on the historical feed.
  Admit admit(double time, std::uint64_t sequence);

  /// Readings quarantined across the stage's lifetime (observability).
  std::size_t total_quarantined() const { return total_quarantined_; }
  /// Late/out-of-order samples admitted across the lifetime.
  std::size_t total_late() const { return total_late_; }
  /// Duplicate deliveries rejected across the lifetime.
  std::size_t total_duplicates() const { return total_duplicates_; }

  /// Snapshot of imputation state, admission clock and counters
  /// (DESIGN.md §17). The seen-sequence set serializes sorted — it is
  /// only ever membership-tested, so insertion order is immaterial.
  /// load_state targets a freshly constructed quarantine with the same
  /// upper-bound layout (dimension checked).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  std::vector<double> bounds_;
  std::vector<double> last_good_;
  std::vector<std::size_t> staleness_;
  std::size_t total_quarantined_ = 0;
  std::size_t total_late_ = 0;
  std::size_t total_duplicates_ = 0;
  double newest_time_ = 0.0;
  bool any_admitted_ = false;
  std::unordered_set<std::uint64_t> seen_sequences_;
};

}  // namespace stayaway::monitor
