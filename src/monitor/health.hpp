// Validate-and-quarantine stage between the sampler and the normalizer.
//
// Real telemetry goes missing and goes wrong: counters wrap, probes time
// out, readings arrive as NaN or as physically impossible spikes. Nothing
// downstream of the sampler (representative dedup, MDS embedding,
// trajectory models) tolerates a non-finite coordinate, so every raw
// reading passes through SampleQuarantine before normalization: readings
// that are non-finite, negative, or above the dimension's plausible upper
// bound are quarantined — replaced by the dimension's last good value —
// and a per-dimension staleness counter records how long each dimension
// has been running on imputed data. The runtime widens its decisions
// conservatively while any dimension is stale (DESIGN.md §12).
//
// On healthy input the stage is a pure pass-through: it never alters a
// finite in-range reading, so the fault-free control loop is byte-
// identical with or without it (golden test in tests/test_runtime.cpp).
#pragma once

#include <cstddef>
#include <vector>

namespace stayaway::monitor {

/// Health summary of one validated sample.
struct SampleHealth {
  std::size_t dimension = 0;
  /// Dimensions imputed in this sample.
  std::size_t quarantined = 0;
  /// Longest run of consecutive imputations across dimensions, ending at
  /// this sample. 0 when every dimension carried a good reading.
  std::size_t max_staleness = 0;

  bool imputed() const { return quarantined > 0; }
};

class SampleQuarantine {
 public:
  /// `upper_bounds[i]` is the largest plausible raw reading of flat
  /// dimension i (host capacity times a spike margin). Readings above it,
  /// below zero, or non-finite are quarantined.
  explicit SampleQuarantine(std::vector<double> upper_bounds);

  std::size_t dimension() const { return bounds_.size(); }

  /// Validates a raw measurement in place: bad readings are replaced with
  /// the dimension's last good value (0 until one exists) and counted.
  SampleHealth validate(std::vector<double>& values);

  /// Readings quarantined across the stage's lifetime (observability).
  std::size_t total_quarantined() const { return total_quarantined_; }

 private:
  std::vector<double> bounds_;
  std::vector<double> last_good_;
  std::vector<std::size_t> staleness_;
  std::size_t total_quarantined_ = 0;
};

}  // namespace stayaway::monitor
