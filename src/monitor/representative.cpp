#include "monitor/representative.hpp"

#include <limits>
#include <utility>

#include "linalg/matrix.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::monitor {

namespace {
/// Below this set size the nearest-representative scan stays sequential:
/// the pool hand-off costs more than the scan itself.
constexpr std::size_t kParallelScanThreshold = 128;

// Paranoid audit: re-derive the argmin sequentially and compare with the
// scan's answer. Catches a parallel distance scan that diverged from the
// sequential comparison order.
bool argmin_matches(const std::vector<std::vector<double>>& reps,
                    const std::vector<double>& v, std::size_t best,
                    double best_dist) {
  std::size_t check_best = 0;
  double check_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < reps.size(); ++i) {
    double d = linalg::euclidean_distance(reps[i], v);
    if (d < check_dist) {
      check_dist = d;
      check_best = i;
    }
  }
  return reps.empty() || (check_best == best && check_dist == best_dist);
}
}  // namespace

RepresentativeSet::RepresentativeSet(double epsilon, std::size_t max_size)
    : epsilon_(epsilon), max_size_(max_size) {
  SA_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");
}

Assignment RepresentativeSet::assign(const std::vector<double>& v) {
  SA_REQUIRE(!v.empty(), "cannot assign an empty vector");
  if (!reps_.empty()) {
    SA_REQUIRE(v.size() == reps_.front().size(),
               "all vectors must share a dimension");
  }
  ++observed_;

  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  util::ThreadPool& pool = util::hot_path_pool();
  if (pool.size() > 1 && reps_.size() >= kParallelScanThreshold) {
    // Distances are computed in parallel, the argmin scan stays
    // sequential — same comparisons in the same order as the sequential
    // path, so the chosen representative is identical.
    scan_dist_.resize(reps_.size());
    pool.for_ranges(reps_.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        scan_dist_[i] = linalg::euclidean_distance(reps_[i], v);
      }
    });
    for (std::size_t i = 0; i < scan_dist_.size(); ++i) {
      if (scan_dist_[i] < best_dist) {
        best_dist = scan_dist_[i];
        best = i;
      }
    }
  } else {
    for (std::size_t i = 0; i < reps_.size(); ++i) {
      double d = linalg::euclidean_distance(reps_[i], v);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
  }

  SA_INVARIANT(argmin_matches(reps_, v, best, best_dist),
               "parallel nearest-representative scan diverged from the "
               "sequential argmin");
  if (!reps_.empty() && (best_dist <= epsilon_ || full())) {
    ++weights_[best];
    return {best, false, best_dist};
  }
  // Dedup-threshold consistency: a new representative is only legal when
  // every existing one sits strictly beyond epsilon (and the set has room).
  SA_CHECK(reps_.empty() || (best_dist > epsilon_ && !full()),
           "created a representative inside the dedup threshold");
  reps_.push_back(v);
  weights_.push_back(1);
  return {reps_.size() - 1, true, 0.0};
}

const std::vector<double>& RepresentativeSet::representative(std::size_t i) const {
  SA_REQUIRE(i < reps_.size(), "representative index out of range");
  return reps_[i];
}

std::size_t RepresentativeSet::weight(std::size_t i) const {
  SA_REQUIRE(i < weights_.size(), "representative index out of range");
  return weights_[i];
}

void RepresentativeSet::save_state(util::StateWriter& w) const {
  w.u64("representatives", reps_.size());
  for (const auto& rep : reps_) w.reals("rep", rep);
  std::vector<std::uint64_t> weights(weights_.begin(), weights_.end());
  w.u64s("weights", weights);
  w.u64("observed", observed_);
}

void RepresentativeSet::load_state(util::StateReader& r) {
  std::uint64_t n = r.u64("representatives");
  std::vector<std::vector<double>> reps;
  reps.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) reps.push_back(r.reals("rep"));
  std::vector<std::uint64_t> weights = r.u64s("weights");
  if (weights.size() != reps.size()) {
    throw util::StateCodecError(
        "representative state: weight/vector count mismatch");
  }
  for (std::size_t i = 1; i < reps.size(); ++i) {
    if (reps[i].size() != reps.front().size()) {
      throw util::StateCodecError(
          "representative state: inconsistent vector dimensions");
    }
  }
  reps_ = std::move(reps);
  weights_.assign(weights.begin(), weights.end());
  observed_ = static_cast<std::size_t>(r.u64("observed"));
}

}  // namespace stayaway::monitor
