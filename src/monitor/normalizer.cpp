#include "monitor/normalizer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::monitor {

namespace {

// Paranoid audit: everything downstream (dedup radii, map distances,
// Rayleigh scales) assumes usage vectors live in the unit cube.
bool in_unit_interval(const std::vector<double>& values) {
  for (double v : values) {
    if (!(v >= 0.0 && v <= 1.0)) return false;
  }
  return true;
}

}  // namespace

CapacityNormalizer::CapacityNormalizer(const sim::HostSpec& spec,
                                       MetricLayout layout)
    : spec_(spec), layout_(std::move(layout)) {
  SA_REQUIRE(layout_.dimension() > 0, "normalizer needs a non-empty layout");
}

double CapacityNormalizer::capacity_of(MetricKind kind) const {
  switch (kind) {
    case MetricKind::Cpu:
      return spec_.cpu_cores;
    case MetricKind::Memory:
      return spec_.memory_mb;
    case MetricKind::MemBandwidth:
      return spec_.membw_mbps;
    case MetricKind::DiskIo:
      return spec_.disk_mbps;
    case MetricKind::Network:
      return spec_.net_mbps;
  }
  return 1.0;
}

std::vector<double> CapacityNormalizer::normalize(const Measurement& m) const {
  SA_REQUIRE(m.values.size() == layout_.dimension(),
             "measurement does not match the layout");
  std::vector<double> out(m.values.size(), 0.0);
  for (std::size_t e = 0; e < layout_.entities.size(); ++e) {
    for (std::size_t k = 0; k < layout_.metrics.size(); ++k) {
      std::size_t i = layout_.index_of(e, k);
      double cap = capacity_of(layout_.metrics[k]);
      SA_CHECK(cap > 0.0, "metric capacity must be positive to normalize");
      out[i] = std::clamp(m.values[i] / cap, 0.0, 1.0);
    }
  }
  SA_INVARIANT(in_unit_interval(out),
               "capacity normalization must land in [0,1]");
  return out;
}

RunningNormalizer::RunningNormalizer(std::size_t dimension)
    : bounds_(dimension) {
  SA_REQUIRE(dimension > 0, "normalizer needs a positive dimension");
}

std::vector<double> RunningNormalizer::observe(const std::vector<double>& values) {
  SA_REQUIRE(values.size() == bounds_.size(), "dimension mismatch");
  std::vector<double> out(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    bounds_[i].observe(values[i]);
    double range = bounds_[i].range();
    out[i] = (range > 0.0) ? (values[i] - bounds_[i].min()) / range : 0.0;
  }
  SA_INVARIANT(in_unit_interval(out),
               "running min-max normalization must land in [0,1]");
  return out;
}

}  // namespace stayaway::monitor
