#include "monitor/normalizer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::monitor {

CapacityNormalizer::CapacityNormalizer(const sim::HostSpec& spec,
                                       MetricLayout layout)
    : spec_(spec), layout_(std::move(layout)) {
  SA_REQUIRE(layout_.dimension() > 0, "normalizer needs a non-empty layout");
}

double CapacityNormalizer::capacity_of(MetricKind kind) const {
  switch (kind) {
    case MetricKind::Cpu:
      return spec_.cpu_cores;
    case MetricKind::Memory:
      return spec_.memory_mb;
    case MetricKind::MemBandwidth:
      return spec_.membw_mbps;
    case MetricKind::DiskIo:
      return spec_.disk_mbps;
    case MetricKind::Network:
      return spec_.net_mbps;
  }
  return 1.0;
}

std::vector<double> CapacityNormalizer::normalize(const Measurement& m) const {
  SA_REQUIRE(m.values.size() == layout_.dimension(),
             "measurement does not match the layout");
  std::vector<double> out(m.values.size(), 0.0);
  for (std::size_t e = 0; e < layout_.entities.size(); ++e) {
    for (std::size_t k = 0; k < layout_.metrics.size(); ++k) {
      std::size_t i = layout_.index_of(e, k);
      double cap = capacity_of(layout_.metrics[k]);
      out[i] = std::clamp(m.values[i] / cap, 0.0, 1.0);
    }
  }
  return out;
}

RunningNormalizer::RunningNormalizer(std::size_t dimension)
    : bounds_(dimension) {
  SA_REQUIRE(dimension > 0, "normalizer needs a positive dimension");
}

std::vector<double> RunningNormalizer::observe(const std::vector<double>& values) {
  SA_REQUIRE(values.size() == bounds_.size(), "dimension mismatch");
  std::vector<double> out(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    bounds_[i].observe(values[i]);
    double range = bounds_[i].range();
    out[i] = (range > 0.0) ? (values[i] - bounds_[i].min()) / range : 0.0;
  }
  return out;
}

}  // namespace stayaway::monitor
