#include "monitor/sample_source.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace stayaway::monitor {

namespace {

/// Delayed samples a producer holds back at once. Bounded so a saturated
/// ingest-delay window degrades into plain lateness instead of growing
/// an unbounded producer-side queue.
constexpr std::size_t kMaxHeld = 4;

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  // Golden-ratio xor-mix, same family as fleet_host_seed: decorrelates
  // the ingest-anomaly stream from the value-noise stream.
  return (a ^ 0x9e3779b97f4a7c15ULL) + (b << 1);
}

}  // namespace

DrainReport SynchronousSampleSource::drain(double now,
                                           std::vector<TimedSample>& out) {
  (void)now;  // the sampler stamps the host clock itself
  TimedSample s;
  s.sequence = next_sequence_++;
  s.measurement = sampler_.sample();
  out.push_back(std::move(s));
  DrainReport report;
  report.delivered = 1;
  return report;
}

void SampleSource::save_state(util::StateWriter& w) const {
  (void)w;
  SA_CHECK(false, "save_state on a non-checkpointable sample source");
}

void SampleSource::load_state(util::StateReader& r) {
  (void)r;
  SA_CHECK(false, "load_state on a non-checkpointable sample source");
}

void SynchronousSampleSource::save_state(util::StateWriter& w) const {
  sampler_.save_state(w);
  w.u64("next_sequence", next_sequence_);
}

void SynchronousSampleSource::load_state(util::StateReader& r) {
  sampler_.load_state(r);
  next_sequence_ = r.u64("next_sequence");
}

RingSampleSource::RingSampleSource(MetricLayout layout,
                                   std::vector<double> scale,
                                   trace::Trace trace,
                                   RingStreamOptions options)
    : layout_(std::move(layout)),
      scale_(std::move(scale)),
      trace_(std::move(trace)),
      options_(options),
      ring_(options.ring_capacity),
      value_rng_(options.seed) {
  SA_REQUIRE(layout_.dimension() > 0, "ring source needs a non-empty layout");
  SA_REQUIRE(scale_.size() == layout_.dimension(),
             "scale vector must match the layout dimension");
  SA_REQUIRE(options_.rate_hz > 0.0, "ingest rate must be positive");
  SA_REQUIRE(options_.lookahead_s >= 0.0, "lookahead must be non-negative");
  SA_REQUIRE(options_.noise_fraction >= 0.0,
             "noise fraction must be non-negative");
  SA_REQUIRE(options_.time_scale > 0.0, "time scale must be positive");
  SA_REQUIRE(options_.burst_rate_hz >= 0.0,
             "burst rate must be non-negative");
  if (options_.burst_rate_hz > 0.0) {
    SA_REQUIRE(options_.burst_end_s > options_.burst_start_s,
               "burst window must satisfy end > start");
  }
  // Per-dimension demand mix: each metric tracks the shared trace with
  // its own seed-derived weight, so dimensions are correlated (one
  // latent intensity) without being identical — the same premise the
  // host sampler's allocations follow.
  mix_.resize(layout_.dimension());
  for (double& w : mix_) w = 0.35 + 0.6 * value_rng_.uniform();
  // The producer starts parked: the gate opens at the first drain(), so
  // install_faults (required before the first period) always precedes
  // the first generated sample.
  producer_ = std::thread([this] { producer_loop(); });
}

RingSampleSource::~RingSampleSource() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  producer_cv_.notify_all();
  if (producer_.joinable()) producer_.join();
}

void RingSampleSource::set_fault_injector(sim::FaultInjector* injector) {
  util::MutexLock lock(mutex_);
  SA_REQUIRE(gate_ == -std::numeric_limits<double>::infinity(),
             "the fault injector must be attached before the first drain");
  injector_ = injector;
  ingest_specs_.clear();
  ingest_seed_ = 0;
  if (injector == nullptr) return;
  ingest_seed_ = injector->plan().seed;
  for (const sim::FaultSpec& f : injector->plan().faults) {
    if (f.kind == sim::FaultKind::IngestDelay ||
        f.kind == sim::FaultKind::IngestDuplicate) {
      ingest_specs_.push_back(f);
    }
  }
}

double RingSampleSource::interval_at(double t) const {
  double rate = options_.rate_hz;
  if (options_.burst_rate_hz > 0.0 && t >= options_.burst_start_s &&
      t < options_.burst_end_s) {
    rate = options_.burst_rate_hz;
  }
  return 1.0 / rate;
}

Measurement RingSampleSource::synthesize(double t) {
  Measurement m;
  m.time = t;
  const double span = trace_.duration();
  const double tt =
      span > 0.0 ? std::fmod(t * options_.time_scale, span) : 0.0;
  const double intensity = trace_.normalized_at(tt);
  m.values.resize(layout_.dimension());
  for (std::size_t d = 0; d < m.values.size(); ++d) {
    double v = scale_[d] * mix_[d] * intensity;
    v *= 1.0 + value_rng_.normal(0.0, options_.noise_fraction);
    m.values[d] = std::max(0.0, v);
  }
  return m;
}

void RingSampleSource::emit(TimedSample sample) {
  // A full ring counts the drop (ring_.dropped()); the producer never
  // blocks on backpressure — the consumer surfaces it instead.
  ring_.try_push(std::move(sample));
}

void RingSampleSource::producer_loop() {
  std::vector<TimedSample> held;
  std::optional<Rng> ingest_rng;
  double t = 0.0;
  std::uint64_t seq = 0;
  util::MutexLock lock(mutex_);
  for (;;) {
    if (t > gate_ + options_.lookahead_s) {
      // Caught up with the consumer's clock: flush any held-back samples
      // (they now arrive behind newer ones — the late/out-of-order
      // anomaly), publish how far the stream is settled, and park until
      // the gate advances.
      for (TimedSample& h : held) emit(std::move(h));
      held.clear();
      watermark_ = t;
      consumer_cv_.notify_all();
      producer_cv_.wait(mutex_, [&] {
        mutex_.assert_held();
        return stop_ || t <= gate_ + options_.lookahead_s;
      });
    }
    if (stop_) break;
    if (!ingest_rng.has_value()) {
      // First generation strictly follows install_faults (the gate only
      // opens at the first drain), so the plan-derived schedule is final.
      ingest_rng.emplace(mix_seed(ingest_seed_, options_.seed));
    }
    TimedSample s;
    s.sequence = seq++;
    s.measurement = synthesize(t);
    bool delayed = false;
    bool duplicated = false;
    for (const sim::FaultSpec& f : ingest_specs_) {
      if (!f.active(t)) continue;
      if (f.kind == sim::FaultKind::IngestDelay &&
          ingest_rng->chance(f.probability)) {
        delayed = true;
      } else if (f.kind == sim::FaultKind::IngestDuplicate &&
                 ingest_rng->chance(f.probability)) {
        duplicated = true;
      }
    }
    if (delayed && held.size() < kMaxHeld) {
      held.push_back(std::move(s));
    } else {
      TimedSample copy;
      if (duplicated) copy = s;  // same sequence: the quarantine drops it
      emit(std::move(s));
      if (duplicated) emit(std::move(copy));
      for (TimedSample& h : held) emit(std::move(h));
      held.clear();
    }
    t += interval_at(t);
  }
}

DrainReport RingSampleSource::drain(double now,
                                    std::vector<TimedSample>& out) {
  DrainReport report;
  {
    util::MutexLock lock(mutex_);
    gate_ = now;
    producer_cv_.notify_all();
    consumer_cv_.wait(mutex_, [&] {
      mutex_.assert_held();
      return stop_ || watermark_ > now;
    });
  }
  // The producer is parked waiting for the gate to pass its next sample
  // time: every sample due by `now` is settled in the ring, nothing else
  // pops it, and the occupancy any push saw was fixed by previous drains
  // — the whole stream (overflow included) is schedule-independent.
  auto deliver = [&](TimedSample s) {
    if (injector_ != nullptr) {
      injector_->corrupt_sample(s.measurement.time, s.measurement.values);
    }
    out.push_back(std::move(s));
    ++report.delivered;
    ++delivered_total_;
  };
  if (pending_.has_value() && pending_->measurement.time <= now) {
    deliver(std::move(*pending_));
    pending_.reset();
  }
  if (!pending_.has_value()) {
    while (std::optional<TimedSample> s = ring_.try_pop()) {
      if (s->measurement.time > now) {
        pending_ = std::move(*s);
        break;
      }
      deliver(std::move(*s));
    }
  }
  const std::uint64_t dropped = ring_.dropped();
  report.overflow = static_cast<std::size_t>(dropped - overflow_reported_);
  overflow_reported_ = dropped;
  return report;
}

}  // namespace stayaway::monitor
