// SampleSource: the ingestion seam of the mapping stage (DESIGN.md §15).
//
// The control loop historically made one synchronous Sampler::sample()
// call per period, which caps ingestion at one sample per control
// decision. SampleSource abstracts where samples come from so the
// pipeline can drain *streams*:
//
//   SynchronousSampleSource  wraps HostSampler; drain() takes exactly
//                            one sample — byte-identical to the
//                            historical loop (golden tests).
//   RingSampleSource         a producer thread replays a trace into a
//                            lock-free SPSC ring (util/spsc_ring.hpp)
//                            at a configured rate; drain() pops every
//                            sample due by `now`. Overflow (full ring)
//                            is counted, never blocking; late/
//                            out-of-order/duplicate anomalies are
//                            injected by the producer from the fault
//                            plan's ingest-delay / ingest-dup cases and
//                            classified downstream by SampleQuarantine.
//
// Determinism contract (what record/replay rests on): the producer only
// emits samples with time <= gate + lookahead, where the gate is the
// consumer's drain clock, and drain() waits until the producer's
// watermark passes `now` before popping. Pushes therefore always run
// against a ring occupancy fixed by previous drains, so the sample
// stream — including every overflow drop — is a pure function of the
// seed and the config, never of thread scheduling.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <thread>
#include <vector>

#include "monitor/measurement.hpp"
#include "monitor/sampler.hpp"
#include "sim/faults.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"
#include "util/sync.hpp"

namespace stayaway::monitor {

/// One streamed measurement. `sequence` is the producer's emission
/// index; a duplicated delivery reuses its original's sequence, which is
/// how the quarantine recognizes it.
struct TimedSample {
  std::uint64_t sequence = 0;
  Measurement measurement;
};

/// What one drain() delivered and dropped.
struct DrainReport {
  /// Samples appended to the caller's buffer.
  std::size_t delivered = 0;
  /// Producer pushes rejected by a full ring since the previous drain.
  std::size_t overflow = 0;
};

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  virtual const MetricLayout& layout() const = 0;

  /// True for asynchronous implementations. The mapper only fills the
  /// PeriodRecord's ingest telemetry for streaming sources, so the
  /// synchronous record stream stays byte-identical to the historical
  /// format.
  virtual bool streaming() const = 0;

  /// Appends every sample due by `now` to `out` in arrival order.
  virtual DrainReport drain(double now, std::vector<TimedSample>& out) = 0;

  /// Attaches (or detaches, with nullptr) the pipeline's fault injector.
  /// Sensor faults apply to every delivered sample; a streaming source
  /// additionally reads the plan's ingest-delay / ingest-dup specs.
  /// Must be called before the first drain().
  virtual void set_fault_injector(sim::FaultInjector* injector) = 0;

  /// Samples delivered across the source's lifetime (observability).
  virtual std::uint64_t samples_taken() const = 0;

  /// Checkpoint support (DESIGN.md §17). Only the synchronous source is
  /// checkpointable — a ring source's producer thread cannot be rewound
  /// mid-stream, so pipelines fed by one recover by cold replay instead.
  /// The save/load defaults fail loudly; callers must gate on
  /// checkpointable() first.
  virtual bool checkpointable() const { return false; }
  virtual void save_state(util::StateWriter& w) const;
  virtual void load_state(util::StateReader& r);
};

/// The historical path: one HostSampler reading per drain. Exists so
/// every caller speaks SampleSource while the default configuration
/// stays byte-identical to the pre-streaming loop.
class SynchronousSampleSource final : public SampleSource {
 public:
  explicit SynchronousSampleSource(HostSampler sampler)
      : sampler_(std::move(sampler)) {}

  const MetricLayout& layout() const override { return sampler_.layout(); }
  bool streaming() const override { return false; }

  DrainReport drain(double now, std::vector<TimedSample>& out) override;

  void set_fault_injector(sim::FaultInjector* injector) override {
    sampler_.set_fault_injector(injector);
  }

  std::uint64_t samples_taken() const override {
    return sampler_.samples_taken();
  }

  bool checkpointable() const override { return true; }
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

  const HostSampler& sampler() const { return sampler_; }

 private:
  HostSampler sampler_;
  std::uint64_t next_sequence_ = 0;
};

/// Stream shape of a RingSampleSource, derived from core::IngestConfig
/// plus the per-host seed (monitor cannot see core's config types).
struct RingStreamOptions {
  /// Emission rate in samples per simulated second.
  double rate_hz = 4.0;
  /// Producer may run this far past the consumer's gate.
  double lookahead_s = 0.25;
  /// Ring capacity in samples (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Optional burst window at burst_rate_hz; 0 disables.
  double burst_rate_hz = 0.0;
  double burst_start_s = 0.0;
  double burst_end_s = 0.0;
  /// Multiplicative gaussian measurement noise per reading.
  double noise_fraction = 0.01;
  /// Sim-seconds -> trace-seconds: how fast the replayed trace advances
  /// relative to the control clock. The default sweeps one diurnal day
  /// (86400 trace-seconds) in 300 simulated seconds.
  double time_scale = 288.0;
  /// Seeds the producer's value noise and per-dimension demand mix.
  std::uint64_t seed = 17;
};

class RingSampleSource final : public SampleSource {
 public:
  /// `scale[d]` is the full-scale raw value of flat dimension d (the
  /// host capacity of its metric kind); the producer emits
  /// scale * mix * trace intensity plus noise. The trace replays on a
  /// loop via RingStreamOptions::time_scale.
  RingSampleSource(MetricLayout layout, std::vector<double> scale,
                   trace::Trace trace, RingStreamOptions options);
  ~RingSampleSource() override;

  RingSampleSource(const RingSampleSource&) = delete;
  RingSampleSource& operator=(const RingSampleSource&) = delete;

  const MetricLayout& layout() const override { return layout_; }
  bool streaming() const override { return true; }

  DrainReport drain(double now, std::vector<TimedSample>& out) override;

  void set_fault_injector(sim::FaultInjector* injector) override;

  std::uint64_t samples_taken() const override { return delivered_total_; }

  /// Producer pushes dropped by a full ring so far (observability).
  std::uint64_t overflow_total() const { return ring_.dropped(); }

  const RingStreamOptions& options() const { return options_; }

 private:
  void producer_loop();
  /// Emission interval at simulated time t (burst window aware).
  double interval_at(double t) const;
  Measurement synthesize(double t);
  /// Pushes one sample; a full ring counts the drop inside the ring.
  void emit(TimedSample sample);

  // --- Immutable after construction (read by both threads). ------------
  // sa-lint: unguarded(immutable after construction)
  MetricLayout layout_;
  // sa-lint: unguarded(immutable after construction)
  std::vector<double> scale_;
  // sa-lint: unguarded(immutable after construction; seeded in the ctor)
  std::vector<double> mix_;  // per-dimension demand weight, seed-derived
  // sa-lint: unguarded(immutable after construction)
  trace::Trace trace_;
  // sa-lint: unguarded(immutable after construction)
  RingStreamOptions options_;

  // sa-lint: unguarded(internally synchronized lock-free SPSC ring)
  util::SpscRing<TimedSample> ring_;
  // sa-lint: unguarded(producer thread only after the ctor's mix draw)
  Rng value_rng_;

  // --- Producer <-> consumer gate protocol (see file comment). ---------
  util::Mutex mutex_;
  util::CondVar producer_cv_;
  util::CondVar consumer_cv_;
  double gate_ SA_GUARDED_BY(mutex_) =
      -std::numeric_limits<double>::infinity();
  double watermark_ SA_GUARDED_BY(mutex_) =
      -std::numeric_limits<double>::infinity();
  bool stop_ SA_GUARDED_BY(mutex_) = false;
  std::vector<sim::FaultSpec> ingest_specs_ SA_GUARDED_BY(mutex_);
  std::uint64_t ingest_seed_ SA_GUARDED_BY(mutex_) = 0;

  // --- Consumer-side state (control thread only). -----------------------
  // sa-lint: unguarded(consumer thread only)
  sim::FaultInjector* injector_ = nullptr;
  // sa-lint: unguarded(consumer thread only)
  std::optional<TimedSample> pending_;  // popped but not yet due
  // sa-lint: unguarded(consumer thread only)
  std::uint64_t delivered_total_ = 0;
  // sa-lint: unguarded(consumer thread only)
  std::uint64_t overflow_reported_ = 0;

  // sa-lint: unguarded(started last in the ctor, joined in the dtor)
  std::thread producer_;  // last member: starts after everything above
};

}  // namespace stayaway::monitor
