#include "monitor/measurement.hpp"

#include "util/check.hpp"

namespace stayaway::monitor {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Cpu:
      return "cpu";
    case MetricKind::Memory:
      return "mem";
    case MetricKind::MemBandwidth:
      return "membw";
    case MetricKind::DiskIo:
      return "io";
    case MetricKind::Network:
      return "net";
  }
  return "unknown";
}

MetricKind metric_kind_from_string(const std::string& name) {
  for (auto kind :
       {MetricKind::Cpu, MetricKind::Memory, MetricKind::MemBandwidth,
        MetricKind::DiskIo, MetricKind::Network}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown metric kind: " + name);
}

std::size_t MetricLayout::index_of(std::size_t entity, std::size_t metric) const {
  SA_REQUIRE(entity < entities.size(), "entity index out of range");
  SA_REQUIRE(metric < metrics.size(), "metric index out of range");
  return entity * metrics.size() + metric;
}

std::string MetricLayout::dimension_name(std::size_t flat_index) const {
  SA_REQUIRE(flat_index < dimension(), "dimension index out of range");
  std::size_t entity = flat_index / metrics.size();
  std::size_t metric = flat_index % metrics.size();
  return entities[entity] + "." + to_string(metrics[metric]);
}

double metric_value(const MetricLayout& layout, const Measurement& m,
                    std::size_t entity, std::size_t metric) {
  std::size_t i = layout.index_of(entity, metric);
  SA_REQUIRE(i < m.values.size(), "measurement shorter than its layout");
  return m.values[i];
}

double allocation_metric(const sim::Allocation& alloc, MetricKind kind) {
  switch (kind) {
    case MetricKind::Cpu:
      return alloc.granted.cpu_cores;
    case MetricKind::Memory:
      return alloc.granted.memory_mb;
    case MetricKind::MemBandwidth:
      return alloc.granted.membw_mbps;
    case MetricKind::DiskIo:
      // Swap traffic is disk traffic: this is where thrashing becomes
      // visible to the monitor.
      return alloc.granted.disk_mbps + alloc.swap_io_mbps;
    case MetricKind::Network:
      return alloc.granted.net_mbps;
  }
  return 0.0;
}

}  // namespace stayaway::monitor
