#include "monitor/mode.hpp"

namespace stayaway::monitor {

const char* to_string(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::Idle:
      return "idle";
    case ExecutionMode::BatchOnly:
      return "batch-only";
    case ExecutionMode::SensitiveOnly:
      return "sensitive-only";
    case ExecutionMode::CoLocated:
      return "co-located";
  }
  return "unknown";
}

ExecutionMode detect_mode(const sim::SimHost& host) {
  bool sensitive = false;
  bool batch = false;
  for (sim::VmId id = 0; id < host.vm_count(); ++id) {
    const auto& vm = host.vm(id);
    if (!vm.active(host.now())) continue;
    if (vm.kind() == sim::VmKind::Sensitive) sensitive = true;
    if (vm.kind() == sim::VmKind::Batch) batch = true;
  }
  if (sensitive && batch) return ExecutionMode::CoLocated;
  if (sensitive) return ExecutionMode::SensitiveOnly;
  if (batch) return ExecutionMode::BatchOnly;
  return ExecutionMode::Idle;
}

}  // namespace stayaway::monitor
