// Measurement vectors: the per-period snapshot of every VM's resource
// usage, M(t) = <VM_i-CPU, VM_i-Memory, VM_i-I/O, VM_i-network> (§3.1).
#pragma once

#include <string>
#include <vector>

#include "sim/resource.hpp"

namespace stayaway::monitor {

/// Which resource signals are sampled per VM. The paper's default set is
/// CPU, memory, I/O and network; memory-bus load can be added where the
/// interference of interest lives in the memory subsystem (§3.1 discusses
/// choosing metrics that characterize the contended subsystem).
enum class MetricKind {
  Cpu,           // cores in use
  Memory,        // resident working set, MB
  MemBandwidth,  // memory-bus traffic, MB/s
  DiskIo,        // disk traffic, MB/s
  Network,       // network traffic, MB/s
};

const char* to_string(MetricKind kind);
/// Inverse of to_string; throws PreconditionError on unknown names.
MetricKind metric_kind_from_string(const std::string& name);

/// Describes the layout of a measurement vector: one block of `metrics`
/// per entity, in order. An entity is a VM, or the aggregated logical
/// batch VM of §5.
struct MetricLayout {
  std::vector<std::string> entities;
  std::vector<MetricKind> metrics;

  std::size_t dimension() const { return entities.size() * metrics.size(); }
  /// Flat index of (entity e, metric m).
  std::size_t index_of(std::size_t entity, std::size_t metric) const;
  /// Human-readable name of a flat dimension, e.g. "vlc.cpu".
  std::string dimension_name(std::size_t flat_index) const;
};

struct Measurement {
  double time = 0.0;
  std::vector<double> values;  // layout.dimension() entries
};

/// Extracts the metric value of one entity from a flat measurement.
double metric_value(const MetricLayout& layout, const Measurement& m,
                    std::size_t entity, std::size_t metric);

/// Reads one metric kind out of a granted allocation.
double allocation_metric(const sim::Allocation& alloc, MetricKind kind);

}  // namespace stayaway::monitor
