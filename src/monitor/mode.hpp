// Execution-mode detection (§3.2.3).
//
// "At any point in time, one of these 4 execution modes hold true: no
// application is running; batch application runs alone; latency-sensitive
// application runs alone; co-located execution." The middleware manages
// the VMs, so the current mode is always known exactly — a paused batch
// VM does not count as running.
#pragma once

#include "sim/host.hpp"

namespace stayaway::monitor {

enum class ExecutionMode {
  Idle = 0,
  BatchOnly = 1,
  SensitiveOnly = 2,
  CoLocated = 3,
};

constexpr std::size_t kExecutionModeCount = 4;

const char* to_string(ExecutionMode mode);

/// Determines the current execution mode from VM activity.
ExecutionMode detect_mode(const sim::SimHost& host);

}  // namespace stayaway::monitor
