// Host sampler: turns the host's per-VM granted allocations into
// measurement vectors, with optional measurement noise and the §5
// aggregation of all batch VMs into one logical VM.
#pragma once

#include <cstdint>
#include <vector>

#include "monitor/measurement.hpp"
#include "sim/host.hpp"
#include "util/rng.hpp"

namespace stayaway::monitor {

struct SamplerOptions {
  std::vector<MetricKind> metrics = {MetricKind::Cpu, MetricKind::Memory,
                                     MetricKind::DiskIo, MetricKind::Network};
  /// §5: "The monitored metrics of all the batch applications are
  /// aggregated together to model their collective behaviour as a single
  /// logical VM." Keeps the mapped space 2-D-representable regardless of
  /// how many batch VMs are co-located.
  bool aggregate_batch = true;
  /// Multiplicative gaussian noise, as a fraction of each reading —
  /// real /proc and perf counters are never exact.
  double noise_fraction = 0.01;
  std::uint64_t seed = 17;
};

class HostSampler {
 public:
  /// The host must outlive the sampler. The layout is fixed at
  /// construction from the host's current VM set.
  HostSampler(const sim::SimHost& host, SamplerOptions options = {});

  const MetricLayout& layout() const { return layout_; }

  /// Samples the most recent tick's granted usage.
  Measurement sample();

  /// Measurements taken so far (observability).
  std::size_t samples_taken() const { return samples_taken_; }

 private:
  const sim::SimHost* host_;
  SamplerOptions options_;
  MetricLayout layout_;
  /// entity index -> VM ids contributing to it
  std::vector<std::vector<sim::VmId>> entity_vms_;
  Rng rng_;
  std::size_t samples_taken_ = 0;
};

}  // namespace stayaway::monitor
