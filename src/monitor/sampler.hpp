// Host sampler: turns the host's per-VM granted allocations into
// measurement vectors, with optional measurement noise and the §5
// aggregation of all batch VMs into one logical VM.
#pragma once

#include <cstdint>
#include <vector>

#include "monitor/measurement.hpp"
#include "sim/faults.hpp"
#include "sim/host.hpp"
#include "util/rng.hpp"
#include "util/statecodec.hpp"

namespace stayaway::monitor {

struct SamplerConfig {
  std::vector<MetricKind> metrics = {MetricKind::Cpu, MetricKind::Memory,
                                     MetricKind::DiskIo, MetricKind::Network};
  /// §5: "The monitored metrics of all the batch applications are
  /// aggregated together to model their collective behaviour as a single
  /// logical VM." Keeps the mapped space 2-D-representable regardless of
  /// how many batch VMs are co-located.
  bool aggregate_batch = true;
  /// Multiplicative gaussian noise, as a fraction of each reading —
  /// real /proc and perf counters are never exact.
  double noise_fraction = 0.01;
  std::uint64_t seed = 17;
};

class HostSampler {
 public:
  /// The host must outlive the sampler. The layout is fixed at
  /// construction from the host's current VM set.
  HostSampler(const sim::SimHost& host, SamplerConfig options = {});

  const MetricLayout& layout() const { return layout_; }

  /// Samples the most recent tick's granted usage. Fails loudly (rather
  /// than sampling a stale entity map) when VMs were added to the host
  /// after this sampler fixed its layout.
  Measurement sample();

  /// Attaches (or detaches, with nullptr) a fault injector: sensor faults
  /// from its plan are applied to every sample, after measurement noise.
  /// The injector must outlive the sampler or be detached first.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  /// What the injector did to the most recent sample (empty report when
  /// no injector is attached or no fault fired).
  const sim::SensorFaultReport& last_fault_report() const {
    return last_fault_report_;
  }

  /// Measurements taken so far (observability).
  std::size_t samples_taken() const { return samples_taken_; }

  /// Snapshot of the sampler's mutable state: the noise RNG stream and
  /// the sample counter (DESIGN.md §17). Everything else (layout, entity
  /// map) is rebuilt from the host at construction; a restored sampler
  /// on a reconstructed host emits the exact readings the original
  /// would have.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  const sim::SimHost* host_;
  SamplerConfig options_;
  MetricLayout layout_;
  /// entity index -> VM ids contributing to it
  std::vector<std::vector<sim::VmId>> entity_vms_;
  /// Host VM count the layout was built from; sample() re-checks it.
  std::size_t layout_vm_count_ = 0;
  Rng rng_;
  sim::FaultInjector* injector_ = nullptr;
  sim::SensorFaultReport last_fault_report_;
  std::size_t samples_taken_ = 0;
};

}  // namespace stayaway::monitor
