#include "monitor/sampler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::monitor {

HostSampler::HostSampler(const sim::SimHost& host, SamplerConfig options)
    : host_(&host),
      options_(std::move(options)),
      layout_vm_count_(host.vm_count()),
      rng_(options_.seed) {
  SA_REQUIRE(!options_.metrics.empty(), "sampler needs at least one metric");
  SA_REQUIRE(host.vm_count() > 0, "sampler needs at least one VM");
  SA_REQUIRE(options_.noise_fraction >= 0.0, "noise must be non-negative");

  layout_.metrics = options_.metrics;
  std::vector<sim::VmId> batch_ids;
  for (sim::VmId id = 0; id < host.vm_count(); ++id) {
    const auto& vm = host.vm(id);
    if (options_.aggregate_batch && vm.kind() == sim::VmKind::Batch) {
      batch_ids.push_back(id);
      continue;
    }
    layout_.entities.push_back(vm.name());
    entity_vms_.push_back({id});
  }
  if (!batch_ids.empty()) {
    layout_.entities.push_back(batch_ids.size() == 1
                                   ? host.vm(batch_ids.front()).name()
                                   : std::string("batch-aggregate"));
    entity_vms_.push_back(std::move(batch_ids));
  }
}

Measurement HostSampler::sample() {
  SA_CHECK(host_->vm_count() == layout_vm_count_,
           "host VM set changed after the sampler fixed its layout; "
           "construct the sampler (or runtime) after adding every VM");
  ++samples_taken_;
  Measurement m;
  m.time = host_->now();
  m.values.assign(layout_.dimension(), 0.0);
  for (std::size_t e = 0; e < entity_vms_.size(); ++e) {
    for (sim::VmId id : entity_vms_[e]) {
      const auto& alloc = host_->vm(id).last_allocation();
      for (std::size_t k = 0; k < layout_.metrics.size(); ++k) {
        m.values[layout_.index_of(e, k)] +=
            allocation_metric(alloc, layout_.metrics[k]);
      }
    }
  }
  if (options_.noise_fraction > 0.0) {
    for (double& v : m.values) {
      v = std::max(0.0, v * (1.0 + rng_.normal(0.0, options_.noise_fraction)));
    }
  }
  if (injector_ != nullptr) {
    last_fault_report_ = injector_->corrupt_sample(m.time, m.values);
  } else {
    last_fault_report_ = sim::SensorFaultReport{};
  }
  return m;
}

void HostSampler::save_state(util::StateWriter& w) const {
  w.line("sampler_rng", rng_.save_state());
  w.u64("samples_taken", samples_taken_);
}

void HostSampler::load_state(util::StateReader& r) {
  rng_.load_state(r.line("sampler_rng"));
  samples_taken_ = static_cast<std::size_t>(r.u64("samples_taken"));
}

}  // namespace stayaway::monitor
