// Per-metric normalization to [0,1] (§4 of the paper).
//
// "While CPU usage ranges between 0 and 100, memory usage does not have a
// fixed upper limit ... This variation causes higher values to introduce
// a bias that can affect the accuracy of MDS mapping. The problem is
// overcome by normalizing all the metric values between [0,1]."
//
// Capacity normalization divides each reading by the host capacity of its
// metric kind — stable across the whole run, so distances mean the same
// thing early and late. A running min-max alternative is provided for
// metrics without a natural capacity.
#pragma once

#include <vector>

#include "monitor/measurement.hpp"
#include "sim/resource.hpp"
#include "stats/online.hpp"

namespace stayaway::monitor {

/// Normalizes by host capacity per metric kind; values clamp into [0,1].
class CapacityNormalizer {
 public:
  CapacityNormalizer(const sim::HostSpec& spec, MetricLayout layout);

  const MetricLayout& layout() const { return layout_; }

  /// Normalized copy of a measurement's values.
  std::vector<double> normalize(const Measurement& m) const;

  /// Capacity used for a metric kind.
  double capacity_of(MetricKind kind) const;

 private:
  sim::HostSpec spec_;
  MetricLayout layout_;
};

/// Normalizes by the running min/max of each dimension. The first few
/// observations are unstable (range still growing), matching the paper's
/// behaviour that early-phase states are less reliable.
class RunningNormalizer {
 public:
  explicit RunningNormalizer(std::size_t dimension);

  /// Observes a raw vector and returns its normalized form under the
  /// bounds known so far.
  std::vector<double> observe(const std::vector<double>& values);

 private:
  std::vector<stats::OnlineMinMax> bounds_;
};

}  // namespace stayaway::monitor
