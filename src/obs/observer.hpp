// Observer: the single attachment point the control loop is instrumented
// against. Bundles a MetricsRegistry with an optional EventSink and hands
// out period-scoped RAII Span timers for the loop phases.
//
// The observer is strictly passive — nothing the instrumented code reads
// back from it may influence a control decision — so enabling or
// disabling observability leaves the emitted PeriodRecord sequence
// identical (pinned by test_runtime's equivalence test).
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace stayaway::obs {

class Observer;

/// RAII wall-clock timer over one named phase of a period. On close (or
/// destruction) it records the elapsed microseconds into the histogram
/// "span.<name>.us" and, when span events are enabled, emits a
/// {"type":"span","name":...,"us":...} event stamped with the simulated
/// time the span was opened at. A default-constructed Span is a no-op,
/// so call sites do not branch on whether an observer is attached.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept;
  ~Span() { close(); }

  /// Records and emits now instead of at destruction; idempotent.
  void close();

 private:
  friend class Observer;
  Span(Observer* obs, const char* name, double sim_time)
      : obs_(obs),
        name_(name),
        sim_time_(sim_time),
        start_(std::chrono::steady_clock::now()) {}

  Observer* obs_ = nullptr;  // nullptr = closed or disabled
  const char* name_ = nullptr;
  double sim_time_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
};

class Observer {
 public:
  Observer() = default;
  explicit Observer(EventSink* sink) : sink_(sink) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  EventSink* sink() const { return sink_; }
  void set_sink(EventSink* sink) { sink_ = sink; }

  /// Whether each Span additionally emits a "span" event (default on;
  /// the histogram is always fed).
  bool span_events() const { return span_events_; }
  void set_span_events(bool on) { span_events_ = on; }

  /// Opens a phase timer. `name` must outlive the observer (string
  /// literals in practice).
  Span span(const char* name, double sim_time) {
    return Span(this, name, sim_time);
  }

  /// Forwards to the sink when one is attached.
  void emit(const Event& e) {
    if (sink_ != nullptr) sink_->emit(e);
  }
  void flush() {
    if (sink_ != nullptr) sink_->flush();
  }

 private:
  friend class Span;
  void record_span(const char* name, double sim_time, double us);
  Histogram& span_histogram(const char* name) SA_EXCLUDES(span_mu_);

  // sa-lint: unguarded(internally synchronized: the registry serializes
  // registration on its own mutex and the handles update atomic cells)
  MetricsRegistry metrics_;
  // sa-lint: unguarded(wiring-time configuration: set before any
  // concurrent phase runs; sinks serialize emit/flush themselves)
  EventSink* sink_ = nullptr;
  // sa-lint: unguarded(wiring-time configuration, read-only once running)
  bool span_events_ = true;
  /// Handle cache so per-period spans take one short lock instead of the
  /// registry's name lookup. Guarded by span_mu_: an observer may be
  /// shared by the concurrent host pipelines of a fleet, whose phase
  /// spans share names — the histograms then aggregate wall-clock phase
  /// timings fleet-wide (the handles' atomic updates make that safe).
  /// span_mu_ is never held across the registry's own lock (see
  /// span_histogram), so the observer's two locks cannot nest.
  util::Mutex span_mu_;
  std::unordered_map<std::string, Histogram> span_hist_
      SA_GUARDED_BY(span_mu_);
};

}  // namespace stayaway::obs
