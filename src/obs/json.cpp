#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace stayaway::obs {

JsonValue::JsonValue(const JsonValue&) = default;
JsonValue::JsonValue(JsonValue&&) noexcept = default;
JsonValue& JsonValue::operator=(const JsonValue&) = default;
JsonValue& JsonValue::operator=(JsonValue&&) noexcept = default;
JsonValue::~JsonValue() = default;

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw PreconditionError("json: " + message);
}

void write_number(std::ostream& out, double v) {
  SA_REQUIRE(std::isfinite(v), "json numbers must be finite");
  // Integral values print without an exponent or fraction; everything
  // else uses %.17g, which round-trips any double through strtod.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out << buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at offset " +
           std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue(string());
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    if (consume_word("null")) return JsonValue(nullptr);
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value());
      skip_ws();
      if (consume('}')) return out;
      expect(',');
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      out.push_back(value());
      skip_ws();
      if (consume(']')) return out;
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    // UTF-8 encode the code point (surrogate pairs are not needed for the
    // ASCII event streams this layer produces, but basic-plane values work).
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  JsonValue number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

bool JsonValue::as_bool() const {
  SA_REQUIRE(kind() == Kind::Bool, "json value is not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_double() const {
  SA_REQUIRE(kind() == Kind::Number, "json value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  SA_REQUIRE(kind() == Kind::String, "json value is not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  SA_REQUIRE(kind() == Kind::Array, "json value is not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  SA_REQUIRE(kind() == Kind::Object, "json value is not an object");
  return std::get<Object>(value_);
}

void JsonValue::push_back(JsonValue v) {
  SA_REQUIRE(kind() == Kind::Array, "push_back needs an array value");
  std::get<Array>(value_).push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  SA_REQUIRE(kind() == Kind::Object, "set needs an object value");
  std::get<Object>(value_).emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  SA_REQUIRE(kind() == Kind::Object, "find needs an object value");
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::dump(std::ostream& out) const {
  switch (kind()) {
    case Kind::Null:
      out << "null";
      return;
    case Kind::Bool:
      out << (std::get<bool>(value_) ? "true" : "false");
      return;
    case Kind::Number:
      write_number(out, std::get<double>(value_));
      return;
    case Kind::String:
      write_json_string(out, std::get<std::string>(value_));
      return;
    case Kind::Array: {
      out << '[';
      bool first = true;
      for (const auto& v : std::get<Array>(value_)) {
        if (!first) out << ',';
        first = false;
        v.dump(out);
      }
      out << ']';
      return;
    }
    case Kind::Object: {
      out << '{';
      bool first = true;
      for (const auto& [k, v] : std::get<Object>(value_)) {
        if (!first) out << ',';
        first = false;
        write_json_string(out, k);
        out << ':';
        v.dump(out);
      }
      out << '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream out;
  dump(out);
  return out.str();
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace stayaway::obs
