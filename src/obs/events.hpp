// Structured event stream: the control loop narrates what it did each
// period (phase spans, decisions, pause/resume transitions) as typed
// events routed through pluggable sinks — machine-readable JSONL, a CSV
// summary of one event type, or a human text log. Sinks are passive:
// emitting an event never feeds back into the control decisions.
//
// The sinks defined here serialize emit/flush internally, so one sink
// may be shared by the concurrent host pipelines of a fleet (DESIGN.md
// §13); lines from different hosts interleave whole, never mid-line.
// Custom EventSink implementations attached to a multi-worker fleet
// must do the same.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/sync.hpp"

namespace stayaway::obs {

struct Event {
  double time = 0.0;  // simulated seconds
  std::string type;   // "period", "span", "decision", "pause", "resume", ...
  std::vector<std::pair<std::string, JsonValue>> fields;

  Event() = default;
  Event(double t, std::string_view ty) : time(t), type(ty) {}

  Event& with(std::string_view key, JsonValue value) {
    fields.emplace_back(std::string(key), std::move(value));
    return *this;
  }
  const JsonValue* find(std::string_view key) const;

  /// {"t":<time>,"type":<type>,<fields...>} — field order preserved.
  JsonValue to_json() const;
  /// Inverse of to_json (unknown layouts throw PreconditionError).
  static Event from_json(const JsonValue& v);

  bool operator==(const Event& o) const = default;
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& e) = 0;
  virtual void flush() {}
};

/// One JSON object per line; the canonical machine-readable stream.
class JsonlSink final : public EventSink {
 public:
  /// The stream must outlive the sink.
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  void emit(const Event& e) override;
  void flush() override;
  std::size_t emitted() const;

 private:
  mutable util::Mutex mu_;
  std::ostream* out_ SA_PT_GUARDED_BY(mu_);
  std::size_t emitted_ SA_GUARDED_BY(mu_) = 0;
};

/// Parses a JSONL document back into events (round-trip testing and
/// offline analysis). Blank lines are skipped; malformed lines throw.
std::vector<Event> parse_jsonl(std::istream& in);

/// Human-readable one-line-per-event log.
class TextSink final : public EventSink {
 public:
  explicit TextSink(std::ostream& out) : out_(&out) {}
  void emit(const Event& e) override;
  void flush() override;

 private:
  mutable util::Mutex mu_;
  std::ostream* out_ SA_PT_GUARDED_BY(mu_);
};

/// Collects every event of one type and writes them as a CSV table on
/// flush: columns are the union of field keys in first-seen order.
class CsvSummarySink final : public EventSink {
 public:
  CsvSummarySink(std::ostream& out, std::string event_type)
      : out_(&out), type_(std::move(event_type)) {}
  ~CsvSummarySink() override;
  void emit(const Event& e) override;
  /// Writes the table (header + one row per event) and clears the buffer.
  void flush() override;
  std::size_t buffered() const;

 private:
  void flush_locked() SA_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::ostream* out_ SA_PT_GUARDED_BY(mu_);
  // sa-lint: unguarded(immutable after construction; emit's type filter
  // reads it without the lock by design)
  const std::string type_;
  std::vector<Event> events_ SA_GUARDED_BY(mu_);
  bool flushed_ SA_GUARDED_BY(mu_) = false;
};

/// Fans one event out to several sinks (non-owning).
class MultiSink final : public EventSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<EventSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void add(EventSink* sink) { sinks_.push_back(sink); }
  void emit(const Event& e) override;
  void flush() override;

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace stayaway::obs
