#include "obs/events.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace stayaway::obs {

const JsonValue* Event::find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue Event::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("t", JsonValue(time));
  out.set("type", JsonValue(type));
  for (const auto& [k, v] : fields) out.set(k, v);
  return out;
}

Event Event::from_json(const JsonValue& v) {
  const auto& obj = v.as_object();
  Event e;
  bool have_time = false, have_type = false;
  for (const auto& [k, value] : obj) {
    if (k == "t" && !have_time) {
      e.time = value.as_double();
      have_time = true;
    } else if (k == "type" && !have_type) {
      e.type = value.as_string();
      have_type = true;
    } else {
      e.fields.emplace_back(k, value);
    }
  }
  SA_REQUIRE(have_time && have_type, "event needs 't' and 'type' fields");
  return e;
}

void JsonlSink::emit(const Event& e) {
  // Render outside the lock; only the stream write is serialized, so
  // concurrent fleet hosts contend for as little as possible.
  std::ostringstream line;
  e.to_json().dump(line);
  line << "\n";
  util::MutexLock lock(mu_);
  *out_ << line.str();
  ++emitted_;
}

void JsonlSink::flush() {
  util::MutexLock lock(mu_);
  out_->flush();
}

std::size_t JsonlSink::emitted() const {
  util::MutexLock lock(mu_);
  return emitted_;
}

std::vector<Event> parse_jsonl(std::istream& in) {
  std::vector<Event> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(Event::from_json(JsonValue::parse(line)));
  }
  return out;
}

void TextSink::emit(const Event& e) {
  std::ostringstream line;
  line << "t=" << e.time << " " << e.type;
  for (const auto& [k, v] : e.fields) {
    line << " " << k << "=";
    if (v.is_string()) {
      line << v.as_string();  // unquoted: this sink is for humans
    } else {
      v.dump(line);
    }
  }
  line << "\n";
  util::MutexLock lock(mu_);
  *out_ << line.str();
}

void TextSink::flush() {
  util::MutexLock lock(mu_);
  out_->flush();
}

CsvSummarySink::~CsvSummarySink() {
  // Best-effort final flush; an explicit flush() beforehand is cleaner.
  // The buffered/flushed state is inspected under the same lock
  // acquisition that writes the table: the historical unlocked
  // events_.empty() peek here was the one read of guarded state outside
  // mu_ that the thread-safety annotations flagged.
  util::MutexLock lock(mu_);
  if (!events_.empty() || !flushed_) flush_locked();
}

void CsvSummarySink::emit(const Event& e) {
  if (e.type != type_) return;
  util::MutexLock lock(mu_);
  events_.push_back(e);
}

std::size_t CsvSummarySink::buffered() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

void CsvSummarySink::flush() {
  util::MutexLock lock(mu_);
  flush_locked();
}

void CsvSummarySink::flush_locked() {
  flushed_ = true;
  std::vector<std::string> columns{"t"};
  for (const auto& e : events_) {
    for (const auto& [k, v] : e.fields) {
      if (std::find(columns.begin(), columns.end(), k) == columns.end()) {
        columns.push_back(k);
      }
    }
  }
  auto csv_cell = [](std::ostream& out, const JsonValue& v) {
    if (v.is_string()) {
      const std::string& s = v.as_string();
      if (s.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char c : s) {
          if (c == '"') out << "\"\"";
          else out << c;
        }
        out << '"';
      } else {
        out << s;
      }
    } else {
      v.dump(out);
    }
  };

  std::ostream& out = *out_;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out << ',';
    out << columns[i];
  }
  out << "\n";
  for (const auto& e : events_) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) out << ',';
      if (columns[i] == "t") {
        JsonValue(e.time).dump(out);
      } else if (const JsonValue* v = e.find(columns[i])) {
        csv_cell(out, *v);
      }
    }
    out << "\n";
  }
  events_.clear();
  out.flush();
}

void MultiSink::emit(const Event& e) {
  for (EventSink* s : sinks_) s->emit(e);
}

void MultiSink::flush() {
  for (EventSink* s : sinks_) s->flush();
}

}  // namespace stayaway::obs
