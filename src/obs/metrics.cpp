#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace stayaway::obs {

void Histogram::observe(double v) {
  if (cell_ == nullptr) return;
  auto it = std::lower_bound(cell_->bounds.begin(), cell_->bounds.end(), v);
  auto idx = static_cast<std::size_t>(it - cell_->bounds.begin());
  cell_->buckets[idx].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return cell_ != nullptr ? cell_->count.load(std::memory_order_relaxed) : 0;
}

double Histogram::sum() const {
  return cell_ != nullptr ? cell_->sum.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::vector<double> exponential_bounds(double lo, double hi, std::size_t n) {
  SA_REQUIRE(lo > 0.0 && hi > lo, "bounds need 0 < lo < hi");
  SA_REQUIRE(n >= 2, "need at least two buckets");
  std::vector<double> out(n);
  double step = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double v = lo;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = v;
    v *= step;
  }
  out.back() = hi;  // cancel accumulated rounding
  return out;
}

Counter MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  for (auto& c : counters_) {
    if (c.name == name) return Counter(&c.cell);
  }
  counters_.emplace_back();  // in place: the atomic cell is not movable
  counters_.back().name = std::string(name);
  return Counter(&counters_.back().cell);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  for (auto& g : gauges_) {
    if (g.name == name) return Gauge(&g.cell);
  }
  gauges_.emplace_back();
  gauges_.back().name = std::string(name);
  return Gauge(&gauges_.back().cell);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  SA_REQUIRE(!bounds.empty(), "histogram needs at least one bucket bound");
  SA_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
             "histogram bounds must be ascending");
  util::MutexLock lock(mu_);
  for (auto& h : histograms_) {
    if (h.name == name) {
      SA_REQUIRE(h.cell.bounds == bounds,
                 "histogram re-registered with different bounds");
      return Histogram(&h.cell);
    }
  }
  histograms_.emplace_back();
  auto& named = histograms_.back();
  named.name = std::string(name);
  named.cell.bounds = std::move(bounds);
  // deque of atomics: emplace one by one (atomics are not copyable).
  for (std::size_t i = 0; i <= named.cell.bounds.size(); ++i) {
    named.cell.buckets.emplace_back(0);
  }
  return Histogram(&named.cell);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    util::MutexLock lock(mu_);
    for (const auto& c : counters_) {
      snap.counters.emplace_back(c.name,
                                 c.cell.load(std::memory_order_relaxed));
    }
    for (const auto& g : gauges_) {
      snap.gauges.emplace_back(g.name, g.cell.load(std::memory_order_relaxed));
    }
    for (const auto& h : histograms_) {
      HistogramSnapshot hs;
      hs.name = h.name;
      hs.bounds = h.cell.bounds;
      for (const auto& b : h.cell.buckets) {
        hs.buckets.push_back(b.load(std::memory_order_relaxed));
      }
      hs.count = h.cell.count.load(std::memory_order_relaxed);
      hs.sum = h.cell.sum.load(std::memory_order_relaxed);
      snap.histograms.push_back(std::move(hs));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  MetricsSnapshot snap = snapshot();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : snap.counters) counters.set(name, JsonValue(v));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : snap.gauges) gauges.set(name, JsonValue(v));
  JsonValue histograms = JsonValue::object();
  for (const auto& h : snap.histograms) {
    JsonValue entry = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (double b : h.bounds) bounds.push_back(JsonValue(b));
    JsonValue buckets = JsonValue::array();
    for (std::uint64_t b : h.buckets) buckets.push_back(JsonValue(b));
    entry.set("bounds", std::move(bounds));
    entry.set("buckets", std::move(buckets));
    entry.set("count", JsonValue(h.count));
    entry.set("sum", JsonValue(h.sum));
    histograms.set(h.name, std::move(entry));
  }
  JsonValue root = JsonValue::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  root.dump(out);
  out << "\n";
}

bool write_bench_record(const std::string& bench_name,
                        const MetricsRegistry& registry) {
  const char* dir = std::getenv("STAYAWAY_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  std::string path = std::string(dir) + "/BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  SA_REQUIRE(out.good(), "cannot write bench record: " + path);
  registry.write_json(out);
  return true;
}

}  // namespace stayaway::obs
