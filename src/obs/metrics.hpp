// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
// histograms for the control loop's observability layer.
//
// Registration (name -> cell) takes a mutex; the returned handles update
// their cells with relaxed atomics only, so instrumented hot paths pay a
// few uncontended atomic ops per period and never block each other.
// Handles stay valid for the registry's lifetime (cells live in deques
// that never relocate). A default-constructed handle is disabled: every
// operation is a no-op, which lets instrumented code run unconditionally
// whether or not observability is attached.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"

namespace stayaway::obs {

class MetricsRegistry;

/// Monotonic event count.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  double value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
/// final implicit bucket counts the overflow. Also tracks count and sum so
/// means survive bucket quantization.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  double mean() const;
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Cell {
    std::vector<double> bounds;                    // ascending upper bounds
    std::deque<std::atomic<std::uint64_t>> buckets;  // bounds.size() + 1
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  explicit Histogram(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Ascending exponential bucket bounds from `lo` to `hi` (inclusive),
/// `n` buckets — the standard latency layout.
std::vector<double> exponential_bounds(double lo, double hi, std::size_t n);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Re-registering an existing name returns a
  /// handle to the same cell (histogram bounds must then match).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Point-in-time copy of every metric, names sorted per kind.
  MetricsSnapshot snapshot() const;

  /// Serializes the snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
  void write_json(std::ostream& out) const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    T cell;
  };

  // The deque *structure* (registration) is guarded; the atomic cells
  // inside are updated lock-free through the handed-out handles.
  mutable util::Mutex mu_;
  std::deque<Named<std::atomic<std::uint64_t>>> counters_ SA_GUARDED_BY(mu_);
  std::deque<Named<std::atomic<double>>> gauges_ SA_GUARDED_BY(mu_);
  std::deque<Named<Histogram::Cell>> histograms_ SA_GUARDED_BY(mu_);
};

/// Writes a BENCH_<name>.json perf record of the registry into the
/// directory named by the STAYAWAY_BENCH_JSON_DIR environment variable.
/// Returns false (and writes nothing) when the variable is unset; throws
/// when the file cannot be written.
bool write_bench_record(const std::string& bench_name,
                        const MetricsRegistry& registry);

}  // namespace stayaway::obs
