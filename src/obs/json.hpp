// Minimal JSON value: enough to write and re-read the observability
// layer's event stream and metrics summaries without an external
// dependency. Objects keep insertion order so a dump -> parse -> dump
// round trip is stable, which the JSONL tests rely on.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace stayaway::obs {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned int i) : value_(static_cast<double>(i)) {}
  JsonValue(long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long long i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string_view s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  // Out-of-line (json.cpp) so the variant copy/move stays opaque to
  // callers; GCC 12 otherwise flags the inlined variant move with a
  // spurious -Wmaybe-uninitialized under -O2.
  JsonValue(const JsonValue&);
  JsonValue(JsonValue&&) noexcept;
  JsonValue& operator=(const JsonValue&);
  JsonValue& operator=(JsonValue&&) noexcept;
  ~JsonValue();

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::Null; }
  bool is_number() const { return kind() == Kind::Number; }
  bool is_string() const { return kind() == Kind::String; }
  bool is_object() const { return kind() == Kind::Object; }
  bool is_array() const { return kind() == Kind::Array; }

  /// Typed accessors; throw PreconditionError on a kind mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Appends to an array value (must be an array).
  void push_back(JsonValue v);
  /// Appends a key to an object value (must be an object; keys are not
  /// deduplicated — callers control uniqueness).
  void set(std::string key, JsonValue v);
  /// First value under `key` in an object, nullptr when absent.
  const JsonValue* find(std::string_view key) const;

  /// Compact single-line serialization (no trailing newline).
  void dump(std::ostream& out) const;
  std::string dump() const;

  /// Parses one JSON document; trailing non-whitespace or malformed input
  /// throws PreconditionError.
  static JsonValue parse(std::string_view text);

  bool operator==(const JsonValue& o) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Serializes a string with JSON escaping, including the quotes.
void write_json_string(std::ostream& out, std::string_view s);

}  // namespace stayaway::obs
