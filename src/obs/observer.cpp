#include "obs/observer.hpp"

namespace stayaway::obs {

Span& Span::operator=(Span&& o) noexcept {
  close();
  obs_ = o.obs_;
  name_ = o.name_;
  sim_time_ = o.sim_time_;
  start_ = o.start_;
  o.obs_ = nullptr;
  return *this;
}

void Span::close() {
  if (obs_ == nullptr) return;
  auto elapsed = std::chrono::steady_clock::now() - start_;
  double us =
      std::chrono::duration<double, std::micro>(elapsed).count();
  obs_->record_span(name_, sim_time_, us);
  obs_ = nullptr;
}

Histogram& Observer::span_histogram(const char* name) {
  // References into the map stay valid across rehashes, so the returned
  // handle may be used after the lock is dropped.
  {
    util::MutexLock lock(span_mu_);
    auto it = span_hist_.find(name);
    if (it != span_hist_.end()) return it->second;
  }
  // Cache miss: create the handle with span_mu_ *released*. The registry
  // takes its own mutex inside histogram(); holding span_mu_ across that
  // call stacked the observer's two locks on every first-use path (the
  // double-lock the thread-safety annotations flagged). Racing first
  // uses of one name are benign: histogram() is get-or-create on the
  // same cell, and emplace keeps whichever entry landed first.
  // 1 us .. 10 s, 24 exponential buckets: covers sub-period phases up to
  // pathological full re-embeddings.
  Histogram h = metrics_.histogram(std::string("span.") + name + ".us",
                                   exponential_bounds(1.0, 1e7, 24));
  util::MutexLock lock(span_mu_);
  return span_hist_.emplace(name, h).first->second;
}

void Observer::record_span(const char* name, double sim_time, double us) {
  span_histogram(name).observe(us);
  if (span_events_ && sink_ != nullptr) {
    Event e(sim_time, "span");
    e.with("name", JsonValue(name)).with("us", JsonValue(us));
    sink_->emit(e);
  }
}

}  // namespace stayaway::obs
