#include "harness/stayaway_policy.hpp"

#include "util/check.hpp"

namespace stayaway::harness {

StayAwayPolicy::StayAwayPolicy(sim::SimHost& host, const sim::QosProbe& probe,
                               core::StayAwayConfig config,
                               monitor::SamplerOptions sampler_options,
                               std::optional<core::StateTemplate> seed)
    : runtime_(std::make_unique<core::StayAwayRuntime>(
          host, probe, config, std::move(sampler_options))) {
  if (seed.has_value()) runtime_->seed_template(*seed);
}

void StayAwayPolicy::on_period(sim::SimHost&, const sim::QosProbe&) {
  // The runtime is already bound to its host and probe from construction.
  runtime_->on_period();
}

}  // namespace stayaway::harness
