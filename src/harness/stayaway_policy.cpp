#include "harness/stayaway_policy.hpp"

#include "util/check.hpp"

namespace stayaway::harness {

StayAwayPolicy::StayAwayPolicy(sim::SimHost& host, const sim::QosProbe& probe,
                               core::StayAwayConfig config,
                               std::optional<core::StateTemplate> seed)
    : runtime_(std::make_unique<core::StayAwayRuntime>(host, probe, config)) {
  if (seed.has_value()) runtime_->seed_template(*seed);
}

baseline::PolicyDecision StayAwayPolicy::on_period(sim::SimHost&,
                                                   const sim::QosProbe&) {
  // The runtime is already bound to its host and probe from construction.
  // A Resume clears the runtime's throttled set — capture it first so the
  // decision can report what was released.
  std::vector<sim::VmId> paused_before = runtime_->throttled();
  const core::PeriodRecord& rec = runtime_->on_period();

  baseline::PolicyDecision decision;
  decision.batch_paused_after = rec.batch_paused_after;
  switch (rec.action) {
    case core::ThrottleAction::None:
      break;
    case core::ThrottleAction::Pause:
      decision.action = baseline::PolicyAction::Pause;
      decision.targets = runtime_->throttled();
      decision.reason = rec.violation_observed ? "observed-violation"
                                               : "predicted-violation";
      break;
    case core::ThrottleAction::Resume: {
      decision.action = baseline::PolicyAction::Resume;
      decision.targets = std::move(paused_before);
      auto reason = runtime_->governor().last_resume_reason();
      decision.reason =
          reason.has_value() ? core::to_string(*reason) : "external";
      break;
    }
  }
  return decision;
}

}  // namespace stayaway::harness
