// HostRig — one fully populated simulated host for an experiment: the
// host itself plus the sensitive VM and every batch VM the spec asks
// for, in the exact construction order the single-host runner has always
// used (order is part of the determinism contract: VM ids, app RNG
// streams and the sampler's metric layout all derive from it). Shared by
// run_experiment and the fleet runner so a fleet of one host replays the
// historical run byte-for-byte.
#pragma once

#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "sim/host.hpp"

namespace stayaway::apps {
class Webservice;
}

namespace stayaway::harness {

/// One cluster twin to pre-provision on a host (DESIGN.md §18). The
/// sampler fixes its metric layout at pipeline construction, so every
/// host that might ever run a migratable or admitted batch VM carries a
/// twin of it from the start — attached only on the VM's current home,
/// detached ("parked") everywhere else until the coordinator attaches
/// it. Single-app batch kinds only (a migration moves exactly one VM).
struct TwinSpec {
  std::string name;
  BatchKind kind = BatchKind::CpuBomb;
  double start_s = 15.0;
  bool attached = false;
};

struct HostRig {
  std::unique_ptr<sim::SimHost> host;
  /// The sensitive app's QoS channel; owned by the app inside the host.
  const sim::QosProbe* probe = nullptr;
  /// Non-null only when the sensitive app is the webservice (its
  /// offered/completed TPS series feed Figures 10-11).
  const apps::Webservice* webservice = nullptr;
  sim::VmId sensitive_id = 0;
  std::vector<sim::VmId> batch_ids;
  /// Cluster twins' VmIds, aligned with the TwinSpec list passed to
  /// build_host_rig (empty outside cluster fleets). Also in batch_ids.
  std::vector<sim::VmId> twin_ids;
};

/// Builds the host and places every VM per the spec. Validates the spec's
/// timing (positive duration, period covering at least one tick).
/// `twins` (cluster fleets) are provisioned last, in list order, after
/// every spec VM — construction order is part of the determinism
/// contract, so the twin list must be identical across rebuilds.
HostRig build_host_rig(const ExperimentSpec& spec,
                       const std::vector<TwinSpec>& twins = {});

/// The Stay-Away config an experiment actually runs with: spec.stayaway
/// plus the harness seed/period splits (sampler seed decorrelated from
/// the control seed).
core::StayAwayConfig derive_stayaway_config(const ExperimentSpec& spec);

}  // namespace stayaway::harness
