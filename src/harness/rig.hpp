// HostRig — one fully populated simulated host for an experiment: the
// host itself plus the sensitive VM and every batch VM the spec asks
// for, in the exact construction order the single-host runner has always
// used (order is part of the determinism contract: VM ids, app RNG
// streams and the sampler's metric layout all derive from it). Shared by
// run_experiment and the fleet runner so a fleet of one host replays the
// historical run byte-for-byte.
#pragma once

#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "sim/host.hpp"

namespace stayaway::apps {
class Webservice;
}

namespace stayaway::harness {

struct HostRig {
  std::unique_ptr<sim::SimHost> host;
  /// The sensitive app's QoS channel; owned by the app inside the host.
  const sim::QosProbe* probe = nullptr;
  /// Non-null only when the sensitive app is the webservice (its
  /// offered/completed TPS series feed Figures 10-11).
  const apps::Webservice* webservice = nullptr;
  sim::VmId sensitive_id = 0;
  std::vector<sim::VmId> batch_ids;
};

/// Builds the host and places every VM per the spec. Validates the spec's
/// timing (positive duration, period covering at least one tick).
HostRig build_host_rig(const ExperimentSpec& spec);

/// The Stay-Away config an experiment actually runs with: spec.stayaway
/// plus the harness seed/period splits (sampler seed decorrelated from
/// the control seed).
core::StayAwayConfig derive_stayaway_config(const ExperimentSpec& spec);

}  // namespace stayaway::harness
