// Reporting helpers shared by the bench binaries: CSV series dumps,
// summary rows and ASCII renderings of the paper's figure shapes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/statespace.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"

namespace stayaway::harness {

/// Prints "name,v0,v1,..." rows for aligned series.
void print_series_csv(std::ostream& out, const std::vector<std::string>& names,
                      const std::vector<const std::vector<double>*>& series);

/// One summary line per experiment: QoS violations, utilization, actions.
void print_summary_row(std::ostream& out, const std::string& label,
                       const ExperimentResult& result);
void print_summary_header(std::ostream& out);

/// Renders a QoS-vs-threshold figure (paper Figs. 8/9/14-16 shape).
std::string render_qos_figure(const std::string& title,
                              const ExperimentResult& with,
                              const ExperimentResult& without);

/// Renders a state-space scatter with safe/violation groups (Figs. 5-7,
/// 17-18 shape).
std::string render_state_space(const std::string& title,
                               const core::StateSpace& space);

/// Mean of a series (0 for empty).
double series_mean(const std::vector<double>& xs);

/// Human-readable dump of a metrics registry: counters, gauges, and span
/// histograms (count/mean), sorted by name.
void print_metrics_summary(std::ostream& out,
                           const obs::MetricsRegistry& registry);

/// Publishes an experiment's aggregate results into a registry as gauges
/// under "<label>." — the common path for benches assembling a
/// BENCH_*.json perf record via obs::write_bench_record.
void publish_result_metrics(obs::MetricsRegistry& registry,
                            const std::string& label,
                            const ExperimentResult& result);

}  // namespace stayaway::harness
