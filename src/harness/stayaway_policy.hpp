// Adapter exposing StayAwayRuntime through the InterferencePolicy
// interface so the harness can swap it against the baselines.
#pragma once

#include <memory>
#include <optional>

#include "baseline/policy.hpp"
#include "core/runtime.hpp"
#include "core/template_store.hpp"

namespace stayaway::harness {

class StayAwayPolicy final : public baseline::InterferencePolicy {
 public:
  /// The runtime binds to this host and probe; both must outlive the
  /// policy. `config` is the single entry point (config.sampler included).
  /// Pass a template to seed the map from a previous run (§6).
  StayAwayPolicy(sim::SimHost& host, const sim::QosProbe& probe,
                 core::StayAwayConfig config,
                 std::optional<core::StateTemplate> seed = std::nullopt);

  std::string_view name() const override { return "stay-away"; }
  baseline::PolicyDecision on_period(sim::SimHost& host,
                                     const sim::QosProbe& probe) override;

  const core::StayAwayRuntime& runtime() const { return *runtime_; }
  core::StayAwayRuntime& runtime() { return *runtime_; }

 private:
  std::unique_ptr<core::StayAwayRuntime> runtime_;
};

}  // namespace stayaway::harness
