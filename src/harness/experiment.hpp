// Experiment runner: wires a host, a sensitive app, a batch set and a
// policy; runs the co-location lifecycle; records the series the paper's
// figures are built from.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/runtime.hpp"
#include "core/template_store.hpp"
#include "harness/scenarios.hpp"
#include "obs/observer.hpp"
#include "sim/faults.hpp"

namespace stayaway::harness {

enum class PolicyKind {
  NoPrevention,
  StayAway,
  Reactive,
  StaticThreshold,
};

const char* to_string(PolicyKind kind);

/// An additional named batch VM (scenario files: `vm = name:kind[:start_s]`).
/// Names must be unique across the experiment.
struct ExtraVmSpec {
  std::string name;
  BatchKind kind = BatchKind::CpuBomb;
  double start_s = 15.0;
};

struct ExperimentSpec {
  sim::HostSpec host = paper_host();
  SensitiveKind sensitive = SensitiveKind::VlcStream;
  BatchKind batch = BatchKind::TwitterAnalysis;
  PolicyKind policy = PolicyKind::StayAway;
  /// The single config entry point: Stay-Away knobs plus the monitor's
  /// sampler options (stayaway.sampler). Used when policy == StayAway.
  core::StayAwayConfig stayaway;
  /// Optional observability attachment (non-owning; must outlive the
  /// run). The runtime publishes loop metrics/events into it and the
  /// harness logs every policy's per-period decision through its sink.
  /// Purely passive: results are identical with or without it.
  obs::Observer* observer = nullptr;
  /// Offered-load workload for the sensitive app; nullopt = constant peak.
  std::optional<trace::Trace> workload;
  /// Seed the Stay-Away map from a previous run's template (§6).
  std::optional<core::StateTemplate> seed_template;
  /// Deterministic fault plan (DESIGN.md §12): sensor dropout/corruption,
  /// QoS-blind windows, dropped pause/resume commands. Installed into the
  /// Stay-Away runtime when policy == StayAway; an absent or empty plan
  /// leaves the run byte-identical to the fault-free loop.
  std::optional<sim::FaultPlan> faults;
  /// Extra named batch VMs beyond the `batch` kind's set; every VM must
  /// exist before the runtime is constructed (the sampler fixes its
  /// metric layout then and refuses to sample a changed host).
  std::vector<ExtraVmSpec> extra_batch;
  double tick_s = 0.1;
  double period_s = 1.0;
  double duration_s = 300.0;
  double sensitive_start_s = 2.0;
  double batch_start_s = 15.0;
  std::uint64_t seed = 99;
};

struct ExperimentResult {
  // Per-period series, aligned by index.
  std::vector<double> time;
  std::vector<double> qos;            // normalized: 1.0 == threshold
  std::vector<int> violated;          // 1 when the period saw a violation
  std::vector<double> utilization;    // host CPU utilization, period average
  std::vector<int> batch_running;     // 1 when any batch VM ran this period
  std::vector<double> offered_tps;    // webservice only; else empty
  std::vector<double> completed_tps;  // webservice only; else empty

  // Aggregates over the co-located portion of the run.
  std::size_t violation_periods = 0;
  double violation_fraction = 0.0;
  double avg_utilization = 0.0;
  double avg_qos = 0.0;
  double batch_cpu_work = 0.0;      // core-seconds delivered to batch VMs
  double sensitive_cpu_work = 0.0;  // core-seconds delivered to the sensitive VM

  // Stay-Away internals (populated when policy == StayAway).
  std::vector<core::PeriodRecord> stayaway_records;
  core::PredictionTally tally;
  std::size_t pauses = 0;
  std::size_t resumes = 0;
  // Degraded-mode telemetry (DESIGN.md §12; zero on fault-free runs).
  std::size_t degraded_periods = 0;   // periods spent in Degraded
  std::size_t failsafe_periods = 0;   // periods spent in Failsafe
  std::size_t readings_quarantined = 0;
  std::size_t actuation_retries = 0;
  std::size_t actuation_abandoned = 0;
  double final_beta = 0.0;
  std::size_t representative_count = 0;
  double final_stress = 0.0;
  std::optional<core::StateTemplate> exported_template;
  /// Final 2-D positions of every representative (aligned with the
  /// exported template's entries), for map-geometry analyses.
  mds::Embedding final_map;
};

/// Runs one experiment to completion.
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Convenience: the isolated baseline of the same sensitive configuration
/// (batch == None, policy == NoPrevention), for gained-utilization math.
ExperimentResult run_isolated(ExperimentSpec spec);

/// Per-period gained utilization: co-located minus isolated, clamped at 0.
/// Series must come from specs differing only in batch/policy.
std::vector<double> gained_utilization(const ExperimentResult& colocated,
                                       const ExperimentResult& isolated);

}  // namespace stayaway::harness
