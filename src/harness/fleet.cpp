#include "harness/fleet.hpp"

#include <cmath>
#include <memory>
#include <set>
#include <utility>

#include "apps/webservice.hpp"
#include "baseline/policy.hpp"
#include "baseline/stages/reactive_actuator.hpp"
#include "baseline/stages/static_actuator.hpp"
#include "core/checkpoint.hpp"
#include "core/cluster/coordinator.hpp"
#include "core/cluster/migration.hpp"
#include "core/fleet.hpp"
#include "harness/rig.hpp"
#include "util/check.hpp"

namespace stayaway::harness {
namespace {

baseline::PolicyAction to_policy_action(core::ThrottleAction action) {
  switch (action) {
    case core::ThrottleAction::None:
      return baseline::PolicyAction::None;
    case core::ThrottleAction::Pause:
      return baseline::PolicyAction::Pause;
    case core::ThrottleAction::Resume:
      return baseline::PolicyAction::Resume;
  }
  return baseline::PolicyAction::None;
}

/// One host's mutable driving state for the duration of run_fleet. Slots
/// are only ever touched by the single worker driving their member, so
/// the fleet needs no cross-host synchronisation.
struct Slot {
  const FleetHostSpec* spec = nullptr;
  HostRig rig;
  std::unique_ptr<core::HostPipeline> pipeline;
  ExperimentResult result;
  double util_acc = 0.0;
};

/// Builds the pipeline a policy kind runs as: Stay-Away gets the full
/// stage wiring, the baselines run as actuator-only pipelines, and
/// no-prevention is an empty pipeline that still records periods.
std::unique_ptr<core::HostPipeline> make_pipeline(
    const FleetHostSpec& hs, HostRig& rig) {
  const ExperimentSpec& spec = hs.experiment;
  core::StayAwayConfig sa_config = derive_stayaway_config(spec);
  switch (spec.policy) {
    case PolicyKind::StayAway: {
      auto pipeline = std::make_unique<core::HostPipeline>(
          *rig.host, *rig.probe, std::move(sa_config));
      if (spec.seed_template.has_value()) {
        pipeline->stay_away_mapper()->seed_template(*spec.seed_template);
      }
      if (spec.faults.has_value() && !spec.faults->empty()) {
        pipeline->install_faults(*spec.faults);
      }
      return pipeline;
    }
    case PolicyKind::NoPrevention:
      return std::make_unique<core::HostPipeline>(
          *rig.host, *rig.probe, std::move(sa_config), core::StageSet{});
    case PolicyKind::Reactive: {
      core::StageSet stages;
      stages.actuator = std::make_unique<baseline::ReactiveActuator>();
      return std::make_unique<core::HostPipeline>(
          *rig.host, *rig.probe, std::move(sa_config), std::move(stages));
    }
    case PolicyKind::StaticThreshold: {
      core::StageSet stages;
      stages.actuator = std::make_unique<baseline::StaticThresholdActuator>();
      return std::make_unique<core::HostPipeline>(
          *rig.host, *rig.probe, std::move(sa_config), std::move(stages));
    }
  }
  SA_CHECK(false, "unknown policy kind");
  return nullptr;
}

/// Post-run extraction of the Stay-Away internals, mirroring what
/// run_experiment reads off StayAwayRuntime.
void extract_stayaway(const core::HostPipeline& pipeline,
                      const ExperimentSpec& spec, ExperimentResult& result) {
  const core::StayAwayMapper* mapper = pipeline.stay_away_mapper();
  const core::TrajectoryForecaster* forecaster =
      pipeline.trajectory_forecaster();
  const core::GovernorActuator* actuator = pipeline.governor_actuator();
  if (actuator == nullptr) {
    // Cluster fleets wrap the governor in a MigrationActuator; the
    // Stay-Away internals live on the inner stage.
    if (const auto* mig = dynamic_cast<const core::cluster::MigrationActuator*>(
            pipeline.actuator())) {
      actuator = dynamic_cast<const core::GovernorActuator*>(mig->inner());
    }
  }
  SA_CHECK(actuator != nullptr,
           "a Stay-Away pipeline always carries a governor actuator");
  result.stayaway_records = pipeline.records();
  result.tally = forecaster->tally();
  result.pauses = actuator->governor().pauses();
  result.resumes = actuator->governor().resumes();
  for (const auto& rec : result.stayaway_records) {
    if (rec.degradation == core::DegradationState::Degraded) {
      ++result.degraded_periods;
    } else if (rec.degradation == core::DegradationState::Failsafe) {
      ++result.failsafe_periods;
    }
  }
  result.readings_quarantined = mapper->readings_quarantined();
  result.actuation_retries = actuator->actuation_retries();
  result.actuation_abandoned = actuator->actuation_abandoned();
  result.final_beta = actuator->governor().beta();
  result.representative_count = mapper->representatives().size();
  result.final_stress = mapper->embedder().stress();
  result.exported_template = mapper->export_template(to_string(spec.sensitive));
  result.final_map = mapper->space().positions();
}

}  // namespace

FleetSpec replicate_fleet(const ExperimentSpec& base, std::size_t host_count,
                          std::uint64_t base_seed, std::size_t workers) {
  SA_REQUIRE(host_count >= 1, "a fleet needs at least one host");
  FleetSpec fleet;
  fleet.workers = workers;
  fleet.hosts.reserve(host_count);
  for (std::size_t i = 0; i < host_count; ++i) {
    FleetHostSpec hs;
    hs.name = "host" + std::to_string(i);
    hs.experiment = base;
    hs.experiment.seed = core::fleet_host_seed(base_seed, i);
    fleet.hosts.push_back(std::move(hs));
  }
  return fleet;
}

FleetResult run_fleet(const FleetSpec& spec) {
  SA_REQUIRE(!spec.hosts.empty(), "a fleet needs at least one host");
  {
    std::set<std::string> names;
    for (const FleetHostSpec& hs : spec.hosts) {
      SA_REQUIRE(!hs.name.empty(), "fleet host names must be non-empty");
      SA_REQUIRE(names.insert(hs.name).second,
                 "duplicate fleet host name: " + hs.name);
    }
  }
  // A fleet of one keeps the historical unlabelled observability stream
  // (the byte-identical-fleet-of-1 contract); real fleets tag everything.
  const bool label_hosts = spec.hosts.size() > 1;

  std::vector<Slot> slots(spec.hosts.size());
  core::FleetConfig controller_config;
  controller_config.workers = spec.workers;
  controller_config.checkpoint_every = spec.checkpoint_every;
  controller_config.watchdog_budget = spec.watchdog_budget;
  core::FleetController controller(controller_config);

  // --- Cluster coordination (DESIGN.md §18). --------------------------
  const ClusterSpec* cluster =
      spec.cluster.has_value() ? &*spec.cluster : nullptr;
  std::vector<std::size_t> mobile_home;  // host index per mobile VM
  if (cluster != nullptr) {
    std::set<std::string> vm_names;
    for (const MobileVmSpec& m : cluster->mobile) {
      SA_REQUIRE(!m.name.empty(), "mobile VM names must be non-empty");
      SA_REQUIRE(vm_names.insert(m.name).second,
                 "duplicate cluster VM name: " + m.name);
      std::size_t home = spec.hosts.size();
      for (std::size_t i = 0; i < spec.hosts.size(); ++i) {
        if (spec.hosts[i].name == m.home) home = i;
      }
      SA_REQUIRE(home < spec.hosts.size(),
                 "mobile VM home is not a fleet host: " + m.home);
      mobile_home.push_back(home);
    }
    for (const AdmissionSpec& a : cluster->admissions) {
      SA_REQUIRE(!a.name.empty(), "admission VM names must be non-empty");
      SA_REQUIRE(vm_names.insert(a.name).second,
                 "duplicate cluster VM name: " + a.name);
    }
  }
  // Every host carries a twin of every cluster VM from construction (the
  // sampler layout is fixed then), attached only on a mobile VM's home.
  auto twins_for_host = [&](std::size_t i) {
    std::vector<TwinSpec> twins;
    if (cluster == nullptr) return twins;
    for (std::size_t j = 0; j < cluster->mobile.size(); ++j) {
      const MobileVmSpec& m = cluster->mobile[j];
      twins.push_back(TwinSpec{m.name, m.kind, m.start_s, mobile_home[j] == i});
    }
    for (const AdmissionSpec& a : cluster->admissions) {
      twins.push_back(TwinSpec{a.name, a.kind, a.arrival_s, false});
    }
    return twins;
  };
  // Wraps the host's actuator in the migration decorator; the mobile
  // twins are the first cluster->mobile.size() entries of twin_ids.
  auto wrap_migration = [cluster](Slot& slot) {
    if (cluster == nullptr) return;
    auto mig = std::make_unique<core::cluster::MigrationActuator>(
        slot.pipeline->release_actuator());
    mig->set_mobile(std::vector<sim::VmId>(
        slot.rig.twin_ids.begin(),
        slot.rig.twin_ids.begin() +
            static_cast<std::ptrdiff_t>(cluster->mobile.size())));
    slot.pipeline->set_actuator(std::move(mig));
  };
  std::unique_ptr<core::cluster::ClusterCoordinator> coordinator;
  if (cluster != nullptr) {
    coordinator =
        std::make_unique<core::cluster::ClusterCoordinator>(cluster->config);
  }
  // Warm-started cluster runs continue the original run's period
  // numbering: the coordinator's state is indexed by absolute period, so
  // the hook and directive replay shift by the restored prefix length.
  std::size_t coord_offset = 0;
  std::size_t restored_hosts = 0;

  for (std::size_t i = 0; i < spec.hosts.size(); ++i) {
    const FleetHostSpec& hs = spec.hosts[i];
    Slot& slot = slots[i];
    slot.spec = &hs;
    const std::vector<TwinSpec> twins = twins_for_host(i);
    slot.rig = build_host_rig(hs.experiment, twins);
    slot.pipeline = make_pipeline(hs, slot.rig);
    wrap_migration(slot);
    if (label_hosts) slot.pipeline->set_host_label(hs.name);
    obs::Observer* observer = hs.experiment.observer != nullptr
                                  ? hs.experiment.observer
                                  : spec.observer;
    // Mirror run_experiment: only the Stay-Away loop publishes its
    // internal metric/event stream; every policy narrates decisions.
    if (observer != nullptr && hs.experiment.policy == PolicyKind::StayAway) {
      slot.pipeline->set_observer(observer);
    }

    const ExperimentSpec& espec = hs.experiment;
    auto ticks_per_period =
        static_cast<std::size_t>(std::llround(espec.period_s / espec.tick_s));
    core::FleetController::Member member;
    member.name = hs.name;
    member.host = slot.rig.host.get();
    member.pipeline = slot.pipeline.get();
    member.ticks_per_period = ticks_per_period;
    member.periods =
        static_cast<std::size_t>(std::llround(espec.duration_s /
                                              espec.period_s));
    // Warm start (DESIGN.md §17): restore the host's checkpoint, replay
    // the restored prefix silently and drive only the live tail.
    if (auto found = spec.restore.find(hs.name); found != spec.restore.end()) {
      std::size_t restored = core::warm_start(
          *slot.pipeline, *slot.rig.host, ticks_per_period, found->second);
      SA_REQUIRE(restored <= member.periods,
                 "checkpoint is longer than the run it restores into");
      member.periods -= restored;
      if (cluster != nullptr) {
        SA_REQUIRE(restored_hosts == 0 || coord_offset == restored,
                   "cluster warm starts must restore the same period count "
                   "on every host");
        coord_offset = restored;
        ++restored_hosts;
      }
    }
    if (coordinator != nullptr) {
      coordinator->add_host(core::cluster::ClusterCoordinator::HostHooks{
          hs.name, [&slot] { return slot.pipeline.get(); },
          [&slot] {
            return static_cast<core::ActuationPort*>(
                &slot.pipeline->actuation_port());
          },
          [&slot] {
            return dynamic_cast<core::cluster::MigrationActuator*>(
                slot.pipeline->actuator());
          }});
      member.replay_directives = [coord = coordinator.get(), &coord_offset,
                                  i](std::size_t q) {
        coord->replay_host_period(i, q + coord_offset);
      };
    }
    // Crash-class faults in the plan put the member under supervision
    // automatically — derived purely from the scenario, so a recorded
    // run-log replays bit-for-bit without new scenario keys.
    if (spec.supervise || (espec.faults.has_value() &&
                           espec.faults->has_crash_faults())) {
      member.rebuild = [&slot, &hs, label_hosts, observer, twins,
                        &wrap_migration] {
        slot.pipeline.reset();
        slot.rig = build_host_rig(hs.experiment, twins);
        slot.pipeline = make_pipeline(hs, slot.rig);
        wrap_migration(slot);
        if (label_hosts) slot.pipeline->set_host_label(hs.name);
        if (observer != nullptr &&
            hs.experiment.policy == PolicyKind::StayAway) {
          slot.pipeline->set_observer(observer);
        }
        return core::FleetController::Member::Rebuilt{slot.rig.host.get(),
                                                      slot.pipeline.get()};
      };
      member.on_reset = [&slot] { slot.util_acc = 0.0; };
    }
    member.on_tick = [&slot] {
      slot.util_acc += slot.rig.host->instantaneous_cpu_utilization();
    };
    member.on_period = [&slot, observer, ticks_per_period,
                        label_hosts](const core::PeriodRecord& rec) {
      sim::SimHost& host = *slot.rig.host;
      ExperimentResult& result = slot.result;
      bool sensitive_up = host.vm(slot.rig.sensitive_id).present(host.now());
      result.time.push_back(host.now());
      result.qos.push_back(sensitive_up ? slot.rig.probe->normalized_qos()
                                        : 1.0);
      bool violated = sensitive_up && slot.rig.probe->violated();
      if (observer != nullptr && observer->sink() != nullptr) {
        const core::Actuator::Outcome& outcome =
            slot.pipeline->last_outcome();
        std::size_t targets = rec.action == core::ThrottleAction::Pause
                                  ? outcome.paused.size()
                                  : outcome.resumed.size();
        obs::Event e(host.now(), "decision");
        if (label_hosts) e.with("host", obs::JsonValue(slot.spec->name));
        e.with("policy",
               obs::JsonValue(to_string(slot.spec->experiment.policy)))
            .with("action",
                  obs::JsonValue(to_string(to_policy_action(rec.action))))
            .with("reason", obs::JsonValue(outcome.reason))
            .with("targets", obs::JsonValue(targets))
            .with("batch_paused", obs::JsonValue(rec.batch_paused_after))
            .with("qos", obs::JsonValue(result.qos.back()))
            .with("violated", obs::JsonValue(violated));
        observer->emit(e);
      }
      result.violated.push_back(violated ? 1 : 0);
      result.utilization.push_back(slot.util_acc /
                                   static_cast<double>(ticks_per_period));
      slot.util_acc = 0.0;
      bool any_batch = false;
      for (sim::VmId id : slot.rig.batch_ids) {
        if (host.vm(id).active(host.now())) any_batch = true;
      }
      result.batch_running.push_back(any_batch ? 1 : 0);
      if (slot.rig.webservice != nullptr) {
        result.offered_tps.push_back(
            slot.rig.webservice->offered_rps(host.now()));
        result.completed_tps.push_back(slot.rig.webservice->completed_tps());
      }
      if (violated) ++result.violation_periods;
    };
    controller.add_member(std::move(member));
  }

  if (coordinator != nullptr) {
    SA_REQUIRE(restored_hosts == 0 || restored_hosts == spec.hosts.size(),
               "cluster warm starts must restore every host");
    for (std::size_t j = 0; j < cluster->mobile.size(); ++j) {
      std::vector<sim::VmId> ids;
      ids.reserve(slots.size());
      for (const Slot& slot : slots) ids.push_back(slot.rig.twin_ids[j]);
      coordinator->add_mobile_vm(cluster->mobile[j].name, std::move(ids),
                                 mobile_home[j]);
    }
    const double period_s = spec.hosts.front().experiment.period_s;
    for (std::size_t k = 0; k < cluster->admissions.size(); ++k) {
      const AdmissionSpec& a = cluster->admissions[k];
      std::vector<sim::VmId> ids;
      ids.reserve(slots.size());
      for (const Slot& slot : slots) {
        ids.push_back(slot.rig.twin_ids[cluster->mobile.size() + k]);
      }
      auto arrival =
          static_cast<std::size_t>(std::llround(a.arrival_s / period_s));
      coordinator->add_admission(a.name, std::move(ids), arrival);
    }
    if (!cluster->restore.empty()) {
      core::cluster::restore_coordinator(*coordinator, cluster->restore);
    }
    controller.set_period_hook(
        [coord = coordinator.get(), &coord_offset](std::size_t p) {
          coord->step(p + coord_offset);
        });
  }

  controller.set_recorder(spec.recorder);
  controller.run();

  FleetResult out;
  out.hosts.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    ExperimentResult& result = slot.result;
    sim::SimHost& host = *slot.rig.host;
    if (!result.qos.empty()) {
      double qacc = 0.0;
      double uacc = 0.0;
      for (std::size_t j = 0; j < result.qos.size(); ++j) {
        qacc += result.qos[j];
        uacc += result.utilization[j];
      }
      result.avg_qos = qacc / static_cast<double>(result.qos.size());
      result.avg_utilization = uacc / static_cast<double>(result.qos.size());
      result.violation_fraction =
          static_cast<double>(result.violation_periods) /
          static_cast<double>(result.qos.size());
    }
    result.sensitive_cpu_work = host.vm(slot.rig.sensitive_id).cpu_work_done();
    for (sim::VmId id : slot.rig.batch_ids) {
      result.batch_cpu_work += host.vm(id).cpu_work_done();
    }
    if (slot.spec->experiment.policy == PolicyKind::StayAway) {
      extract_stayaway(*slot.pipeline, slot.spec->experiment, result);
    }
    FleetHostResult host_result;
    host_result.name = slot.spec->name;
    host_result.result = std::move(result);
    host_result.recovery = controller.members()[i].recovery;
    if (spec.export_checkpoints && slot.pipeline->checkpointable()) {
      host_result.final_checkpoint = core::encode_checkpoint(*slot.pipeline);
    }
    out.hosts.push_back(std::move(host_result));
  }
  if (coordinator != nullptr) {
    ClusterReport report;
    report.migrations = coordinator->migrations();
    report.admitted = coordinator->admissions_accepted();
    report.rejected = coordinator->admissions_rejected();
    report.queued = coordinator->admissions_queued();
    report.events = coordinator->events();
    if (spec.export_checkpoints) {
      report.final_coordinator = core::cluster::encode_coordinator(*coordinator);
    }
    out.cluster = std::move(report);
  }
  return out;
}

}  // namespace stayaway::harness
