// Scenario catalogue for the paper's evaluation (§7.1).
//
// Sensitive apps: VLC streaming server; Webservice with CPU-, memory- and
// mixed-intensive workloads. Batch apps: Soplex (SPEC CPU2006), Twitter
// influence ranking (CloudSuite), CPUBomb (isolation benchmark), VLC
// transcoding, MemoryBomb (custom), plus the Table 1 combinations
// Batch-1 = Twitter-Analysis + Soplex and Batch-2 = Twitter-Analysis +
// MemoryBomb.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/webservice.hpp"
#include "sim/app_model.hpp"
#include "sim/resource.hpp"
#include "trace/trace.hpp"

namespace stayaway::harness {

enum class SensitiveKind {
  VlcStream,
  WebserviceCpu,
  WebserviceMem,
  WebserviceMix,
  VlcTranscode,  // Fig. 6's rate-thresholded transcode run
  FlashCrowd,    // surging front end (cluster bench, DESIGN.md §18)
};

enum class BatchKind {
  None,  // isolated run
  CpuBomb,
  MemBomb,
  Soplex,
  TwitterAnalysis,
  VlcTranscode,
  Batch1,  // Table 1: Twitter-Analysis + Soplex
  Batch2,  // Table 1: Twitter-Analysis + MemoryBomb
};

const char* to_string(SensitiveKind kind);
const char* to_string(BatchKind kind);

/// The paper's testbed translated into simulator terms: 4 cores, 4 GB of
/// memory (tight enough that a 2-3 GB batch working set forces swap).
sim::HostSpec paper_host();

/// A sensitive app plus its QoS probe (which points into the app object
/// and stays valid for the app's lifetime).
struct SensitiveSetup {
  std::unique_ptr<sim::AppModel> app;
  const sim::QosProbe* probe = nullptr;
};

/// Builds a sensitive app. `workload` modulates offered load over time
/// (nullopt = constant peak); duration <= 0 runs unbounded.
SensitiveSetup make_sensitive(SensitiveKind kind,
                              std::optional<trace::Trace> workload,
                              double duration_s, std::uint64_t seed);

/// Builds the batch app set for a kind (one or two apps; empty for None).
std::vector<std::unique_ptr<sim::AppModel>> make_batch(BatchKind kind);

/// A workload trace with pronounced diurnal valleys, compressed so that a
/// few-minute experiment sweeps through several day/night cycles — the
/// low-intensity periods Stay-Away exploits (§1, Fig. 13).
trace::Trace compressed_diurnal(double experiment_s, double cycles,
                                std::uint64_t seed);

}  // namespace stayaway::harness
