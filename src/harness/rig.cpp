#include "harness/rig.hpp"

#include <set>
#include <string>
#include <utility>

#include "apps/webservice.hpp"
#include "util/check.hpp"

namespace stayaway::harness {

HostRig build_host_rig(const ExperimentSpec& spec,
                       const std::vector<TwinSpec>& twins) {
  SA_REQUIRE(spec.duration_s > 0.0, "experiment duration must be positive");
  SA_REQUIRE(spec.period_s >= spec.tick_s, "period must cover >= one tick");

  HostRig rig;
  rig.host = std::make_unique<sim::SimHost>(spec.host, spec.tick_s);
  sim::SimHost& host = *rig.host;

  SensitiveSetup sensitive = make_sensitive(
      spec.sensitive, spec.workload, spec.duration_s - spec.sensitive_start_s,
      spec.seed);
  rig.probe = sensitive.probe;
  rig.webservice = dynamic_cast<const apps::Webservice*>(sensitive.app.get());
  std::string sensitive_name(sensitive.app->name());
  rig.sensitive_id =
      host.add_vm(std::move(sensitive_name), sim::VmKind::Sensitive,
                  std::move(sensitive.app), spec.sensitive_start_s);

  for (auto& app : make_batch(spec.batch)) {
    std::string batch_name(app->name());
    rig.batch_ids.push_back(host.add_vm(std::move(batch_name),
                                        sim::VmKind::Batch, std::move(app),
                                        spec.batch_start_s));
  }
  std::set<std::string> extra_names;
  for (const auto& extra : spec.extra_batch) {
    SA_REQUIRE(!extra.name.empty(), "extra batch VM names must be non-empty");
    SA_REQUIRE(extra_names.insert(extra.name).second,
               "duplicate extra batch VM name: " + extra.name);
    auto apps = make_batch(extra.kind);
    SA_REQUIRE(!apps.empty(), "extra batch VM kind must not be 'none'");
    std::size_t index = 0;
    for (auto& app : apps) {
      // Multi-app kinds (Batch1/Batch2) get a per-app name suffix so
      // every VM name on the host stays distinct.
      std::string name = apps.size() == 1
                             ? extra.name
                             : extra.name + "-" + std::to_string(index);
      rig.batch_ids.push_back(host.add_vm(std::move(name), sim::VmKind::Batch,
                                          std::move(app), extra.start_s));
      ++index;
    }
  }
  for (const TwinSpec& twin : twins) {
    SA_REQUIRE(!twin.name.empty(), "cluster twin names must be non-empty");
    auto apps = make_batch(twin.kind);
    SA_REQUIRE(apps.size() == 1,
               "cluster twins need a single-app batch kind: " + twin.name);
    std::string name = twin.name;
    sim::VmId id = host.add_vm(std::move(name), sim::VmKind::Batch,
                               std::move(apps.front()), twin.start_s);
    if (!twin.attached) host.vm(id).detach();
    rig.twin_ids.push_back(id);
    rig.batch_ids.push_back(id);
  }
  return rig;
}

core::StayAwayConfig derive_stayaway_config(const ExperimentSpec& spec) {
  core::StayAwayConfig sa_config = spec.stayaway;
  sa_config.period_s = spec.period_s;
  sa_config.seed = spec.seed;
  sa_config.sampler.seed = spec.seed ^ 0xabcdULL;
  return sa_config;
}

}  // namespace stayaway::harness
