#include "harness/scenarios.hpp"

#include "apps/cpubomb.hpp"
#include "apps/flash_crowd.hpp"
#include "apps/membomb.hpp"
#include "apps/soplex.hpp"
#include "apps/twitter_analysis.hpp"
#include "apps/vlc_stream.hpp"
#include "apps/vlc_transcode.hpp"
#include "trace/diurnal.hpp"
#include "util/check.hpp"

namespace stayaway::harness {

const char* to_string(SensitiveKind kind) {
  switch (kind) {
    case SensitiveKind::VlcStream:
      return "vlc-stream";
    case SensitiveKind::WebserviceCpu:
      return "webservice-cpu";
    case SensitiveKind::WebserviceMem:
      return "webservice-mem";
    case SensitiveKind::WebserviceMix:
      return "webservice-mix";
    case SensitiveKind::VlcTranscode:
      return "vlc-transcode";
    case SensitiveKind::FlashCrowd:
      return "flash-crowd";
  }
  return "unknown";
}

const char* to_string(BatchKind kind) {
  switch (kind) {
    case BatchKind::None:
      return "none";
    case BatchKind::CpuBomb:
      return "cpubomb";
    case BatchKind::MemBomb:
      return "membomb";
    case BatchKind::Soplex:
      return "soplex";
    case BatchKind::TwitterAnalysis:
      return "twitter-analysis";
    case BatchKind::VlcTranscode:
      return "vlc-transcode";
    case BatchKind::Batch1:
      return "batch-1";
    case BatchKind::Batch2:
      return "batch-2";
  }
  return "unknown";
}

sim::HostSpec paper_host() {
  sim::HostSpec spec;
  spec.cpu_cores = 4.0;
  spec.memory_mb = 4096.0;
  spec.membw_mbps = 16000.0;
  spec.disk_mbps = 200.0;
  spec.net_mbps = 1000.0;
  spec.swap_penalty = 8.0;
  return spec;
}

SensitiveSetup make_sensitive(SensitiveKind kind,
                              std::optional<trace::Trace> workload,
                              double duration_s, std::uint64_t seed) {
  SensitiveSetup out;
  switch (kind) {
    case SensitiveKind::VlcStream: {
      apps::VlcStreamSpec spec;
      spec.duration_s = duration_s;
      auto app = std::make_unique<apps::VlcStream>(spec, std::move(workload));
      out.probe = app.get();
      out.app = std::move(app);
      return out;
    }
    case SensitiveKind::WebserviceCpu:
    case SensitiveKind::WebserviceMem:
    case SensitiveKind::WebserviceMix: {
      apps::WebserviceSpec spec;
      spec.mix = (kind == SensitiveKind::WebserviceCpu)
                     ? apps::WorkloadMix::CpuIntensive
                     : (kind == SensitiveKind::WebserviceMem)
                           ? apps::WorkloadMix::MemIntensive
                           : apps::WorkloadMix::Mixed;
      spec.duration_s = duration_s;
      spec.seed = seed;
      auto app = std::make_unique<apps::Webservice>(spec, std::move(workload));
      out.probe = app.get();
      out.app = std::move(app);
      return out;
    }
    case SensitiveKind::VlcTranscode: {
      apps::VlcTranscodeSpec spec;
      if (duration_s > 0.0) spec.total_frames = spec.nominal_fps * duration_s;
      auto app = std::make_unique<apps::VlcTranscode>(spec);
      out.probe = app.get();
      out.app = std::move(app);
      return out;
    }
    case SensitiveKind::FlashCrowd: {
      apps::FlashCrowdSpec spec;
      spec.duration_s = duration_s;
      auto app = std::make_unique<apps::FlashCrowd>(spec, std::move(workload));
      out.probe = app.get();
      out.app = std::move(app);
      return out;
    }
  }
  SA_ENSURE(false, "unhandled sensitive kind");
}

std::vector<std::unique_ptr<sim::AppModel>> make_batch(BatchKind kind) {
  std::vector<std::unique_ptr<sim::AppModel>> out;
  switch (kind) {
    case BatchKind::None:
      return out;
    case BatchKind::CpuBomb:
      out.push_back(std::make_unique<apps::CpuBomb>());
      return out;
    case BatchKind::MemBomb:
      out.push_back(std::make_unique<apps::MemBomb>());
      return out;
    case BatchKind::Soplex: {
      apps::SoplexSpec spec;
      spec.total_work_s = 1e9;  // effectively unbounded for the experiment
      out.push_back(std::make_unique<apps::Soplex>(spec));
      return out;
    }
    case BatchKind::TwitterAnalysis:
      out.push_back(std::make_unique<apps::TwitterAnalysis>());
      return out;
    case BatchKind::VlcTranscode:
      out.push_back(std::make_unique<apps::VlcTranscode>());
      return out;
    case BatchKind::Batch1: {
      out.push_back(std::make_unique<apps::TwitterAnalysis>());
      apps::SoplexSpec spec;
      spec.total_work_s = 1e9;
      out.push_back(std::make_unique<apps::Soplex>(spec));
      return out;
    }
    case BatchKind::Batch2:
      out.push_back(std::make_unique<apps::TwitterAnalysis>());
      out.push_back(std::make_unique<apps::MemBomb>());
      return out;
  }
  SA_ENSURE(false, "unhandled batch kind");
}

trace::Trace compressed_diurnal(double experiment_s, double cycles,
                                std::uint64_t seed) {
  SA_REQUIRE(experiment_s > 0.0 && cycles > 0.0,
             "experiment length and cycle count must be positive");
  trace::DiurnalSpec spec;
  spec.days = cycles;
  spec.sample_interval_s = 900.0;  // 96 samples per simulated day
  spec.seed = seed;
  trace::Trace day_scale = trace::generate_diurnal(spec);
  // Compress: reuse the samples with an interval that fits the experiment.
  double interval = experiment_s / static_cast<double>(day_scale.size() - 1);
  return trace::Trace(day_scale.samples(), interval);
}

}  // namespace stayaway::harness
