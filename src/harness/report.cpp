#include "harness/report.hpp"

#include <ostream>

#include "util/ascii_plot.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace stayaway::harness {

void print_series_csv(std::ostream& out, const std::vector<std::string>& names,
                      const std::vector<const std::vector<double>*>& series) {
  SA_REQUIRE(names.size() == series.size(), "one name per series");
  CsvWriter w(out);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> cells{names[i]};
    for (double v : *series[i]) cells.push_back(format_double(v, 4));
    w.row(cells);
  }
}

void print_summary_header(std::ostream& out) {
  out << pad_right("experiment", 40) << pad_left("viol%", 8)
      << pad_left("avg_qos", 9) << pad_left("avg_util", 10)
      << pad_left("batch_cpu_s", 13) << pad_left("pauses", 8)
      << pad_left("reps", 6) << "\n";
}

void print_summary_row(std::ostream& out, const std::string& label,
                       const ExperimentResult& result) {
  out << pad_right(label, 40)
      << pad_left(format_double(result.violation_fraction * 100.0, 1), 8)
      << pad_left(format_double(result.avg_qos, 3), 9)
      << pad_left(format_double(result.avg_utilization * 100.0, 1), 10)
      << pad_left(format_double(result.batch_cpu_work, 1), 13)
      << pad_left(std::to_string(result.pauses), 8)
      << pad_left(std::to_string(result.representative_count), 6) << "\n";
}

std::string render_qos_figure(const std::string& title,
                              const ExperimentResult& with,
                              const ExperimentResult& without) {
  std::vector<double> threshold(with.qos.size(), 1.0);
  PlotOptions opts;
  opts.title = title;
  return plot_lines({with.qos, without.qos, threshold},
                    {"stay-away", "no-prevention", "threshold"}, opts);
}

std::string render_state_space(const std::string& title,
                               const core::StateSpace& space) {
  ScatterGroup safe{"safe", '.', {}};
  ScatterGroup violation{"violation", '#', {}};
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& p = space.position(i);
    if (space.label(i) == core::StateLabel::Violation) {
      violation.points.emplace_back(p.x, p.y);
    } else {
      safe.points.emplace_back(p.x, p.y);
    }
  }
  PlotOptions opts;
  opts.title = title;
  return plot_scatter({safe, violation}, opts);
}

double series_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double v : xs) acc += v;
  return acc / static_cast<double>(xs.size());
}

void print_metrics_summary(std::ostream& out,
                           const obs::MetricsRegistry& registry) {
  obs::MetricsSnapshot snap = registry.snapshot();
  if (!snap.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, v] : snap.counters) {
      out << "  " << pad_right(name, 40) << v << "\n";
    }
  }
  if (!snap.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      out << "  " << pad_right(name, 40) << format_double(v, 4) << "\n";
    }
  }
  if (!snap.histograms.empty()) {
    out << "histograms (count / mean):\n";
    for (const auto& h : snap.histograms) {
      double mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      out << "  " << pad_right(h.name, 40) << h.count << " / "
          << format_double(mean, 3) << "\n";
    }
  }
}

void publish_result_metrics(obs::MetricsRegistry& registry,
                            const std::string& label,
                            const ExperimentResult& result) {
  auto gauge = [&](const char* name, double v) {
    registry.gauge(label + "." + name).set(v);
  };
  gauge("periods", static_cast<double>(result.qos.size()));
  gauge("violation_fraction", result.violation_fraction);
  gauge("avg_qos", result.avg_qos);
  gauge("avg_utilization", result.avg_utilization);
  gauge("batch_cpu_work_s", result.batch_cpu_work);
  gauge("sensitive_cpu_work_s", result.sensitive_cpu_work);
  gauge("pauses", static_cast<double>(result.pauses));
  gauge("resumes", static_cast<double>(result.resumes));
  gauge("final_beta", result.final_beta);
  gauge("representatives", static_cast<double>(result.representative_count));
  gauge("final_stress", result.final_stress);
  gauge("tally_accuracy", result.tally.accuracy());
}

}  // namespace stayaway::harness
