#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "apps/webservice.hpp"
#include "baseline/reactive.hpp"
#include "baseline/static_threshold.hpp"
#include "harness/rig.hpp"
#include "harness/stayaway_policy.hpp"
#include "util/check.hpp"

namespace stayaway::harness {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::NoPrevention:
      return "no-prevention";
    case PolicyKind::StayAway:
      return "stay-away";
    case PolicyKind::Reactive:
      return "reactive";
    case PolicyKind::StaticThreshold:
      return "static-threshold";
  }
  return "unknown";
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  HostRig rig = build_host_rig(spec);
  sim::SimHost& host = *rig.host;
  const sim::QosProbe* probe = rig.probe;
  const apps::Webservice* webservice = rig.webservice;
  sim::VmId sensitive_id = rig.sensitive_id;
  const std::vector<sim::VmId>& batch_ids = rig.batch_ids;

  core::StayAwayConfig sa_config = derive_stayaway_config(spec);

  std::unique_ptr<baseline::InterferencePolicy> policy;
  StayAwayPolicy* stayaway = nullptr;
  switch (spec.policy) {
    case PolicyKind::NoPrevention:
      policy = std::make_unique<baseline::NoPrevention>();
      break;
    case PolicyKind::StayAway: {
      auto p = std::make_unique<StayAwayPolicy>(host, *probe, sa_config,
                                                spec.seed_template);
      stayaway = p.get();
      policy = std::move(p);
      break;
    }
    case PolicyKind::Reactive:
      policy = std::make_unique<baseline::ReactiveThrottle>();
      break;
    case PolicyKind::StaticThreshold:
      policy = std::make_unique<baseline::StaticThreshold>();
      break;
  }
  if (spec.observer != nullptr && stayaway != nullptr) {
    stayaway->runtime().set_observer(spec.observer);
  }
  if (stayaway != nullptr && spec.faults.has_value() &&
      !spec.faults->empty()) {
    stayaway->runtime().install_faults(*spec.faults);
  }

  ExperimentResult result;
  auto ticks_per_period =
      static_cast<std::size_t>(std::llround(spec.period_s / spec.tick_s));
  auto periods =
      static_cast<std::size_t>(std::llround(spec.duration_s / spec.period_s));

  for (std::size_t p = 0; p < periods; ++p) {
    double util_acc = 0.0;
    for (std::size_t t = 0; t < ticks_per_period; ++t) {
      host.step();
      util_acc += host.instantaneous_cpu_utilization();
    }
    baseline::PolicyDecision decision = policy->on_period(host, *probe);

    bool sensitive_up = host.vm(sensitive_id).present(host.now());
    result.time.push_back(host.now());
    result.qos.push_back(sensitive_up ? probe->normalized_qos() : 1.0);
    bool violated = sensitive_up && probe->violated();
    // Uniform decision log: every policy, not just Stay-Away, narrates
    // what it did through the event sink.
    if (spec.observer != nullptr && spec.observer->sink() != nullptr) {
      obs::Event e(host.now(), "decision");
      e.with("policy", obs::JsonValue(policy->name()))
          .with("action", obs::JsonValue(to_string(decision.action)))
          .with("reason", obs::JsonValue(decision.reason))
          .with("targets", obs::JsonValue(decision.targets.size()))
          .with("batch_paused", obs::JsonValue(decision.batch_paused_after))
          .with("qos", obs::JsonValue(result.qos.back()))
          .with("violated", obs::JsonValue(violated));
      spec.observer->emit(e);
    }
    result.violated.push_back(violated ? 1 : 0);
    result.utilization.push_back(util_acc /
                                 static_cast<double>(ticks_per_period));
    bool any_batch = false;
    for (sim::VmId id : batch_ids) {
      if (host.vm(id).active(host.now())) any_batch = true;
    }
    result.batch_running.push_back(any_batch ? 1 : 0);
    if (webservice != nullptr) {
      result.offered_tps.push_back(webservice->offered_rps(host.now()));
      result.completed_tps.push_back(webservice->completed_tps());
    }
    if (violated) ++result.violation_periods;
  }

  // Aggregates.
  if (!result.qos.empty()) {
    double qacc = 0.0;
    double uacc = 0.0;
    for (std::size_t i = 0; i < result.qos.size(); ++i) {
      qacc += result.qos[i];
      uacc += result.utilization[i];
    }
    result.avg_qos = qacc / static_cast<double>(result.qos.size());
    result.avg_utilization = uacc / static_cast<double>(result.qos.size());
    result.violation_fraction = static_cast<double>(result.violation_periods) /
                                static_cast<double>(result.qos.size());
  }
  result.sensitive_cpu_work = host.vm(sensitive_id).cpu_work_done();
  for (sim::VmId id : batch_ids) {
    result.batch_cpu_work += host.vm(id).cpu_work_done();
  }

  if (stayaway != nullptr) {
    const auto& rt = stayaway->runtime();
    result.stayaway_records = rt.records();
    result.tally = rt.tally();
    result.pauses = rt.governor().pauses();
    result.resumes = rt.governor().resumes();
    for (const auto& rec : result.stayaway_records) {
      if (rec.degradation == core::DegradationState::Degraded) {
        ++result.degraded_periods;
      } else if (rec.degradation == core::DegradationState::Failsafe) {
        ++result.failsafe_periods;
      }
    }
    result.readings_quarantined = rt.readings_quarantined();
    result.actuation_retries = rt.actuation_retries();
    result.actuation_abandoned = rt.actuation_abandoned();
    result.final_beta = rt.governor().beta();
    result.representative_count = rt.representatives().size();
    result.final_stress = rt.embedder().stress();
    result.exported_template =
        rt.export_template(to_string(spec.sensitive));
    result.final_map = rt.state_space().positions();
  }
  return result;
}

ExperimentResult run_isolated(ExperimentSpec spec) {
  spec.batch = BatchKind::None;
  spec.policy = PolicyKind::NoPrevention;
  return run_experiment(spec);
}

std::vector<double> gained_utilization(const ExperimentResult& colocated,
                                       const ExperimentResult& isolated) {
  SA_REQUIRE(colocated.utilization.size() == isolated.utilization.size(),
             "series must come from equally long runs");
  std::vector<double> out(colocated.utilization.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::max(0.0, colocated.utilization[i] - isolated.utilization[i]);
  }
  return out;
}

}  // namespace stayaway::harness
