#include "harness/scenario_file.hpp"

#include <algorithm>
#include <istream>
#include <set>

#include "util/check.hpp"

namespace stayaway::harness {

namespace {

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw PreconditionError("scenario line " + std::to_string(line) + ": " +
                          message);
}

double parse_double(std::size_t line, const std::string& value) {
  try {
    std::size_t pos = 0;
    double v = std::stod(value, &pos);
    if (pos != value.size()) fail(line, "trailing characters in number");
    return v;
  } catch (const std::logic_error&) {
    fail(line, "expected a number, got '" + value + "'");
  }
}

bool parse_bool(std::size_t line, const std::string& value) {
  if (value == "true" || value == "yes" || value == "1") return true;
  if (value == "false" || value == "no" || value == "0") return false;
  fail(line, "expected true/false, got '" + value + "'");
}

}  // namespace

SensitiveKind sensitive_kind_from_string(const std::string& name) {
  for (auto kind : {SensitiveKind::VlcStream, SensitiveKind::WebserviceCpu,
                    SensitiveKind::WebserviceMem, SensitiveKind::WebserviceMix,
                    SensitiveKind::VlcTranscode}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown sensitive app: " + name);
}

BatchKind batch_kind_from_string(const std::string& name) {
  for (auto kind : {BatchKind::None, BatchKind::CpuBomb, BatchKind::MemBomb,
                    BatchKind::Soplex, BatchKind::TwitterAnalysis,
                    BatchKind::VlcTranscode, BatchKind::Batch1,
                    BatchKind::Batch2}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown batch app: " + name);
}

PolicyKind policy_kind_from_string(const std::string& name) {
  for (auto kind : {PolicyKind::NoPrevention, PolicyKind::StayAway,
                    PolicyKind::Reactive, PolicyKind::StaticThreshold}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown policy: " + name);
}

namespace {

/// Accumulated parse state for one scenario body (the base document or
/// one [host] section overlaying it). Copyable: a host section starts
/// from a copy of the base state with a fresh duplicate-key set.
struct ParserState {
  Scenario scenario;
  std::string workload = "constant";
  double workload_cycles = 1.5;
  std::set<std::string> seen;
  std::set<std::string> vm_names;
  std::vector<sim::FaultSpec> fault_specs;
  std::optional<std::uint64_t> fault_seed;

  void consume(std::size_t line_no, const std::string& key,
               const std::string& value);
  /// Applies the deferred workload/fault post-processing (both depend on
  /// the final seed/duration) and returns the finished scenario.
  Scenario finish() const;
};

void ParserState::consume(std::size_t line_no, const std::string& key,
                          const std::string& value) {
    // `fault` and `vm` are list-building keys and may repeat; everything
    // else appears at most once.
    bool repeatable = key == "fault" || key == "vm";
    if (!repeatable && !seen.insert(key).second) {
      fail(line_no, "duplicate key '" + key + "'");
    }

    auto& spec = scenario.spec;
    try {
      if (key == "sensitive") {
        spec.sensitive = sensitive_kind_from_string(value);
      } else if (key == "batch") {
        spec.batch = batch_kind_from_string(value);
      } else if (key == "policy") {
        spec.policy = policy_kind_from_string(value);
      } else if (key == "duration_s") {
        spec.duration_s = parse_double(line_no, value);
      } else if (key == "period_s") {
        spec.period_s = parse_double(line_no, value);
      } else if (key == "tick_s") {
        spec.tick_s = parse_double(line_no, value);
      } else if (key == "batch_start_s") {
        spec.batch_start_s = parse_double(line_no, value);
      } else if (key == "sensitive_start_s") {
        spec.sensitive_start_s = parse_double(line_no, value);
      } else if (key == "seed") {
        spec.seed = static_cast<std::uint64_t>(parse_double(line_no, value));
      } else if (key == "workload") {
        if (value != "constant" && value != "diurnal") {
          fail(line_no, "workload must be 'constant' or 'diurnal'");
        }
        workload = value;
      } else if (key == "workload_cycles") {
        workload_cycles = parse_double(line_no, value);
      } else if (key == "dedup_epsilon") {
        spec.stayaway.dedup_epsilon = parse_double(line_no, value);
      } else if (key == "prediction_samples") {
        spec.stayaway.prediction_samples =
            static_cast<std::size_t>(parse_double(line_no, value));
      } else if (key == "beta_initial") {
        spec.stayaway.governor.beta_initial = parse_double(line_no, value);
      } else if (key == "actions_enabled") {
        spec.stayaway.actions_enabled = parse_bool(line_no, value);
      } else if (key == "allow_sensitive_demotion") {
        spec.stayaway.allow_sensitive_demotion = parse_bool(line_no, value);
      } else if (key == "aggregate_batch") {
        spec.stayaway.sampler.aggregate_batch = parse_bool(line_no, value);
      } else if (key == "noise_fraction") {
        spec.stayaway.sampler.noise_fraction = parse_double(line_no, value);
      } else if (key == "metrics") {
        // Comma-separated sampler metric set, e.g. `metrics = cpu,mem,io`.
        std::vector<monitor::MetricKind> metrics;
        std::string rest = value;
        while (!rest.empty()) {
          auto comma = rest.find(',');
          std::string item = trim(rest.substr(0, comma));
          rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
          if (item.empty()) fail(line_no, "empty metric name in list");
          metrics.push_back(monitor::metric_kind_from_string(item));
        }
        if (metrics.empty()) fail(line_no, "metric list must not be empty");
        spec.stayaway.sampler.metrics = std::move(metrics);
      } else if (key == "vm") {
        // `vm = name:kind[:start_s]` — an extra named batch VM.
        auto c1 = value.find(':');
        if (c1 == std::string::npos) {
          fail(line_no, "expected 'name:kind[:start_s]', got '" + value + "'");
        }
        auto c2 = value.find(':', c1 + 1);
        ExtraVmSpec extra;
        extra.name = trim(value.substr(0, c1));
        std::string kind =
            trim(value.substr(c1 + 1, c2 == std::string::npos
                                          ? std::string::npos
                                          : c2 - c1 - 1));
        if (extra.name.empty()) fail(line_no, "empty VM name");
        if (kind.empty()) fail(line_no, "empty VM kind");
        if (!vm_names.insert(extra.name).second) {
          fail(line_no, "duplicate VM name '" + extra.name + "'");
        }
        extra.kind = batch_kind_from_string(kind);
        if (extra.kind == BatchKind::None) {
          fail(line_no, "extra VM kind must not be 'none'");
        }
        if (c2 != std::string::npos) {
          extra.start_s = parse_double(line_no, trim(value.substr(c2 + 1)));
          if (extra.start_s < 0.0) fail(line_no, "start_s must be >= 0");
        }
        spec.extra_batch.push_back(std::move(extra));
      } else if (key == "fault") {
        fault_specs.push_back(sim::parse_fault_spec(value, line_no));
      } else if (key == "fault_seed") {
        fault_seed =
            static_cast<std::uint64_t>(parse_double(line_no, value));
      } else if (key == "compare") {
        scenario.compare = parse_bool(line_no, value);
      } else if (key == "template_in") {
        scenario.template_in = value;
      } else if (key == "template_out") {
        scenario.template_out = value;
      } else if (key == "series_csv") {
        scenario.series_csv = value;
      } else {
        fail(line_no, "unknown key '" + key + "'");
      }
    } catch (const PreconditionError& e) {
      // Re-tag enum-lookup errors with the line number.
      std::string what = e.what();
      if (what.rfind("scenario line", 0) == 0) throw;
      fail(line_no, what);
    }
}

Scenario ParserState::finish() const {
  Scenario out = scenario;
  if (workload == "diurnal") {
    out.spec.workload =
        compressed_diurnal(out.spec.duration_s, workload_cycles, out.spec.seed);
  }
  if (!fault_specs.empty()) {
    // Fault schedules are always explicitly seeded (the lint rule enforces
    // the same for code): fault_seed when given, else the experiment seed.
    sim::FaultPlan plan;
    plan.seed = fault_seed.value_or(out.spec.seed);
    plan.faults = fault_specs;
    out.spec.faults = std::move(plan);
  }
  return out;
}

/// Parses a `[host "name"]` section header (the line arrives
/// comment-stripped and trimmed, starting with '[').
std::string parse_host_header(std::size_t line_no, const std::string& line) {
  if (line.back() != ']') fail(line_no, "unterminated section header");
  std::string inner = trim(line.substr(1, line.size() - 2));
  if (inner.rfind("host", 0) != 0) {
    fail(line_no, "unknown section '" + inner + "' (expected [host \"name\"])");
  }
  std::string rest = trim(inner.substr(4));
  if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
    fail(line_no, "host name must be quoted: [host \"name\"]");
  }
  std::string name = rest.substr(1, rest.size() - 2);
  if (name.empty()) fail(line_no, "host name must not be empty");
  return name;
}

}  // namespace

FleetScenario parse_fleet_scenario(std::istream& in) {
  FleetScenario fleet;
  ParserState base;
  // Host states overlay a snapshot of the base state taken at their
  // section header; `current` indexes into hosts, npos = still in base.
  std::vector<std::pair<std::string, ParserState>> hosts;
  std::set<std::string> host_names;
  constexpr std::size_t kBase = static_cast<std::size_t>(-1);
  std::size_t current = kBase;
  bool seen_workers = false;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      std::string name = parse_host_header(line_no, line);
      if (!host_names.insert(name).second) {
        fail(line_no, "duplicate host section '" + name + "'");
      }
      fleet.fleet_syntax = true;
      ParserState host = base;
      // Scalar base keys may be overridden once per section; inherited
      // VMs keep their names reserved so overlays cannot collide.
      host.seen.clear();
      hosts.emplace_back(std::move(name), std::move(host));
      current = hosts.size() - 1;
      continue;
    }

    auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");

    if (key == "workers") {
      if (current != kBase) {
        fail(line_no,
             "'workers' is a fleet-level key; set it before any [host] "
             "section");
      }
      if (seen_workers) fail(line_no, "duplicate key 'workers'");
      seen_workers = true;
      fleet.fleet_syntax = true;
      double v = parse_double(line_no, value);
      if (v < 1.0) fail(line_no, "workers must be >= 1");
      fleet.workers = static_cast<std::size_t>(v);
      continue;
    }

    ParserState& state = current == kBase ? base : hosts[current].second;
    state.consume(line_no, key, value);
  }

  fleet.base = base.finish();
  fleet.hosts.reserve(hosts.size());
  for (const auto& [name, state] : hosts) {
    fleet.hosts.emplace_back(name, state.finish());
  }
  return fleet;
}

Scenario parse_scenario(std::istream& in) {
  FleetScenario fleet = parse_fleet_scenario(in);
  if (fleet.fleet_syntax) {
    throw PreconditionError(
        "multi-host scenario ([host] sections / workers key): use "
        "parse_fleet_scenario");
  }
  return fleet.base;
}

}  // namespace stayaway::harness
