#include "harness/scenario_file.hpp"

#include <algorithm>
#include <istream>
#include <set>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway::harness {

namespace {

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw PreconditionError("scenario line " + std::to_string(line) + ": " +
                          message);
}

double parse_double(std::size_t line, const std::string& value) {
  try {
    std::size_t pos = 0;
    double v = std::stod(value, &pos);
    if (pos != value.size()) fail(line, "trailing characters in number");
    return v;
  } catch (const std::logic_error&) {
    fail(line, "expected a number, got '" + value + "'");
  }
}

bool parse_bool(std::size_t line, const std::string& value) {
  if (value == "true" || value == "yes" || value == "1") return true;
  if (value == "false" || value == "no" || value == "0") return false;
  fail(line, "expected true/false, got '" + value + "'");
}

std::uint64_t parse_seed(std::size_t line, const std::string& value) {
  // Plain decimal covers the full 64-bit range; the double fallback
  // keeps forms like `seed = 1e6` working but truncates above 2^53 —
  // recorded scenarios always use the exact decimal form.
  std::uint64_t seed = 0;
  if (parse_u64(value, seed)) return seed;
  return static_cast<std::uint64_t>(parse_double(line, value));
}

/// Truncates `line` at the first '#' that is not inside a double-quoted
/// region. Inside quotes a backslash escapes the next character, so
/// `path = "a\"# b"` keeps its '#'.
std::string strip_comment(const std::string& line) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes && c == '\\' && i + 1 < line.size()) {
      ++i;  // escaped character, never a delimiter
      continue;
    }
    if (c == '"') in_quotes = !in_quotes;
    if (c == '#' && !in_quotes) return line.substr(0, i);
  }
  return line;
}

/// Decodes a double-quoted value (`"a # b"`, escapes \\ \" \n \t \r).
/// Values not starting with a quote pass through untouched.
std::string unquote_value(std::size_t line_no, const std::string& value) {
  if (value.empty() || value.front() != '"') return value;
  std::string out;
  std::size_t i = 1;
  for (; i < value.size(); ++i) {
    char c = value[i];
    if (c == '"') {
      if (i + 1 != value.size()) {
        fail(line_no, "trailing characters after closing quote");
      }
      return out;
    }
    if (c == '\\') {
      if (i + 1 == value.size()) fail(line_no, "dangling escape in string");
      char esc = value[++i];
      switch (esc) {
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default:
          fail(line_no, std::string("unknown escape '\\") + esc + "'");
      }
      continue;
    }
    out += c;
  }
  fail(line_no, "unterminated quoted string");
}

bool needs_quoting(const std::string& s) {
  if (s.empty()) return true;
  if (s.front() == '"' || s.front() == ' ' || s.back() == ' ') return true;
  return s.find_first_of("#\\\"\n\t\r") != std::string::npos;
}

std::string quote_value(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string maybe_quote(const std::string& s) {
  return needs_quoting(s) ? quote_value(s) : s;
}

}  // namespace

SensitiveKind sensitive_kind_from_string(const std::string& name) {
  for (auto kind : {SensitiveKind::VlcStream, SensitiveKind::WebserviceCpu,
                    SensitiveKind::WebserviceMem, SensitiveKind::WebserviceMix,
                    SensitiveKind::VlcTranscode, SensitiveKind::FlashCrowd}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown sensitive app: " + name);
}

BatchKind batch_kind_from_string(const std::string& name) {
  for (auto kind : {BatchKind::None, BatchKind::CpuBomb, BatchKind::MemBomb,
                    BatchKind::Soplex, BatchKind::TwitterAnalysis,
                    BatchKind::VlcTranscode, BatchKind::Batch1,
                    BatchKind::Batch2}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown batch app: " + name);
}

PolicyKind policy_kind_from_string(const std::string& name) {
  for (auto kind : {PolicyKind::NoPrevention, PolicyKind::StayAway,
                    PolicyKind::Reactive, PolicyKind::StaticThreshold}) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown policy: " + name);
}

namespace {

/// Accumulated parse state for one scenario body (the base document or
/// one [host] section overlaying it). Copyable: a host section starts
/// from a copy of the base state with a fresh duplicate-key set.
struct ParserState {
  Scenario scenario;
  std::set<std::string> seen;
  std::set<std::string> vm_names;
  std::vector<sim::FaultSpec> fault_specs;
  std::optional<std::uint64_t> fault_seed;

  void consume(std::size_t line_no, const std::string& key,
               const std::string& value);
  /// Applies the deferred workload/fault post-processing (both depend on
  /// the final seed/duration) and returns the finished scenario.
  Scenario finish() const;
};

void ParserState::consume(std::size_t line_no, const std::string& key,
                          const std::string& value) {
    // `fault` and `vm` are list-building keys and may repeat; everything
    // else appears at most once.
    bool repeatable = key == "fault" || key == "vm";
    if (!repeatable && !seen.insert(key).second) {
      fail(line_no, "duplicate key '" + key + "'");
    }

    auto& spec = scenario.spec;
    try {
      if (key == "sensitive") {
        spec.sensitive = sensitive_kind_from_string(value);
      } else if (key == "batch") {
        spec.batch = batch_kind_from_string(value);
      } else if (key == "policy") {
        spec.policy = policy_kind_from_string(value);
      } else if (key == "duration_s") {
        spec.duration_s = parse_double(line_no, value);
      } else if (key == "period_s") {
        spec.period_s = parse_double(line_no, value);
      } else if (key == "tick_s") {
        spec.tick_s = parse_double(line_no, value);
      } else if (key == "batch_start_s") {
        spec.batch_start_s = parse_double(line_no, value);
      } else if (key == "sensitive_start_s") {
        spec.sensitive_start_s = parse_double(line_no, value);
      } else if (key == "seed") {
        spec.seed = parse_seed(line_no, value);
      } else if (key == "workload") {
        if (value != "constant" && value != "diurnal") {
          fail(line_no, "workload must be 'constant' or 'diurnal'");
        }
        scenario.workload = value;
      } else if (key == "workload_cycles") {
        scenario.workload_cycles = parse_double(line_no, value);
      } else if (key == "dedup_epsilon") {
        spec.stayaway.dedup_epsilon = parse_double(line_no, value);
      } else if (key == "prediction_samples") {
        spec.stayaway.prediction_samples =
            static_cast<std::size_t>(parse_double(line_no, value));
      } else if (key == "beta_initial") {
        spec.stayaway.governor.beta_initial = parse_double(line_no, value);
      } else if (key == "beta_increment") {
        spec.stayaway.governor.beta_increment = parse_double(line_no, value);
      } else if (key == "beta_max") {
        spec.stayaway.governor.beta_max = parse_double(line_no, value);
      } else if (key == "resume_grace_s") {
        spec.stayaway.governor.resume_grace_s = parse_double(line_no, value);
      } else if (key == "starvation_patience_s") {
        spec.stayaway.governor.starvation_patience_s =
            parse_double(line_no, value);
      } else if (key == "random_resume_probability") {
        spec.stayaway.governor.random_resume_probability =
            parse_double(line_no, value);
      } else if (key == "actions_enabled") {
        spec.stayaway.actions_enabled = parse_bool(line_no, value);
      } else if (key == "allow_sensitive_demotion") {
        spec.stayaway.allow_sensitive_demotion = parse_bool(line_no, value);
      } else if (key == "aggregate_batch") {
        spec.stayaway.sampler.aggregate_batch = parse_bool(line_no, value);
      } else if (key == "noise_fraction") {
        spec.stayaway.sampler.noise_fraction = parse_double(line_no, value);
      } else if (key == "metrics") {
        // Comma-separated sampler metric set, e.g. `metrics = cpu,mem,io`.
        std::vector<monitor::MetricKind> metrics;
        std::string rest = value;
        while (!rest.empty()) {
          auto comma = rest.find(',');
          std::string item = trim(rest.substr(0, comma));
          rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
          if (item.empty()) fail(line_no, "empty metric name in list");
          metrics.push_back(monitor::metric_kind_from_string(item));
        }
        if (metrics.empty()) fail(line_no, "metric list must not be empty");
        spec.stayaway.sampler.metrics = std::move(metrics);
      } else if (key == "ingest_source") {
        // Streaming ingestion (DESIGN.md §15): sync is the default
        // one-sample-per-period path, ring drains an async producer.
        if (value == "sync") {
          spec.stayaway.ingest.source = core::IngestSource::Synchronous;
        } else if (value == "ring") {
          spec.stayaway.ingest.source = core::IngestSource::Ring;
        } else {
          fail(line_no, "ingest_source must be 'sync' or 'ring'");
        }
      } else if (key == "ingest_rate_hz") {
        spec.stayaway.ingest.rate_hz = parse_double(line_no, value);
      } else if (key == "ingest_ring_capacity") {
        spec.stayaway.ingest.ring_capacity =
            static_cast<std::size_t>(parse_double(line_no, value));
      } else if (key == "ingest_lookahead_s") {
        spec.stayaway.ingest.lookahead_s = parse_double(line_no, value);
      } else if (key == "ingest_burst_rate_hz") {
        spec.stayaway.ingest.burst_rate_hz = parse_double(line_no, value);
      } else if (key == "ingest_burst_start_s") {
        spec.stayaway.ingest.burst_start_s = parse_double(line_no, value);
      } else if (key == "ingest_burst_end_s") {
        spec.stayaway.ingest.burst_end_s = parse_double(line_no, value);
      } else if (key == "vm") {
        // `vm = name:kind[:start_s]` — an extra named batch VM.
        auto c1 = value.find(':');
        if (c1 == std::string::npos) {
          fail(line_no, "expected 'name:kind[:start_s]', got '" + value + "'");
        }
        auto c2 = value.find(':', c1 + 1);
        ExtraVmSpec extra;
        extra.name = trim(value.substr(0, c1));
        std::string kind =
            trim(value.substr(c1 + 1, c2 == std::string::npos
                                          ? std::string::npos
                                          : c2 - c1 - 1));
        if (extra.name.empty()) fail(line_no, "empty VM name");
        if (kind.empty()) fail(line_no, "empty VM kind");
        if (!vm_names.insert(extra.name).second) {
          fail(line_no, "duplicate VM name '" + extra.name + "'");
        }
        extra.kind = batch_kind_from_string(kind);
        if (extra.kind == BatchKind::None) {
          fail(line_no, "extra VM kind must not be 'none'");
        }
        if (c2 != std::string::npos) {
          extra.start_s = parse_double(line_no, trim(value.substr(c2 + 1)));
          if (extra.start_s < 0.0) fail(line_no, "start_s must be >= 0");
        }
        spec.extra_batch.push_back(std::move(extra));
      } else if (key == "fault") {
        fault_specs.push_back(sim::parse_fault_spec(value, line_no));
      } else if (key == "fault_seed") {
        fault_seed = parse_seed(line_no, value);
      } else if (key == "compare") {
        scenario.compare = parse_bool(line_no, value);
      } else if (key == "template_in") {
        scenario.template_in = value;
      } else if (key == "template_out") {
        scenario.template_out = value;
      } else if (key == "series_csv") {
        scenario.series_csv = value;
      } else {
        fail(line_no, "unknown key '" + key + "'");
      }
    } catch (const PreconditionError& e) {
      // Re-tag enum-lookup errors with the line number.
      std::string what = e.what();
      if (what.rfind("scenario line", 0) == 0) throw;
      fail(line_no, what);
    }
}

Scenario ParserState::finish() const {
  Scenario out = scenario;
  if (out.workload == "diurnal") {
    out.spec.workload = compressed_diurnal(out.spec.duration_s,
                                           out.workload_cycles, out.spec.seed);
  }
  if (!fault_specs.empty()) {
    // Fault schedules are always explicitly seeded (the lint rule enforces
    // the same for code): fault_seed when given, else the experiment seed.
    sim::FaultPlan plan;
    plan.seed = fault_seed.value_or(out.spec.seed);
    plan.faults = fault_specs;
    out.spec.faults = std::move(plan);
  }
  return out;
}

/// Splits a colon-separated compound value, trimming each part.
std::vector<std::string> split_colons(const std::string& value) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (true) {
    auto c = value.find(':', pos);
    parts.push_back(trim(
        value.substr(pos, c == std::string::npos ? std::string::npos
                                                 : c - pos)));
    if (c == std::string::npos) break;
    pos = c + 1;
  }
  return parts;
}

/// One `[cluster]` section key (DESIGN.md §18): coordinator knobs plus
/// the repeatable mobile/admit VM lists.
void consume_cluster_key(std::size_t line_no, const std::string& key,
                         const std::string& value, ClusterSpec& cluster,
                         std::set<std::string>& seen,
                         std::set<std::string>& vm_names) {
  bool repeatable = key == "mobile" || key == "admit";
  if (!repeatable && !seen.insert(key).second) {
    fail(line_no, "duplicate key '" + key + "'");
  }
  if (key == "migrate") {
    cluster.config.migrate = parse_bool(line_no, value);
  } else if (key == "admit_margin") {
    cluster.config.admit_margin = parse_double(line_no, value);
  } else if (key == "admit_patience") {
    cluster.config.admit_patience =
        static_cast<std::size_t>(parse_double(line_no, value));
  } else if (key == "migration_cooldown") {
    cluster.config.migration_cooldown =
        static_cast<std::size_t>(parse_double(line_no, value));
  } else if (key == "admit_footprint") {
    cluster.config.admit_footprint = parse_double(line_no, value);
  } else if (key == "mobile") {
    // `mobile = name:kind:home[:start_s]` — a migratable batch VM.
    std::vector<std::string> parts = split_colons(value);
    if (parts.size() < 3 || parts.size() > 4) {
      fail(line_no, "expected 'name:kind:home[:start_s]', got '" + value + "'");
    }
    MobileVmSpec m;
    m.name = parts[0];
    if (m.name.empty()) fail(line_no, "empty VM name");
    if (!vm_names.insert(m.name).second) {
      fail(line_no, "duplicate cluster VM name '" + m.name + "'");
    }
    try {
      m.kind = batch_kind_from_string(parts[1]);
    } catch (const PreconditionError& e) {
      fail(line_no, e.what());
    }
    if (m.kind == BatchKind::None) {
      fail(line_no, "mobile VM kind must not be 'none'");
    }
    m.home = parts[2];
    if (m.home.empty()) fail(line_no, "empty home host name");
    if (parts.size() == 4) {
      m.start_s = parse_double(line_no, parts[3]);
      if (m.start_s < 0.0) fail(line_no, "start_s must be >= 0");
    }
    cluster.mobile.push_back(std::move(m));
  } else if (key == "admit") {
    // `admit = name:kind:arrival_s` — an incoming batch VM.
    std::vector<std::string> parts = split_colons(value);
    if (parts.size() != 3) {
      fail(line_no, "expected 'name:kind:arrival_s', got '" + value + "'");
    }
    AdmissionSpec a;
    a.name = parts[0];
    if (a.name.empty()) fail(line_no, "empty VM name");
    if (!vm_names.insert(a.name).second) {
      fail(line_no, "duplicate cluster VM name '" + a.name + "'");
    }
    try {
      a.kind = batch_kind_from_string(parts[1]);
    } catch (const PreconditionError& e) {
      fail(line_no, e.what());
    }
    if (a.kind == BatchKind::None) {
      fail(line_no, "admission VM kind must not be 'none'");
    }
    a.arrival_s = parse_double(line_no, parts[2]);
    if (a.arrival_s < 0.0) fail(line_no, "arrival_s must be >= 0");
    cluster.admissions.push_back(std::move(a));
  } else {
    fail(line_no, "unknown [cluster] key '" + key + "'");
  }
}

/// Parses a `[host "name"]` section header (the line arrives
/// comment-stripped and trimmed, starting with '[').
std::string parse_host_header(std::size_t line_no, const std::string& line) {
  if (line.back() != ']') fail(line_no, "unterminated section header");
  std::string inner = trim(line.substr(1, line.size() - 2));
  if (inner.rfind("host", 0) != 0) {
    fail(line_no, "unknown section '" + inner +
                      "' (expected [host \"name\"] or [cluster])");
  }
  std::string rest = trim(inner.substr(4));
  if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
    fail(line_no, "host name must be quoted: [host \"name\"]");
  }
  std::string name = rest.substr(1, rest.size() - 2);
  if (name.empty()) fail(line_no, "host name must not be empty");
  return name;
}

}  // namespace

FleetScenario parse_fleet_scenario(std::istream& in) {
  FleetScenario fleet;
  ParserState base;
  // Host states overlay a snapshot of the base state taken at their
  // section header; `current` indexes into hosts, npos = still in base.
  std::vector<std::pair<std::string, ParserState>> hosts;
  std::set<std::string> host_names;
  constexpr std::size_t kBase = static_cast<std::size_t>(-1);
  constexpr std::size_t kCluster = static_cast<std::size_t>(-2);
  std::size_t current = kBase;
  bool seen_workers = false;
  std::set<std::string> cluster_seen;
  std::set<std::string> cluster_vm_names;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(strip_comment(raw));
    // getline leaving eofbit set means the stream ran dry before the
    // delimiter: the final line lost its newline. A scenario truncated
    // mid-line (half a `key = value`) must not parse as a shorter but
    // valid scenario; an unterminated blank or comment line is harmless.
    if (in.eof() && !line.empty()) {
      fail(line_no, "truncated scenario: final line '" + line +
                        "' is missing its newline");
    }
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() == ']' &&
          trim(line.substr(1, line.size() - 2)) == "cluster") {
        if (fleet.cluster.has_value()) {
          fail(line_no, "duplicate [cluster] section");
        }
        fleet.cluster.emplace();
        fleet.fleet_syntax = true;
        current = kCluster;
        continue;
      }
      std::string name = parse_host_header(line_no, line);
      if (!host_names.insert(name).second) {
        fail(line_no, "duplicate host section '" + name + "'");
      }
      fleet.fleet_syntax = true;
      ParserState host = base;
      // Scalar base keys may be overridden once per section; inherited
      // VMs keep their names reserved so overlays cannot collide.
      host.seen.clear();
      hosts.emplace_back(std::move(name), std::move(host));
      current = hosts.size() - 1;
      continue;
    }

    auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");
    value = unquote_value(line_no, value);

    if (key == "workers") {
      if (current != kBase) {
        fail(line_no,
             "'workers' is a fleet-level key; set it before any [host] "
             "section");
      }
      if (seen_workers) fail(line_no, "duplicate key 'workers'");
      seen_workers = true;
      fleet.fleet_syntax = true;
      double v = parse_double(line_no, value);
      if (v < 1.0) fail(line_no, "workers must be >= 1");
      fleet.workers = static_cast<std::size_t>(v);
      continue;
    }

    if (current == kCluster) {
      consume_cluster_key(line_no, key, value, *fleet.cluster, cluster_seen,
                          cluster_vm_names);
      continue;
    }
    ParserState& state = current == kBase ? base : hosts[current].second;
    state.consume(line_no, key, value);
  }

  if (fleet.cluster.has_value()) {
    if (hosts.empty()) {
      throw PreconditionError(
          "a [cluster] section requires explicit [host] sections");
    }
    for (const MobileVmSpec& m : fleet.cluster->mobile) {
      if (host_names.find(m.home) == host_names.end()) {
        throw PreconditionError("mobile VM '" + m.name +
                                "' names an unknown home host: " + m.home);
      }
    }
  }
  fleet.base = base.finish();
  fleet.hosts.reserve(hosts.size());
  for (const auto& [name, state] : hosts) {
    fleet.hosts.emplace_back(name, state.finish());
  }
  return fleet;
}

Scenario parse_scenario(std::istream& in) {
  FleetScenario fleet = parse_fleet_scenario(in);
  if (fleet.fleet_syntax) {
    throw PreconditionError(
        "multi-host scenario ([host] sections / workers key): use "
        "parse_fleet_scenario");
  }
  return fleet.base;
}

namespace {

/// One scenario body in canonical key order: every scalar the parser
/// accepts is written explicitly (no reliance on defaults drifting),
/// list keys follow in spec order, optional paths only when set.
void serialize_body(const Scenario& scenario, std::string& out) {
  const ExperimentSpec& spec = scenario.spec;
  auto kv = [&out](const char* key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  };
  auto kvd = [&kv](const char* key, double value) {
    kv(key, format_double_exact(value));
  };
  auto kvb = [&kv](const char* key, bool value) {
    kv(key, value ? "true" : "false");
  };
  kv("sensitive", to_string(spec.sensitive));
  kv("batch", to_string(spec.batch));
  kv("policy", to_string(spec.policy));
  kvd("duration_s", spec.duration_s);
  kvd("period_s", spec.period_s);
  kvd("tick_s", spec.tick_s);
  kvd("batch_start_s", spec.batch_start_s);
  kvd("sensitive_start_s", spec.sensitive_start_s);
  kv("seed", std::to_string(spec.seed));
  kv("workload", scenario.workload);
  kvd("workload_cycles", scenario.workload_cycles);
  kvd("dedup_epsilon", spec.stayaway.dedup_epsilon);
  kv("prediction_samples", std::to_string(spec.stayaway.prediction_samples));
  kvd("beta_initial", spec.stayaway.governor.beta_initial);
  kvd("beta_increment", spec.stayaway.governor.beta_increment);
  kvd("beta_max", spec.stayaway.governor.beta_max);
  kvd("resume_grace_s", spec.stayaway.governor.resume_grace_s);
  kvd("starvation_patience_s", spec.stayaway.governor.starvation_patience_s);
  kvd("random_resume_probability",
      spec.stayaway.governor.random_resume_probability);
  kvb("actions_enabled", spec.stayaway.actions_enabled);
  kvb("allow_sensitive_demotion", spec.stayaway.allow_sensitive_demotion);
  kvb("aggregate_batch", spec.stayaway.sampler.aggregate_batch);
  kvd("noise_fraction", spec.stayaway.sampler.noise_fraction);
  std::vector<std::string> metric_names;
  metric_names.reserve(spec.stayaway.sampler.metrics.size());
  for (monitor::MetricKind m : spec.stayaway.sampler.metrics) {
    metric_names.emplace_back(monitor::to_string(m));
  }
  kv("metrics", join(metric_names, ","));
  if (spec.stayaway.ingest != core::IngestConfig{}) {
    // The ingest block is emitted only when it differs from the default:
    // historical scenarios (and the scenario text embedded in committed
    // run-logs) keep their exact canonical bytes.
    kv("ingest_source", spec.stayaway.ingest.source == core::IngestSource::Ring
                            ? "ring"
                            : "sync");
    kvd("ingest_rate_hz", spec.stayaway.ingest.rate_hz);
    kv("ingest_ring_capacity",
       std::to_string(spec.stayaway.ingest.ring_capacity));
    kvd("ingest_lookahead_s", spec.stayaway.ingest.lookahead_s);
    kvd("ingest_burst_rate_hz", spec.stayaway.ingest.burst_rate_hz);
    kvd("ingest_burst_start_s", spec.stayaway.ingest.burst_start_s);
    kvd("ingest_burst_end_s", spec.stayaway.ingest.burst_end_s);
  }
  for (const ExtraVmSpec& vm : spec.extra_batch) {
    kv("vm", maybe_quote(vm.name + ":" + std::string(to_string(vm.kind)) +
                         ":" + format_double_exact(vm.start_s)));
  }
  if (spec.faults.has_value() && !spec.faults->faults.empty()) {
    kv("fault_seed", std::to_string(spec.faults->seed));
    for (const sim::FaultSpec& f : spec.faults->faults) {
      kv("fault", sim::to_spec_string(f));
    }
  }
  if (scenario.compare) kvb("compare", true);
  if (scenario.template_in.has_value()) {
    kv("template_in", maybe_quote(*scenario.template_in));
  }
  if (scenario.template_out.has_value()) {
    kv("template_out", maybe_quote(*scenario.template_out));
  }
  if (scenario.series_csv.has_value()) {
    kv("series_csv", maybe_quote(*scenario.series_csv));
  }
}

}  // namespace

std::string serialize_scenario(const Scenario& scenario) {
  std::string out;
  serialize_body(scenario, out);
  return out;
}

std::string serialize_fleet_scenario(const FleetScenario& fleet) {
  if (!fleet.fleet_syntax) return serialize_scenario(fleet.base);
  std::string out = "workers = " + std::to_string(fleet.workers) + "\n";
  if (fleet.cluster.has_value()) {
    // Every knob explicit, VM lists in spec order; ClusterSpec::restore
    // is runtime-only state and never serialized.
    const ClusterSpec& c = *fleet.cluster;
    out += "[cluster]\n";
    out += std::string("migrate = ") +
           (c.config.migrate ? "true" : "false") + "\n";
    out += "admit_margin = " + format_double_exact(c.config.admit_margin) +
           "\n";
    out += "admit_patience = " + std::to_string(c.config.admit_patience) +
           "\n";
    out += "migration_cooldown = " +
           std::to_string(c.config.migration_cooldown) + "\n";
    out += "admit_footprint = " +
           format_double_exact(c.config.admit_footprint) + "\n";
    for (const MobileVmSpec& m : c.mobile) {
      out += "mobile = " +
             maybe_quote(m.name + ":" + std::string(to_string(m.kind)) + ":" +
                         m.home + ":" + format_double_exact(m.start_s)) +
             "\n";
    }
    for (const AdmissionSpec& a : c.admissions) {
      out += "admit = " +
             maybe_quote(a.name + ":" + std::string(to_string(a.kind)) + ":" +
                         format_double_exact(a.arrival_s)) +
             "\n";
    }
  }
  if (fleet.hosts.empty()) {
    // Degenerate fleet syntax (workers key only): the base body is the
    // single host.
    serialize_body(fleet.base, out);
    return out;
  }
  // Hosts are emitted fully expanded with no shared base body, so the
  // overlay order of the original document cannot change what a section
  // means when the canonical form is reparsed.
  for (const auto& [name, scenario] : fleet.hosts) {
    SA_REQUIRE(name.find('"') == std::string::npos &&
                   name.find('\n') == std::string::npos,
               "host names with quotes or newlines cannot be serialized");
    out += "[host \"" + name + "\"]\n";
    serialize_body(scenario, out);
  }
  return out;
}

}  // namespace stayaway::harness
