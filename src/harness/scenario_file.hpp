// Scenario files: a small key = value format describing an experiment,
// consumed by the stayaway_sim command-line tool (tools/). Lets a user
// run co-location studies without writing C++.
//
//   # VLC protected from the Twitter analytics job
//   sensitive   = vlc-stream
//   batch       = twitter-analysis
//   policy      = stay-away
//   duration_s  = 300
//   workload    = diurnal
//   compare     = true          # also run no-prevention + isolated
//   template_out = vlc.template.csv
//
// Optional robustness keys (DESIGN.md §12):
//   metrics    = cpu,mem,io          # sampler metric set
//   vm         = extra1:cpubomb:30   # extra named batch VM (repeatable)
//   fault_seed = 7                   # fault plan seed (default: seed)
//   fault      = sensor-dropout start=20 end=60 p=0.2   # repeatable
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "harness/experiment.hpp"

namespace stayaway::harness {

/// Enum lookups (throw PreconditionError on unknown names).
SensitiveKind sensitive_kind_from_string(const std::string& name);
BatchKind batch_kind_from_string(const std::string& name);
PolicyKind policy_kind_from_string(const std::string& name);

struct Scenario {
  ExperimentSpec spec;
  /// Also run the no-prevention and isolated references and report the
  /// gained utilization / violation comparison.
  bool compare = false;
  /// Load a template before the run / save the learned one after.
  std::optional<std::string> template_in;
  std::optional<std::string> template_out;
  /// Dump the per-period series to this CSV path.
  std::optional<std::string> series_csv;
};

/// Parses a scenario document. Unknown keys, malformed lines, invalid
/// values, duplicate VM names and unknown fault/metric kinds throw
/// PreconditionError naming the offending line. Empty lines and '#'
/// comments are ignored; keys may appear at most once, except the
/// list-building `fault` and `vm` keys.
Scenario parse_scenario(std::istream& in);

}  // namespace stayaway::harness
