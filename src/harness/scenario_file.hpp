// Scenario files: a small key = value format describing an experiment,
// consumed by the stayaway_sim command-line tool (tools/). Lets a user
// run co-location studies without writing C++.
//
//   # VLC protected from the Twitter analytics job
//   sensitive   = vlc-stream
//   batch       = twitter-analysis
//   policy      = stay-away
//   duration_s  = 300
//   workload    = diurnal
//   compare     = true          # also run no-prevention + isolated
//   template_out = vlc.template.csv
//
// Optional robustness keys (DESIGN.md §12):
//   metrics    = cpu,mem,io          # sampler metric set
//   vm         = extra1:cpubomb:30   # extra named batch VM (repeatable)
//   fault_seed = 7                   # fault plan seed (default: seed)
//   fault      = sensor-dropout start=20 end=60 p=0.2   # repeatable
//
// Multi-host fleet scenarios (DESIGN.md §13) add `[host "name"]`
// sections and the fleet-level `workers` key. Keys before the first
// section form the base scenario every host inherits; a section's keys
// overlay it (scalar keys override, the list-building `vm`/`fault` keys
// append):
//
//   sensitive = vlc-stream
//   policy    = stay-away
//   workers   = 4
//   [host "web-a"]
//   batch = twitter-analysis
//   [host "web-b"]
//   batch = cpubomb
//   seed  = 7
//
// Cluster coordination (DESIGN.md §18) adds a `[cluster]` section to a
// multi-host document — coordinator knobs plus the repeatable `mobile`
// (migratable batch VM: name:kind:home[:start_s]) and `admit` (incoming
// batch VM: name:kind:arrival_s) keys:
//
//   [cluster]
//   migrate = true
//   admit_margin = 0.25
//   mobile = crunch:cpubomb:web-a:20
//   admit  = late:soplex:90
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/fleet.hpp"

namespace stayaway::harness {

/// Enum lookups (throw PreconditionError on unknown names).
SensitiveKind sensitive_kind_from_string(const std::string& name);
BatchKind batch_kind_from_string(const std::string& name);
PolicyKind policy_kind_from_string(const std::string& name);

struct Scenario {
  ExperimentSpec spec;
  /// Workload kind as written ("constant" or "diurnal"); spec.workload
  /// holds the trace it materialized into. Retained so serialization
  /// round-trips — same kind + cycles + seed + duration regenerates the
  /// identical trace.
  std::string workload = "constant";
  double workload_cycles = 1.5;
  /// Also run the no-prevention and isolated references and report the
  /// gained utilization / violation comparison.
  bool compare = false;
  /// Load a template before the run / save the learned one after.
  std::optional<std::string> template_in;
  std::optional<std::string> template_out;
  /// Dump the per-period series to this CSV path.
  std::optional<std::string> series_csv;
};

/// A parsed multi-host scenario document.
struct FleetScenario {
  /// The keys before any [host] section — on its own a complete,
  /// runnable single-host scenario.
  Scenario base;
  /// Per-host overlays in file order: (section name, base scenario with
  /// the section's overrides applied). Empty for plain documents.
  std::vector<std::pair<std::string, Scenario>> hosts;
  /// Fleet-level `workers` key (hosts driven concurrently).
  std::size_t workers = 1;
  /// Parsed [cluster] section (DESIGN.md §18); nullopt without one. Only
  /// valid alongside [host] sections.
  std::optional<ClusterSpec> cluster;
  /// True when the document used any fleet syntax ([host] or [cluster]
  /// sections or the workers key), even for a degenerate fleet of one.
  bool fleet_syntax = false;
};

/// Parses a scenario document. Unknown keys, malformed lines, invalid
/// values, duplicate VM names and unknown fault/metric kinds throw
/// PreconditionError naming the offending line. Empty lines and '#'
/// comments are ignored ('#' inside a quoted value is literal); keys may
/// appear at most once, except the list-building `fault` and `vm` keys.
/// Values may be double-quoted ("a # b") with \\ \" \n \t \r escapes —
/// required when a value contains '#', a quote, or significant leading/
/// trailing whitespace. Rejects fleet syntax — use parse_fleet_scenario
/// for documents with [host] sections.
Scenario parse_scenario(std::istream& in);

/// Parses a scenario document that may contain [host "name"] sections
/// and the `workers` key (see the header comment for the syntax). Plain
/// single-host documents parse with hosts empty and base identical to
/// parse_scenario's result. Section names must be unique and non-empty;
/// per-section keys may override any base key once.
FleetScenario parse_fleet_scenario(std::istream& in);

/// Canonical scenario-document form of a parsed scenario: every spec
/// scalar written explicitly with exact-round-trip numbers, values
/// quoted when they need it. parse_scenario(serialize_scenario(s))
/// reproduces s, and serialize ∘ parse is a fixed point (pinned in
/// tests/test_scenario_file.cpp). The run-log recorder (DESIGN.md §14)
/// embeds scenarios through this.
std::string serialize_scenario(const Scenario& scenario);

/// Fleet documents serialize with the workers key first and every host
/// as a fully expanded [host "name"] section (no inherited base keys —
/// overlay ordering cannot change what a section means). Plain
/// documents serialize exactly like serialize_scenario.
std::string serialize_fleet_scenario(const FleetScenario& fleet);

}  // namespace stayaway::harness
