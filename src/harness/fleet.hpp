// Fleet experiment runner (DESIGN.md §13): N named per-host experiment
// specs driven as independent HostPipelines by core::FleetController,
// optionally concurrently. Each host gets its own simulated host, VM set,
// RNG streams and degradation state; the per-host results are the same
// ExperimentResult the single-host runner produces. A fleet of one host
// replays run_experiment byte-for-byte (golden test in
// tests/test_fleet.cpp, fault-free and under a fault plan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster/coordinator.hpp"
#include "core/fleet.hpp"
#include "harness/experiment.hpp"

namespace stayaway::harness {

/// A batch VM the cluster coordinator may migrate between hosts
/// (DESIGN.md §18). Pre-provisioned as a twin on every host: attached on
/// `home` at start_s, parked (detached) everywhere else. Single-app
/// batch kinds only.
struct MobileVmSpec {
  std::string name;
  BatchKind kind = BatchKind::CpuBomb;
  std::string home;
  double start_s = 15.0;
};

/// An incoming batch VM asking to join the cluster at arrival_s. Parked
/// on every host until the coordinator admits it (or rejects it once the
/// queue patience runs out).
struct AdmissionSpec {
  std::string name;
  BatchKind kind = BatchKind::CpuBomb;
  double arrival_s = 60.0;
};

/// Cluster coordination for a fleet (DESIGN.md §18). Setting this turns
/// run_fleet into a lockstep coordinated run: the ClusterCoordinator
/// steps between fleet periods, every host's actuator is wrapped in a
/// MigrationActuator, and workers are ignored (coordinated fleets are
/// sequential by construction). Absent, the fleet behaves exactly as
/// before — byte-identical to a coordinator-free run.
struct ClusterSpec {
  core::cluster::ClusterConfig config;
  std::vector<MobileVmSpec> mobile;
  std::vector<AdmissionSpec> admissions;
  /// Coordinator blob to warm-start from (encode_coordinator); pair it
  /// with per-host FleetSpec::restore entries from the same run.
  std::string restore;
};

/// One host's slot in a fleet scenario. The name must be unique across
/// the fleet; in fleets of more than one host it labels the host's
/// observability (metric prefix + event "host" field).
struct FleetHostSpec {
  std::string name;
  ExperimentSpec experiment;
};

struct FleetSpec {
  std::vector<FleetHostSpec> hosts;
  /// Hosts driven concurrently (core::FleetController workers). More
  /// than one worker requires the hot-path pool pinned to one thread —
  /// host-level and kernel-level parallelism do not compose.
  std::size_t workers = 1;
  /// Shared passive observer for every host that does not carry its own
  /// (ExperimentSpec::observer takes precedence per host). With more
  /// than one host, metric keys gain a "host.<name>." prefix and events
  /// a "host" field; a fleet of one keeps the historical names.
  obs::Observer* observer = nullptr;
  /// Optional passive per-period recorder (DESIGN.md §14): receives
  /// every PeriodRecord the controller emits, tagged with the host name.
  /// Borrowed; must be thread-safe when workers > 1.
  core::PeriodSink* recorder = nullptr;
  // --- Fault tolerance (DESIGN.md §17). -------------------------------
  /// Run every member under the crash supervisor even when its fault
  /// plan injects no crash-class faults. Members whose plan does carry
  /// crash faults are supervised regardless.
  bool supervise = false;
  /// Supervisor checkpoint cadence in periods (0 = off; crash recovery
  /// then cold-replays from period zero — byte-identical either way).
  std::size_t checkpoint_every = 0;
  /// Stall retries before the watchdog escalates to a crash recovery.
  std::size_t watchdog_budget = 3;
  /// When true each host's final checkpoint lands in
  /// FleetHostResult::final_checkpoint (empty for non-checkpointable
  /// pipelines) — what `stayaway_sim --checkpoint-dir` writes to disk.
  bool export_checkpoints = false;
  /// Per-host checkpoint blobs to warm-start from (keyed by host name;
  /// hosts without an entry start cold). The restored periods are
  /// replayed silently: the per-period result series (time/qos/...)
  /// cover only the live tail, while stayaway_records always span the
  /// full history.
  std::map<std::string, std::string> restore;
  // --- Cluster coordination (DESIGN.md §18). --------------------------
  std::optional<ClusterSpec> cluster;
};

struct FleetHostResult {
  std::string name;
  ExperimentResult result;
  /// What the supervisor trapped and repaired for this host; all zeros
  /// for an unsupervised or failure-free run.
  core::RecoveryReport recovery;
  /// Encoded end-of-run checkpoint (FleetSpec::export_checkpoints).
  std::string final_checkpoint;
};

/// What the cluster coordinator did over the run (FleetSpec::cluster).
struct ClusterReport {
  std::size_t migrations = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t queued = 0;  // still waiting when the run ended
  /// Canonical decision log in decision order (run-log `cluster-events`).
  std::vector<std::string> events;
  /// Encoded coordinator state (FleetSpec::export_checkpoints), restored
  /// through ClusterSpec::restore.
  std::string final_coordinator;
};

struct FleetResult {
  std::vector<FleetHostResult> hosts;
  /// Present exactly when the spec carried a ClusterSpec.
  std::optional<ClusterReport> cluster;
};

/// Homogeneous fleet helper: `host_count` copies of `base` named
/// "host0".."hostN-1", each with a decorrelated per-host seed split from
/// `base_seed` (core::fleet_host_seed).
FleetSpec replicate_fleet(const ExperimentSpec& base, std::size_t host_count,
                          std::uint64_t base_seed, std::size_t workers);

/// Runs every host of the fleet to completion; results are returned in
/// spec order regardless of worker scheduling.
FleetResult run_fleet(const FleetSpec& spec);

}  // namespace stayaway::harness
