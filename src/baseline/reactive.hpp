// Reactive throttling baseline: act only after a violation is observed.
//
// This is the natural non-predictive comparator for Stay-Away — identical
// actuation (pause/resume of batch VMs) but no state-space model, so every
// contention episode costs at least one violated period before the pause
// lands, and resumes are blind timeouts instead of phase-change detection.
#pragma once

#include "baseline/policy.hpp"

namespace stayaway::baseline {

struct ReactiveConfig {
  /// Seconds the batch stays paused after a violation-triggered pause.
  double cooldown_s = 10.0;
};

class ReactiveThrottle final : public InterferencePolicy {
 public:
  explicit ReactiveThrottle(ReactiveConfig config = {});

  std::string_view name() const override { return "reactive"; }
  PolicyDecision on_period(sim::SimHost& host,
                           const sim::QosProbe& probe) override;

  std::size_t pauses() const { return pauses_; }

 private:
  ReactiveConfig config_;
  bool paused_ = false;
  double paused_at_ = 0.0;
  std::size_t pauses_ = 0;
};

}  // namespace stayaway::baseline
