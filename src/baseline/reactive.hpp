// Reactive throttling baseline: act only after a violation is observed.
//
// This is the natural non-predictive comparator for Stay-Away — identical
// actuation (pause/resume of batch VMs) but no state-space model, so every
// contention episode costs at least one violated period before the pause
// lands, and resumes are blind timeouts instead of phase-change detection.
//
// Since the stage decomposition (DESIGN.md §13) the decision logic lives
// in stages/reactive_actuator.hpp; this class adapts the stage to the
// legacy InterferencePolicy interface the harness drives.
#pragma once

#include "baseline/policy.hpp"
#include "baseline/stages/reactive_actuator.hpp"

namespace stayaway::baseline {

class ReactiveThrottle final : public InterferencePolicy {
 public:
  explicit ReactiveThrottle(ReactiveConfig config = {});

  std::string_view name() const override { return "reactive"; }
  PolicyDecision on_period(sim::SimHost& host,
                           const sim::QosProbe& probe) override;

  std::size_t pauses() const { return stage_.pauses(); }

 private:
  ReactiveActuator stage_;
};

}  // namespace stayaway::baseline
