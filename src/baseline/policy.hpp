// Interference-mitigation policy interface.
//
// The experiment harness drives any policy through this interface once
// per control period, which is how Stay-Away is compared against the
// paper's implicit baselines (no prevention; §7's "without any
// prevention" upper band) and the ablation baselines (reactive-only and
// static-threshold throttling).
#pragma once

#include <string_view>

#include "sim/app_model.hpp"
#include "sim/host.hpp"

namespace stayaway::baseline {

class InterferencePolicy {
 public:
  virtual ~InterferencePolicy() = default;

  virtual std::string_view name() const = 0;

  /// Invoked after each control period's simulation ticks. The policy may
  /// pause/resume batch VMs on the host.
  virtual void on_period(sim::SimHost& host, const sim::QosProbe& probe) = 0;
};

/// "No prevention": co-locate and never act — the upper utilization band
/// and the violating QoS curves of Figures 8-11.
class NoPrevention final : public InterferencePolicy {
 public:
  std::string_view name() const override { return "no-prevention"; }
  void on_period(sim::SimHost&, const sim::QosProbe&) override {}
};

}  // namespace stayaway::baseline
