// Interference-mitigation policy interface.
//
// The experiment harness drives any policy through this interface once
// per control period, which is how Stay-Away is compared against the
// paper's implicit baselines (no prevention; §7's "without any
// prevention" upper band) and the ablation baselines (reactive-only and
// static-threshold throttling).
//
// Each period returns a PolicyDecision — what the policy did and why —
// so the harness can log every policy's behaviour uniformly through the
// observability event sink instead of each policy printing its own.
#pragma once

#include <string_view>
#include <vector>

#include "sim/app_model.hpp"
#include "sim/host.hpp"

namespace stayaway::baseline {

enum class PolicyAction {
  None,
  Pause,
  Resume,
};

const char* to_string(PolicyAction action);

/// What a policy did in one control period.
struct PolicyDecision {
  PolicyAction action = PolicyAction::None;
  /// VMs the action touched: the set paused by a Pause, or the set
  /// released by a Resume. Empty for None.
  std::vector<sim::VmId> targets;
  /// Why the action fired — a static string ("observed-violation",
  /// "cooldown-elapsed", "beta-exceeded", ...). Empty for None.
  std::string_view reason;
  /// Whether the policy considers the batch paused after this period.
  bool batch_paused_after = false;
};

class InterferencePolicy {
 public:
  virtual ~InterferencePolicy() = default;

  virtual std::string_view name() const = 0;

  /// Invoked after each control period's simulation ticks. The policy may
  /// pause/resume batch VMs on the host; the returned decision describes
  /// what it did.
  virtual PolicyDecision on_period(sim::SimHost& host,
                                   const sim::QosProbe& probe) = 0;
};

/// "No prevention": co-locate and never act — the upper utilization band
/// and the violating QoS curves of Figures 8-11.
class NoPrevention final : public InterferencePolicy {
 public:
  std::string_view name() const override { return "no-prevention"; }
  PolicyDecision on_period(sim::SimHost&, const sim::QosProbe&) override {
    return {};
  }
};

}  // namespace stayaway::baseline
