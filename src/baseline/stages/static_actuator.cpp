#include "baseline/stages/static_actuator.hpp"

#include "util/check.hpp"

namespace stayaway::baseline {

StaticThresholdActuator::StaticThresholdActuator(StaticThresholdConfig config)
    : config_(config) {
  SA_REQUIRE(config.hysteresis >= 0.0, "hysteresis must be non-negative");
}

core::Actuator::Outcome StaticThresholdActuator::act(core::ActuationPort& port,
                                                     core::PeriodRecord& rec,
                                                     core::DegradationState,
                                                     obs::Observer* observer) {
  obs::Span act_span = observer != nullptr ? observer->span("act", rec.time)
                                           : obs::Span{};
  core::ResourceUtilization u = port.utilization();
  Outcome outcome;
  if (!paused_) {
    bool over = u.cpu > config_.cpu_cap || u.memory > config_.memory_cap ||
                u.membw > config_.membw_cap;
    if (over) {
      for (sim::VmId id : port.all_batch()) {
        port.pause(id);
        outcome.paused.push_back(id);
      }
      paused_ = true;
      ++pauses_;
      rec.action = core::ThrottleAction::Pause;
      outcome.reason = "threshold-exceeded";
    }
  } else {
    bool clear = u.cpu < config_.cpu_cap - config_.hysteresis &&
                 u.memory < config_.memory_cap - config_.hysteresis &&
                 u.membw < config_.membw_cap - config_.hysteresis;
    if (clear) {
      for (sim::VmId id : port.all_batch()) {
        port.resume(id);
        outcome.resumed.push_back(id);
      }
      paused_ = false;
      rec.action = core::ThrottleAction::Resume;
      outcome.reason = "below-hysteresis";
    }
  }
  rec.batch_paused_after = paused_;
  act_span.close();
  return outcome;
}

}  // namespace stayaway::baseline
