// StaticThresholdActuator — the static-threshold baseline as a pipeline
// stage (core::Actuator): pause the batch whenever host utilization of
// any resource crosses a fixed cap, resume below a hysteresis margin.
// Stands in for the profile-once approaches the paper argues against
// (§1, §8). All host effects (including the utilization read) go through
// the injected ActuationPort; StaticThreshold in
// baseline/static_threshold.hpp adapts this stage to the legacy
// InterferencePolicy interface.
#pragma once

#include <cstddef>

#include "core/stages/stage.hpp"

namespace stayaway::baseline {

struct StaticThresholdConfig {
  double cpu_cap = 0.85;     // of host cores
  double memory_cap = 0.90;  // of physical memory
  double membw_cap = 0.85;   // of bus bandwidth
  double hysteresis = 0.10;  // resume once below cap - hysteresis
};

class StaticThresholdActuator final : public core::Actuator {
 public:
  explicit StaticThresholdActuator(StaticThresholdConfig config = {});

  /// Ignores the record's prediction slice entirely: the decision is a
  /// pure function of port.utilization() and the pause latch. Fills
  /// rec.action/batch_paused_after.
  Outcome act(core::ActuationPort& port, core::PeriodRecord& rec,
              core::DegradationState degradation,
              obs::Observer* observer) override;

  bool batch_paused() const { return paused_; }
  std::size_t pauses() const { return pauses_; }

 private:
  StaticThresholdConfig config_;
  bool paused_ = false;
  std::size_t pauses_ = 0;
};

}  // namespace stayaway::baseline
