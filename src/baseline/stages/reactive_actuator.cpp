#include "baseline/stages/reactive_actuator.hpp"

#include "util/check.hpp"

namespace stayaway::baseline {

ReactiveActuator::ReactiveActuator(ReactiveConfig config) : config_(config) {
  SA_REQUIRE(config.cooldown_s > 0.0, "cooldown must be positive");
}

core::Actuator::Outcome ReactiveActuator::act(core::ActuationPort& port,
                                              core::PeriodRecord& rec,
                                              core::DegradationState,
                                              obs::Observer* observer) {
  obs::Span act_span = observer != nullptr ? observer->span("act", rec.time)
                                           : obs::Span{};
  Outcome outcome;
  if (!paused_) {
    if (rec.violation_observed) {
      for (sim::VmId id : port.all_batch()) {
        port.pause(id);
        outcome.paused.push_back(id);
      }
      paused_ = true;
      paused_at_ = port.now();
      ++pauses_;
      rec.action = core::ThrottleAction::Pause;
      outcome.reason = "observed-violation";
    }
  } else if (port.now() - paused_at_ >= config_.cooldown_s) {
    for (sim::VmId id : port.all_batch()) {
      port.resume(id);
      outcome.resumed.push_back(id);
    }
    paused_ = false;
    rec.action = core::ThrottleAction::Resume;
    outcome.reason = "cooldown-elapsed";
  }
  rec.batch_paused_after = paused_;
  act_span.close();
  return outcome;
}

}  // namespace stayaway::baseline
