// ReactiveActuator — the reactive-throttling baseline as a pipeline
// stage (core::Actuator): pause every batch VM the period a violation is
// observed, resume after a blind cooldown. No model, no prediction — the
// non-predictive comparator for Stay-Away running in the same pipeline
// shape (DESIGN.md §13). All host effects go through the injected
// ActuationPort; ReactiveThrottle in baseline/reactive.hpp adapts this
// stage to the legacy InterferencePolicy interface.
#pragma once

#include <cstddef>

#include "core/stages/stage.hpp"

namespace stayaway::baseline {

struct ReactiveConfig {
  /// Seconds the batch stays paused after a violation-triggered pause.
  double cooldown_s = 10.0;
};

class ReactiveActuator final : public core::Actuator {
 public:
  explicit ReactiveActuator(ReactiveConfig config = {});

  /// Reads rec.violation_observed (the pipeline fills it from the probe,
  /// gated on QoS visibility) and fills rec.action/batch_paused_after.
  Outcome act(core::ActuationPort& port, core::PeriodRecord& rec,
              core::DegradationState degradation,
              obs::Observer* observer) override;

  bool batch_paused() const { return paused_; }
  std::size_t pauses() const { return pauses_; }

 private:
  ReactiveConfig config_;
  bool paused_ = false;
  double paused_at_ = 0.0;
  std::size_t pauses_ = 0;
};

}  // namespace stayaway::baseline
