#include "baseline/reactive.hpp"

#include "util/check.hpp"

namespace stayaway::baseline {

ReactiveThrottle::ReactiveThrottle(ReactiveConfig config) : config_(config) {
  SA_REQUIRE(config.cooldown_s > 0.0, "cooldown must be positive");
}

void ReactiveThrottle::on_period(sim::SimHost& host,
                                 const sim::QosProbe& probe) {
  if (!paused_) {
    if (probe.violated()) {
      for (sim::VmId id : host.vms_of_kind(sim::VmKind::Batch)) {
        host.vm(id).pause();
      }
      paused_ = true;
      paused_at_ = host.now();
      ++pauses_;
    }
    return;
  }
  if (host.now() - paused_at_ >= config_.cooldown_s) {
    for (sim::VmId id : host.vms_of_kind(sim::VmKind::Batch)) {
      host.vm(id).resume();
    }
    paused_ = false;
  }
}

}  // namespace stayaway::baseline
