#include "baseline/reactive.hpp"

#include <utility>

#include "core/host_port.hpp"

namespace stayaway::baseline {

ReactiveThrottle::ReactiveThrottle(ReactiveConfig config) : stage_(config) {}

PolicyDecision ReactiveThrottle::on_period(sim::SimHost& host,
                                           const sim::QosProbe& probe) {
  core::SimHostActuationPort port(host);
  core::PeriodRecord rec;
  rec.time = host.now();
  rec.violation_observed = probe.violated();
  core::Actuator::Outcome outcome =
      stage_.act(port, rec, core::DegradationState::Normal, nullptr);
  PolicyDecision decision;
  decision.batch_paused_after = rec.batch_paused_after;
  decision.reason = outcome.reason;
  if (rec.action == core::ThrottleAction::Pause) {
    decision.action = PolicyAction::Pause;
    decision.targets = std::move(outcome.paused);
  } else if (rec.action == core::ThrottleAction::Resume) {
    decision.action = PolicyAction::Resume;
    decision.targets = std::move(outcome.resumed);
  }
  return decision;
}

}  // namespace stayaway::baseline
