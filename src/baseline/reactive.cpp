#include "baseline/reactive.hpp"

#include "util/check.hpp"

namespace stayaway::baseline {

ReactiveThrottle::ReactiveThrottle(ReactiveConfig config) : config_(config) {
  SA_REQUIRE(config.cooldown_s > 0.0, "cooldown must be positive");
}

PolicyDecision ReactiveThrottle::on_period(sim::SimHost& host,
                                           const sim::QosProbe& probe) {
  PolicyDecision decision;
  if (!paused_) {
    if (probe.violated()) {
      for (sim::VmId id : host.vms_of_kind(sim::VmKind::Batch)) {
        host.vm(id).pause();
        decision.targets.push_back(id);
      }
      paused_ = true;
      paused_at_ = host.now();
      ++pauses_;
      decision.action = PolicyAction::Pause;
      decision.reason = "observed-violation";
    }
    decision.batch_paused_after = paused_;
    return decision;
  }
  if (host.now() - paused_at_ >= config_.cooldown_s) {
    for (sim::VmId id : host.vms_of_kind(sim::VmKind::Batch)) {
      host.vm(id).resume();
      decision.targets.push_back(id);
    }
    paused_ = false;
    decision.action = PolicyAction::Resume;
    decision.reason = "cooldown-elapsed";
  }
  decision.batch_paused_after = paused_;
  return decision;
}

}  // namespace stayaway::baseline
