#include "baseline/policy.hpp"

// The interface and NoPrevention are header-only; this translation unit
// anchors the vtable and the enum names.

namespace stayaway::baseline {

const char* to_string(PolicyAction action) {
  switch (action) {
    case PolicyAction::None:
      return "none";
    case PolicyAction::Pause:
      return "pause";
    case PolicyAction::Resume:
      return "resume";
  }
  return "unknown";
}

}  // namespace stayaway::baseline
