#include "baseline/policy.hpp"

// The interface and NoPrevention are header-only; this translation unit
// anchors the vtable.

namespace stayaway::baseline {}  // namespace stayaway::baseline
