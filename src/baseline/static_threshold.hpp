// Static-threshold baseline: throttle the batch whenever host utilization
// of any resource crosses a fixed cap, resume below a hysteresis margin.
//
// This stands in for the static, profile-once approaches the paper argues
// against (§1, §8): a fixed rule cannot distinguish harmless high
// utilization (sensitive app comfortably at peak alone) from contention,
// so it either over-throttles or misses swap-driven violations that occur
// at modest CPU utilization.
//
// Since the stage decomposition (DESIGN.md §13) the decision logic lives
// in stages/static_actuator.hpp; this class adapts the stage to the
// legacy InterferencePolicy interface the harness drives.
#pragma once

#include "baseline/policy.hpp"
#include "baseline/stages/static_actuator.hpp"

namespace stayaway::baseline {

class StaticThreshold final : public InterferencePolicy {
 public:
  explicit StaticThreshold(StaticThresholdConfig config = {});

  std::string_view name() const override { return "static-threshold"; }
  PolicyDecision on_period(sim::SimHost& host,
                           const sim::QosProbe& probe) override;

  std::size_t pauses() const { return stage_.pauses(); }

 private:
  StaticThresholdActuator stage_;
};

}  // namespace stayaway::baseline
