// Static-threshold baseline: throttle the batch whenever host utilization
// of any resource crosses a fixed cap, resume below a hysteresis margin.
//
// This stands in for the static, profile-once approaches the paper argues
// against (§1, §8): a fixed rule cannot distinguish harmless high
// utilization (sensitive app comfortably at peak alone) from contention,
// so it either over-throttles or misses swap-driven violations that occur
// at modest CPU utilization.
#pragma once

#include "baseline/policy.hpp"

namespace stayaway::baseline {

struct StaticThresholdConfig {
  double cpu_cap = 0.85;      // of host cores
  double memory_cap = 0.90;   // of physical memory
  double membw_cap = 0.85;    // of bus bandwidth
  double hysteresis = 0.10;   // resume once below cap - hysteresis
};

class StaticThreshold final : public InterferencePolicy {
 public:
  explicit StaticThreshold(StaticThresholdConfig config = {});

  std::string_view name() const override { return "static-threshold"; }
  PolicyDecision on_period(sim::SimHost& host,
                           const sim::QosProbe& probe) override;

  std::size_t pauses() const { return pauses_; }

 private:
  /// Utilization fractions of the host for the last tick, computed from
  /// granted allocations of present VMs.
  struct Utilization {
    double cpu = 0.0;
    double memory = 0.0;
    double membw = 0.0;
  };
  static Utilization measure(const sim::SimHost& host);

  StaticThresholdConfig config_;
  bool paused_ = false;
  std::size_t pauses_ = 0;
};

}  // namespace stayaway::baseline
