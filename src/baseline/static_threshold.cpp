#include "baseline/static_threshold.hpp"

#include "util/check.hpp"

namespace stayaway::baseline {

StaticThreshold::StaticThreshold(StaticThresholdConfig config)
    : config_(config) {
  SA_REQUIRE(config.hysteresis >= 0.0, "hysteresis must be non-negative");
}

StaticThreshold::Utilization StaticThreshold::measure(const sim::SimHost& host) {
  Utilization u;
  const auto& spec = host.spec();
  for (sim::VmId id = 0; id < host.vm_count(); ++id) {
    const auto& g = host.vm(id).last_allocation().granted;
    u.cpu += g.cpu_cores / spec.cpu_cores;
    u.memory += g.memory_mb / spec.memory_mb;
    u.membw += g.membw_mbps / spec.membw_mbps;
  }
  return u;
}

PolicyDecision StaticThreshold::on_period(sim::SimHost& host,
                                          const sim::QosProbe&) {
  Utilization u = measure(host);
  PolicyDecision decision;
  if (!paused_) {
    bool over = u.cpu > config_.cpu_cap || u.memory > config_.memory_cap ||
                u.membw > config_.membw_cap;
    if (over) {
      for (sim::VmId id : host.vms_of_kind(sim::VmKind::Batch)) {
        host.vm(id).pause();
        decision.targets.push_back(id);
      }
      paused_ = true;
      ++pauses_;
      decision.action = PolicyAction::Pause;
      decision.reason = "threshold-exceeded";
    }
    decision.batch_paused_after = paused_;
    return decision;
  }
  bool clear = u.cpu < config_.cpu_cap - config_.hysteresis &&
               u.memory < config_.memory_cap - config_.hysteresis &&
               u.membw < config_.membw_cap - config_.hysteresis;
  if (clear) {
    for (sim::VmId id : host.vms_of_kind(sim::VmKind::Batch)) {
      host.vm(id).resume();
      decision.targets.push_back(id);
    }
    paused_ = false;
    decision.action = PolicyAction::Resume;
    decision.reason = "below-hysteresis";
  }
  decision.batch_paused_after = paused_;
  return decision;
}

}  // namespace stayaway::baseline
