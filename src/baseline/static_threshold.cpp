#include "baseline/static_threshold.hpp"

#include <utility>

#include "core/host_port.hpp"

namespace stayaway::baseline {

StaticThreshold::StaticThreshold(StaticThresholdConfig config)
    : stage_(config) {}

PolicyDecision StaticThreshold::on_period(sim::SimHost& host,
                                          const sim::QosProbe&) {
  core::SimHostActuationPort port(host);
  core::PeriodRecord rec;
  rec.time = host.now();
  core::Actuator::Outcome outcome =
      stage_.act(port, rec, core::DegradationState::Normal, nullptr);
  PolicyDecision decision;
  decision.batch_paused_after = rec.batch_paused_after;
  decision.reason = outcome.reason;
  if (rec.action == core::ThrottleAction::Pause) {
    decision.action = PolicyAction::Pause;
    decision.targets = std::move(outcome.paused);
  } else if (rec.action == core::ThrottleAction::Resume) {
    decision.action = PolicyAction::Resume;
    decision.targets = std::move(outcome.resumed);
  }
  return decision;
}

}  // namespace stayaway::baseline
