// VLC streaming server model (the paper's first latency-sensitive app).
//
// The paper instruments VLC 2.0.5 streaming a movie in real time; "the
// minimum transcoding rate required to provide real time viewing without
// any loss of frames at the server side is defined as the QoS threshold"
// (§7.1). The model transcodes frames at a nominal rate with CPU demand
// scaled by the client workload intensity (a Trace); the achieved rate is
// the nominal rate times the end-to-end progress factor, smoothed over a
// short window the way a frame-rate counter would be.
#pragma once

#include <optional>

#include "apps/qos_latch.hpp"
#include "sim/app_model.hpp"
#include "trace/trace.hpp"

namespace stayaway::apps {

struct VlcStreamSpec {
  double nominal_fps = 30.0;    // achievable transcode rate, unthrottled
  double threshold_fps = 24.0;  // minimum for real-time delivery
  double cpu_at_peak = 2.6;     // cores demanded at workload peak
  double cpu_at_valley = 1.6;   // cores demanded at workload valley —
                                // real-time transcoding never idles (§7.1)
  double memory_mb = 450.0;     // decode/encode buffers
  double membw_mbps = 2500.0;   // frame buffer traffic at peak
  double net_at_peak_mbps = 220.0;
  double disk_mbps = 25.0;      // media file reads
  double smoothing = 0.35;      // EWMA factor for the rate counter
  double duration_s = -1.0;     // <= 0: streams until externally bounded
};

class VlcStream final : public sim::AppModel, public sim::QosProbe {
 public:
  /// workload: client intensity over time, normalized internally to [0,1];
  /// omit for a constant full-intensity stream.
  VlcStream(VlcStreamSpec spec, std::optional<trace::Trace> workload);
  explicit VlcStream(VlcStreamSpec spec = {})
      : VlcStream(spec, std::nullopt) {}

  std::string_view name() const override { return "vlc-stream"; }
  bool finished() const override;
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  // QosProbe: value is the smoothed transcode rate in fps; violation is
  // latched per episode (a drained client buffer stays degraded until the
  // rate clearly recovers).
  double qos_value() const override { return smoothed_fps_; }
  double qos_threshold() const override { return spec_.threshold_fps; }
  bool violated() const override { return latch_.violated(); }

  /// Workload intensity in [0,1] at the given time.
  double intensity(sim::SimTime now) const;
  double frames_delivered() const { return frames_delivered_; }

 private:
  VlcStreamSpec spec_;
  std::optional<trace::Trace> workload_;
  double smoothed_fps_;
  QosLatch latch_;
  double frames_delivered_ = 0.0;
  double elapsed_s_ = 0.0;
};

}  // namespace stayaway::apps
