#include "apps/soplex.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::apps {

Soplex::Soplex(SoplexSpec spec) : spec_(spec) {
  SA_REQUIRE(spec.total_work_s > 0.0, "soplex needs positive total work");
  SA_REQUIRE(spec.final_mb >= spec.initial_mb, "working set must not shrink");
  SA_REQUIRE(spec.refactor_interval_s > 0.0, "refactor interval must be positive");
}

double Soplex::working_set_mb() const {
  double frac = std::clamp(work_done_ / spec_.total_work_s, 0.0, 1.0);
  return spec_.initial_mb + frac * (spec_.final_mb - spec_.initial_mb);
}

bool Soplex::refactorizing() const {
  // Periodic in *effective* (work) time, so throttling delays the next
  // refactorization the way pausing a real solver would.
  double cycle = spec_.refactor_interval_s + spec_.refactor_duration_s;
  double pos = std::fmod(work_done_, cycle);
  return pos >= spec_.refactor_interval_s;
}

sim::ResourceDemand Soplex::demand(sim::SimTime) {
  sim::ResourceDemand d;
  d.cpu_cores = spec_.cpu_cores;
  d.memory_mb = working_set_mb();
  d.membw_mbps = refactorizing() ? spec_.refactor_membw_mbps : spec_.solve_membw_mbps;
  return d;
}

void Soplex::advance(sim::SimTime, double dt, const sim::Allocation& alloc) {
  work_done_ += dt * alloc.progress;
}

}  // namespace stayaway::apps
