#include "apps/vlc_transcode.hpp"

#include "util/check.hpp"

namespace stayaway::apps {

VlcTranscode::VlcTranscode(VlcTranscodeSpec spec)
    : spec_(spec), smoothed_fps_(spec.nominal_fps) {
  SA_REQUIRE(spec.total_frames > 0.0, "transcode needs frames to process");
  SA_REQUIRE(spec.nominal_fps > 0.0, "nominal rate must be positive");
  SA_REQUIRE(spec.smoothing > 0.0 && spec.smoothing <= 1.0,
             "smoothing factor must be in (0,1]");
}

sim::ResourceDemand VlcTranscode::demand(sim::SimTime) {
  sim::ResourceDemand d;
  d.cpu_cores = spec_.cpu_cores;
  d.memory_mb = spec_.memory_mb;
  d.membw_mbps = spec_.membw_mbps;
  d.disk_mbps = spec_.disk_mbps;
  return d;
}

void VlcTranscode::advance(sim::SimTime, double dt, const sim::Allocation& alloc) {
  double achieved = spec_.nominal_fps * alloc.progress;
  smoothed_fps_ += spec_.smoothing * (achieved - smoothed_fps_);
  latch_.update(smoothed_fps_, spec_.threshold_fps);
  frames_done_ += achieved * dt;
}

}  // namespace stayaway::apps
