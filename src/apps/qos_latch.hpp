// Hysteresis latch for QoS violation reporting.
//
// A rate metric hovering at the threshold flips the naive comparison
// every period, which neither matches how a streaming client experiences
// degradation (a drained frame buffer stays degraded until the rate
// clearly recovers) nor gives the controller a stable label. The latch
// enters the violated state on any threshold crossing and leaves it only
// once the metric exceeds the threshold by a margin.
#pragma once

#include "util/check.hpp"

namespace stayaway::apps {

class QosLatch {
 public:
  /// exit_margin: fractional recovery above the threshold required to end
  /// a violation episode (default 5%).
  explicit QosLatch(double exit_margin = 0.05) : exit_margin_(exit_margin) {
    SA_REQUIRE(exit_margin >= 0.0, "exit margin must be non-negative");
  }

  /// Feeds the current metric; returns the latched violation state.
  bool update(double value, double threshold) {
    if (value < threshold) {
      violated_ = true;
    } else if (value > threshold * (1.0 + exit_margin_)) {
      violated_ = false;
    }
    return violated_;
  }

  bool violated() const { return violated_; }

 private:
  double exit_margin_;
  bool violated_ = false;
};

}  // namespace stayaway::apps
