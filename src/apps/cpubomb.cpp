#include "apps/cpubomb.hpp"

#include "util/check.hpp"

namespace stayaway::apps {

CpuBomb::CpuBomb(double cores, double total_work_s)
    : cores_(cores), total_work_s_(total_work_s) {
  SA_REQUIRE(cores > 0.0, "cpubomb needs at least a fraction of a core");
}

bool CpuBomb::finished() const {
  return total_work_s_ > 0.0 && work_done_ >= total_work_s_;
}

sim::ResourceDemand CpuBomb::demand(sim::SimTime) {
  sim::ResourceDemand d;
  d.cpu_cores = cores_;
  d.memory_mb = 16.0;  // a tight spin loop touches almost nothing
  return d;
}

void CpuBomb::advance(sim::SimTime, double dt, const sim::Allocation& alloc) {
  work_done_ += alloc.granted.cpu_cores * dt;
}

}  // namespace stayaway::apps
