#include "apps/vlc_stream.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::apps {

VlcStream::VlcStream(VlcStreamSpec spec, std::optional<trace::Trace> workload)
    : spec_(spec),
      workload_(std::move(workload)),
      smoothed_fps_(spec.nominal_fps) {
  SA_REQUIRE(spec.nominal_fps > 0.0, "nominal rate must be positive");
  SA_REQUIRE(spec.threshold_fps > 0.0 && spec.threshold_fps <= spec.nominal_fps,
             "threshold must be positive and achievable");
  SA_REQUIRE(spec.smoothing > 0.0 && spec.smoothing <= 1.0,
             "smoothing factor must be in (0,1]");
}

bool VlcStream::finished() const {
  return spec_.duration_s > 0.0 && elapsed_s_ >= spec_.duration_s;
}

double VlcStream::intensity(sim::SimTime now) const {
  if (!workload_.has_value()) return 1.0;
  return std::clamp(workload_->normalized_at(now), 0.0, 1.0);
}

sim::ResourceDemand VlcStream::demand(sim::SimTime now) {
  double w = intensity(now);
  sim::ResourceDemand d;
  d.cpu_cores = spec_.cpu_at_valley + w * (spec_.cpu_at_peak - spec_.cpu_at_valley);
  d.memory_mb = spec_.memory_mb;
  d.membw_mbps = spec_.membw_mbps * (0.4 + 0.6 * w);
  d.net_mbps = spec_.net_at_peak_mbps * w;
  d.disk_mbps = spec_.disk_mbps;
  return d;
}

void VlcStream::advance(sim::SimTime, double dt, const sim::Allocation& alloc) {
  double achieved = spec_.nominal_fps * alloc.progress;
  smoothed_fps_ += spec_.smoothing * (achieved - smoothed_fps_);
  latch_.update(smoothed_fps_, spec_.threshold_fps);
  frames_delivered_ += achieved * dt;
  elapsed_s_ += dt;
}

}  // namespace stayaway::apps
