#include "apps/phase.hpp"

#include <utility>

#include "util/check.hpp"

namespace stayaway::apps {

PhaseMachine::PhaseMachine(std::vector<Phase> phases, bool loop)
    : phases_(std::move(phases)), loop_(loop) {
  SA_REQUIRE(!phases_.empty(), "phase machine needs at least one phase");
  for (const auto& p : phases_) {
    SA_REQUIRE(p.duration_s > 0.0, "phase durations must be positive");
  }
}

bool PhaseMachine::finished() const { return done_; }

const Phase& PhaseMachine::current() const {
  SA_REQUIRE(!done_, "no current phase after completion");
  return phases_[index_];
}

void PhaseMachine::advance(double dt, double progress_factor) {
  SA_REQUIRE(dt >= 0.0, "time step must be non-negative");
  SA_REQUIRE(progress_factor >= 0.0, "progress factor must be non-negative");
  if (done_) return;
  double remaining = dt * progress_factor;
  while (remaining > 0.0) {
    double needed = phases_[index_].duration_s - elapsed_in_phase_;
    if (remaining < needed) {
      elapsed_in_phase_ += remaining;
      return;
    }
    remaining -= needed;
    elapsed_in_phase_ = 0.0;
    ++index_;
    if (index_ == phases_.size()) {
      ++cycles_;
      index_ = 0;
      if (!loop_) {
        done_ = true;
        return;
      }
    }
  }
}

double PhaseMachine::cycle_duration() const {
  double acc = 0.0;
  for (const auto& p : phases_) acc += p.duration_s;
  return acc;
}

}  // namespace stayaway::apps
