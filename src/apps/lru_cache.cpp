#include "apps/lru_cache.hpp"

namespace stayaway::apps {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {}

bool LruCache::get(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  recency_.splice(recency_.begin(), recency_, it->second);
  ++hits_;
  return true;
}

void LruCache::put(std::uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    recency_.splice(recency_.begin(), recency_, it->second);
    return;
  }
  if (capacity_ == 0) return;
  recency_.push_front(key);
  index_.emplace(key, recency_.begin());
  evict_to_capacity();
}

void LruCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  evict_to_capacity();
}

bool LruCache::contains(std::uint64_t key) const {
  return index_.find(key) != index_.end();
}

double LruCache::hit_rate() const {
  std::uint64_t total = hits_ + misses_;
  if (total == 0) return 0.0;
  return static_cast<double>(hits_) / static_cast<double>(total);
}

void LruCache::reset_counters() {
  hits_ = 0;
  misses_ = 0;
}

void LruCache::clear() {
  recency_.clear();
  index_.clear();
}

void LruCache::evict_to_capacity() {
  while (index_.size() > capacity_) {
    index_.erase(recency_.back());
    recency_.pop_back();
  }
}

}  // namespace stayaway::apps
