#include "apps/membomb.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::apps {

namespace {
std::vector<Phase> make_cycle(const MemBombSpec& spec) {
  Phase hold{"hold", {}, spec.hold_s};
  hold.demand.cpu_cores = 0.1;
  hold.demand.membw_mbps = 200.0;

  Phase sweep{"sweep", {}, spec.sweep_s};
  sweep.demand.cpu_cores = spec.cpu_cores;
  sweep.demand.membw_mbps = spec.sweep_membw_mbps;

  return {hold, sweep};
}
}  // namespace

MemBomb::MemBomb(MemBombSpec spec)
    : spec_(spec), cycle_(make_cycle(spec), /*loop=*/true) {
  SA_REQUIRE(spec.target_mb > 0.0, "membomb target must be positive");
  SA_REQUIRE(spec.ramp_s > 0.0, "membomb ramp must be positive");
}

bool MemBomb::finished() const {
  return spec_.total_work_s > 0.0 && work_done_ >= spec_.total_work_s;
}

sim::ResourceDemand MemBomb::demand(sim::SimTime) {
  sim::ResourceDemand d = cycle_.current().demand;
  bool ramping = allocated_mb_ < spec_.target_mb;
  if (ramping) {
    // Allocation itself costs CPU (page faults, zeroing) and bandwidth.
    d.cpu_cores = std::max(d.cpu_cores, spec_.cpu_cores);
    d.membw_mbps = std::max(d.membw_mbps, 2000.0);
  }
  d.memory_mb = allocated_mb_;
  return d;
}

void MemBomb::advance(sim::SimTime, double dt, const sim::Allocation& alloc) {
  double effective = dt * alloc.progress;
  if (allocated_mb_ < spec_.target_mb) {
    double rate = spec_.target_mb / spec_.ramp_s;  // MB per full-speed second
    allocated_mb_ = std::min(spec_.target_mb, allocated_mb_ + rate * effective);
  } else {
    cycle_.advance(dt, alloc.progress);
  }
  work_done_ += effective;
}

}  // namespace stayaway::apps
