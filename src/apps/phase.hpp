// Phase machine shared by the batch application models.
//
// §1 of the paper: "A phase change is defined as a change in the major
// share of resource consumed by an application." Batch apps are modelled
// as a sequence of phases, each with a demand profile and a nominal
// duration at full speed; contention stretches a phase's wall-clock time.
#pragma once

#include <string>
#include <vector>

#include "sim/resource.hpp"

namespace stayaway::apps {

struct Phase {
  std::string name;
  sim::ResourceDemand demand;
  /// Seconds the phase takes when running unthrottled at full allocation.
  double duration_s = 1.0;
};

class PhaseMachine {
 public:
  /// If loop is true the sequence repeats until externally bounded; else
  /// the machine finishes after the last phase.
  PhaseMachine(std::vector<Phase> phases, bool loop);

  bool finished() const;
  const Phase& current() const;
  std::size_t current_index() const { return index_; }
  std::size_t cycles_completed() const { return cycles_; }

  /// Advances phase-progress by dt * progress_factor seconds of effective
  /// work; rolls over to subsequent phases as they complete.
  void advance(double dt, double progress_factor);

  /// Total nominal duration of one cycle.
  double cycle_duration() const;

 private:
  std::vector<Phase> phases_;
  bool loop_;
  std::size_t index_ = 0;
  std::size_t cycles_ = 0;
  double elapsed_in_phase_ = 0.0;  // effective (full-speed) seconds
  bool done_ = false;
};

}  // namespace stayaway::apps
