// VLC offline transcoding model.
//
// Used by the paper both as a batch application (§7.1 list) and as the
// rate-thresholded app of the Figure 6 illustration ("a violation is said
// to have occurred when the rate of transcoding frames falls below a
// certain threshold"). It therefore implements QosProbe as well; when run
// as a pure batch app the probe is simply never consulted.
#pragma once

#include "apps/qos_latch.hpp"
#include "sim/app_model.hpp"

namespace stayaway::apps {

struct VlcTranscodeSpec {
  double total_frames = 30000.0;  // length of the input video
  double nominal_fps = 60.0;      // unthrottled transcode rate
  double threshold_fps = 45.0;    // Fig. 6 violation threshold
  double cpu_cores = 2.5;         // encoder threads
  double memory_mb = 600.0;
  double membw_mbps = 3500.0;
  double disk_mbps = 40.0;
  double smoothing = 0.35;
};

class VlcTranscode final : public sim::AppModel, public sim::QosProbe {
 public:
  explicit VlcTranscode(VlcTranscodeSpec spec = {});

  std::string_view name() const override { return "vlc-transcode"; }
  bool finished() const override { return frames_done_ >= spec_.total_frames; }
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  double qos_value() const override { return smoothed_fps_; }
  double qos_threshold() const override { return spec_.threshold_fps; }
  bool violated() const override { return latch_.violated(); }

  double frames_done() const { return frames_done_; }

 private:
  VlcTranscodeSpec spec_;
  double frames_done_ = 0.0;
  double smoothed_fps_;
  QosLatch latch_;
};

}  // namespace stayaway::apps
