// CPUBomb from the isolation benchmark suite (Matthews et al.): saturates
// every core it can get, forever (or for a configured amount of work).
// The paper's worst-case batch co-location — no phase changes, constant
// contention, so Stay-Away can only ever reclaim ~5% utilization (Fig. 10).
#pragma once

#include "sim/app_model.hpp"

namespace stayaway::apps {

class CpuBomb final : public sim::AppModel {
 public:
  /// cores: how many cores it spins on. total_work_s: core-seconds of work
  /// before finishing; <= 0 means it never finishes.
  explicit CpuBomb(double cores = 4.0, double total_work_s = -1.0);

  std::string_view name() const override { return "cpubomb"; }
  bool finished() const override;
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  double work_done() const { return work_done_; }

 private:
  double cores_;
  double total_work_s_;
  double work_done_ = 0.0;
};

}  // namespace stayaway::apps
