#include "apps/webservice.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::apps {

const char* to_string(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::CpuIntensive:
      return "cpu";
    case WorkloadMix::MemIntensive:
      return "mem";
    case WorkloadMix::Mixed:
      return "mix";
  }
  return "unknown";
}

Webservice::Webservice(WebserviceSpec spec, std::optional<trace::Trace> workload)
    : spec_(spec),
      workload_(std::move(workload)),
      cache_(0),
      keys_(spec.keyspace, spec.zipf_exponent),
      rng_(spec.seed) {
  SA_REQUIRE(spec.peak_rps > 0.0, "peak load must be positive");
  SA_REQUIRE(spec.qos_threshold > 0.0 && spec.qos_threshold <= 1.0,
             "threshold must be a ratio in (0,1]");
  SA_REQUIRE(spec.smoothing > 0.0 && spec.smoothing <= 1.0,
             "smoothing factor must be in (0,1]");
  cache_.set_capacity(cache_entries());
}

bool Webservice::finished() const {
  return spec_.duration_s > 0.0 && elapsed_s_ >= spec_.duration_s;
}

double Webservice::offered_rps(sim::SimTime now) const {
  double w = 1.0;
  if (workload_.has_value()) {
    w = std::clamp(workload_->normalized_at(now), 0.0, 1.0);
  }
  double floor = spec_.min_rps_fraction;
  return spec_.peak_rps * (floor + (1.0 - floor) * w);
}

double Webservice::cpu_per_request() const {
  switch (spec_.mix) {
    case WorkloadMix::CpuIntensive:
      return 0.0085;  // heavy aggregation/statistics per request
    case WorkloadMix::MemIntensive:
      return 0.0018;  // mostly a cache fetch
    case WorkloadMix::Mixed:
      return 0.0040;
  }
  return 0.0040;
}

std::size_t Webservice::cache_entries() const {
  switch (spec_.mix) {
    case WorkloadMix::CpuIntensive:
      return 30000;  // ~300 MB: small hot set, compute-dominated
    case WorkloadMix::MemIntensive:
      return 180000;  // ~1.8 GB: nearly the whole dataset resident
    case WorkloadMix::Mixed:
      return 100000;  // ~1 GB
  }
  return 100000;
}

double Webservice::membw_per_request_mb() const {
  switch (spec_.mix) {
    case WorkloadMix::CpuIntensive:
      return 2.0;  // scans rows while aggregating
    case WorkloadMix::MemIntensive:
      return 6.0;  // large object copies
    case WorkloadMix::Mixed:
      return 4.0;
  }
  return 4.0;
}

sim::ResourceDemand Webservice::demand(sim::SimTime now) {
  double rps = offered_rps(now);
  sim::ResourceDemand d;
  d.cpu_cores = rps * cpu_per_request();
  // The *active* working set scales with load: at low request rates only
  // the hot head of the cache is touched, so cold pages can be evicted
  // (or swapped) without hurting response times. These are the
  // low-intensity valleys Stay-Away exploits to run memory-hungry batch
  // neighbours (§1, Fig. 13).
  double load_fraction = rps / spec_.peak_rps;
  double cache_mb = static_cast<double>(cache_.capacity()) * spec_.object_mb;
  d.memory_mb =
      spec_.base_memory_mb + cache_mb * (0.3 + 0.7 * load_fraction);
  d.membw_mbps = rps * membw_per_request_mb() * 0.1;
  d.disk_mbps = rps * last_miss_rate_ * spec_.object_mb;
  d.net_mbps = rps * spec_.object_mb * 8.0 * 0.1;  // responses on the wire
  return d;
}

void Webservice::advance(sim::SimTime now, double dt,
                         const sim::Allocation& alloc) {
  // Replay a sample of the tick's key accesses against the real cache to
  // measure the miss rate that shapes next tick's disk demand.
  std::uint64_t before_h = cache_.hits();
  std::uint64_t before_m = cache_.misses();
  for (std::size_t i = 0; i < spec_.probe_accesses; ++i) {
    auto key = static_cast<std::uint64_t>(keys_.sample(rng_));
    if (!cache_.get(key)) cache_.put(key);
  }
  std::uint64_t dh = cache_.hits() - before_h;
  std::uint64_t dm = cache_.misses() - before_m;
  last_miss_rate_ = (dh + dm > 0)
                        ? static_cast<double>(dm) / static_cast<double>(dh + dm)
                        : 0.0;

  double offered = offered_rps(now);
  completed_tps_ = offered * alloc.progress;
  double ratio = (offered > 0.0) ? completed_tps_ / offered : 1.0;
  smoothed_ratio_ += spec_.smoothing * (ratio - smoothed_ratio_);
  latch_.update(smoothed_ratio_, spec_.qos_threshold);
  elapsed_s_ += dt;
}

}  // namespace stayaway::apps
