// Flash-crowd front-end model (DESIGN.md §18): a latency-sensitive
// request-serving tier whose offered load surges by a large multiplier
// for a bounded window — the canonical cluster-scheduling stressor
// (bench_cluster's headline scenario). Outside the surge the front end
// is comfortably provisioned; during it the CPU demand alone can exceed
// the host, so any batch neighbour pushes QoS under water and the only
// real remedies are pausing the neighbour (per-host Stay-Away) or moving
// it to a calm host (cluster migration).
//
// The model is fully deterministic: offered load is a pure function of
// time (base rate, surge window with linear ramps, optional workload
// trace scaling the base), and QoS is the smoothed completed/offered
// capacity ratio latched the same way the webservice latches it.
#pragma once

#include <optional>

#include "apps/qos_latch.hpp"
#include "sim/app_model.hpp"
#include "trace/trace.hpp"

namespace stayaway::apps {

struct FlashCrowdSpec {
  double base_rps = 120.0;        // steady-state offered load
  double surge_multiplier = 6.0;  // offered load factor inside the window
  double surge_start_s = 60.0;
  double surge_end_s = 120.0;
  double ramp_s = 8.0;  // linear onset/decay at the window edges
  double cpu_per_request = 0.006;
  double memory_base_mb = 300.0;
  double memory_per_rps_mb = 0.8;  // session state grows with the crowd
  double membw_per_request_mb = 3.0;
  double net_per_request_mb = 0.08;
  double qos_threshold = 0.8;  // minimum acceptable capacity ratio
  double smoothing = 0.35;     // EWMA for the capacity-ratio counter
  double duration_s = -1.0;    // <= 0: serves until externally bounded
};

class FlashCrowd final : public sim::AppModel, public sim::QosProbe {
 public:
  /// workload: optional intensity trace whose *absolute* sample values
  /// scale the base load, clamped to [0,1] (the surge multiplies on
  /// top); omit for a constant full base. Unlike the webservice, samples
  /// are not re-normalized by the trace's own min/max — a constant trace
  /// of 0.25 really means a quarter-loaded front end, which is how
  /// bench_cluster provisions its calm spare hosts.
  FlashCrowd(FlashCrowdSpec spec, std::optional<trace::Trace> workload);
  explicit FlashCrowd(FlashCrowdSpec spec = {})
      : FlashCrowd(spec, std::nullopt) {}

  std::string_view name() const override { return "flash-crowd"; }
  bool finished() const override;
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt,
               const sim::Allocation& alloc) override;

  // QosProbe: value is the smoothed capacity ratio (completed / offered
  // requests) in [0,1]; threshold is spec.qos_threshold.
  double qos_value() const override { return smoothed_ratio_; }
  double qos_threshold() const override { return spec_.qos_threshold; }
  bool violated() const override { return latch_.violated(); }

  /// Offered load at time t (requests/s), surge included.
  double offered_rps(sim::SimTime now) const;
  /// Surge intensity in [0,1]: 0 outside the window, 1 at full crowd.
  double surge_level(sim::SimTime now) const;
  double completed_tps() const { return completed_tps_; }

 private:
  FlashCrowdSpec spec_;
  std::optional<trace::Trace> workload_;
  double smoothed_ratio_ = 1.0;
  QosLatch latch_;
  double completed_tps_ = 0.0;
  double elapsed_s_ = 0.0;
};

}  // namespace stayaway::apps
