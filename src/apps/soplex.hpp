// Soplex (SPEC CPU2006 450.soplex) workload model.
//
// The LP simplex solver is CPU-bound with a working set that grows slowly
// as the factorized basis fills in, punctuated by periodic refactorization
// passes that stream the basis through memory. Figure 5 of the paper shows
// its signature in the mapped space: "a linear trajectory with a
// consistent orientation and slightly varying step length" — which is
// exactly what a constant-CPU, slowly-growing-memory vector produces.
#pragma once

#include "sim/app_model.hpp"

namespace stayaway::apps {

struct SoplexSpec {
  double cpu_cores = 1.0;
  double initial_mb = 250.0;
  double final_mb = 900.0;            // basis fully filled in
  double refactor_interval_s = 15.0;  // time between refactorizations
  double refactor_duration_s = 2.0;
  double refactor_membw_mbps = 6000.0;
  double solve_membw_mbps = 800.0;
  double total_work_s = 300.0;        // core-seconds to optimality
};

class Soplex final : public sim::AppModel {
 public:
  explicit Soplex(SoplexSpec spec = {});

  std::string_view name() const override { return "soplex"; }
  bool finished() const override { return work_done_ >= spec_.total_work_s; }
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  double work_done() const { return work_done_; }
  double working_set_mb() const;
  bool refactorizing() const;

 private:
  SoplexSpec spec_;
  double work_done_ = 0.0;
};

}  // namespace stayaway::apps
