// MemoryBomb — the paper's custom synthetic stressor: "generates stress on
// the memory subsystem by allocating large chunks of memory and
// occasionally reading the allocated content" (§7.1).
//
// Modelled as an allocation ramp followed by alternating idle-ish hold and
// read-sweep phases; reads demand memory bandwidth, holds mostly capacity.
#pragma once

#include "apps/phase.hpp"
#include "sim/app_model.hpp"

namespace stayaway::apps {

struct MemBombSpec {
  double target_mb = 3000.0;      // final allocation size
  double ramp_s = 20.0;           // seconds to reach the target at full speed
  double hold_s = 12.0;           // seconds between read sweeps
  double sweep_s = 6.0;           // duration of one read sweep
  double sweep_membw_mbps = 9000.0;
  double cpu_cores = 0.5;         // pointer-chasing costs some CPU
  double total_work_s = -1.0;     // <= 0: runs forever
};

class MemBomb final : public sim::AppModel {
 public:
  explicit MemBomb(MemBombSpec spec = {});

  std::string_view name() const override { return "membomb"; }
  bool finished() const override;
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  double allocated_mb() const { return allocated_mb_; }

 private:
  MemBombSpec spec_;
  PhaseMachine cycle_;
  double allocated_mb_ = 64.0;
  double work_done_ = 0.0;
};

}  // namespace stayaway::apps
