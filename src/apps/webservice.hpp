// Webservice model (the paper's second latency-sensitive app).
//
// §7.1: a data-serving service with a Memcached layer (here: LruCache)
// that performs statistical analytics before serving, exercised with
// CPU-intensive, memory-intensive and mixed workloads over a monitored-
// metrics dataset. Each tick the model replays a sample of Zipf-skewed
// key lookups against the cache; the measured miss rate drives disk I/O
// demand, the analytics mix drives CPU and memory-bandwidth demand, and
// the cache working set drives memory-capacity demand (the channel that
// makes it swap-sensitive to memory-hungry batch neighbours, §7.2).
#pragma once

#include <optional>

#include "apps/lru_cache.hpp"
#include "apps/qos_latch.hpp"
#include "sim/app_model.hpp"
#include "stats/zipf.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace stayaway::apps {

enum class WorkloadMix {
  CpuIntensive,
  MemIntensive,
  Mixed,
};

/// Human-readable mix name ("cpu", "mem", "mix").
const char* to_string(WorkloadMix mix);

struct WebserviceSpec {
  WorkloadMix mix = WorkloadMix::Mixed;
  double peak_rps = 400.0;        // offered load at workload peak
  double min_rps_fraction = 0.2;  // offered load at valley, as peak fraction
  std::size_t keyspace = 200000;  // distinct objects in the dataset
  double zipf_exponent = 0.9;
  double object_mb = 0.01;        // ~10 KB per cached object
  std::size_t probe_accesses = 400;  // cache lookups replayed per tick
  double base_memory_mb = 200.0;  // service runtime outside the cache
  double qos_threshold = 0.8;     // minimum acceptable capacity ratio
  double smoothing = 0.35;        // EWMA for the capacity-ratio counter
  double duration_s = -1.0;       // <= 0: serves until externally bounded
  std::uint64_t seed = 7;
};

class Webservice final : public sim::AppModel, public sim::QosProbe {
 public:
  /// workload: offered-load intensity over time (normalized to [0,1]);
  /// omit for constant peak load.
  Webservice(WebserviceSpec spec, std::optional<trace::Trace> workload);
  explicit Webservice(WebserviceSpec spec = {})
      : Webservice(spec, std::nullopt) {}

  std::string_view name() const override { return "webservice"; }
  bool finished() const override;
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  // QosProbe: value is the smoothed capacity ratio (completed / offered
  // transactions) in [0,1]; threshold is spec.qos_threshold.
  double qos_value() const override { return smoothed_ratio_; }
  double qos_threshold() const override { return spec_.qos_threshold; }
  bool violated() const override { return latch_.violated(); }

  /// Offered load at time t (requests/s).
  double offered_rps(sim::SimTime now) const;
  /// Transactions completed in the last tick, per second.
  double completed_tps() const { return completed_tps_; }
  /// Lifetime cache hit rate.
  double cache_hit_rate() const { return cache_.hit_rate(); }
  const LruCache& cache() const { return cache_; }

 private:
  /// Per-request CPU seconds for the current mix.
  double cpu_per_request() const;
  /// Cache capacity (entries) for the current mix.
  std::size_t cache_entries() const;
  /// Per-request memory-bus bytes factor for the current mix.
  double membw_per_request_mb() const;

  WebserviceSpec spec_;
  std::optional<trace::Trace> workload_;
  LruCache cache_;
  stats::ZipfSampler keys_;
  Rng rng_;
  double smoothed_ratio_ = 1.0;
  QosLatch latch_;
  double completed_tps_ = 0.0;
  double last_miss_rate_ = 0.0;
  double elapsed_s_ = 0.0;
};

}  // namespace stayaway::apps
