#include "apps/flash_crowd.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::apps {

FlashCrowd::FlashCrowd(FlashCrowdSpec spec,
                       std::optional<trace::Trace> workload)
    : spec_(spec), workload_(std::move(workload)) {
  SA_REQUIRE(spec.base_rps > 0.0, "base load must be positive");
  SA_REQUIRE(spec.surge_multiplier >= 1.0,
             "a flash crowd does not shrink the load");
  SA_REQUIRE(spec.surge_end_s > spec.surge_start_s,
             "the surge window must have positive length");
  SA_REQUIRE(spec.ramp_s > 0.0, "the surge ramp must be positive");
  SA_REQUIRE(spec.qos_threshold > 0.0 && spec.qos_threshold <= 1.0,
             "threshold must be a ratio in (0,1]");
  SA_REQUIRE(spec.smoothing > 0.0 && spec.smoothing <= 1.0,
             "smoothing factor must be in (0,1]");
}

bool FlashCrowd::finished() const {
  return spec_.duration_s > 0.0 && elapsed_s_ >= spec_.duration_s;
}

double FlashCrowd::surge_level(sim::SimTime now) const {
  if (now <= spec_.surge_start_s || now >= spec_.surge_end_s) return 0.0;
  double rise = (now - spec_.surge_start_s) / spec_.ramp_s;
  double fall = (spec_.surge_end_s - now) / spec_.ramp_s;
  return std::clamp(std::min(rise, fall), 0.0, 1.0);
}

double FlashCrowd::offered_rps(sim::SimTime now) const {
  double w = 1.0;
  if (workload_.has_value()) {
    // Absolute scaling (see the constructor comment): the trace value IS
    // the load fraction, not a position within the trace's own range.
    w = std::clamp(workload_->at(now), 0.0, 1.0);
  }
  double surge = 1.0 + (spec_.surge_multiplier - 1.0) * surge_level(now);
  return spec_.base_rps * w * surge;
}

sim::ResourceDemand FlashCrowd::demand(sim::SimTime now) {
  double rps = offered_rps(now);
  sim::ResourceDemand d;
  d.cpu_cores = rps * spec_.cpu_per_request;
  d.memory_mb = spec_.memory_base_mb + rps * spec_.memory_per_rps_mb;
  d.membw_mbps = rps * spec_.membw_per_request_mb * 0.1;
  d.net_mbps = rps * spec_.net_per_request_mb * 8.0 * 0.1;
  return d;
}

void FlashCrowd::advance(sim::SimTime now, double dt,
                         const sim::Allocation& alloc) {
  double offered = offered_rps(now);
  completed_tps_ = offered * alloc.progress;
  double ratio = (offered > 0.0) ? completed_tps_ / offered : 1.0;
  smoothed_ratio_ += spec_.smoothing * (ratio - smoothed_ratio_);
  latch_.update(smoothed_ratio_, spec_.qos_threshold);
  elapsed_s_ += dt;
}

}  // namespace stayaway::apps
