// Twitter influence ranking (CloudSuite graph analytics) workload model.
//
// §7.2: "Twitter-Analysis experiences a mix of both CPU and memory
// intensive phases, and is throttled only during its memory intensive
// phase." Modelled as alternating score (CPU-bound over a resident
// partition) and scan (streaming the edge list, memory-capacity and
// bandwidth heavy) phases. Its phase changes are what let Stay-Away
// recover ~50% utilization (Fig. 11) versus ~5% for CPUBomb.
#pragma once

#include "apps/phase.hpp"
#include "sim/app_model.hpp"

namespace stayaway::apps {

struct TwitterAnalysisSpec {
  double score_s = 14.0;            // CPU phase nominal duration
  double score_cpu = 2.0;
  double score_mb = 700.0;
  double scan_s = 8.0;              // memory phase nominal duration
  double scan_cpu = 0.6;
  double scan_mb = 3000.0;          // edge list partition resident during scan
  double scan_membw_mbps = 8000.0;
  double total_work_s = -1.0;       // <= 0: loops until externally bounded
};

class TwitterAnalysis final : public sim::AppModel {
 public:
  explicit TwitterAnalysis(TwitterAnalysisSpec spec = {});

  std::string_view name() const override { return "twitter-analysis"; }
  bool finished() const override;
  sim::ResourceDemand demand(sim::SimTime now) override;
  void advance(sim::SimTime now, double dt, const sim::Allocation& alloc) override;

  bool in_memory_phase() const;
  double work_done() const { return work_done_; }

 private:
  TwitterAnalysisSpec spec_;
  PhaseMachine cycle_;
  double work_done_ = 0.0;
};

}  // namespace stayaway::apps
