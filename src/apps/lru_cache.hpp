// In-memory LRU key-value cache — the Memcached stand-in.
//
// §7.1: "The Webservice ... consists of a Memcached layer for in-memory
// data storage and performs analytics, if necessary, before serving the
// data." The simulated Webservice drives this cache with Zipf-sampled
// keys each tick; the measured hit rate feeds its disk-I/O demand and
// service time. Implemented as a hash map over an intrusive doubly linked
// recency list: O(1) lookup, insert and eviction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace stayaway::apps {

class LruCache {
 public:
  /// Capacity in entries; zero capacity is allowed and caches nothing.
  explicit LruCache(std::size_t capacity);

  /// Looks a key up, promoting it to most-recently-used on a hit.
  bool get(std::uint64_t key);

  /// Inserts (or refreshes) a key, evicting the least-recently-used entry
  /// when full.
  void put(std::uint64_t key);

  /// Shrinks/expands capacity; shrinking evicts LRU entries immediately.
  void set_capacity(std::size_t capacity);

  bool contains(std::uint64_t key) const;
  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Lifetime hit rate; 0 before any lookup.
  double hit_rate() const;
  void reset_counters();

  void clear();

 private:
  void evict_to_capacity();

  std::size_t capacity_;
  std::list<std::uint64_t> recency_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace stayaway::apps
