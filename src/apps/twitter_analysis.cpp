#include "apps/twitter_analysis.hpp"

#include "util/check.hpp"

namespace stayaway::apps {

namespace {
std::vector<Phase> make_cycle(const TwitterAnalysisSpec& spec) {
  Phase score{"score", {}, spec.score_s};
  score.demand.cpu_cores = spec.score_cpu;
  score.demand.memory_mb = spec.score_mb;
  score.demand.membw_mbps = 1200.0;

  Phase scan{"scan", {}, spec.scan_s};
  scan.demand.cpu_cores = spec.scan_cpu;
  scan.demand.memory_mb = spec.scan_mb;
  scan.demand.membw_mbps = spec.scan_membw_mbps;
  scan.demand.disk_mbps = 60.0;  // partition load

  return {score, scan};
}
}  // namespace

TwitterAnalysis::TwitterAnalysis(TwitterAnalysisSpec spec)
    : spec_(spec), cycle_(make_cycle(spec), /*loop=*/true) {
  SA_REQUIRE(spec.score_s > 0.0 && spec.scan_s > 0.0,
             "phase durations must be positive");
}

bool TwitterAnalysis::finished() const {
  return spec_.total_work_s > 0.0 && work_done_ >= spec_.total_work_s;
}

bool TwitterAnalysis::in_memory_phase() const {
  return cycle_.current().name == "scan";
}

sim::ResourceDemand TwitterAnalysis::demand(sim::SimTime) {
  return cycle_.current().demand;
}

void TwitterAnalysis::advance(sim::SimTime, double dt,
                              const sim::Allocation& alloc) {
  cycle_.advance(dt, alloc.progress);
  work_done_ += dt * alloc.progress;
}

}  // namespace stayaway::apps
