// The mapped state space: labelled 2-D states plus violation-range
// geometry (§3.2.1–3.2.2 of the paper).
//
// States are indexed in lock-step with the monitor's RepresentativeSet:
// state i is the embedding of representative i. Labels are evidence
// based: every period contributes a (visit, violated?) observation to its
// representative, and a state counts as a violation-state once a
// sufficient fraction of its visits saw a QoS violation. This keeps one
// unlucky coincidence (a violation reported one period late, while the
// system already sat on an otherwise-safe state) from permanently
// poisoning a frequently visited safe state. Template seeding uses
// force_violation(), which is sticky by design — imported labels carry
// their previous run's evidence.
#pragma once

#include <optional>
#include <vector>

#include "mds/point.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

enum class StateLabel {
  Safe,
  Violation,
};

struct ViolationRange {
  std::size_t state = 0;  // index of the violation-state
  mds::Point2 center;
  double radius = 0.0;
};

class StateSpace {
 public:
  /// Fraction of violating visits at which a state becomes a
  /// violation-state (given at least one violating visit).
  static constexpr double kViolationEvidenceFraction = 0.3;

  /// Appends a state (paired with a newly created representative). A
  /// Violation initial label behaves like force_violation().
  void add_state(StateLabel label);

  /// Records one visit of state i and whether QoS was violated during it.
  void observe_visit(std::size_t i, bool violated);

  /// Marks state i as a violation-state unconditionally (template import;
  /// irreversible).
  void force_violation(std::size_t i);
  /// Backwards-compatible alias for force_violation().
  void mark_violation(std::size_t i) { force_violation(i); }

  /// Replaces all positions after a re-embedding. Size must match.
  void sync_positions(const mds::Embedding& positions);

  std::size_t size() const { return labels_cache_size(); }
  StateLabel label(std::size_t i) const;
  const mds::Point2& position(std::size_t i) const;
  const mds::Embedding& positions() const { return positions_; }

  std::size_t visits(std::size_t i) const;
  std::size_t violating_visits(std::size_t i) const;

  std::size_t violation_count() const;
  std::size_t safe_count() const { return size() - violation_count(); }

  /// Scale parameter c: the median of the coordinate ranges of the map.
  double scale() const;

  /// Distance from `from` to the nearest safe-state; nullopt if none exist.
  std::optional<double> nearest_safe_distance(const mds::Point2& from) const;

  /// Violation ranges with radii R = d * exp(-d^2 / (2 c^2)). A violation
  /// with no safe neighbour yet gets radius 0 (nothing is known about its
  /// surroundings), as does a degenerate map (all points coincident: the
  /// Rayleigh scale is meaningless, so nothing beyond the states
  /// themselves is claimed). The result is cached: it is rebuilt lazily
  /// after a mutation that can change the geometry (add_state,
  /// force_violation, a label-flipping observe_visit, a position-changing
  /// sync_positions), so the predictor's per-candidate queries stop
  /// recomputing labels, nearest-safe distances and radii from scratch.
  const std::vector<ViolationRange>& violation_ranges() const;

  /// True when p lies inside any violation range, or within `slack` of a
  /// violation-state itself (an exact revisit predicts a violation even
  /// before a range can be computed). Served from the cached ranges.
  bool in_violation_region(const mds::Point2& p, double slack = 1e-9) const;

  /// Observability counters: mutations that dirtied the range cache, and
  /// lazy rebuilds actually performed. rebuilds <= invalidations; the gap
  /// is the work the cache saved.
  std::size_t cache_invalidations() const { return invalidations_; }
  std::size_t cache_rebuilds() const { return rebuilds_; }

  /// Snapshot of states, evidence counters and positions (DESIGN.md
  /// §17). The violation-range cache is deliberately not captured:
  /// load_state leaves it dirty and the first query re-derives
  /// byte-identical ranges from the restored geometry (the rebuild
  /// counter may therefore run ahead of the uninterrupted run's —
  /// telemetry only, never decisions).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  std::size_t labels_cache_size() const { return forced_.size(); }
  void rebuild_ranges() const;

  std::vector<bool> forced_;            // force_violation applied
  std::vector<std::size_t> visits_;     // observations per state
  std::vector<std::size_t> violating_;  // violating observations per state
  mds::Embedding positions_;

  // Lazily rebuilt violation-range cache. Mutators set the dirty flag;
  // const queries rebuild at most once per mutation. Not thread-safe —
  // the state space belongs to the single control thread.
  mutable std::vector<ViolationRange> ranges_cache_;
  mutable bool ranges_dirty_ = true;
  std::size_t invalidations_ = 0;
  mutable std::size_t rebuilds_ = 0;
};

}  // namespace stayaway::core
