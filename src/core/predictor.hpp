// Violation prediction (§3.2.3): sample candidate next-states from the
// current mode's trajectory model and vote them against the violation
// ranges. "Whenever a majority of the generated sample set fall within a
// violation range, Stay-Away takes an action to prevent degradation."
#pragma once

#include <vector>

#include "core/statespace.hpp"
#include "core/trajectory.hpp"
#include "mds/point.hpp"
#include "monitor/mode.hpp"
#include "util/rng.hpp"

namespace stayaway::core {

struct Prediction {
  bool violation_predicted = false;
  /// False when the mode's model lacked observations or no violation is
  /// known yet — in that case violation_predicted is always false.
  bool model_ready = false;
  std::size_t samples = 0;
  std::size_t samples_in_violation = 0;
  std::vector<mds::Point2> candidates;
};

class Predictor {
 public:
  /// sample_count: candidates drawn per prediction (the paper uses 5).
  /// majority_fraction: fraction of candidates that must land in a
  /// violation region to predict a violation (strictly more than).
  /// min_observations: per-mode trajectory observations required.
  Predictor(std::size_t sample_count, double majority_fraction,
            std::size_t min_observations);

  Prediction predict(const StateSpace& space, const ModeTrajectories& modes,
                     monitor::ExecutionMode mode, const mds::Point2& current,
                     Rng& rng) const;

  /// Same, with an explicit vote threshold overriding the configured
  /// majority_fraction — the degraded-mode control loop widens its
  /// decision by lowering the threshold on imputed inputs (DESIGN.md
  /// §12). Consumes exactly the same Rng draws as the overload above.
  Prediction predict(const StateSpace& space, const ModeTrajectories& modes,
                     monitor::ExecutionMode mode, const mds::Point2& current,
                     Rng& rng, double majority_fraction) const;

 private:
  std::size_t sample_count_;
  double majority_fraction_;
  std::size_t min_observations_;
};

}  // namespace stayaway::core
