// SimHostActuationPort — the production ActuationPort: a thin view over
// the simulated host with pause/resume delivery routed through the
// optional fault channel (DESIGN.md §12). This is the only place where
// actuation crosses from the stage world into the host; stage
// implementations themselves must not see the host (stage-host-isolation
// lint rule), which is why this lives in src/core/, not src/core/stages/.
//
// Shared by HostPipeline (which installs the fault injector) and the
// baseline policy adapters in src/baseline/ (fault-free, constructed per
// period).
#pragma once

#include <vector>

#include "core/stages/port.hpp"
#include "sim/faults.hpp"
#include "sim/host.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

class SimHostActuationPort final : public ActuationPort {
 public:
  /// What a journal entry did to the host. Values are the checkpoint
  /// wire encoding (v2) — append only.
  enum class OpKind { Resume = 0, Pause = 1, Detach = 2, Attach = 3 };

  /// One delivered actuation, stamped with the simulated time it took
  /// effect on the host. The journal is what makes a warm restart exact
  /// (DESIGN.md §17): a rebuilt host is fast-forwarded tick-for-tick with
  /// the journalled actuations re-applied at their original times, so the
  /// restored host's VM pause/attach states — and therefore every
  /// subsequent tick's arithmetic — match the crashed run bit for bit.
  struct DeliveredOp {
    OpKind kind = OpKind::Resume;
    sim::VmId vm = 0;
    double time = 0.0;
  };

  /// `host` must outlive the port.
  explicit SimHostActuationPort(sim::SimHost& host) : host_(&host) {}

  /// Routes subsequent pause/resume delivery through `faults` (nullptr
  /// restores always-delivered semantics). The injector is borrowed.
  void set_faults(sim::FaultInjector* faults) { faults_ = faults; }

  double now() const override;
  std::vector<VmFootprint> batch_footprints() const override;
  std::vector<sim::VmId> present_batch() const override;
  std::vector<sim::VmId> all_batch() const override;
  std::vector<sim::VmId> demotion_candidates() const override;
  ResourceUtilization utilization() const override;
  bool pause(sim::VmId id) override;
  bool resume(sim::VmId id) override;
  bool detach(sim::VmId id) override;
  bool attach(sim::VmId id) override;
  std::vector<sim::VmId> parked_batch() const override;

  /// Every delivered actuation so far, in delivery order.
  const std::vector<DeliveredOp>& journal() const { return journal_; }
  /// Re-applies restored journal entries with time <= `now` directly to
  /// the host — no fault draws, no re-journalling — in original delivery
  /// order. An internal cursor makes repeated calls apply each entry
  /// exactly once; the supervisor calls this at every period boundary of
  /// the fast-forward.
  void replay_delivered(double now);
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  sim::SimHost* host_;
  sim::FaultInjector* faults_ = nullptr;
  std::vector<DeliveredOp> journal_;
  std::size_t replay_cursor_ = 0;  // next journal entry replay applies
};

}  // namespace stayaway::core
