// SimHostActuationPort — the production ActuationPort: a thin view over
// the simulated host with pause/resume delivery routed through the
// optional fault channel (DESIGN.md §12). This is the only place where
// actuation crosses from the stage world into the host; stage
// implementations themselves must not see the host (stage-host-isolation
// lint rule), which is why this lives in src/core/, not src/core/stages/.
//
// Shared by HostPipeline (which installs the fault injector) and the
// baseline policy adapters in src/baseline/ (fault-free, constructed per
// period).
#pragma once

#include "core/stages/port.hpp"
#include "sim/faults.hpp"
#include "sim/host.hpp"

namespace stayaway::core {

class SimHostActuationPort final : public ActuationPort {
 public:
  /// `host` must outlive the port.
  explicit SimHostActuationPort(sim::SimHost& host) : host_(&host) {}

  /// Routes subsequent pause/resume delivery through `faults` (nullptr
  /// restores always-delivered semantics). The injector is borrowed.
  void set_faults(sim::FaultInjector* faults) { faults_ = faults; }

  double now() const override;
  std::vector<VmFootprint> batch_footprints() const override;
  std::vector<sim::VmId> present_batch() const override;
  std::vector<sim::VmId> all_batch() const override;
  std::vector<sim::VmId> demotion_candidates() const override;
  ResourceUtilization utilization() const override;
  bool pause(sim::VmId id) override;
  bool resume(sim::VmId id) override;

 private:
  sim::SimHost* host_;
  sim::FaultInjector* faults_ = nullptr;
};

}  // namespace stayaway::core
