#include "core/governor.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace stayaway::core {

const char* to_string(ThrottleAction action) {
  switch (action) {
    case ThrottleAction::None:
      return "none";
    case ThrottleAction::Pause:
      return "pause";
    case ThrottleAction::Resume:
      return "resume";
  }
  return "unknown";
}

const char* to_string(ResumeReason reason) {
  switch (reason) {
    case ResumeReason::BetaExceeded:
      return "beta-exceeded";
    case ResumeReason::AntiStarvation:
      return "anti-starvation";
  }
  return "unknown";
}

// The Rng is a sink parameter (mt19937_64 carries ~2.5 KB of state):
// moved, not copied, into the member.
ThrottleGovernor::ThrottleGovernor(GovernorConfig config, Rng rng)
    : config_(config), rng_(std::move(rng)), beta_(config.beta_initial) {
  SA_REQUIRE(config.beta_initial > 0.0, "beta must start positive");
  SA_REQUIRE(config.beta_increment >= 0.0, "beta increment must be >= 0");
  SA_REQUIRE(config.beta_max <= 0.0 || config.beta_max >= config.beta_initial,
             "beta_max must be >= beta_initial (or <= 0 to disable the cap)");
}

void ThrottleGovernor::abandon_pause() {
  // Deliberately leaves resumed_at_/last_resume_reason_ untouched: an
  // abandoned pause never ran, so any in-flight probation window from
  // the preceding resume remains meaningful.
  paused_since_.reset();
  last_paused_state_.reset();
}

ThrottleAction ThrottleGovernor::decide(double now, bool batch_paused,
                                        bool violation_predicted,
                                        bool violation_observed,
                                        const mds::Point2& mapped_state) {
  SA_CHECK(std::isfinite(now), "decision time must be finite");
  SA_CHECK(beta_ > 0.0, "beta must stay positive across decisions");
  if (!batch_paused) {
    bool in_probation = resumed_at_.has_value() &&
                        now - *resumed_at_ <= config_.resume_grace_s;
    if (violation_observed && in_probation &&
        last_resume_reason_ == ResumeReason::BetaExceeded) {
      // The phase change beta detected was not enough: learn a larger
      // one, capped so repeated failed-resume cycles cannot push beta
      // past the point where resume becomes permanently unreachable.
      beta_ += config_.beta_increment;
      if (config_.beta_max > 0.0 && beta_ > config_.beta_max) {
        beta_ = config_.beta_max;
      }
      ++failed_resumes_;
    }
    // §3.3: a resume is a deliberate probe "in hope that the batch
    // application may experience a phase transition"; it is cut short only
    // if the sensitive application actually degrades ("if the batch
    // application continues to degrade performance ... it is paused
    // again"). Within the probation window, predictions — made from map
    // states of the paused regime, hence stale — do not cancel the probe.
    bool prediction_counts = violation_predicted && !in_probation;
    if (prediction_counts || violation_observed) {
      ++pauses_;
      paused_since_ = now;
      last_paused_state_.reset();  // next period seeds the distance chain
      resumed_at_.reset();
      // A Pause is only ever emitted from the running branch, so a
      // pause->pause double-transition is impossible; the bookkeeping it
      // leaves behind must describe exactly one open pause.
      SA_DCHECK(paused_since_.has_value() && !last_paused_state_.has_value() &&
                    !resumed_at_.has_value(),
                "Pause must leave exactly one open pause on the books");
      return ThrottleAction::Pause;
    }
    return ThrottleAction::None;
  }

  // Batch is paused: only the sensitive app runs, so consecutive states
  // cluster unless its phase or workload changes (§3.3).
  if (!paused_since_.has_value()) {
    // Pause initiated outside this governor (e.g. an operator, or state
    // carried over a restart): the starvation clock starts at the first
    // observation, not at a default epoch that would make `now - since`
    // instantly exceed the patience and fire spurious resumes.
    paused_since_ = now;
  }
  ThrottleAction action = ThrottleAction::None;
  if (last_paused_state_.has_value()) {
    double moved = mds::distance(*last_paused_state_, mapped_state);
    if (moved > beta_) {
      action = ThrottleAction::Resume;
      last_resume_reason_ = ResumeReason::BetaExceeded;
    }
  }
  if (action == ThrottleAction::None &&
      now - *paused_since_ >= config_.starvation_patience_s &&
      rng_.chance(config_.random_resume_probability)) {
    action = ThrottleAction::Resume;
    last_resume_reason_ = ResumeReason::AntiStarvation;
    ++random_resumes_;
  }

  if (action == ThrottleAction::Resume) {
    ++resumes_;
    resumed_at_ = now;
    last_paused_state_.reset();
    paused_since_.reset();
    // A Resume is only ever emitted from the paused branch, so a
    // resume->resume double-transition is impossible; the pause ledger
    // must be fully closed once it fires.
    SA_DCHECK(!paused_since_.has_value() && !last_paused_state_.has_value() &&
                  resumed_at_.has_value() && last_resume_reason_.has_value(),
              "Resume must close the pause ledger");
  } else {
    last_paused_state_ = mapped_state;
  }
  return action;
}

void ThrottleGovernor::save_state(util::StateWriter& w) const {
  w.line("governor_rng", rng_.save_state());
  w.real("beta", beta_);
  w.boolean("has_last_paused_state", last_paused_state_.has_value());
  if (last_paused_state_.has_value()) {
    w.real("last_paused_x", last_paused_state_->x);
    w.real("last_paused_y", last_paused_state_->y);
  }
  w.boolean("has_paused_since", paused_since_.has_value());
  if (paused_since_.has_value()) w.real("paused_since", *paused_since_);
  w.boolean("has_resumed_at", resumed_at_.has_value());
  if (resumed_at_.has_value()) w.real("resumed_at", *resumed_at_);
  w.boolean("has_last_resume_reason", last_resume_reason_.has_value());
  if (last_resume_reason_.has_value()) {
    w.u64("last_resume_reason",
          static_cast<std::uint64_t>(*last_resume_reason_));
  }
  w.u64("pauses", pauses_);
  w.u64("resumes", resumes_);
  w.u64("failed_resumes", failed_resumes_);
  w.u64("random_resumes", random_resumes_);
}

void ThrottleGovernor::load_state(util::StateReader& r) {
  rng_.load_state(r.line("governor_rng"));
  beta_ = r.real("beta");
  last_paused_state_.reset();
  if (r.boolean("has_last_paused_state")) {
    double x = r.real("last_paused_x");
    double y = r.real("last_paused_y");
    last_paused_state_ = mds::Point2{x, y};
  }
  paused_since_.reset();
  if (r.boolean("has_paused_since")) paused_since_ = r.real("paused_since");
  resumed_at_.reset();
  if (r.boolean("has_resumed_at")) resumed_at_ = r.real("resumed_at");
  last_resume_reason_.reset();
  if (r.boolean("has_last_resume_reason")) {
    std::uint64_t reason = r.u64("last_resume_reason");
    if (reason > static_cast<std::uint64_t>(ResumeReason::AntiStarvation)) {
      throw util::StateCodecError("governor state: unknown resume reason");
    }
    last_resume_reason_ = static_cast<ResumeReason>(reason);
  }
  pauses_ = static_cast<std::size_t>(r.u64("pauses"));
  resumes_ = static_cast<std::size_t>(r.u64("resumes"));
  failed_resumes_ = static_cast<std::size_t>(r.u64("failed_resumes"));
  random_resumes_ = static_cast<std::size_t>(r.u64("random_resumes"));
}

}  // namespace stayaway::core
