#include "core/governor.hpp"

#include "util/check.hpp"

namespace stayaway::core {

const char* to_string(ThrottleAction action) {
  switch (action) {
    case ThrottleAction::None:
      return "none";
    case ThrottleAction::Pause:
      return "pause";
    case ThrottleAction::Resume:
      return "resume";
  }
  return "unknown";
}

const char* to_string(ResumeReason reason) {
  switch (reason) {
    case ResumeReason::BetaExceeded:
      return "beta-exceeded";
    case ResumeReason::AntiStarvation:
      return "anti-starvation";
  }
  return "unknown";
}

ThrottleGovernor::ThrottleGovernor(GovernorConfig config, Rng rng)
    : config_(config), rng_(rng), beta_(config.beta_initial) {
  SA_REQUIRE(config.beta_initial > 0.0, "beta must start positive");
  SA_REQUIRE(config.beta_increment >= 0.0, "beta increment must be >= 0");
}

ThrottleAction ThrottleGovernor::decide(double now, bool batch_paused,
                                        bool violation_predicted,
                                        bool violation_observed,
                                        const mds::Point2& mapped_state) {
  if (!batch_paused) {
    bool in_probation = resumed_at_.has_value() &&
                        now - *resumed_at_ <= config_.resume_grace_s;
    if (violation_observed && in_probation &&
        last_resume_reason_ == ResumeReason::BetaExceeded) {
      // The phase change beta detected was not enough: learn a larger one.
      beta_ += config_.beta_increment;
      ++failed_resumes_;
    }
    // §3.3: a resume is a deliberate probe "in hope that the batch
    // application may experience a phase transition"; it is cut short only
    // if the sensitive application actually degrades ("if the batch
    // application continues to degrade performance ... it is paused
    // again"). Within the probation window, predictions — made from map
    // states of the paused regime, hence stale — do not cancel the probe.
    bool prediction_counts = violation_predicted && !in_probation;
    if (prediction_counts || violation_observed) {
      ++pauses_;
      paused_since_ = now;
      last_paused_state_.reset();  // next period seeds the distance chain
      resumed_at_.reset();
      return ThrottleAction::Pause;
    }
    return ThrottleAction::None;
  }

  // Batch is paused: only the sensitive app runs, so consecutive states
  // cluster unless its phase or workload changes (§3.3).
  if (!paused_since_.has_value()) {
    // Pause initiated outside this governor (e.g. an operator, or state
    // carried over a restart): the starvation clock starts at the first
    // observation, not at a default epoch that would make `now - since`
    // instantly exceed the patience and fire spurious resumes.
    paused_since_ = now;
  }
  ThrottleAction action = ThrottleAction::None;
  if (last_paused_state_.has_value()) {
    double moved = mds::distance(*last_paused_state_, mapped_state);
    if (moved > beta_) {
      action = ThrottleAction::Resume;
      last_resume_reason_ = ResumeReason::BetaExceeded;
    }
  }
  if (action == ThrottleAction::None &&
      now - *paused_since_ >= config_.starvation_patience_s &&
      rng_.chance(config_.random_resume_probability)) {
    action = ThrottleAction::Resume;
    last_resume_reason_ = ResumeReason::AntiStarvation;
    ++random_resumes_;
  }

  if (action == ThrottleAction::Resume) {
    ++resumes_;
    resumed_at_ = now;
    last_paused_state_.reset();
    paused_since_.reset();
  } else {
    last_paused_state_ = mapped_state;
  }
  return action;
}

}  // namespace stayaway::core
