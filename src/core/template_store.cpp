#include "core/template_store.hpp"

#include <istream>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace stayaway::core {

std::size_t StateTemplate::violation_count() const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.label == StateLabel::Violation) ++n;
  }
  return n;
}

void StateTemplate::save(std::ostream& out) const {
  CsvWriter w(out);
  w.row(std::vector<std::string>{"app", sensitive_app});
  for (const auto& e : entries) {
    std::vector<std::string> cells;
    cells.reserve(e.vector.size() + 1);
    cells.push_back(e.label == StateLabel::Violation ? "violation" : "safe");
    for (double v : e.vector) cells.push_back(format_double(v, 9));
    w.row(cells);
  }
}

StateTemplate StateTemplate::load(std::istream& in) {
  auto rows = parse_csv(in);
  SA_REQUIRE(!rows.empty(), "template file is empty");
  SA_REQUIRE(rows.front().size() == 2 && rows.front()[0] == "app",
             "template file lacks the provenance row");
  StateTemplate t;
  t.sensitive_app = rows.front()[1];
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& cells = rows[r];
    SA_REQUIRE(cells.size() >= 2, "template rows need a label and a vector");
    TemplateEntry e;
    if (cells[0] == "violation") {
      e.label = StateLabel::Violation;
    } else {
      SA_REQUIRE(cells[0] == "safe", "unknown template label: " + cells[0]);
      e.label = StateLabel::Safe;
    }
    std::vector<std::string> nums(cells.begin() + 1, cells.end());
    e.vector = csv_row_to_doubles(nums);
    if (!t.entries.empty()) {
      SA_REQUIRE(e.vector.size() == t.entries.front().vector.size(),
                 "template vectors must share a dimension");
    }
    t.entries.push_back(std::move(e));
  }
  return t;
}

}  // namespace stayaway::core
