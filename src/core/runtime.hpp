// StayAwayRuntime — the per-host middleware loop (§3 of the paper):
// Mapping, Prediction, Action, performed every control period.
//
// Usage pattern (see src/harness/experiment.cpp and examples/):
//   sim::SimHost host{spec};
//   ... add sensitive + batch VMs ...
//   StayAwayRuntime runtime{host, sensitive_id, probe, config};
//   while (...) { host.run(ticks_per_period); runtime.on_period(); }
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/embedder.hpp"
#include "core/governor.hpp"
#include "core/predictor.hpp"
#include "core/statespace.hpp"
#include "core/template_store.hpp"
#include "core/trajectory.hpp"
#include "monitor/health.hpp"
#include "monitor/mode.hpp"
#include "monitor/normalizer.hpp"
#include "monitor/representative.hpp"
#include "monitor/sampler.hpp"
#include "obs/observer.hpp"
#include "sim/faults.hpp"
#include "sim/host.hpp"
#include "util/rng.hpp"

namespace stayaway::core {

/// Degradation state machine (DESIGN.md §12). Normal: full telemetry,
/// paper behaviour. Degraded: running on imputed samples or a briefly
/// blind QoS probe — decisions widen conservatively. Failsafe: QoS-blind
/// past the configured patience — every batch VM is paused until
/// telemetry recovers. Recovery steps down one level at a time with
/// hysteresis (DegradationConfig::recovery_periods).
enum class DegradationState {
  Normal = 0,
  Degraded = 1,
  Failsafe = 2,
};

const char* to_string(DegradationState state);

/// Everything the runtime learned and did in one control period.
struct PeriodRecord {
  double time = 0.0;
  monitor::ExecutionMode mode = monitor::ExecutionMode::Idle;
  mds::Point2 state;
  std::size_t representative = 0;
  bool new_representative = false;
  bool violation_observed = false;
  bool violation_predicted = false;
  bool model_ready = false;
  ThrottleAction action = ThrottleAction::None;
  bool batch_paused_after = false;
  double stress = 0.0;
  double beta = 0.0;
  // --- Degraded-mode telemetry (defaults describe a healthy period, so
  // fault-free records compare equal to the historical sequence). ------
  DegradationState degradation = DegradationState::Normal;
  std::size_t quarantined_dims = 0;  // readings imputed this period
  std::size_t max_staleness = 0;     // longest consecutive-imputation run
  bool qos_visible = true;           // the probe reported this period
  std::size_t actuation_retries = 0;  // commands re-issued this period
  bool actuation_pending = false;     // ledger still diverged afterwards

  bool operator==(const PeriodRecord& o) const = default;
};

/// Passive prediction-vs-outcome tallies: each period's forecast ("will
/// the execution progress into the violation region?") scored against the
/// next period's realised map position. Meaningful when actions are
/// disabled (an acted-on prediction masks its own outcome).
struct PredictionTally {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double accuracy() const;
};

class StayAwayRuntime {
 public:
  /// host and probe must outlive the runtime. `probe` is the sensitive
  /// app's QoS reporting channel (§3.1). `config` is the single entry
  /// point — it carries the sampler options too (config.sampler; the
  /// defaults aggregate all batch VMs into one logical entity, §5).
  StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                  StayAwayConfig config);

  /// Deprecated positional shim: prefer setting config.sampler and using
  /// the three-argument constructor. `sampler_options` overrides
  /// config.sampler wholesale.
  StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                  StayAwayConfig config,
                  monitor::SamplerOptions sampler_options);

  /// Attaches (or detaches, with nullptr) a passive observability
  /// observer: phase span timers, loop metrics and period/action events.
  /// The observer must outlive the runtime or be detached first; it never
  /// influences decisions — the PeriodRecord sequence is identical with
  /// observability on or off.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() const { return observer_; }

  /// Installs a fault plan (DESIGN.md §12): sensor faults apply to every
  /// sample, QoS-blind windows silence the probe, and pause/resume
  /// commands become fallible. Must be called before the first
  /// on_period(). With no plan installed (or an empty one) the emitted
  /// PeriodRecord sequence is byte-identical to the fault-free loop
  /// (golden test in tests/test_runtime.cpp).
  void install_faults(const sim::FaultPlan& plan);
  const sim::FaultInjector* fault_injector() const {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

  /// Pre-loads the labelled states of a previous run (§6). Must be called
  /// before the first on_period(); entry dimensions must match the
  /// sampler layout.
  void seed_template(const StateTemplate& t);

  /// Exports the current labelled representative set as a template.
  StateTemplate export_template(std::string sensitive_app_name) const;

  /// Runs one control period: sample, map, predict, act.
  const PeriodRecord& on_period();

  const StateSpace& state_space() const { return space_; }
  const MapEmbedder& embedder() const { return embedder_; }
  const ThrottleGovernor& governor() const { return governor_; }
  const monitor::RepresentativeSet& representatives() const { return reps_; }
  const monitor::MetricLayout& layout() const { return sampler_.layout(); }
  const ModeTrajectories& trajectories() const { return modes_; }
  const std::vector<PeriodRecord>& records() const { return records_; }
  const PredictionTally& tally() const { return tally_; }
  const StayAwayConfig& config() const { return config_; }

  bool batch_paused() const { return batch_paused_; }
  /// VMs paused by the last Pause action (empty after a Resume).
  const std::vector<sim::VmId>& throttled() const { return throttled_; }

  /// Current degradation state (Normal unless faults degraded telemetry).
  DegradationState degradation() const { return degradation_; }
  /// Readings quarantined before they could reach the map (lifetime).
  std::size_t readings_quarantined() const {
    return quarantine_.total_quarantined();
  }
  /// Pause/resume commands re-issued by the reconciling ledger (lifetime).
  std::size_t actuation_retries() const { return actuation_retries_total_; }
  /// Commands abandoned after the bounded retry budget ran out (lifetime).
  std::size_t actuation_abandoned() const {
    return actuation_abandoned_total_;
  }

 private:
  /// Outstanding pause/resume commands the fault channel dropped; the
  /// ledger retries them with exponential backoff until delivered or the
  /// retry budget runs out.
  struct PendingActuation {
    ThrottleAction op = ThrottleAction::None;
    std::vector<sim::VmId> targets;  // commands not yet delivered
    std::size_t attempts = 1;        // delivery rounds tried so far
    double next_retry_time = 0.0;
  };

  void apply_action(ThrottleAction action, bool failsafe_all_batch);
  /// Re-issues pending undelivered commands once their backoff elapses.
  /// Returns the number of commands re-issued this period.
  std::size_t reconcile_actuation(double now);
  /// Updates the degradation state machine with this period's health.
  void update_degradation(const monitor::SampleHealth& health,
                          bool qos_visible);
  /// Every present batch VM (the failsafe pause set).
  std::vector<sim::VmId> all_present_batch() const;
  /// Sends one pause/resume command through the (possibly faulty)
  /// actuation channel; true when it took effect.
  bool deliver(ThrottleAction op, sim::VmId id, double now);
  /// Publishes the period's metrics and events to the attached observer.
  void publish(const PeriodRecord& rec, const std::vector<sim::VmId>& resumed);
  /// Batch VMs consuming the major share of batch resources (§5:
  /// "batch applications consuming a majority share of resources are
  /// collectively throttled").
  std::vector<sim::VmId> throttle_targets() const;

  sim::SimHost* host_;
  const sim::QosProbe* probe_;
  StayAwayConfig config_;
  monitor::HostSampler sampler_;
  monitor::CapacityNormalizer normalizer_;
  monitor::SampleQuarantine quarantine_;
  monitor::RepresentativeSet reps_;
  StateSpace space_;
  MapEmbedder embedder_;
  ModeTrajectories modes_;
  Predictor predictor_;
  ThrottleGovernor governor_;
  Rng rng_;
  bool batch_paused_ = false;
  std::vector<sim::VmId> throttled_;  // VMs paused by the last Pause action
  // --- Degraded-mode control loop (DESIGN.md §12). ----------------------
  std::optional<sim::FaultInjector> faults_;
  DegradationState degradation_ = DegradationState::Normal;
  std::size_t qos_blind_streak_ = 0;
  std::size_t healthy_streak_ = 0;
  bool failsafe_pause_ = false;  // the current pause was failsafe-initiated
  std::optional<PendingActuation> pending_;
  std::size_t actuation_retries_total_ = 0;
  std::size_t actuation_abandoned_total_ = 0;
  /// Set on a state transition, consumed by publish() for the event.
  std::optional<std::pair<DegradationState, DegradationState>> transition_;
  std::optional<std::size_t> prev_rep_;
  std::optional<monitor::ExecutionMode> prev_mode_;
  std::optional<bool> prev_predicted_;  // last period's passive prediction
  std::vector<PeriodRecord> records_;
  PredictionTally tally_;

  // --- Observability (passive; see set_observer). -----------------------
  obs::Observer* observer_ = nullptr;
  struct LoopMetrics {
    obs::Counter periods;
    obs::Counter violations_observed;
    obs::Counter violations_predicted;
    obs::Counter new_representatives;
    obs::Counter pauses;
    obs::Counter resumes;
    obs::Gauge beta;
    obs::Gauge stress;
    obs::Gauge representatives;
    obs::Gauge violation_states;
    obs::Gauge tally_accuracy;
    obs::Gauge embed_iterations;
    obs::Gauge embed_cold_skips;
    obs::Gauge embed_rebuilds;
    obs::Gauge space_invalidations;
    obs::Gauge space_rebuilds;
    obs::Gauge governor_failed_resumes;
    obs::Gauge governor_random_resumes;
    obs::Gauge sampler_samples;
    // Degraded-mode telemetry (DESIGN.md §12).
    obs::Counter quarantined_readings;
    obs::Counter qos_blind_periods;
    obs::Counter degraded_periods;
    obs::Counter degradation_transitions;
    obs::Counter actuation_retries;
    obs::Gauge degradation_state;
    obs::Gauge sample_staleness;
    obs::Gauge actuation_abandoned;
    obs::Gauge faults_injected;
  } metrics_;
};

}  // namespace stayaway::core
