// StayAwayRuntime — the per-host middleware loop (§3 of the paper):
// Mapping, Prediction, Action, performed every control period.
//
// Since the stage decomposition (DESIGN.md §13) this is a thin facade
// over HostPipeline wired with the full Stay-Away stage set
// (StayAwayMapper -> TrajectoryForecaster -> GovernorActuator). The
// facade preserves the historical single-host API; new multi-host code
// should compose HostPipeline / FleetController directly.
//
// Usage pattern (see src/harness/experiment.cpp and examples/):
//   sim::SimHost host{spec};
//   ... add sensitive + batch VMs ...
//   StayAwayRuntime runtime{host, probe, config};
//   while (...) { host.run(ticks_per_period); runtime.on_period(); }
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/period.hpp"
#include "core/pipeline.hpp"

namespace stayaway::core {

class StayAwayRuntime {
 public:
  /// host and probe must outlive the runtime. `probe` is the sensitive
  /// app's QoS reporting channel (§3.1). `config` is the single entry
  /// point — it carries the sampler config too (config.sampler; the
  /// defaults aggregate all batch VMs into one logical entity, §5).
  StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                  StayAwayConfig config);

  /// Attaches (or detaches, with nullptr) a passive observability
  /// observer: phase span timers, loop metrics and period/action events.
  /// The observer must outlive the runtime or be detached first; it never
  /// influences decisions — the PeriodRecord sequence is identical with
  /// observability on or off.
  void set_observer(obs::Observer* observer) {
    pipeline_.set_observer(observer);
  }
  obs::Observer* observer() const { return pipeline_.observer(); }

  /// Installs a fault plan (DESIGN.md §12): sensor faults apply to every
  /// sample, QoS-blind windows silence the probe, and pause/resume
  /// commands become fallible. Must be called before the first
  /// on_period(). With no plan installed (or an empty one) the emitted
  /// PeriodRecord sequence is byte-identical to the fault-free loop
  /// (golden test in tests/test_runtime.cpp).
  void install_faults(const sim::FaultPlan& plan) {
    pipeline_.install_faults(plan);
  }
  const sim::FaultInjector* fault_injector() const {
    return pipeline_.fault_injector();
  }

  /// Pre-loads the labelled states of a previous run (§6). Must be called
  /// before the first on_period(); entry dimensions must match the
  /// sampler layout.
  void seed_template(const StateTemplate& t) {
    pipeline_.stay_away_mapper()->seed_template(t);
  }

  /// Exports the current labelled representative set as a template.
  StateTemplate export_template(std::string sensitive_app_name) const {
    return pipeline_.stay_away_mapper()->export_template(
        std::move(sensitive_app_name));
  }

  /// Runs one control period: sample, map, predict, act.
  const PeriodRecord& on_period() { return pipeline_.on_period(); }

  const StateSpace& state_space() const {
    return pipeline_.stay_away_mapper()->space();
  }
  const MapEmbedder& embedder() const {
    return pipeline_.stay_away_mapper()->embedder();
  }
  const ThrottleGovernor& governor() const {
    return pipeline_.governor_actuator()->governor();
  }
  const monitor::RepresentativeSet& representatives() const {
    return pipeline_.stay_away_mapper()->representatives();
  }
  const monitor::MetricLayout& layout() const {
    return pipeline_.stay_away_mapper()->layout();
  }
  const ModeTrajectories& trajectories() const {
    return pipeline_.trajectory_forecaster()->trajectories();
  }
  const std::vector<PeriodRecord>& records() const {
    return pipeline_.records();
  }
  const PredictionTally& tally() const {
    return pipeline_.trajectory_forecaster()->tally();
  }
  const StayAwayConfig& config() const { return pipeline_.config(); }

  bool batch_paused() const {
    return pipeline_.governor_actuator()->batch_paused();
  }
  /// VMs paused by the last Pause action (empty after a Resume).
  const std::vector<sim::VmId>& throttled() const {
    return pipeline_.governor_actuator()->throttled();
  }

  /// Current degradation state (Normal unless faults degraded telemetry).
  DegradationState degradation() const { return pipeline_.degradation(); }
  /// Readings quarantined before they could reach the map (lifetime).
  std::size_t readings_quarantined() const {
    return pipeline_.stay_away_mapper()->readings_quarantined();
  }
  /// Pause/resume commands re-issued by the reconciling ledger (lifetime).
  std::size_t actuation_retries() const {
    return pipeline_.governor_actuator()->actuation_retries();
  }
  /// Commands abandoned after the bounded retry budget ran out (lifetime).
  std::size_t actuation_abandoned() const {
    return pipeline_.governor_actuator()->actuation_abandoned();
  }

  /// The underlying pipeline (stage-level access for fleet composition).
  HostPipeline& pipeline() { return pipeline_; }
  const HostPipeline& pipeline() const { return pipeline_; }

 private:
  HostPipeline pipeline_;
};

}  // namespace stayaway::core
