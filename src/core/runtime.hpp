// StayAwayRuntime — the per-host middleware loop (§3 of the paper):
// Mapping, Prediction, Action, performed every control period.
//
// Usage pattern (see src/harness/experiment.cpp and examples/):
//   sim::SimHost host{spec};
//   ... add sensitive + batch VMs ...
//   StayAwayRuntime runtime{host, sensitive_id, probe, config};
//   while (...) { host.run(ticks_per_period); runtime.on_period(); }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/embedder.hpp"
#include "core/governor.hpp"
#include "core/predictor.hpp"
#include "core/statespace.hpp"
#include "core/template_store.hpp"
#include "core/trajectory.hpp"
#include "monitor/mode.hpp"
#include "monitor/normalizer.hpp"
#include "monitor/representative.hpp"
#include "monitor/sampler.hpp"
#include "obs/observer.hpp"
#include "sim/host.hpp"
#include "util/rng.hpp"

namespace stayaway::core {

/// Everything the runtime learned and did in one control period.
struct PeriodRecord {
  double time = 0.0;
  monitor::ExecutionMode mode = monitor::ExecutionMode::Idle;
  mds::Point2 state;
  std::size_t representative = 0;
  bool new_representative = false;
  bool violation_observed = false;
  bool violation_predicted = false;
  bool model_ready = false;
  ThrottleAction action = ThrottleAction::None;
  bool batch_paused_after = false;
  double stress = 0.0;
  double beta = 0.0;

  bool operator==(const PeriodRecord& o) const = default;
};

/// Passive prediction-vs-outcome tallies: each period's forecast ("will
/// the execution progress into the violation region?") scored against the
/// next period's realised map position. Meaningful when actions are
/// disabled (an acted-on prediction masks its own outcome).
struct PredictionTally {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double accuracy() const;
};

class StayAwayRuntime {
 public:
  /// host and probe must outlive the runtime. `probe` is the sensitive
  /// app's QoS reporting channel (§3.1). `config` is the single entry
  /// point — it carries the sampler options too (config.sampler; the
  /// defaults aggregate all batch VMs into one logical entity, §5).
  StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                  StayAwayConfig config);

  /// Deprecated positional shim: prefer setting config.sampler and using
  /// the three-argument constructor. `sampler_options` overrides
  /// config.sampler wholesale.
  StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                  StayAwayConfig config,
                  monitor::SamplerOptions sampler_options);

  /// Attaches (or detaches, with nullptr) a passive observability
  /// observer: phase span timers, loop metrics and period/action events.
  /// The observer must outlive the runtime or be detached first; it never
  /// influences decisions — the PeriodRecord sequence is identical with
  /// observability on or off.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() const { return observer_; }

  /// Pre-loads the labelled states of a previous run (§6). Must be called
  /// before the first on_period(); entry dimensions must match the
  /// sampler layout.
  void seed_template(const StateTemplate& t);

  /// Exports the current labelled representative set as a template.
  StateTemplate export_template(std::string sensitive_app_name) const;

  /// Runs one control period: sample, map, predict, act.
  const PeriodRecord& on_period();

  const StateSpace& state_space() const { return space_; }
  const MapEmbedder& embedder() const { return embedder_; }
  const ThrottleGovernor& governor() const { return governor_; }
  const monitor::RepresentativeSet& representatives() const { return reps_; }
  const monitor::MetricLayout& layout() const { return sampler_.layout(); }
  const ModeTrajectories& trajectories() const { return modes_; }
  const std::vector<PeriodRecord>& records() const { return records_; }
  const PredictionTally& tally() const { return tally_; }
  const StayAwayConfig& config() const { return config_; }

  bool batch_paused() const { return batch_paused_; }
  /// VMs paused by the last Pause action (empty after a Resume).
  const std::vector<sim::VmId>& throttled() const { return throttled_; }

 private:
  void apply_action(ThrottleAction action);
  /// Publishes the period's metrics and events to the attached observer.
  void publish(const PeriodRecord& rec, const std::vector<sim::VmId>& resumed);
  /// Batch VMs consuming the major share of batch resources (§5:
  /// "batch applications consuming a majority share of resources are
  /// collectively throttled").
  std::vector<sim::VmId> throttle_targets() const;

  sim::SimHost* host_;
  const sim::QosProbe* probe_;
  StayAwayConfig config_;
  monitor::HostSampler sampler_;
  monitor::CapacityNormalizer normalizer_;
  monitor::RepresentativeSet reps_;
  StateSpace space_;
  MapEmbedder embedder_;
  ModeTrajectories modes_;
  Predictor predictor_;
  ThrottleGovernor governor_;
  Rng rng_;
  bool batch_paused_ = false;
  std::vector<sim::VmId> throttled_;  // VMs paused by the last Pause action
  std::optional<std::size_t> prev_rep_;
  std::optional<monitor::ExecutionMode> prev_mode_;
  std::optional<bool> prev_predicted_;  // last period's passive prediction
  std::vector<PeriodRecord> records_;
  PredictionTally tally_;

  // --- Observability (passive; see set_observer). -----------------------
  obs::Observer* observer_ = nullptr;
  struct LoopMetrics {
    obs::Counter periods;
    obs::Counter violations_observed;
    obs::Counter violations_predicted;
    obs::Counter new_representatives;
    obs::Counter pauses;
    obs::Counter resumes;
    obs::Gauge beta;
    obs::Gauge stress;
    obs::Gauge representatives;
    obs::Gauge violation_states;
    obs::Gauge tally_accuracy;
    obs::Gauge embed_iterations;
    obs::Gauge embed_cold_skips;
    obs::Gauge embed_rebuilds;
    obs::Gauge space_invalidations;
    obs::Gauge space_rebuilds;
    obs::Gauge governor_failed_resumes;
    obs::Gauge governor_random_resumes;
    obs::Gauge sampler_samples;
  } metrics_;
};

}  // namespace stayaway::core
