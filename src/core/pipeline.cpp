#include "core/pipeline.hpp"

#include "trace/diurnal.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::core {

namespace {

/// Builds the configured SampleSource (DESIGN.md §15). The synchronous
/// source is the default and keeps the record stream byte-identical to
/// the historical loop; the ring source replays a diurnal trace through
/// an async producer at config.ingest.rate_hz.
std::unique_ptr<monitor::SampleSource> make_sample_source(
    sim::SimHost& host, const StayAwayConfig& config,
    const monitor::CapacityNormalizer& normalizer) {
  monitor::HostSampler sampler(host, config.sampler);
  if (!config.ingest.streaming()) {
    return std::make_unique<monitor::SynchronousSampleSource>(
        std::move(sampler));
  }
  const monitor::MetricLayout& layout = sampler.layout();
  // Full-scale raw value per flat dimension: the host capacity of the
  // dimension's metric kind (same basis the normalizer divides by).
  std::vector<double> scale(layout.dimension(), 0.0);
  for (std::size_t e = 0; e < layout.entities.size(); ++e) {
    for (std::size_t k = 0; k < layout.metrics.size(); ++k) {
      scale[layout.index_of(e, k)] = normalizer.capacity_of(layout.metrics[k]);
    }
  }
  trace::DiurnalSpec spec;
  spec.seed = config.sampler.seed;
  monitor::RingStreamOptions options;
  options.rate_hz = config.ingest.rate_hz;
  options.lookahead_s = config.ingest.lookahead_s;
  options.ring_capacity = config.ingest.ring_capacity;
  options.burst_rate_hz = config.ingest.burst_rate_hz;
  options.burst_start_s = config.ingest.burst_start_s;
  options.burst_end_s = config.ingest.burst_end_s;
  options.noise_fraction = config.sampler.noise_fraction;
  options.seed = config.sampler.seed;
  return std::make_unique<monitor::RingSampleSource>(
      layout, std::move(scale), trace::generate_diurnal(spec), options);
}

}  // namespace

StageThrowError::StageThrowError(double time)
    : std::runtime_error("injected stage throw at t=" +
                         std::to_string(time)),
      time_(time) {}

StageStallError::StageStallError(double time)
    : std::runtime_error("injected stage stall at t=" +
                         std::to_string(time)),
      time_(time) {}

HostPipeline::HostPipeline(sim::SimHost& host, const sim::QosProbe& probe,
                           StayAwayConfig config)
    : host_(&host), probe_(&probe), config_(std::move(config)) {
  StageSet stages;
  monitor::CapacityNormalizer normalizer(
      host.spec(), monitor::HostSampler(host, config_.sampler).layout());
  auto mapper = std::make_unique<StayAwayMapper>(
      make_sample_source(host, config_, normalizer), std::move(normalizer),
      config_);
  stages.forecaster = std::make_unique<TrajectoryForecaster>(
      config_, mapper->layout().dimension());
  stages.actuator = std::make_unique<GovernorActuator>(config_);
  stages.mapper = std::move(mapper);
  init(std::move(stages));
}

HostPipeline::HostPipeline(sim::SimHost& host, const sim::QosProbe& probe,
                           StayAwayConfig config, StageSet stages)
    : host_(&host), probe_(&probe), config_(std::move(config)) {
  init(std::move(stages));
}

HostPipeline::~HostPipeline() = default;

void HostPipeline::init(StageSet stages) {
  SA_REQUIRE(config_.period_s > 0.0, "control period must be positive");
  SA_REQUIRE(config_.degradation.spike_margin > 0.0,
             "spike margin must be positive");
  SA_REQUIRE(config_.degradation.qos_blind_failsafe_periods > 0,
             "failsafe patience must be at least one period");
  SA_REQUIRE(config_.degradation.recovery_periods > 0,
             "recovery hysteresis must be at least one period");
  SA_REQUIRE(config_.degradation.degraded_majority_fraction >= 0.0 &&
                 config_.degradation.degraded_majority_fraction <= 1.0,
             "degraded majority fraction must be in [0,1]");
  SA_REQUIRE(stages.forecaster == nullptr || stages.mapper != nullptr,
             "a forecaster needs a mapper's state space");
  port_ = std::make_unique<SimHostActuationPort>(*host_);
  mapper_ = std::move(stages.mapper);
  forecaster_ = std::move(stages.forecaster);
  actuator_ = std::move(stages.actuator);
  sa_mapper_ = dynamic_cast<StayAwayMapper*>(mapper_.get());
  sa_forecaster_ = dynamic_cast<TrajectoryForecaster*>(forecaster_.get());
  sa_actuator_ = dynamic_cast<GovernorActuator*>(actuator_.get());
  if (config_.hot_path_threads != 0) {
    util::set_hot_path_threads(config_.hot_path_threads);
  }
}

void HostPipeline::set_host_label(std::string label) {
  SA_REQUIRE(observer_ == nullptr,
             "set the host label before attaching the observer");
  label_ = std::move(label);
}

void HostPipeline::install_faults(const sim::FaultPlan& plan) {
  SA_REQUIRE(records_.empty(),
             "fault plans must be installed before the first period");
  faults_.emplace(plan);
  if (sa_mapper_ != nullptr) sa_mapper_->set_fault_injector(&*faults_);
  port_->set_faults(&*faults_);
}

const PeriodRecord& HostPipeline::on_period() {
  // Injected stage failures fire before any stage state mutates (and
  // before any RNG draw), so a recovered or retried period replays
  // byte-identically (DESIGN.md §17).
  if (faults_.has_value()) {
    double entry_now = host_->now();
    if (faults_->stage_throw(entry_now)) throw StageThrowError(entry_now);
    if (faults_->stage_stall(entry_now, stall_attempts_)) {
      ++stall_attempts_;
      throw StageStallError(entry_now);
    }
    stall_attempts_ = 0;
  }
  obs::Span period_span = observer_ != nullptr
                              ? observer_->span("period", host_->now())
                              : obs::Span{};
  PeriodRecord rec;
  rec.time = host_->now();
  rec.mode = monitor::detect_mode(*host_);

  // --- Mapping (§3.1): sample, quarantine, normalize, dedup, embed. ---
  monitor::SampleHealth health;
  if (mapper_ != nullptr) health = mapper_->map(rec, observer_);

  // QoS label (§3.1: the application reports violations). Labels are
  // evidence based (see StateSpace): each period contributes one
  // (visit, violated?) observation to its representative. A QoS-blind
  // period contributes nothing — a silent probe is missing evidence, not
  // evidence of safety.
  rec.qos_visible = !(faults_.has_value() && faults_->qos_blind(rec.time));
  rec.violation_observed = rec.qos_visible && probe_->violated();
  if (mapper_ != nullptr && rec.qos_visible) {
    mapper_->observe_qos(rec.representative, rec.violation_observed);
  }

  update_degradation(health, rec.qos_visible);
  rec.degradation = degradation_;

  // --- Prediction (§3.2). ---
  if (forecaster_ != nullptr) {
    // Degraded telemetry widens the decision: a lower vote threshold
    // pauses earlier when the inputs are imputed or the probe just went
    // quiet.
    bool widened = config_.degradation.enabled &&
                   degradation_ != DegradationState::Normal;
    forecaster_->forecast(mapper_->space(), rec, widened, observer_);
  }

  // --- Action (§3.3). ---
  last_outcome_ = Actuator::Outcome{};
  if (actuator_ != nullptr) {
    last_outcome_ = actuator_->act(*port_, rec, degradation_, observer_);
  }

  records_.push_back(rec);
  period_span.close();
  if (observer_ != nullptr) publish(records_.back(), last_outcome_.resumed);
  transition_.reset();
  return records_.back();
}

void HostPipeline::update_degradation(const monitor::SampleHealth& health,
                                      bool qos_visible) {
  if (!config_.degradation.enabled) return;  // state pinned at Normal
  if (qos_visible) {
    qos_blind_streak_ = 0;
  } else {
    ++qos_blind_streak_;
  }
  DegradationState before = degradation_;
  bool healthy = qos_visible && !health.imputed();
  if (healthy) {
    // Recovery is hysteretic and stepwise: recovery_periods clean periods
    // buy one level down, so a flapping sensor cannot bounce the loop
    // straight back to Normal.
    ++healthy_streak_;
    if (healthy_streak_ >= config_.degradation.recovery_periods &&
        degradation_ != DegradationState::Normal) {
      degradation_ = degradation_ == DegradationState::Failsafe
                         ? DegradationState::Degraded
                         : DegradationState::Normal;
      healthy_streak_ = 0;
    }
  } else {
    healthy_streak_ = 0;
    DegradationState escalated =
        qos_blind_streak_ >= config_.degradation.qos_blind_failsafe_periods
            ? DegradationState::Failsafe
            : DegradationState::Degraded;
    if (escalated > degradation_) degradation_ = escalated;
  }
  if (degradation_ != before) {
    transition_ = std::make_pair(before, degradation_);
  }
}

std::unique_ptr<Actuator> HostPipeline::release_actuator() {
  sa_actuator_ = nullptr;
  return std::move(actuator_);
}

void HostPipeline::set_actuator(std::unique_ptr<Actuator> actuator) {
  actuator_ = std::move(actuator);
  sa_actuator_ = dynamic_cast<GovernorActuator*>(actuator_.get());
}

bool HostPipeline::checkpointable() const {
  return (mapper_ == nullptr || mapper_->checkpointable()) &&
         (forecaster_ == nullptr || forecaster_->checkpointable()) &&
         (actuator_ == nullptr || actuator_->checkpointable());
}

void HostPipeline::save_state(util::StateWriter& w) const {
  SA_REQUIRE(checkpointable(),
             "save_state on a pipeline with a non-checkpointable stage");
  w.boolean("has_mapper", mapper_ != nullptr);
  if (mapper_ != nullptr) mapper_->save_state(w);
  w.boolean("has_forecaster", forecaster_ != nullptr);
  if (forecaster_ != nullptr) forecaster_->save_state(w);
  w.boolean("has_actuator", actuator_ != nullptr);
  if (actuator_ != nullptr) actuator_->save_state(w);
  port_->save_state(w);
  w.boolean("has_faults", faults_.has_value());
  if (faults_.has_value()) faults_->save_state(w);
  w.u64("degradation", static_cast<std::uint64_t>(degradation_));
  w.u64("qos_blind_streak", qos_blind_streak_);
  w.u64("healthy_streak", healthy_streak_);
}

void HostPipeline::load_state(util::StateReader& r) {
  SA_REQUIRE(checkpointable(),
             "load_state on a pipeline with a non-checkpointable stage");
  if (r.boolean("has_mapper") != (mapper_ != nullptr)) {
    throw util::StateCodecError("checkpoint/pipeline mapper wiring mismatch");
  }
  if (mapper_ != nullptr) mapper_->load_state(r);
  if (r.boolean("has_forecaster") != (forecaster_ != nullptr)) {
    throw util::StateCodecError(
        "checkpoint/pipeline forecaster wiring mismatch");
  }
  if (forecaster_ != nullptr) forecaster_->load_state(r);
  if (r.boolean("has_actuator") != (actuator_ != nullptr)) {
    throw util::StateCodecError("checkpoint/pipeline actuator wiring mismatch");
  }
  if (actuator_ != nullptr) actuator_->load_state(r);
  port_->load_state(r);
  if (r.boolean("has_faults") != faults_.has_value()) {
    throw util::StateCodecError(
        "checkpoint/pipeline fault-injector wiring mismatch");
  }
  if (faults_.has_value()) faults_->load_state(r);
  std::uint64_t degradation = r.u64("degradation");
  if (degradation > static_cast<std::uint64_t>(DegradationState::Failsafe)) {
    throw util::StateCodecError("degradation state out of range");
  }
  degradation_ = static_cast<DegradationState>(degradation);
  qos_blind_streak_ = static_cast<std::size_t>(r.u64("qos_blind_streak"));
  healthy_streak_ = static_cast<std::size_t>(r.u64("healthy_streak"));
}

void HostPipeline::seed_records(std::vector<PeriodRecord> records) {
  SA_REQUIRE(records_.empty(),
             "restored record history must be seeded before the first period");
  records_ = std::move(records);
}

std::string HostPipeline::metric_name(const char* name) const {
  if (label_.empty()) return name;
  return "host." + label_ + "." + name;
}

void HostPipeline::set_observer(obs::Observer* observer) {
  observer_ = observer;
  if (observer_ == nullptr) {
    metrics_ = LoopMetrics{};
    return;
  }
  obs::MetricsRegistry& reg = observer_->metrics();
  metrics_.periods = reg.counter(metric_name("loop.periods"));
  metrics_.violations_observed =
      reg.counter(metric_name("loop.violations_observed"));
  metrics_.violations_predicted =
      reg.counter(metric_name("loop.violations_predicted"));
  metrics_.new_representatives =
      reg.counter(metric_name("loop.new_representatives"));
  metrics_.pauses = reg.counter(metric_name("loop.pauses"));
  metrics_.resumes = reg.counter(metric_name("loop.resumes"));
  metrics_.beta = reg.gauge(metric_name("governor.beta"));
  metrics_.stress = reg.gauge(metric_name("embedder.stress"));
  metrics_.representatives = reg.gauge(metric_name("map.representatives"));
  metrics_.violation_states = reg.gauge(metric_name("map.violation_states"));
  metrics_.tally_accuracy =
      reg.gauge(metric_name("predictor.tally_accuracy"));
  metrics_.embed_iterations =
      reg.gauge(metric_name("embedder.smacof_iterations_total"));
  metrics_.embed_cold_skips =
      reg.gauge(metric_name("embedder.cold_runs_skipped_total"));
  metrics_.embed_rebuilds =
      reg.gauge(metric_name("embedder.matrix_rebuilds_total"));
  metrics_.space_invalidations =
      reg.gauge(metric_name("space.cache_invalidations_total"));
  metrics_.space_rebuilds =
      reg.gauge(metric_name("space.cache_rebuilds_total"));
  metrics_.governor_failed_resumes =
      reg.gauge(metric_name("governor.failed_resumes_total"));
  metrics_.governor_random_resumes =
      reg.gauge(metric_name("governor.random_resumes_total"));
  metrics_.sampler_samples = reg.gauge(metric_name("sampler.samples_total"));
  metrics_.quarantined_readings =
      reg.counter(metric_name("health.quarantined_readings"));
  metrics_.qos_blind_periods =
      reg.counter(metric_name("health.qos_blind_periods"));
  metrics_.degraded_periods =
      reg.counter(metric_name("health.degraded_periods"));
  metrics_.degradation_transitions =
      reg.counter(metric_name("health.degradation_transitions"));
  metrics_.actuation_retries = reg.counter(metric_name("actuation.retries"));
  metrics_.degradation_state =
      reg.gauge(metric_name("health.degradation_state"));
  metrics_.sample_staleness =
      reg.gauge(metric_name("health.sample_staleness"));
  metrics_.actuation_abandoned =
      reg.gauge(metric_name("actuation.abandoned_total"));
  metrics_.faults_injected =
      reg.gauge(metric_name("faults.faulted_samples_total"));
}

void HostPipeline::publish(const PeriodRecord& rec,
                           const std::vector<sim::VmId>& resumed) {
  metrics_.periods.inc();
  if (rec.violation_observed) metrics_.violations_observed.inc();
  if (rec.violation_predicted) metrics_.violations_predicted.inc();
  if (rec.new_representative) metrics_.new_representatives.inc();
  if (rec.action == ThrottleAction::Pause) metrics_.pauses.inc();
  if (rec.action == ThrottleAction::Resume) metrics_.resumes.inc();
  metrics_.beta.set(rec.beta);
  metrics_.stress.set(rec.stress);
  if (sa_mapper_ != nullptr) {
    metrics_.representatives.set(
        static_cast<double>(sa_mapper_->representatives().size()));
    metrics_.violation_states.set(
        static_cast<double>(sa_mapper_->space().violation_count()));
    metrics_.embed_iterations.set(
        static_cast<double>(sa_mapper_->embedder().total_iterations()));
    metrics_.embed_cold_skips.set(
        static_cast<double>(sa_mapper_->embedder().cold_runs_skipped()));
    metrics_.embed_rebuilds.set(
        static_cast<double>(sa_mapper_->embedder().rebuilds()));
    metrics_.space_invalidations.set(
        static_cast<double>(sa_mapper_->space().cache_invalidations()));
    metrics_.space_rebuilds.set(
        static_cast<double>(sa_mapper_->space().cache_rebuilds()));
    metrics_.sampler_samples.set(
        static_cast<double>(sa_mapper_->source().samples_taken()));
  }
  if (sa_forecaster_ != nullptr) {
    metrics_.tally_accuracy.set(sa_forecaster_->tally().accuracy());
  }
  if (sa_actuator_ != nullptr) {
    metrics_.governor_failed_resumes.set(
        static_cast<double>(sa_actuator_->governor().failed_resumes()));
    metrics_.governor_random_resumes.set(
        static_cast<double>(sa_actuator_->governor().random_resumes()));
    metrics_.actuation_abandoned.set(
        static_cast<double>(sa_actuator_->actuation_abandoned()));
  }
  if (rec.quarantined_dims > 0) {
    metrics_.quarantined_readings.inc(rec.quarantined_dims);
  }
  if (!rec.qos_visible) metrics_.qos_blind_periods.inc();
  if (rec.degradation != DegradationState::Normal) {
    metrics_.degraded_periods.inc();
  }
  if (transition_.has_value()) metrics_.degradation_transitions.inc();
  if (rec.actuation_retries > 0) {
    metrics_.actuation_retries.inc(rec.actuation_retries);
  }
  metrics_.degradation_state.set(static_cast<double>(rec.degradation));
  metrics_.sample_staleness.set(static_cast<double>(rec.max_staleness));
  if (faults_.has_value()) {
    metrics_.faults_injected.set(
        static_cast<double>(faults_->faulted_samples()));
  }

  if (observer_->sink() == nullptr) return;
  obs::Event e(rec.time, "period");
  if (!label_.empty()) e.with("host", obs::JsonValue(label_));
  e.with("period", obs::JsonValue(records_.size() - 1))
      .with("mode", obs::JsonValue(monitor::to_string(rec.mode)))
      .with("rep", obs::JsonValue(rec.representative))
      .with("new_rep", obs::JsonValue(rec.new_representative))
      .with("x", obs::JsonValue(rec.state.x))
      .with("y", obs::JsonValue(rec.state.y))
      .with("violation_observed", obs::JsonValue(rec.violation_observed))
      .with("violation_predicted", obs::JsonValue(rec.violation_predicted))
      .with("model_ready", obs::JsonValue(rec.model_ready))
      .with("action", obs::JsonValue(to_string(rec.action)))
      .with("batch_paused", obs::JsonValue(rec.batch_paused_after))
      .with("stress", obs::JsonValue(rec.stress))
      .with("beta", obs::JsonValue(rec.beta))
      .with("degradation", obs::JsonValue(to_string(rec.degradation)))
      .with("quarantined", obs::JsonValue(rec.quarantined_dims))
      .with("qos_visible", obs::JsonValue(rec.qos_visible));
  observer_->emit(e);

  if (transition_.has_value()) {
    obs::Event de(rec.time, "degradation");
    if (!label_.empty()) de.with("host", obs::JsonValue(label_));
    de.with("from", obs::JsonValue(to_string(transition_->first)))
        .with("to", obs::JsonValue(to_string(transition_->second)))
        .with("qos_blind_streak", obs::JsonValue(qos_blind_streak_))
        .with("max_staleness", obs::JsonValue(rec.max_staleness));
    observer_->emit(de);
  }
  if (rec.actuation_retries > 0 || rec.actuation_pending) {
    obs::Event ae(rec.time, "actuation");
    if (!label_.empty()) ae.with("host", obs::JsonValue(label_));
    ae.with("reissued", obs::JsonValue(rec.actuation_retries))
        .with("pending", obs::JsonValue(rec.actuation_pending));
    if (sa_actuator_ != nullptr) {
      ae.with("abandoned_total",
              obs::JsonValue(sa_actuator_->actuation_abandoned()));
    }
    observer_->emit(ae);
  }

  if (rec.action == ThrottleAction::Pause) {
    obs::Event pe(rec.time, "pause");
    if (!label_.empty()) pe.with("host", obs::JsonValue(label_));
    pe.with("reason", obs::JsonValue(rec.violation_observed
                                         ? "observed-violation"
                                         : "predicted-violation"));
    if (sa_actuator_ != nullptr) {
      pe.with("targets", obs::JsonValue(sa_actuator_->throttled().size()));
    }
    observer_->emit(pe);
  } else if (rec.action == ThrottleAction::Resume) {
    obs::Event re(rec.time, "resume");
    if (!label_.empty()) re.with("host", obs::JsonValue(label_));
    std::optional<ResumeReason> reason =
        sa_actuator_ != nullptr ? sa_actuator_->governor().last_resume_reason()
                                : std::nullopt;
    re.with("reason", obs::JsonValue(reason.has_value() ? to_string(*reason)
                                                        : "external"))
        .with("targets", obs::JsonValue(resumed.size()));
    observer_->emit(re);
  }
}

}  // namespace stayaway::core
