#include "core/cluster/migration.hpp"

#include <algorithm>
#include <utility>

namespace stayaway::core::cluster {

MigrationActuator::MigrationActuator(std::unique_ptr<Actuator> inner)
    : inner_(std::move(inner)) {}

void MigrationActuator::set_mobile(std::vector<sim::VmId> mobile) {
  mobile_ = std::move(mobile);
}

std::vector<sim::VmId> MigrationActuator::take_migrated() {
  return std::exchange(outbox_, {});
}

Actuator::Outcome MigrationActuator::act(ActuationPort& port,
                                         PeriodRecord& rec,
                                         DegradationState degradation,
                                         obs::Observer* observer) {
  rec.migrations_in = incoming_;
  incoming_ = 0;

  bool trigger = rec.violation_observed || rec.violation_predicted;
  if (gate_ && trigger) {
    gate_ = false;
    // Largest-footprint mobile VM still attached to this host; footprint
    // ties break toward the lower VmId (enumeration order is stable).
    sim::VmId victim = 0;
    double best = -1.0;
    bool found = false;
    for (const VmFootprint& f : port.batch_footprints()) {
      if (std::find(mobile_.begin(), mobile_.end(), f.id) == mobile_.end()) {
        continue;
      }
      if (f.footprint > best) {
        best = f.footprint;
        victim = f.id;
        found = true;
      }
    }
    if (found && port.detach(victim)) {
      outbox_.push_back(victim);
      ++migrations_out_total_;
      rec.migrations_out = 1;
      rec.action = ThrottleAction::None;
      rec.batch_paused_after = false;
      Outcome out;
      out.reason = "migrate-out";
      return out;
    }
  }
  gate_ = false;

  if (inner_ == nullptr) return {};
  return inner_->act(port, rec, degradation, observer);
}

bool MigrationActuator::checkpointable() const {
  return inner_ == nullptr || inner_->checkpointable();
}

void MigrationActuator::save_state(util::StateWriter& w) const {
  w.boolean("migration_gate", gate_);
  w.u64("migration_incoming", incoming_);
  std::vector<std::uint64_t> outbox(outbox_.begin(), outbox_.end());
  w.u64s("migration_outbox", outbox);
  w.u64("migrations_out_total", migrations_out_total_);
  w.boolean("migration_has_inner", inner_ != nullptr);
  if (inner_ != nullptr) inner_->save_state(w);
}

void MigrationActuator::load_state(util::StateReader& r) {
  gate_ = r.boolean("migration_gate");
  incoming_ = static_cast<std::size_t>(r.u64("migration_incoming"));
  outbox_.clear();
  for (std::uint64_t id : r.u64s("migration_outbox")) {
    outbox_.push_back(static_cast<sim::VmId>(id));
  }
  migrations_out_total_ =
      static_cast<std::size_t>(r.u64("migrations_out_total"));
  bool has_inner = r.boolean("migration_has_inner");
  if (has_inner != (inner_ != nullptr)) {
    throw util::StateCodecError(
        "migration actuator inner-stage presence mismatch");
  }
  if (inner_ != nullptr) inner_->load_state(r);
}

}  // namespace stayaway::core::cluster
