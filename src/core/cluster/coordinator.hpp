// ClusterCoordinator — the cluster-scale control loop (DESIGN.md §18).
// Runs between fleet periods, reads every host's pipeline state through
// read-only hooks over the FleetController seam, and turns the per-host
// Stay-Away loops into a coordinated cluster:
//
//   - scores every (batch VM, host) placement with the deterministic
//     interference score (score.hpp);
//   - opens a host's migration gate when it is violating, a registered
//     mobile VM lives there, and a safer host exists — the host's
//     MigrationActuator then detaches the VM instead of pausing it;
//   - drains migration outboxes and re-attaches each detached VM on the
//     host whose trajectory sits deepest in safe territory;
//   - admission control: arriving batch VMs are attached to the best
//     host only while its score clears the fleet-wide QoS budget
//     (admit_margin); otherwise they queue, and are rejected for good
//     once the queue patience runs out.
//
// Mobile and admitted VMs are pre-provisioned as detached twins on every
// host (the sampler layout is fixed at pipeline construction, so VMs
// cannot be created mid-run; migration re-attaches a parked twin —
// cold-restart semantics). Every decision the coordinator takes against
// a host is also recorded as that host's per-period directives, so a
// crash-recovered member can replay them (replay_host_period) and
// reproduce its record stream byte for byte.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/cluster/migration.hpp"
#include "core/cluster/score.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core::cluster {

struct ClusterConfig {
  /// Open migration gates at all (admission control always runs).
  bool migrate = true;
  /// A queued/incoming VM is admitted only while the best host's score
  /// is at or below -admit_margin — the fleet-wide QoS budget.
  double admit_margin = 0.25;
  /// Boundaries a queued admission waits before permanent rejection.
  std::size_t admit_patience = 8;
  /// Boundaries a migrated VM stays put before it may move again.
  std::size_t migration_cooldown = 5;
  /// Nominal demand footprint used to score candidate placements (the
  /// VM is detached while being placed, so it has no live allocation).
  double admit_footprint = 0.5;

  bool operator==(const ClusterConfig&) const = default;
};

class ClusterCoordinator {
 public:
  /// Accessor hooks for one host. Closures rather than raw pointers:
  /// the supervisor rebuilds crashed members, so the coordinator must
  /// re-resolve on every use. actuator() may return null (hosts without
  /// migration wiring still get scored and can receive admissions).
  struct HostHooks {
    std::string name;
    std::function<HostPipeline*()> pipeline;
    std::function<ActuationPort*()> port;
    std::function<MigrationActuator*()> actuator;
  };

  explicit ClusterCoordinator(ClusterConfig config);

  /// Registers a host; returns its index. Registration order must match
  /// the fleet's member order.
  std::size_t add_host(HostHooks hooks);

  /// Registers a mobile batch VM: `twins[h]` is its (parked or attached)
  /// VmId on host h — one twin per registered host — and `home` the host
  /// where it starts attached.
  void add_mobile_vm(std::string name, std::vector<sim::VmId> twins,
                     std::size_t home);

  /// Registers an incoming batch VM (parked everywhere) that asks to
  /// join the cluster at the first boundary >= `arrival_period`.
  void add_admission(std::string name, std::vector<sim::VmId> twins,
                     std::size_t arrival_period);

  /// The coordinator step after every host finished period `period`.
  /// Decisions take effect at the boundary (attaches now, gates for the
  /// next period) and are recorded as directives under period+1.
  void step(std::size_t period);

  /// Re-applies the directives recorded for `period` against host
  /// `host` — attaches through its port, incoming note and migration
  /// gate on its actuator. The supervisor calls this before replaying
  /// each gap period of a recovered member.
  void replay_host_period(std::size_t host, std::size_t period);

  std::size_t migrations() const { return migrations_; }
  std::size_t admissions_accepted() const { return admitted_; }
  std::size_t admissions_rejected() const { return rejected_; }
  /// Admissions still waiting in the queue.
  std::size_t admissions_queued() const;
  /// Canonical event log, one line per decision, in decision order —
  /// recorded into run-logs so cluster runs replay byte-identically.
  const std::vector<std::string>& events() const { return events_; }
  const ClusterConfig& config() const { return config_; }
  /// Current host index of a registered mobile VM.
  std::size_t placement(const std::string& name) const;

  /// Snapshot of everything step() mutates: placements, cooldowns, the
  /// admission queue, per-host directives, counters and the event log.
  /// Host/VM registration is wiring, re-established by the caller before
  /// load_state (mismatches throw).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  /// Boundary decisions against one host for one period: applied live by
  /// step(), re-applied by replay_host_period().
  struct Directives {
    bool gate = false;
    std::size_t incoming = 0;
    std::vector<sim::VmId> attaches;
  };

  struct MobileVm {
    std::string name;
    std::vector<sim::VmId> twins;
    std::size_t host = 0;            // current placement
    std::size_t cooldown_until = 0;  // first boundary it may move again
  };

  enum class AdmissionState { Pending = 0, Admitted = 1, Rejected = 2 };

  struct Admission {
    std::string name;
    std::vector<sim::VmId> twins;
    std::size_t arrival = 0;
    AdmissionState state = AdmissionState::Pending;
    std::size_t host = 0;  // meaningful once admitted
  };

  /// Attaches `vm` on host `h` at the current boundary and records it
  /// under `next` (the upcoming period).
  void attach_on(std::size_t h, sim::VmId vm, std::size_t next);
  /// Index of the host with the lowest interference score for a VM of
  /// the nominal footprint, excluding `exclude` (size() = none).
  std::size_t best_host(const std::vector<HostSnapshot>& snaps,
                        std::size_t exclude) const;

  ClusterConfig config_;
  std::vector<HostHooks> hosts_;
  std::vector<MobileVm> mobile_;
  std::vector<Admission> admissions_;
  std::vector<std::map<std::size_t, Directives>> directives_;  // per host
  std::size_t migrations_ = 0;
  std::size_t admitted_ = 0;
  std::size_t rejected_ = 0;
  std::vector<std::string> events_;
};

/// Versioned, checksummed single-string encoding of the coordinator
/// state — the cluster analogue of core/checkpoint.hpp's envelope
/// (header `stayaway-coordinator v1`, fnv1a64 trailer).
std::string encode_coordinator(const ClusterCoordinator& coordinator);

/// Decodes `blob` into a freshly wired coordinator (same hosts, same
/// VMs). Throws util::StateCodecError on damage or wiring mismatch.
void restore_coordinator(ClusterCoordinator& coordinator,
                         const std::string& blob);

}  // namespace stayaway::core::cluster
