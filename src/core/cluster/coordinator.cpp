#include "core/cluster/coordinator.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway::core::cluster {

namespace {

constexpr std::string_view kHeaderLine = "stayaway-coordinator v1";
constexpr std::string_view kChecksumKey = "checksum = ";

}  // namespace

ClusterCoordinator::ClusterCoordinator(ClusterConfig config)
    : config_(config) {}

std::size_t ClusterCoordinator::add_host(HostHooks hooks) {
  SA_REQUIRE(hooks.pipeline != nullptr && hooks.port != nullptr &&
                 hooks.actuator != nullptr,
             "cluster host hooks must all be callable");
  hosts_.push_back(std::move(hooks));
  directives_.emplace_back();
  return hosts_.size() - 1;
}

void ClusterCoordinator::add_mobile_vm(std::string name,
                                       std::vector<sim::VmId> twins,
                                       std::size_t home) {
  SA_REQUIRE(twins.size() == hosts_.size(),
             "mobile VM needs one twin per registered host");
  SA_REQUIRE(home < hosts_.size(), "mobile VM home host out of range");
  mobile_.push_back({std::move(name), std::move(twins), home, 0});
}

void ClusterCoordinator::add_admission(std::string name,
                                       std::vector<sim::VmId> twins,
                                       std::size_t arrival_period) {
  SA_REQUIRE(twins.size() == hosts_.size(),
             "admission VM needs one twin per registered host");
  admissions_.push_back({std::move(name), std::move(twins), arrival_period,
                         AdmissionState::Pending, 0});
}

std::size_t ClusterCoordinator::admissions_queued() const {
  std::size_t n = 0;
  for (const Admission& a : admissions_) {
    if (a.state == AdmissionState::Pending) ++n;
  }
  return n;
}

std::size_t ClusterCoordinator::placement(const std::string& name) const {
  for (const MobileVm& vm : mobile_) {
    if (vm.name == name) return vm.host;
  }
  SA_CHECK(false, "placement() of an unregistered mobile VM");
  return 0;
}

void ClusterCoordinator::attach_on(std::size_t h, sim::VmId vm,
                                   std::size_t next) {
  hosts_[h].port()->attach(vm);
  if (MigrationActuator* act = hosts_[h].actuator()) act->note_incoming(1);
  Directives& d = directives_[h][next];
  d.attaches.push_back(vm);
  d.incoming += 1;
}

std::size_t ClusterCoordinator::best_host(
    const std::vector<HostSnapshot>& snaps, std::size_t exclude) const {
  std::size_t best = hosts_.size();
  double best_score = 0.0;
  for (std::size_t h = 0; h < snaps.size(); ++h) {
    if (h == exclude) continue;
    double score = interference_score(snaps[h], config_.admit_footprint);
    if (best == hosts_.size() || score < best_score) {
      best = h;
      best_score = score;
    }
  }
  return best;
}

void ClusterCoordinator::step(std::size_t period) {
  const std::size_t next = period + 1;
  std::vector<HostSnapshot> snaps;
  snaps.reserve(hosts_.size());
  for (const HostHooks& host : hosts_) {
    snaps.push_back(snapshot_host(host.name, *host.pipeline()));
  }

  // 1. Drain migration outboxes: re-attach each freshly detached VM on
  // the safest other host. Entries whose VM already moved on (a
  // recovered member re-detaching during gap replay) are stale and
  // dropped — the placement ledger is the truth.
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    MigrationActuator* act = hosts_[h].actuator();
    if (act == nullptr) continue;
    for (sim::VmId id : act->take_migrated()) {
      MobileVm* vm = nullptr;
      for (MobileVm& m : mobile_) {
        if (m.host == h && m.twins[h] == id) {
          vm = &m;
          break;
        }
      }
      if (vm == nullptr) continue;  // stale (already re-placed)
      std::size_t dest = best_host(snaps, h);
      if (dest == hosts_.size()) continue;  // single-host cluster
      attach_on(dest, vm->twins[dest], next);
      vm->host = dest;
      vm->cooldown_until = next + config_.migration_cooldown;
      ++migrations_;
      events_.push_back("period=" + std::to_string(next) + " migrate vm=" +
                        vm->name + " from=" + hosts_[h].name + " to=" +
                        hosts_[dest].name);
    }
  }

  // 2. Admission control against the fleet-wide QoS budget.
  for (Admission& a : admissions_) {
    if (a.state != AdmissionState::Pending || a.arrival > next) continue;
    std::size_t dest = best_host(snaps, hosts_.size());
    double score = dest == hosts_.size()
                       ? 0.0
                       : interference_score(snaps[dest],
                                            config_.admit_footprint);
    if (dest != hosts_.size() && score <= -config_.admit_margin) {
      attach_on(dest, a.twins[dest], next);
      a.state = AdmissionState::Admitted;
      a.host = dest;
      ++admitted_;
      events_.push_back("period=" + std::to_string(next) + " admit vm=" +
                        a.name + " to=" + hosts_[dest].name);
    } else if (next >= a.arrival + config_.admit_patience) {
      a.state = AdmissionState::Rejected;
      ++rejected_;
      events_.push_back("period=" + std::to_string(next) + " reject vm=" +
                        a.name + " waited=" +
                        std::to_string(next - a.arrival));
    }
  }

  // 3. Migration gates: a host carrying a movable mobile VM gets one
  // period of standing permission to migrate out, provided somewhere
  // safe exists to move to. The gate is armed ahead of trouble — the
  // actuator only consumes it when the period actually observes or
  // predicts a violation (migration.cpp), so the first period the
  // governor would pause detaches the VM instead. Gating only on
  // already-violating hosts would always arrive one period after the
  // pause already landed.
  if (!config_.migrate) return;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    MigrationActuator* act = hosts_[h].actuator();
    if (act == nullptr) continue;
    bool movable = false;
    for (const MobileVm& vm : mobile_) {
      if (vm.host == h && vm.cooldown_until <= next) {
        movable = true;
        break;
      }
    }
    if (!movable) continue;
    std::size_t dest = best_host(snaps, h);
    if (dest == hosts_.size() ||
        interference_score(snaps[dest], config_.admit_footprint) >= 0.0) {
      continue;  // nowhere safe to move to — let the host pause as usual
    }
    act->set_gate(true);
    directives_[h][next].gate = true;
  }
}

void ClusterCoordinator::replay_host_period(std::size_t host,
                                            std::size_t period) {
  SA_REQUIRE(host < hosts_.size(), "replay of an unregistered host");
  auto it = directives_[host].find(period);
  if (it == directives_[host].end()) return;
  const Directives& d = it->second;
  for (sim::VmId id : d.attaches) {
    hosts_[host].port()->attach(id);
  }
  MigrationActuator* act = hosts_[host].actuator();
  if (act != nullptr) {
    if (d.incoming > 0) act->note_incoming(d.incoming);
    act->set_gate(d.gate);
  }
}

void ClusterCoordinator::save_state(util::StateWriter& w) const {
  w.boolean("cluster_migrate", config_.migrate);
  w.real("cluster_admit_margin", config_.admit_margin);
  w.u64("cluster_admit_patience", config_.admit_patience);
  w.u64("cluster_migration_cooldown", config_.migration_cooldown);
  w.real("cluster_admit_footprint", config_.admit_footprint);
  w.u64("cluster_hosts", hosts_.size());
  w.u64("cluster_mobile", mobile_.size());
  for (const MobileVm& vm : mobile_) {
    w.line("mobile_name", vm.name);
    std::vector<std::uint64_t> twins(vm.twins.begin(), vm.twins.end());
    w.u64s("mobile_twins", twins);
    w.u64("mobile_host", vm.host);
    w.u64("mobile_cooldown_until", vm.cooldown_until);
  }
  w.u64("cluster_admissions", admissions_.size());
  for (const Admission& a : admissions_) {
    w.line("admission_name", a.name);
    std::vector<std::uint64_t> twins(a.twins.begin(), a.twins.end());
    w.u64s("admission_twins", twins);
    w.u64("admission_arrival", a.arrival);
    w.u64("admission_state", static_cast<std::uint64_t>(a.state));
    w.u64("admission_host", a.host);
  }
  for (const auto& per_host : directives_) {
    w.u64("directive_periods", per_host.size());
    for (const auto& [period, d] : per_host) {
      w.u64("directive_period", period);
      w.boolean("directive_gate", d.gate);
      w.u64("directive_incoming", d.incoming);
      std::vector<std::uint64_t> attaches(d.attaches.begin(),
                                          d.attaches.end());
      w.u64s("directive_attaches", attaches);
    }
  }
  w.u64("cluster_migrations", migrations_);
  w.u64("cluster_admitted", admitted_);
  w.u64("cluster_rejected", rejected_);
  w.u64("cluster_events", events_.size());
  for (const std::string& event : events_) {
    w.line("event", event);
  }
}

void ClusterCoordinator::load_state(util::StateReader& r) {
  config_.migrate = r.boolean("cluster_migrate");
  config_.admit_margin = r.real("cluster_admit_margin");
  config_.admit_patience =
      static_cast<std::size_t>(r.u64("cluster_admit_patience"));
  config_.migration_cooldown =
      static_cast<std::size_t>(r.u64("cluster_migration_cooldown"));
  config_.admit_footprint = r.real("cluster_admit_footprint");
  if (r.u64("cluster_hosts") != hosts_.size()) {
    throw util::StateCodecError("coordinator host count mismatch");
  }
  if (r.u64("cluster_mobile") != mobile_.size()) {
    throw util::StateCodecError("coordinator mobile VM count mismatch");
  }
  for (MobileVm& vm : mobile_) {
    if (r.line("mobile_name") != vm.name) {
      throw util::StateCodecError("coordinator mobile VM name mismatch");
    }
    std::vector<std::uint64_t> twins = r.u64s("mobile_twins");
    vm.twins.assign(twins.begin(), twins.end());
    vm.host = static_cast<std::size_t>(r.u64("mobile_host"));
    if (vm.host >= hosts_.size()) {
      throw util::StateCodecError("coordinator mobile placement out of range");
    }
    vm.cooldown_until =
        static_cast<std::size_t>(r.u64("mobile_cooldown_until"));
  }
  if (r.u64("cluster_admissions") != admissions_.size()) {
    throw util::StateCodecError("coordinator admission count mismatch");
  }
  for (Admission& a : admissions_) {
    if (r.line("admission_name") != a.name) {
      throw util::StateCodecError("coordinator admission name mismatch");
    }
    std::vector<std::uint64_t> twins = r.u64s("admission_twins");
    a.twins.assign(twins.begin(), twins.end());
    a.arrival = static_cast<std::size_t>(r.u64("admission_arrival"));
    std::uint64_t state = r.u64("admission_state");
    if (state > static_cast<std::uint64_t>(AdmissionState::Rejected)) {
      throw util::StateCodecError("coordinator admission state out of range");
    }
    a.state = static_cast<AdmissionState>(state);
    a.host = static_cast<std::size_t>(r.u64("admission_host"));
  }
  for (auto& per_host : directives_) {
    per_host.clear();
    std::size_t count = static_cast<std::size_t>(r.u64("directive_periods"));
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t period = static_cast<std::size_t>(r.u64("directive_period"));
      Directives d;
      d.gate = r.boolean("directive_gate");
      d.incoming = static_cast<std::size_t>(r.u64("directive_incoming"));
      for (std::uint64_t id : r.u64s("directive_attaches")) {
        d.attaches.push_back(static_cast<sim::VmId>(id));
      }
      per_host.emplace(period, std::move(d));
    }
  }
  migrations_ = static_cast<std::size_t>(r.u64("cluster_migrations"));
  admitted_ = static_cast<std::size_t>(r.u64("cluster_admitted"));
  rejected_ = static_cast<std::size_t>(r.u64("cluster_rejected"));
  events_.clear();
  std::size_t events = static_cast<std::size_t>(r.u64("cluster_events"));
  events_.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    events_.push_back(r.line("event"));
  }
}

std::string encode_coordinator(const ClusterCoordinator& coordinator) {
  std::ostringstream body_out;
  util::StateWriter w(body_out);
  coordinator.save_state(w);
  std::string body = body_out.str();

  std::ostringstream out;
  out << kHeaderLine << '\n' << body << kChecksumKey << fnv1a64(body) << '\n';
  return out.str();
}

void restore_coordinator(ClusterCoordinator& coordinator,
                         const std::string& blob) {
  std::size_t header_end = blob.find('\n');
  if (header_end == std::string::npos ||
      std::string_view(blob).substr(0, header_end) != kHeaderLine) {
    throw util::StateCodecError("not a stayaway coordinator checkpoint");
  }
  if (blob.back() != '\n') {
    throw util::StateCodecError(
        "truncated coordinator checkpoint: missing trailing newline");
  }
  std::size_t trailer_start = blob.rfind('\n', blob.size() - 2);
  if (trailer_start == std::string::npos || trailer_start < header_end) {
    throw util::StateCodecError("truncated coordinator checkpoint: no body");
  }
  ++trailer_start;
  std::string_view trailer = std::string_view(blob).substr(
      trailer_start, blob.size() - trailer_start - 1);
  if (trailer.substr(0, kChecksumKey.size()) != kChecksumKey) {
    throw util::StateCodecError(
        "truncated coordinator checkpoint: no checksum trailer");
  }
  std::uint64_t expected = 0;
  if (!stayaway::parse_u64(std::string(trailer.substr(kChecksumKey.size())),
                           expected)) {
    throw util::StateCodecError("malformed coordinator checksum");
  }
  std::string_view body = std::string_view(blob).substr(
      header_end + 1, trailer_start - header_end - 1);
  if (fnv1a64(body) != expected) {
    throw CheckpointChecksumError("coordinator checkpoint checksum mismatch");
  }
  std::istringstream in{std::string(body)};
  util::StateReader r(in);
  coordinator.load_state(r);
  if (in.peek() != std::istringstream::traits_type::eof()) {
    throw util::StateCodecError("trailing data after coordinator body");
  }
}

}  // namespace stayaway::core::cluster
