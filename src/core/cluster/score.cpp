#include "core/cluster/score.hpp"

#include <algorithm>
#include <cmath>

#include "core/statespace.hpp"

namespace stayaway::core::cluster {

namespace {

double clamp_margin(double margin) {
  return std::clamp(margin, -kNeutralMargin, kNeutralMargin);
}

}  // namespace

HostSnapshot snapshot_host(const std::string& name,
                           const HostPipeline& pipeline) {
  HostSnapshot snap;
  snap.name = name;
  const std::vector<PeriodRecord>& records = pipeline.records();
  snap.periods = records.size();
  if (!records.empty()) {
    const PeriodRecord& last = records.back();
    snap.violating_now = last.violation_observed || last.violation_predicted;
  }

  const StayAwayMapper* mapper = pipeline.stay_away_mapper();
  if (mapper == nullptr || records.empty()) {
    snap.safety_margin = kNeutralMargin;
    return snap;
  }
  const StateSpace& space = mapper->space();
  double scale = space.scale();
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    // Degenerate map (all points coincident, or no points): the geometry
    // claims nothing, so the host scores like a cold one.
    snap.safety_margin = kNeutralMargin;
    return snap;
  }

  const mds::Point2& here = records.back().state;
  const std::vector<ViolationRange>& ranges = space.violation_ranges();
  snap.has_geometry = !ranges.empty();
  if (snap.has_geometry && std::isfinite(here.x) && std::isfinite(here.y)) {
    double nearest = kNeutralMargin * scale;
    for (const ViolationRange& range : ranges) {
      double d = std::hypot(here.x - range.center.x, here.y - range.center.y) -
                 range.radius;
      nearest = std::min(nearest, d);
    }
    snap.safety_margin = clamp_margin(nearest / scale);
  } else {
    snap.safety_margin = kNeutralMargin;
  }

  // Mean displacement per period over the recent window, skipping steps
  // with non-finite endpoints (quarantined periods can carry NaN states).
  std::size_t first =
      records.size() > kStepWindow ? records.size() - kStepWindow : 1;
  double total = 0.0;
  std::size_t steps = 0;
  for (std::size_t i = first; i < records.size(); ++i) {
    const mds::Point2& a = records[i - 1].state;
    const mds::Point2& b = records[i].state;
    double d = std::hypot(b.x - a.x, b.y - a.y);
    if (std::isfinite(d)) {
      total += d;
      ++steps;
    }
  }
  if (steps > 0) {
    snap.step_length = std::min(total / static_cast<double>(steps) / scale,
                                kNeutralMargin);
  }
  return snap;
}

double interference_score(const HostSnapshot& snap, double vm_footprint) {
  double score = vm_footprint * snap.step_length - snap.safety_margin;
  if (snap.violating_now) score += kViolationPenalty;
  return score;
}

}  // namespace stayaway::core::cluster
