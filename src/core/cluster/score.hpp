// Deterministic interference scoring for the cluster coordinator
// (DESIGN.md §18). A score ranks (batch VM, host) pairs by how much
// interference pressure placing that VM on that host would add, derived
// purely from state the per-host pipeline already maintains: the host's
// embedded trajectory and its violation-range geometry (§3.2). Grounded
// in the cluster-scale scoring mechanisms of arXiv 2407.12248 and
// C-Koordinator (arXiv 2507.18005): score every pair, place load where
// the score says it is safe.
//
// Everything here is a pure function of pipeline state — no RNG, no
// clocks — so coordinator decisions replay byte-identically.
#pragma once

#include <cstddef>
#include <string>

#include "core/pipeline.hpp"

namespace stayaway::core::cluster {

/// The slice of one host's pipeline state the scorer consumes, extracted
/// once per coordinator step through the read-only fleet seam.
struct HostSnapshot {
  std::string name;
  /// The host's map knows at least one violation range.
  bool has_geometry = false;
  /// Signed distance (in map units / scale) from the host's current state
  /// to the boundary of its nearest violation range: positive = safe
  /// territory, negative = inside a range. Clamped to ±kNeutralMargin.
  /// Hosts without geometry report +kNeutralMargin (nothing known to
  /// avoid).
  double safety_margin = 0.0;
  /// Mean per-period displacement of the trajectory over the recent
  /// window, normalized by the map scale — the observed contribution of
  /// the host's current load mix to state movement.
  double step_length = 0.0;
  /// The most recent period observed or predicted a QoS violation.
  bool violating_now = false;
  /// Periods recorded so far (snapshot provenance, for events/debug).
  std::size_t periods = 0;
};

/// Margin assigned to hosts whose map has no violation geometry yet, and
/// the clamp magnitude for hosts that do. A cold host scores comfortably
/// safe; a host buried inside a violation range cannot score worse than
/// the clamp, keeping scores comparable across maps of different scales.
inline constexpr double kNeutralMargin = 2.0;

/// Additive penalty while the host is currently violating: a violating
/// host is hot for any VM regardless of geometry.
inline constexpr double kViolationPenalty = 1.0;

/// Trajectory window (periods) the step length is averaged over.
inline constexpr std::size_t kStepWindow = 8;

/// Extracts the scorer's view of one host. `pipeline` may lack a
/// Stay-Away mapper (baseline policies, custom stages): such hosts report
/// no geometry and zero step length — neutral, deterministic.
HostSnapshot snapshot_host(const std::string& name,
                           const HostPipeline& pipeline);

/// The interference score of placing a VM with demand footprint
/// `vm_footprint` on the host described by `snap`:
///
///   score = vm_footprint * step_length - safety_margin
///           + (violating_now ? kViolationPenalty : 0)
///
/// Negative = the host's trajectory sits in safe territory with room for
/// the VM's displacement contribution; positive = hot. Lower is better.
double interference_score(const HostSnapshot& snap, double vm_footprint);

}  // namespace stayaway::core::cluster
