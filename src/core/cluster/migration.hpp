// MigrationActuator — the migration alternative to pausing (DESIGN.md
// §18). Wraps a host's normal Actuator: in ordinary periods it is a
// transparent pass-through, but when the coordinator has opened its
// migration gate and the period observes or predicts a violation, it
// detaches the largest-footprint mobile batch VM through the port
// (migration-out) instead of letting the inner governor pause — the load
// leaves the host rather than stopping. Detached VMs land in an outbox
// the coordinator drains between fleet periods to re-attach them on the
// safest host.
//
// The gate is one-shot: the coordinator opens it for exactly one period
// and the actuator closes it again whether or not a migration fired, so
// a crash-recovery gap replay re-applying recorded gates reproduces the
// original decisions byte for byte.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/stages/stage.hpp"

namespace stayaway::core::cluster {

class MigrationActuator final : public Actuator {
 public:
  /// Wraps `inner` (usually the host's GovernorActuator); may be null,
  /// in which case non-migration periods perform no action at all.
  explicit MigrationActuator(std::unique_ptr<Actuator> inner);

  /// Batch VMs this actuator is allowed to migrate out, by host VmId.
  void set_mobile(std::vector<sim::VmId> mobile);

  /// Opens the migration gate for the next period (coordinator only).
  void set_gate(bool open) { gate_ = open; }
  bool gate() const { return gate_; }

  /// Tells the actuator `n` VMs were attached to its host at the current
  /// boundary, so the next period's record stamps migrations_in.
  void note_incoming(std::size_t n) { incoming_ += n; }

  /// Drains the outbox: VMs detached by migrate-out since the last call,
  /// in detach order.
  std::vector<sim::VmId> take_migrated();

  Outcome act(ActuationPort& port, PeriodRecord& rec,
              DegradationState degradation, obs::Observer* observer) override;

  Actuator* inner() { return inner_.get(); }
  const Actuator* inner() const { return inner_.get(); }
  std::size_t migrations_out() const { return migrations_out_total_; }

  /// Checkpointable when the inner stage is (or is absent). The gate,
  /// incoming note and outbox are snapshotted too, so a restore resumes
  /// mid-handshake exactly.
  bool checkpointable() const override;
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  std::unique_ptr<Actuator> inner_;
  std::vector<sim::VmId> mobile_;
  bool gate_ = false;
  std::size_t incoming_ = 0;
  std::vector<sim::VmId> outbox_;
  std::size_t migrations_out_total_ = 0;
};

}  // namespace stayaway::core::cluster
