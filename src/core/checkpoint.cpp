#include "core/checkpoint.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway::core {

namespace {

constexpr std::string_view kHeaderPrefix = "stayaway-checkpoint v";
constexpr std::string_view kChecksumKey = "checksum = ";

}  // namespace

void write_period_record(util::StateWriter& w, const PeriodRecord& rec) {
  w.real("time", rec.time);
  w.u64("mode", static_cast<std::uint64_t>(rec.mode));
  w.real("x", rec.state.x);
  w.real("y", rec.state.y);
  w.u64("representative", rec.representative);
  w.boolean("new_representative", rec.new_representative);
  w.boolean("violation_observed", rec.violation_observed);
  w.boolean("violation_predicted", rec.violation_predicted);
  w.boolean("model_ready", rec.model_ready);
  w.u64("action", static_cast<std::uint64_t>(rec.action));
  w.boolean("batch_paused_after", rec.batch_paused_after);
  w.real("stress", rec.stress);
  w.real("beta", rec.beta);
  w.u64("degradation", static_cast<std::uint64_t>(rec.degradation));
  w.u64("quarantined_dims", rec.quarantined_dims);
  w.u64("max_staleness", rec.max_staleness);
  w.boolean("qos_visible", rec.qos_visible);
  w.u64("actuation_retries", rec.actuation_retries);
  w.boolean("actuation_pending", rec.actuation_pending);
  w.u64("samples_ingested", rec.samples_ingested);
  w.u64("late_samples", rec.late_samples);
  w.u64("duplicate_samples", rec.duplicate_samples);
  w.u64("overflow_drops", rec.overflow_drops);
  w.u64("migrations_out", rec.migrations_out);
  w.u64("migrations_in", rec.migrations_in);
}

PeriodRecord read_period_record(util::StateReader& r) {
  PeriodRecord rec;
  rec.time = r.real("time");
  std::uint64_t mode = r.u64("mode");
  if (mode >= monitor::kExecutionModeCount) {
    throw util::StateCodecError("record mode out of range");
  }
  rec.mode = static_cast<monitor::ExecutionMode>(mode);
  rec.state.x = r.real("x");
  rec.state.y = r.real("y");
  rec.representative = static_cast<std::size_t>(r.u64("representative"));
  rec.new_representative = r.boolean("new_representative");
  rec.violation_observed = r.boolean("violation_observed");
  rec.violation_predicted = r.boolean("violation_predicted");
  rec.model_ready = r.boolean("model_ready");
  std::uint64_t action = r.u64("action");
  if (action > static_cast<std::uint64_t>(ThrottleAction::Resume)) {
    throw util::StateCodecError("record action out of range");
  }
  rec.action = static_cast<ThrottleAction>(action);
  rec.batch_paused_after = r.boolean("batch_paused_after");
  rec.stress = r.real("stress");
  rec.beta = r.real("beta");
  std::uint64_t degradation = r.u64("degradation");
  if (degradation > static_cast<std::uint64_t>(DegradationState::Failsafe)) {
    throw util::StateCodecError("record degradation out of range");
  }
  rec.degradation = static_cast<DegradationState>(degradation);
  rec.quarantined_dims = static_cast<std::size_t>(r.u64("quarantined_dims"));
  rec.max_staleness = static_cast<std::size_t>(r.u64("max_staleness"));
  rec.qos_visible = r.boolean("qos_visible");
  rec.actuation_retries = static_cast<std::size_t>(r.u64("actuation_retries"));
  rec.actuation_pending = r.boolean("actuation_pending");
  rec.samples_ingested = static_cast<std::size_t>(r.u64("samples_ingested"));
  rec.late_samples = static_cast<std::size_t>(r.u64("late_samples"));
  rec.duplicate_samples =
      static_cast<std::size_t>(r.u64("duplicate_samples"));
  rec.overflow_drops = static_cast<std::size_t>(r.u64("overflow_drops"));
  rec.migrations_out = static_cast<std::size_t>(r.u64("migrations_out"));
  rec.migrations_in = static_cast<std::size_t>(r.u64("migrations_in"));
  return rec;
}

std::string encode_record(const PeriodRecord& rec) {
  std::ostringstream out;
  util::StateWriter w(out);
  write_period_record(w, rec);
  return out.str();
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string encode_checkpoint(const HostPipeline& pipeline) {
  std::ostringstream body_out;
  util::StateWriter w(body_out);
  w.u64("records", pipeline.records().size());
  for (const PeriodRecord& rec : pipeline.records()) {
    write_period_record(w, rec);
  }
  pipeline.save_state(w);
  std::string body = body_out.str();

  std::ostringstream out;
  out << kHeaderPrefix << kCheckpointVersion << '\n'
      << body << kChecksumKey << fnv1a64(body) << '\n';
  return out.str();
}

std::size_t restore_checkpoint(HostPipeline& pipeline,
                               const std::string& blob) {
  // Envelope framing first. A blob that does not end in a newline lost
  // its tail — report truncation before anything subtler.
  std::size_t header_end = blob.find('\n');
  if (header_end == std::string::npos) {
    throw util::StateCodecError("truncated checkpoint: no header line");
  }
  std::string_view header = std::string_view(blob).substr(0, header_end);
  if (header.substr(0, kHeaderPrefix.size()) != kHeaderPrefix) {
    throw util::StateCodecError("not a stayaway checkpoint");
  }
  std::uint64_t version = 0;
  if (!stayaway::parse_u64(std::string(header.substr(kHeaderPrefix.size())),
                       version)) {
    throw util::StateCodecError("malformed checkpoint version");
  }
  if (version != kCheckpointVersion) {
    throw CheckpointVersionError(
        "unsupported checkpoint version v" + std::to_string(version) +
        " (this build reads v" + std::to_string(kCheckpointVersion) + ")");
  }
  if (blob.back() != '\n') {
    throw util::StateCodecError(
        "truncated checkpoint: missing trailing newline");
  }
  std::size_t trailer_start = blob.rfind('\n', blob.size() - 2);
  if (trailer_start == std::string::npos || trailer_start < header_end) {
    throw util::StateCodecError("truncated checkpoint: no body");
  }
  ++trailer_start;  // first char of the trailer line
  std::string_view trailer = std::string_view(blob).substr(
      trailer_start, blob.size() - trailer_start - 1);
  if (trailer.substr(0, kChecksumKey.size()) != kChecksumKey) {
    throw util::StateCodecError("truncated checkpoint: no checksum trailer");
  }
  std::uint64_t expected = 0;
  if (!stayaway::parse_u64(std::string(trailer.substr(kChecksumKey.size())),
                       expected)) {
    throw util::StateCodecError("malformed checkpoint checksum");
  }
  std::string_view body = std::string_view(blob).substr(
      header_end + 1, trailer_start - header_end - 1);
  if (fnv1a64(body) != expected) {
    throw CheckpointChecksumError("checkpoint checksum mismatch");
  }

  // Body decode into the fresh pipeline.
  std::istringstream in{std::string(body)};
  util::StateReader r(in);
  std::size_t count = static_cast<std::size_t>(r.u64("records"));
  std::vector<PeriodRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(read_period_record(r));
  }
  pipeline.load_state(r);
  if (in.peek() != std::istringstream::traits_type::eof()) {
    throw util::StateCodecError("trailing data after checkpoint body");
  }
  pipeline.seed_records(std::move(records));
  return count;
}

std::size_t warm_start(HostPipeline& pipeline, sim::SimHost& host,
                       std::size_t ticks_per_period, const std::string& blob) {
  SA_REQUIRE(ticks_per_period >= 1,
             "each period must advance at least one tick");
  std::size_t restored = restore_checkpoint(pipeline, blob);
  SimHostActuationPort& port = pipeline.actuation_port();
  for (std::size_t k = 0; k < restored; ++k) {
    host.run(ticks_per_period);
    port.replay_delivered(host.now());
  }
  return restored;
}

void corrupt_checkpoint_blob(std::string& blob) {
  std::size_t header_end = blob.find('\n');
  if (header_end == std::string::npos || header_end + 1 >= blob.size()) {
    return;
  }
  std::size_t pos = header_end + 1 + (blob.size() - header_end - 1) / 2;
  while (pos < blob.size() && blob[pos] == '\n') ++pos;
  if (pos >= blob.size()) return;
  blob[pos] = blob[pos] == 'x' ? 'y' : 'x';
}

}  // namespace stayaway::core
