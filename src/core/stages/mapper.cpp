#include "core/stages/mapper.hpp"

#include "util/check.hpp"

namespace stayaway::core {

namespace {

/// Plausible upper bound of every raw reading: host capacity times the
/// spike margin. Feeds the validate-and-quarantine stage.
std::vector<double> quarantine_bounds(
    const monitor::CapacityNormalizer& normalizer, double spike_margin) {
  const monitor::MetricLayout& layout = normalizer.layout();
  std::vector<double> bounds(layout.dimension(), 0.0);
  for (std::size_t e = 0; e < layout.entities.size(); ++e) {
    for (std::size_t k = 0; k < layout.metrics.size(); ++k) {
      bounds[layout.index_of(e, k)] =
          normalizer.capacity_of(layout.metrics[k]) * spike_margin;
    }
  }
  return bounds;
}

}  // namespace

StayAwayMapper::StayAwayMapper(monitor::HostSampler sampler,
                               monitor::CapacityNormalizer normalizer,
                               const StayAwayConfig& config)
    : sampler_(std::move(sampler)),
      normalizer_(std::move(normalizer)),
      quarantine_(
          quarantine_bounds(normalizer_, config.degradation.spike_margin)),
      reps_(config.dedup_epsilon, config.max_representatives),
      embedder_(config.embed_method, config.landmark_count,
                config.warm_skip_stress) {}

monitor::SampleHealth StayAwayMapper::map(PeriodRecord& rec,
                                          obs::Observer* observer) {
  mapped_any_period_ = true;
  obs::Span sample_span = observer != nullptr
                              ? observer->span("sample", rec.time)
                              : obs::Span{};
  monitor::Measurement m = sampler_.sample();
  // Validate-and-quarantine (DESIGN.md §12): non-finite or out-of-range
  // readings never reach the embedder — they are imputed from the
  // dimension's last good value. Pure pass-through on healthy input.
  monitor::SampleHealth health = quarantine_.validate(m.values);
  rec.quarantined_dims = health.quarantined;
  rec.max_staleness = health.max_staleness;
  std::vector<double> normalized = normalizer_.normalize(m);
  monitor::Assignment assignment = reps_.assign(normalized);
  sample_span.close();
  rec.representative = assignment.representative;
  rec.new_representative = assignment.is_new;
  obs::Span embed_span = observer != nullptr
                             ? observer->span("embed", rec.time)
                             : obs::Span{};
  if (assignment.is_new) space_.add_state(StateLabel::Safe);
  space_.sync_positions(embedder_.update(reps_));
  embed_span.close();
  rec.state = space_.position(assignment.representative);
  rec.stress = embedder_.stress();
  return health;
}

void StayAwayMapper::observe_qos(std::size_t representative, bool violated) {
  space_.observe_visit(representative, violated);
}

void StayAwayMapper::seed_template(const StateTemplate& t) {
  SA_REQUIRE(reps_.size() == 0, "templates must be seeded before any period");
  for (const auto& entry : t.entries) {
    SA_REQUIRE(entry.vector.size() == sampler_.layout().dimension(),
               "template dimension does not match the sampler layout");
    auto assignment = reps_.assign(entry.vector);
    if (assignment.is_new) {
      space_.add_state(entry.label);
    } else if (entry.label == StateLabel::Violation) {
      space_.mark_violation(assignment.representative);
    }
  }
  space_.sync_positions(embedder_.update(reps_));
}

StateTemplate StayAwayMapper::export_template(
    std::string sensitive_app_name) const {
  StateTemplate t;
  t.sensitive_app = std::move(sensitive_app_name);
  t.entries.reserve(reps_.size());
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    t.entries.push_back({reps_.representative(i), space_.label(i)});
  }
  return t;
}

}  // namespace stayaway::core
