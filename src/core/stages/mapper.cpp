#include "core/stages/mapper.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::core {

namespace {

/// Plausible upper bound of every raw reading: host capacity times the
/// spike margin. Feeds the validate-and-quarantine stage.
std::vector<double> quarantine_bounds(
    const monitor::CapacityNormalizer& normalizer, double spike_margin) {
  const monitor::MetricLayout& layout = normalizer.layout();
  std::vector<double> bounds(layout.dimension(), 0.0);
  for (std::size_t e = 0; e < layout.entities.size(); ++e) {
    for (std::size_t k = 0; k < layout.metrics.size(); ++k) {
      bounds[layout.index_of(e, k)] =
          normalizer.capacity_of(layout.metrics[k]) * spike_margin;
    }
  }
  return bounds;
}

}  // namespace

StayAwayMapper::StayAwayMapper(std::unique_ptr<monitor::SampleSource> source,
                               monitor::CapacityNormalizer normalizer,
                               const StayAwayConfig& config)
    : source_(std::move(source)),
      normalizer_(std::move(normalizer)),
      quarantine_(
          quarantine_bounds(normalizer_, config.degradation.spike_margin)),
      reps_(config.dedup_epsilon, config.max_representatives),
      embedder_(config.embed_method, config.landmark_count,
                config.warm_skip_stress, config.landmark_refresh_factor) {
  SA_REQUIRE(source_ != nullptr, "the mapper needs a sample source");
  SA_REQUIRE(source_->layout().dimension() == normalizer_.layout().dimension(),
             "sample source and normalizer layouts must agree");
}

monitor::SampleHealth StayAwayMapper::map(PeriodRecord& rec,
                                          obs::Observer* observer) {
  mapped_any_period_ = true;
  const std::size_t late_before = quarantine_.total_late();
  const std::size_t dup_before = quarantine_.total_duplicates();
  obs::Span sample_span = observer != nullptr
                              ? observer->span("sample", rec.time)
                              : obs::Span{};
  drain_buffer_.clear();
  monitor::DrainReport report = source_->drain(rec.time, drain_buffer_);
  // Worst health over the period's samples: the degradation state machine
  // reacts to the most impaired reading, not the average.
  monitor::SampleHealth health;
  for (monitor::TimedSample& sample : drain_buffer_) {
    // Admission gate (streaming anomalies): a repeated sequence is a
    // duplicate delivery and is dropped outright; an out-of-order arrival
    // is counted late but still mapped — its values are as real as any.
    monitor::SampleQuarantine::Admit admit =
        quarantine_.admit(sample.measurement.time, sample.sequence);
    if (admit == monitor::SampleQuarantine::Admit::Duplicate) continue;
    // Validate-and-quarantine (DESIGN.md §12): non-finite or out-of-range
    // readings never reach the embedder — they are imputed from the
    // dimension's last good value. Pure pass-through on healthy input.
    monitor::SampleHealth h = quarantine_.validate(sample.measurement.values);
    health.quarantined = std::max(health.quarantined, h.quarantined);
    health.max_staleness = std::max(health.max_staleness, h.max_staleness);
    std::vector<double> normalized =
        normalizer_.normalize(sample.measurement);
    monitor::Assignment assignment = reps_.assign(normalized);
    if (assignment.is_new) space_.add_state(StateLabel::Safe);
    last_representative_ = assignment.representative;
    rec.new_representative = assignment.is_new;
  }
  rec.quarantined_dims = health.quarantined;
  rec.max_staleness = health.max_staleness;
  sample_span.close();
  // The period maps to the most recent sample's representative; a drain
  // that delivered nothing re-reports the previous one.
  rec.representative = last_representative_;
  obs::Span embed_span = observer != nullptr
                             ? observer->span("embed", rec.time)
                             : obs::Span{};
  if (reps_.size() > 0) {
    space_.sync_positions(embedder_.update(reps_));
    rec.state = space_.position(rec.representative);
  }
  embed_span.close();
  rec.stress = embedder_.stress();
  if (source_->streaming()) {
    rec.samples_ingested = report.delivered;
    rec.late_samples = quarantine_.total_late() - late_before;
    rec.duplicate_samples = quarantine_.total_duplicates() - dup_before;
    rec.overflow_drops = report.overflow;
  }
  return health;
}

void StayAwayMapper::observe_qos(std::size_t representative, bool violated) {
  if (space_.size() == 0) return;  // no sample has mapped yet
  space_.observe_visit(representative, violated);
}

void StayAwayMapper::seed_template(const StateTemplate& t) {
  SA_REQUIRE(reps_.size() == 0, "templates must be seeded before any period");
  for (const auto& entry : t.entries) {
    SA_REQUIRE(entry.vector.size() == source_->layout().dimension(),
               "template dimension does not match the source layout");
    auto assignment = reps_.assign(entry.vector);
    if (assignment.is_new) {
      space_.add_state(entry.label);
    } else if (entry.label == StateLabel::Violation) {
      space_.mark_violation(assignment.representative);
    }
  }
  space_.sync_positions(embedder_.update(reps_));
}

void StayAwayMapper::save_state(util::StateWriter& w) const {
  SA_REQUIRE(checkpointable(), "save_state on a non-checkpointable mapper");
  source_->save_state(w);
  quarantine_.save_state(w);
  reps_.save_state(w);
  space_.save_state(w);
  embedder_.save_state(w);
  w.u64("last_representative", last_representative_);
  w.boolean("mapped_any_period", mapped_any_period_);
}

void StayAwayMapper::load_state(util::StateReader& r) {
  SA_REQUIRE(checkpointable(), "load_state on a non-checkpointable mapper");
  source_->load_state(r);
  quarantine_.load_state(r);
  reps_.load_state(r);
  space_.load_state(r);
  if (space_.size() != reps_.size()) {
    throw util::StateCodecError(
        "mapper state: state space and representative set disagree");
  }
  embedder_.load_state(r, reps_.all());
  last_representative_ = static_cast<std::size_t>(r.u64("last_representative"));
  mapped_any_period_ = r.boolean("mapped_any_period");
}

StateTemplate StayAwayMapper::export_template(
    std::string sensitive_app_name) const {
  StateTemplate t;
  t.sensitive_app = std::move(sensitive_app_name);
  t.entries.reserve(reps_.size());
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    t.entries.push_back({reps_.representative(i), space_.label(i)});
  }
  return t;
}

}  // namespace stayaway::core
