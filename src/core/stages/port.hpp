// ActuationPort: the narrow host-facing interface injected into Actuator
// stages. Stage implementations must never touch the simulated host
// directly (enforced by the stage-host-isolation lint rule) — everything
// they need to observe or change on the host goes through this port, so
// a stage is testable against a fake and portable to a real hypervisor
// backend. The production implementation lives inside HostPipeline and
// routes pause/resume delivery through the fault channel.
#pragma once

#include <vector>

#include "sim/vm.hpp"

namespace stayaway::core {

/// One present batch VM and its demand footprint (CPU share + memory
/// share + bus share of the host), in the host's VM enumeration order.
struct VmFootprint {
  sim::VmId id = 0;
  double footprint = 0.0;
};

/// Host-wide resource shares in [0, ~1] per dimension, summed over every
/// VM's granted allocation (the static-threshold baseline's view).
struct ResourceUtilization {
  double cpu = 0.0;
  double memory = 0.0;
  double membw = 0.0;
};

class ActuationPort {
 public:
  virtual ~ActuationPort() = default;

  /// Current simulated time.
  virtual double now() const = 0;

  /// Demand footprints of every *present* batch VM, in enumeration order.
  virtual std::vector<VmFootprint> batch_footprints() const = 0;

  /// Every present batch VM (the failsafe pause set).
  virtual std::vector<sim::VmId> present_batch() const = 0;

  /// Every batch VM, present or not (the blanket-pause baselines' set).
  virtual std::vector<sim::VmId> all_batch() const = 0;

  /// §2.1 fallback targets: present sensitive VMs with a priority below
  /// the highest-priority present sensitive VM, in enumeration order.
  virtual std::vector<sim::VmId> demotion_candidates() const = 0;

  /// Host-wide granted-over-capacity shares (all VMs, all kinds).
  virtual ResourceUtilization utilization() const = 0;

  /// Sends one pause/resume command through the (possibly faulty)
  /// actuation channel; true when it took effect on the host.
  virtual bool pause(sim::VmId id) = 0;
  virtual bool resume(sim::VmId id) = 0;

  /// Migration verbs (DESIGN.md §18). Detach removes a batch VM from the
  /// host entirely (migration-out); attach cold-starts a previously
  /// detached batch VM at the current time (migration-in). Unlike
  /// pause/resume these are coordinator-initiated control-plane moves and
  /// are never routed through the fault channel, so they draw nothing
  /// from the fault RNG. Ports without migration support (fakes, the
  /// baseline adapters) keep the default refusal.
  virtual bool detach(sim::VmId) { return false; }
  virtual bool attach(sim::VmId) { return false; }

  /// Batch VMs currently parked on this host: detached twins a migration
  /// could attach here. Enumeration order.
  virtual std::vector<sim::VmId> parked_batch() const { return {}; }
};

}  // namespace stayaway::core
