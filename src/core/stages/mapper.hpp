// StayAwayMapper: the paper's Mapping stage (§3.1) as a pipeline stage.
// Owns the whole sample -> quarantine -> normalize -> dedup -> embed
// chain plus the labelled state space the downstream stages read. The
// sampler and normalizer are built by the pipeline (which is allowed to
// see the host) and moved in, so this stage never touches the host.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/embedder.hpp"
#include "core/stages/stage.hpp"
#include "core/statespace.hpp"
#include "core/template_store.hpp"
#include "monitor/health.hpp"
#include "monitor/normalizer.hpp"
#include "monitor/representative.hpp"
#include "monitor/sampler.hpp"

namespace stayaway::core {

class StayAwayMapper final : public Mapper {
 public:
  /// `sampler` and `normalizer` must describe the same layout (the
  /// pipeline builds both from the host).
  StayAwayMapper(monitor::HostSampler sampler,
                 monitor::CapacityNormalizer normalizer,
                 const StayAwayConfig& config);

  monitor::SampleHealth map(PeriodRecord& rec,
                            obs::Observer* observer) override;
  void observe_qos(std::size_t representative, bool violated) override;
  const StateSpace& space() const override { return space_; }

  /// Sensor faults from the plan apply to every sample; nullptr detaches.
  void set_fault_injector(sim::FaultInjector* injector) {
    sampler_.set_fault_injector(injector);
  }

  /// Pre-loads the labelled states of a previous run (§6). Must be called
  /// before the first map(); entry dimensions must match the layout.
  void seed_template(const StateTemplate& t);
  /// Exports the current labelled representative set as a template.
  StateTemplate export_template(std::string sensitive_app_name) const;

  const MapEmbedder& embedder() const { return embedder_; }
  const monitor::RepresentativeSet& representatives() const { return reps_; }
  const monitor::MetricLayout& layout() const { return sampler_.layout(); }
  const monitor::HostSampler& sampler() const { return sampler_; }
  /// Readings quarantined before they could reach the map (lifetime).
  std::size_t readings_quarantined() const {
    return quarantine_.total_quarantined();
  }
  bool mapped_any_period() const { return mapped_any_period_; }

 private:
  monitor::HostSampler sampler_;
  monitor::CapacityNormalizer normalizer_;
  monitor::SampleQuarantine quarantine_;
  monitor::RepresentativeSet reps_;
  StateSpace space_;
  MapEmbedder embedder_;
  bool mapped_any_period_ = false;
};

}  // namespace stayaway::core
