// StayAwayMapper: the paper's Mapping stage (§3.1) as a pipeline stage.
// Owns the whole ingest -> quarantine -> normalize -> dedup -> embed
// chain plus the labelled state space the downstream stages read. The
// sample source and normalizer are built by the pipeline (which is
// allowed to see the host) and moved in, so this stage never touches the
// host.
//
// Ingestion is a SampleSource drain (DESIGN.md §15): the synchronous
// source yields exactly one sample per period — byte-identical to the
// historical loop — while a streaming source may deliver many (or none).
// Every drained sample flows through the quarantine's admission gate
// (late/duplicate classification) and value validation, then dedup; the
// map is re-embedded once per period.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/embedder.hpp"
#include "core/stages/stage.hpp"
#include "core/statespace.hpp"
#include "core/template_store.hpp"
#include "monitor/health.hpp"
#include "monitor/normalizer.hpp"
#include "monitor/representative.hpp"
#include "monitor/sample_source.hpp"

namespace stayaway::core {

class StayAwayMapper final : public Mapper {
 public:
  /// `source` and `normalizer` must describe the same layout (the
  /// pipeline builds both from the host).
  StayAwayMapper(std::unique_ptr<monitor::SampleSource> source,
                 monitor::CapacityNormalizer normalizer,
                 const StayAwayConfig& config);

  monitor::SampleHealth map(PeriodRecord& rec,
                            obs::Observer* observer) override;
  void observe_qos(std::size_t representative, bool violated) override;
  const StateSpace& space() const override { return space_; }

  /// Sensor faults from the plan apply to every sample (and a streaming
  /// source additionally schedules the plan's ingest anomalies); nullptr
  /// detaches.
  void set_fault_injector(sim::FaultInjector* injector) {
    source_->set_fault_injector(injector);
  }

  /// Pre-loads the labelled states of a previous run (§6). Must be called
  /// before the first map(); entry dimensions must match the layout.
  void seed_template(const StateTemplate& t);
  /// Exports the current labelled representative set as a template.
  StateTemplate export_template(std::string sensitive_app_name) const;

  const MapEmbedder& embedder() const { return embedder_; }
  const monitor::RepresentativeSet& representatives() const { return reps_; }
  const monitor::MetricLayout& layout() const { return source_->layout(); }
  const monitor::SampleSource& source() const { return *source_; }
  /// Readings quarantined before they could reach the map (lifetime).
  std::size_t readings_quarantined() const {
    return quarantine_.total_quarantined();
  }
  /// Late/out-of-order samples admitted (lifetime, streaming only).
  std::size_t late_samples() const { return quarantine_.total_late(); }
  /// Duplicate deliveries dropped (lifetime, streaming only).
  std::size_t duplicate_samples() const {
    return quarantine_.total_duplicates();
  }
  bool mapped_any_period() const { return mapped_any_period_; }

  /// Checkpointable iff the source can rewind (synchronous sampling) and
  /// the embedder's full state is capturable (not landmark-incremental).
  bool checkpointable() const override {
    return source_->checkpointable() && embedder_.checkpointable();
  }
  /// Snapshot of the whole mapping chain: source/sampler RNG, quarantine,
  /// representative set, state space, embedder layout, and the carried
  /// representative (DESIGN.md §17).
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  std::unique_ptr<monitor::SampleSource> source_;
  monitor::CapacityNormalizer normalizer_;
  monitor::SampleQuarantine quarantine_;
  monitor::RepresentativeSet reps_;
  StateSpace space_;
  MapEmbedder embedder_;
  std::vector<monitor::TimedSample> drain_buffer_;
  /// Representative of the most recent assigned sample, carried across
  /// periods whose drain delivered nothing.
  std::size_t last_representative_ = 0;
  bool mapped_any_period_ = false;
};

}  // namespace stayaway::core
