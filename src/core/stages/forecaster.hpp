// TrajectoryForecaster: the paper's Prediction stage (§3.2) as a
// pipeline stage. Owns the per-mode trajectory models, the sampled-vote
// predictor with its private RNG stream, and the passive accuracy tally.
#pragma once

#include <cstddef>
#include <optional>

#include "core/config.hpp"
#include "core/predictor.hpp"
#include "core/stages/stage.hpp"
#include "core/trajectory.hpp"
#include "util/rng.hpp"

namespace stayaway::core {

class TrajectoryForecaster final : public ViolationForecaster {
 public:
  /// `dimension` is the metric-space dimension (bounds the trajectory
  /// step length, since normalized coordinates live in [0,1]^dimension).
  TrajectoryForecaster(const StayAwayConfig& config, std::size_t dimension);

  void forecast(const StateSpace& space, PeriodRecord& rec, bool widened,
                obs::Observer* observer) override;

  const ModeTrajectories& trajectories() const { return modes_; }
  const PredictionTally& tally() const { return tally_; }

  /// Snapshot of the per-mode trajectory models, vote RNG, the carried
  /// previous-period observation and the accuracy tally (DESIGN.md §17).
  bool checkpointable() const override { return true; }
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  ModeTrajectories modes_;
  Predictor predictor_;
  Rng rng_;
  double degraded_majority_fraction_;
  std::optional<std::size_t> prev_rep_;
  std::optional<monitor::ExecutionMode> prev_mode_;
  std::optional<bool> prev_predicted_;  // last period's passive prediction
  PredictionTally tally_;
};

}  // namespace stayaway::core
