// GovernorActuator: the paper's Action stage (§3.3) plus the degraded-
// mode actuation machinery (DESIGN.md §12) as a pipeline stage. Owns the
// adaptive-beta throttle governor, the failsafe pause latch and the
// retry/backoff ledger for commands the fault channel dropped. All host
// effects go through the injected ActuationPort.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/governor.hpp"
#include "core/stages/stage.hpp"
#include "util/rng.hpp"

namespace stayaway::core {

class GovernorActuator final : public Actuator {
 public:
  explicit GovernorActuator(const StayAwayConfig& config);

  Outcome act(ActuationPort& port, PeriodRecord& rec,
              DegradationState degradation, obs::Observer* observer) override;

  const ThrottleGovernor& governor() const { return governor_; }
  bool batch_paused() const { return batch_paused_; }
  /// VMs paused by the last Pause action (empty after a Resume).
  const std::vector<sim::VmId>& throttled() const { return throttled_; }
  /// Pause/resume commands re-issued by the reconciling ledger (lifetime).
  std::size_t actuation_retries() const { return actuation_retries_total_; }
  /// Commands abandoned after the bounded retry budget ran out (lifetime).
  std::size_t actuation_abandoned() const {
    return actuation_abandoned_total_;
  }

  /// Snapshot of the governor, the pause/failsafe latches, the throttled
  /// intent set and the open retry ledger (DESIGN.md §17). A restored
  /// actuator resumes mid-retry: backoff deadlines are absolute simulated
  /// times, so they stay meaningful across a restore.
  bool checkpointable() const override { return true; }
  void save_state(util::StateWriter& w) const override;
  void load_state(util::StateReader& r) override;

 private:
  /// Outstanding pause/resume commands the fault channel dropped; the
  /// ledger retries them with exponential backoff until delivered or the
  /// retry budget runs out.
  struct PendingActuation {
    ThrottleAction op = ThrottleAction::None;
    std::vector<sim::VmId> targets;  // commands not yet delivered
    std::size_t attempts = 1;        // delivery rounds tried so far
    double next_retry_time = 0.0;
    /// The command belonged to a failsafe pause (or its release); on
    /// abandonment the failsafe latch must be rolled to match reality.
    bool was_failsafe = false;
  };

  void apply_action(ActuationPort& port, ThrottleAction action,
                    bool failsafe_all_batch);
  /// Re-issues pending undelivered commands once their backoff elapses.
  /// Returns the number of commands re-issued this period.
  std::size_t reconcile_actuation(ActuationPort& port, double now);
  /// Rolls back the books for commands abandoned after the retry budget
  /// ran out, so batch_paused_/throttled_/failsafe_pause_ and the
  /// governor's pause ledger describe what actually happened on the host
  /// rather than what the abandoned command intended.
  void abandon_pending();
  /// Sends one pause/resume command through the port; true when it took.
  static bool deliver(ActuationPort& port, ThrottleAction op, sim::VmId id);
  /// Batch VMs consuming the major share of batch resources (§5:
  /// "batch applications consuming a majority share of resources are
  /// collectively throttled").
  std::vector<sim::VmId> throttle_targets(ActuationPort& port) const;

  bool actions_enabled_;
  bool allow_sensitive_demotion_;
  double period_s_;
  DegradationConfig degradation_;
  ThrottleGovernor governor_;
  bool batch_paused_ = false;
  std::vector<sim::VmId> throttled_;  // VMs paused by the last Pause action
  bool failsafe_pause_ = false;  // the current pause was failsafe-initiated
  std::optional<PendingActuation> pending_;
  std::size_t actuation_retries_total_ = 0;
  std::size_t actuation_abandoned_total_ = 0;
};

}  // namespace stayaway::core
