#include "core/stages/forecaster.hpp"

#include <cmath>

#include "core/statespace.hpp"

namespace stayaway::core {

TrajectoryForecaster::TrajectoryForecaster(const StayAwayConfig& config,
                                           std::size_t dimension)
    : modes_(/*max_step=*/std::sqrt(static_cast<double>(dimension)),
             config.histogram_bins),
      predictor_(config.prediction_samples, config.majority_fraction,
                 config.min_mode_observations),
      rng_(config.seed ^ 0x5eedF00dULL),
      degraded_majority_fraction_(
          config.degradation.degraded_majority_fraction) {}

void TrajectoryForecaster::forecast(const StateSpace& space, PeriodRecord& rec,
                                    bool widened, obs::Observer* observer) {
  // Trajectory observation: within-mode steps only; positions are looked
  // up fresh so re-embeddings cannot smear old coordinates into the model.
  if (prev_rep_.has_value() && prev_mode_ == rec.mode) {
    modes_.model(rec.mode).observe(space.position(*prev_rep_), rec.state);
  }

  obs::Span predict_span = observer != nullptr
                               ? observer->span("predict", rec.time)
                               : obs::Span{};
  // Degraded telemetry widens the decision: a lower vote threshold pauses
  // earlier when the inputs are imputed or the probe just went quiet. Both
  // predict() overloads consume identical Rng draws, so widening cannot
  // shift the random stream (the no-fault golden test depends on that).
  Prediction prediction =
      widened ? predictor_.predict(space, modes_, rec.mode, rec.state, rng_,
                                   degraded_majority_fraction_)
              : predictor_.predict(space, modes_, rec.mode, rec.state, rng_);
  rec.model_ready = prediction.model_ready;
  rec.violation_predicted = prediction.violation_predicted;

  // Passive accuracy tally: last period's forecast ("will the execution
  // progress into the violation region?", §3.2) against this period's
  // realised outcome (did the mapped state actually enter the region?).
  // Only meaningful when forecasts are not acted upon.
  if (prev_predicted_.has_value()) {
    bool entered = space.in_violation_region(rec.state);
    if (*prev_predicted_ && entered) ++tally_.true_positive;
    if (*prev_predicted_ && !entered) ++tally_.false_positive;
    if (!*prev_predicted_ && entered) ++tally_.false_negative;
    if (!*prev_predicted_ && !entered) ++tally_.true_negative;
  }
  prev_predicted_ = prediction.model_ready
                        ? std::optional<bool>(prediction.violation_predicted)
                        : std::nullopt;
  predict_span.close();

  prev_rep_ = rec.representative;
  prev_mode_ = rec.mode;
}

void TrajectoryForecaster::save_state(util::StateWriter& w) const {
  modes_.save_state(w);
  w.line("forecaster_rng", rng_.save_state());
  w.boolean("has_prev_rep", prev_rep_.has_value());
  if (prev_rep_.has_value()) w.u64("prev_rep", *prev_rep_);
  w.boolean("has_prev_mode", prev_mode_.has_value());
  if (prev_mode_.has_value()) {
    w.u64("prev_mode", static_cast<std::uint64_t>(*prev_mode_));
  }
  w.boolean("has_prev_predicted", prev_predicted_.has_value());
  if (prev_predicted_.has_value()) {
    w.boolean("prev_predicted", *prev_predicted_);
  }
  w.u64("tally_tp", tally_.true_positive);
  w.u64("tally_fp", tally_.false_positive);
  w.u64("tally_tn", tally_.true_negative);
  w.u64("tally_fn", tally_.false_negative);
}

void TrajectoryForecaster::load_state(util::StateReader& r) {
  modes_.load_state(r);
  rng_.load_state(r.line("forecaster_rng"));
  prev_rep_.reset();
  if (r.boolean("has_prev_rep")) {
    prev_rep_ = static_cast<std::size_t>(r.u64("prev_rep"));
  }
  prev_mode_.reset();
  if (r.boolean("has_prev_mode")) {
    std::uint64_t mode = r.u64("prev_mode");
    if (mode >= monitor::kExecutionModeCount) {
      throw util::StateCodecError("prev_mode out of range");
    }
    prev_mode_ = static_cast<monitor::ExecutionMode>(mode);
  }
  prev_predicted_.reset();
  if (r.boolean("has_prev_predicted")) {
    prev_predicted_ = r.boolean("prev_predicted");
  }
  tally_.true_positive = static_cast<std::size_t>(r.u64("tally_tp"));
  tally_.false_positive = static_cast<std::size_t>(r.u64("tally_fp"));
  tally_.true_negative = static_cast<std::size_t>(r.u64("tally_tn"));
  tally_.false_negative = static_cast<std::size_t>(r.u64("tally_fn"));
}

}  // namespace stayaway::core
