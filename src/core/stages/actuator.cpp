#include "core/stages/actuator.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::core {

GovernorActuator::GovernorActuator(const StayAwayConfig& config)
    : actions_enabled_(config.actions_enabled),
      allow_sensitive_demotion_(config.allow_sensitive_demotion),
      period_s_(config.period_s),
      degradation_(config.degradation),
      governor_(config.governor, Rng(config.seed)) {}

Actuator::Outcome GovernorActuator::act(ActuationPort& port, PeriodRecord& rec,
                                        DegradationState degradation,
                                        obs::Observer* observer) {
  // In passive mode the governor is not consulted at all: a decision that
  // is never applied must not advance its state (pause ledger, beta
  // chain).
  obs::Span act_span = observer != nullptr ? observer->span("act", rec.time)
                                           : obs::Span{};
  ThrottleAction action = ThrottleAction::None;
  bool failsafe_all = false;
  if (actions_enabled_) {
    // Reconcile first: commands the fault channel dropped last period are
    // re-issued before any new decision can supersede them.
    if (degradation_.enabled) {
      rec.actuation_retries = reconcile_actuation(port, rec.time);
    }
    if (degradation_.enabled && degradation == DegradationState::Failsafe &&
        !failsafe_pause_) {
      // QoS-blind past the patience: the loop cannot label states, so it
      // cannot reason about interference — stop every batch VM until the
      // probe comes back (DESIGN.md §12). Failsafe supersedes whatever
      // pause the governor may have had open; close its ledger so the
      // stale starvation clock and distance chain do not leak into the
      // first governor pause after the failsafe releases.
      action = ThrottleAction::Pause;
      failsafe_all = true;
      governor_.abandon_pause();
    } else if (failsafe_pause_ && degradation == DegradationState::Normal) {
      // Telemetry fully recovered (with hysteresis): release the failsafe.
      action = ThrottleAction::Resume;
    } else if (!failsafe_pause_) {
      action = governor_.decide(rec.time, batch_paused_,
                                rec.violation_predicted,
                                rec.violation_observed, rec.state);
    }
    // else: hold the failsafe pause while telemetry is still degraded.
  }
  // The set a Resume releases is cleared by apply_action — keep it for
  // the event stream.
  Outcome outcome;
  if (action == ThrottleAction::Resume) {
    outcome.resumed = throttled_;
    std::optional<ResumeReason> reason = governor_.last_resume_reason();
    outcome.reason = reason.has_value() ? to_string(*reason) : "external";
  }
  apply_action(port, action, failsafe_all);
  if (action == ThrottleAction::Pause) {
    outcome.paused = throttled_;
    outcome.reason = rec.violation_observed ? "observed-violation"
                                            : "predicted-violation";
  }
  act_span.close();
  rec.action = action;
  rec.batch_paused_after = batch_paused_;
  rec.actuation_pending = pending_.has_value();
  rec.beta = governor_.beta();
  return outcome;
}

std::size_t GovernorActuator::reconcile_actuation(ActuationPort& port,
                                                  double now) {
  if (!pending_.has_value() || now < pending_->next_retry_time) return 0;
  std::vector<sim::VmId> undelivered;
  std::size_t reissued = 0;
  for (sim::VmId id : pending_->targets) {
    ++reissued;
    if (!deliver(port, pending_->op, id)) undelivered.push_back(id);
  }
  actuation_retries_total_ += reissued;
  if (undelivered.empty()) {
    pending_.reset();
    return reissued;
  }
  pending_->targets = std::move(undelivered);
  ++pending_->attempts;
  if (pending_->attempts > degradation_.actuation_max_retries) {
    // Retry budget exhausted: record the divergence, roll the books back
    // to what was actually delivered and stop hammering a dead channel.
    // The next Pause/Resume decision rebuilds the ledger.
    actuation_abandoned_total_ += pending_->targets.size();
    abandon_pending();
  } else {
    double backoff =
        static_cast<double>(degradation_.actuation_backoff_periods) *
        period_s_ * static_cast<double>(1ULL << (pending_->attempts - 1));
    pending_->next_retry_time = now + backoff;
  }
  return reissued;
}

void GovernorActuator::abandon_pending() {
  SA_DCHECK(pending_.has_value(), "nothing pending to abandon");
  if (pending_->op == ThrottleAction::Pause) {
    // The abandoned targets were never paused: drop them from the
    // intent set so a later Resume does not "release" running VMs. If
    // nothing at all got paused, the pause never happened — without the
    // rollback the governor keeps reasoning in its paused branch over
    // map states of a *running* system, the distance chain immediately
    // exceeds beta and the loop enters a pause/resume oscillation.
    for (sim::VmId id : pending_->targets) {
      throttled_.erase(std::remove(throttled_.begin(), throttled_.end(), id),
                       throttled_.end());
    }
    if (throttled_.empty()) {
      batch_paused_ = false;
      failsafe_pause_ = false;
      governor_.abandon_pause();
    }
  } else {
    // The abandoned targets are still paused on the host: splice them
    // back into the intent set and re-raise the pause flags, or the
    // controller believes the batch is running while the VMs starve
    // forever. Re-latching failsafe_pause_ makes act() retry a failsafe
    // release the next period telemetry is Normal.
    for (sim::VmId id : pending_->targets) {
      if (std::find(throttled_.begin(), throttled_.end(), id) ==
          throttled_.end()) {
        throttled_.push_back(id);
      }
    }
    batch_paused_ = true;
    if (pending_->was_failsafe) failsafe_pause_ = true;
  }
  pending_.reset();
}

bool GovernorActuator::deliver(ActuationPort& port, ThrottleAction op,
                               sim::VmId id) {
  SA_DCHECK(op != ThrottleAction::None, "only pause/resume can be delivered");
  return op == ThrottleAction::Pause ? port.pause(id) : port.resume(id);
}

std::vector<sim::VmId> GovernorActuator::throttle_targets(
    ActuationPort& port) const {
  // Rank active batch VMs by their demand footprint (CPU share + memory
  // share + bus share) and take the head of the ranking until it covers
  // the majority of the total batch footprint.
  std::vector<VmFootprint> entries = port.batch_footprints();
  double total = 0.0;
  for (const auto& e : entries) total += e.footprint;
  std::sort(entries.begin(), entries.end(),
            [](const VmFootprint& a, const VmFootprint& b) {
              return a.footprint > b.footprint;
            });

  std::vector<sim::VmId> out;
  double covered = 0.0;
  for (const auto& e : entries) {
    out.push_back(e.id);
    covered += e.footprint;
    if (total > 0.0 && covered / total >= 0.75) break;
  }

  // §2.1 fallback: with no batch VM to throttle, sacrifice lower-priority
  // sensitive VMs (when the deployment opted in).
  if (out.empty() && allow_sensitive_demotion_) {
    out = port.demotion_candidates();
  }
  return out;
}

void GovernorActuator::apply_action(ActuationPort& port, ThrottleAction action,
                                    bool failsafe_all_batch) {
  // A fresh decision supersedes whatever the retry ledger was still
  // chasing; undelivered commands below seed a new ledger entry.
  double now = port.now();
  switch (action) {
    case ThrottleAction::None:
      return;
    case ThrottleAction::Pause: {
      // throttled_ records intent — the pause set the loop believes is
      // stopped. deliver() records reality; the gap lands in pending_ and
      // reconcile_actuation() closes it with bounded retries.
      throttled_ = failsafe_all_batch ? port.present_batch()
                                      : throttle_targets(port);
      std::vector<sim::VmId> undelivered;
      for (sim::VmId id : throttled_) {
        if (!deliver(port, ThrottleAction::Pause, id)) {
          undelivered.push_back(id);
        }
      }
      batch_paused_ = true;
      failsafe_pause_ = failsafe_all_batch;
      pending_.reset();
      if (!undelivered.empty() && degradation_.enabled) {
        double backoff =
            static_cast<double>(degradation_.actuation_backoff_periods) *
            period_s_;
        pending_ = PendingActuation{ThrottleAction::Pause,
                                    std::move(undelivered), 1, now + backoff,
                                    failsafe_all_batch};
      }
      return;
    }
    case ThrottleAction::Resume: {
      // Resume exactly what this actuator paused (batch VMs and, under
      // §2.1 demotion, lower-priority sensitive VMs).
      bool releasing_failsafe = failsafe_pause_;
      std::vector<sim::VmId> undelivered;
      for (sim::VmId id : throttled_) {
        if (!deliver(port, ThrottleAction::Resume, id)) {
          undelivered.push_back(id);
        }
      }
      throttled_.clear();
      batch_paused_ = false;
      failsafe_pause_ = false;
      pending_.reset();
      if (!undelivered.empty() && degradation_.enabled) {
        double backoff =
            static_cast<double>(degradation_.actuation_backoff_periods) *
            period_s_;
        pending_ = PendingActuation{ThrottleAction::Resume,
                                    std::move(undelivered), 1, now + backoff,
                                    releasing_failsafe};
      }
      return;
    }
  }
}

void GovernorActuator::save_state(util::StateWriter& w) const {
  governor_.save_state(w);
  w.boolean("batch_paused", batch_paused_);
  w.u64s("throttled", std::vector<std::uint64_t>(throttled_.begin(),
                                                 throttled_.end()));
  w.boolean("failsafe_pause", failsafe_pause_);
  w.boolean("has_pending", pending_.has_value());
  if (pending_.has_value()) {
    w.u64("pending_op", static_cast<std::uint64_t>(pending_->op));
    w.u64s("pending_targets",
           std::vector<std::uint64_t>(pending_->targets.begin(),
                                      pending_->targets.end()));
    w.u64("pending_attempts", pending_->attempts);
    w.real("pending_next_retry_time", pending_->next_retry_time);
    w.boolean("pending_was_failsafe", pending_->was_failsafe);
  }
  w.u64("actuation_retries_total", actuation_retries_total_);
  w.u64("actuation_abandoned_total", actuation_abandoned_total_);
}

void GovernorActuator::load_state(util::StateReader& r) {
  governor_.load_state(r);
  batch_paused_ = r.boolean("batch_paused");
  std::vector<std::uint64_t> throttled = r.u64s("throttled");
  throttled_.assign(throttled.begin(), throttled.end());
  failsafe_pause_ = r.boolean("failsafe_pause");
  pending_.reset();
  if (r.boolean("has_pending")) {
    PendingActuation p;
    std::uint64_t op = r.u64("pending_op");
    if (op > static_cast<std::uint64_t>(ThrottleAction::Resume)) {
      throw util::StateCodecError("pending_op out of range");
    }
    p.op = static_cast<ThrottleAction>(op);
    std::vector<std::uint64_t> targets = r.u64s("pending_targets");
    p.targets.assign(targets.begin(), targets.end());
    p.attempts = static_cast<std::size_t>(r.u64("pending_attempts"));
    p.next_retry_time = r.real("pending_next_retry_time");
    p.was_failsafe = r.boolean("pending_was_failsafe");
    pending_ = std::move(p);
  }
  actuation_retries_total_ =
      static_cast<std::size_t>(r.u64("actuation_retries_total"));
  actuation_abandoned_total_ =
      static_cast<std::size_t>(r.u64("actuation_abandoned_total"));
}

}  // namespace stayaway::core
