// The three pipeline stage interfaces the per-host loop is composed of
// (DESIGN.md §13). HostPipeline drives them in order every control
// period:
//
//   Mapper              §3.1  sample -> quarantine -> normalize -> dedup
//                             -> embed; owns the mapping slice of
//                             PeriodRecord and the labelled state space.
//   ViolationForecaster §3.2  trajectory observation + sampled voting;
//                             owns the prediction slice and the passive
//                             accuracy tally.
//   Actuator            §3.3  decides and applies pause/resume through an
//                             injected ActuationPort; owns the action
//                             slice and any retry ledger.
//
// Stages never see the simulated host (lint-enforced): the Mapper owns a
// pre-built sampler, the Actuator acts through its port, and everything
// in between travels inside the PeriodRecord. Any stage may be absent
// from a pipeline — a baseline policy is just an actuator-only pipeline.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/period.hpp"
#include "core/stages/port.hpp"
#include "monitor/health.hpp"
#include "obs/observer.hpp"
#include "util/check.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

class StateSpace;

/// Mapping stage (§3.1). map() fills rec.quarantined_dims, max_staleness,
/// representative, new_representative, state and stress, and returns the
/// sample health for the pipeline's degradation tracking. observe_qos()
/// contributes one (visit, violated?) evidence observation — the pipeline
/// calls it only on QoS-visible periods.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual monitor::SampleHealth map(PeriodRecord& rec,
                                    obs::Observer* observer) = 0;
  virtual void observe_qos(std::size_t representative, bool violated) = 0;
  /// The labelled map the forecaster predicts over.
  virtual const StateSpace& space() const = 0;

  /// Checkpoint support (DESIGN.md §17). Stages default to
  /// non-checkpointable; pipelines whose stages cannot all snapshot
  /// recover by cold replay instead. Callers gate on checkpointable().
  virtual bool checkpointable() const { return false; }
  virtual void save_state(util::StateWriter& w) const {
    (void)w;
    SA_CHECK(false, "save_state on a non-checkpointable mapper");
  }
  virtual void load_state(util::StateReader& r) {
    (void)r;
    SA_CHECK(false, "load_state on a non-checkpointable mapper");
  }
};

/// Prediction stage (§3.2). forecast() observes the latest within-mode
/// trajectory step, fills rec.model_ready and rec.violation_predicted,
/// and scores last period's forecast against this period's realised
/// position. `widened` lowers the vote threshold under degraded
/// telemetry without shifting the RNG stream.
class ViolationForecaster {
 public:
  virtual ~ViolationForecaster() = default;
  virtual void forecast(const StateSpace& space, PeriodRecord& rec,
                        bool widened, obs::Observer* observer) = 0;

  /// Checkpoint support (DESIGN.md §17); see Mapper.
  virtual bool checkpointable() const { return false; }
  virtual void save_state(util::StateWriter& w) const {
    (void)w;
    SA_CHECK(false, "save_state on a non-checkpointable forecaster");
  }
  virtual void load_state(util::StateReader& r) {
    (void)r;
    SA_CHECK(false, "load_state on a non-checkpointable forecaster");
  }
};

/// Action stage (§3.3). act() reconciles any outstanding actuation,
/// decides this period's ThrottleAction and applies it through the port;
/// it fills rec.action, batch_paused_after, actuation_retries,
/// actuation_pending and beta.
class Actuator {
 public:
  virtual ~Actuator() = default;

  struct Outcome {
    /// VMs paused by a Pause this period. Empty otherwise.
    std::vector<sim::VmId> paused;
    /// VMs released by a Resume this period (for the event stream; the
    /// throttled set itself is cleared by the resume).
    std::vector<sim::VmId> resumed;
    /// Why the action fired — a static string ("observed-violation",
    /// "cooldown-elapsed", ...). Empty for None.
    std::string_view reason;
  };

  virtual Outcome act(ActuationPort& port, PeriodRecord& rec,
                      DegradationState degradation,
                      obs::Observer* observer) = 0;

  /// Checkpoint support (DESIGN.md §17); see Mapper.
  virtual bool checkpointable() const { return false; }
  virtual void save_state(util::StateWriter& w) const {
    (void)w;
    SA_CHECK(false, "save_state on a non-checkpointable actuator");
  }
  virtual void load_state(util::StateReader& r) {
    (void)r;
    SA_CHECK(false, "load_state on a non-checkpointable actuator");
  }
};

}  // namespace stayaway::core
