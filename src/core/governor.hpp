// Throttle governor — "What Action to take and When to Stop?" (§3.3).
//
// Pausing is triggered by a predicted or observed violation. Resuming is
// governed by the adaptive distance threshold beta over consecutive
// sensitive-only states: small movement means the sensitive app is still
// in the contending phase; movement beyond beta signals a phase or
// workload change worth trying a resume on. A resume that immediately
// re-violates bumps beta; a long quiet pause triggers a randomized
// anti-starvation resume.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "mds/point.hpp"
#include "util/rng.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

enum class ThrottleAction {
  None,
  Pause,
  Resume,
};

const char* to_string(ThrottleAction action);

/// Why the most recent Resume fired (diagnostics + beta bookkeeping).
enum class ResumeReason {
  BetaExceeded,
  AntiStarvation,
};

const char* to_string(ResumeReason reason);

class ThrottleGovernor {
 public:
  ThrottleGovernor(GovernorConfig config, Rng rng);

  /// One decision per control period.
  /// now: simulated time; batch_paused: whether the batch is currently
  /// paused; violation_predicted/observed: this period's signals;
  /// mapped_state: the sensitive run's current point in the map.
  ThrottleAction decide(double now, bool batch_paused,
                        bool violation_predicted, bool violation_observed,
                        const mds::Point2& mapped_state);

  /// Closes an open pause ledger without emitting (or counting) a
  /// Resume. Called by the actuator when a Pause it issued was fully
  /// abandoned after exhausting retries, or when Failsafe supersedes the
  /// governor's own pause: the books must not describe a pause that no
  /// longer exists, or the stale starvation clock and distance chain
  /// leak into the next genuine pause. No-op when no pause is open.
  void abandon_pause();

  double beta() const { return beta_; }
  /// Why the most recent Resume fired; nullopt before the first resume.
  std::optional<ResumeReason> last_resume_reason() const {
    return last_resume_reason_;
  }
  std::size_t pauses() const { return pauses_; }
  std::size_t resumes() const { return resumes_; }
  std::size_t failed_resumes() const { return failed_resumes_; }
  std::size_t random_resumes() const { return random_resumes_; }

  /// Snapshot of the full decision state — beta, the RNG stream, the
  /// open-pause books and every counter (DESIGN.md §17). A restored
  /// governor makes the exact decision sequence the original would have.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  GovernorConfig config_;
  Rng rng_;
  double beta_;
  std::optional<mds::Point2> last_paused_state_;
  /// When the current pause began. Set by our own Pause decision, or on
  /// the first decide() that observes an externally initiated pause —
  /// never defaulted, so the starvation timer cannot start in the past.
  std::optional<double> paused_since_;
  std::optional<double> resumed_at_;
  std::optional<ResumeReason> last_resume_reason_;
  std::size_t pauses_ = 0;
  std::size_t resumes_ = 0;
  std::size_t failed_resumes_ = 0;
  std::size_t random_resumes_ = 0;
};

}  // namespace stayaway::core
