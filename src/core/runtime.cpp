#include "core/runtime.hpp"

#include <utility>

namespace stayaway::core {

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config)
    : pipeline_(host, probe, std::move(config)) {}

}  // namespace stayaway::core
