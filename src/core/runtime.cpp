#include "core/runtime.hpp"

#include <utility>

namespace stayaway::core {

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config)
    : pipeline_(host, probe, std::move(config)) {}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config,
                                 monitor::SamplerConfig sampler_config)
    : StayAwayRuntime(host, probe, [&] {
        // Deprecated shim: the positional config wins over config.sampler.
        config.sampler = std::move(sampler_config);
        return std::move(config);
      }()) {}
#pragma GCC diagnostic pop

}  // namespace stayaway::core
