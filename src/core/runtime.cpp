#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::core {

namespace {

/// Plausible upper bound of every raw reading: host capacity times the
/// spike margin. Feeds the validate-and-quarantine stage.
std::vector<double> quarantine_bounds(
    const monitor::CapacityNormalizer& normalizer, double spike_margin) {
  const monitor::MetricLayout& layout = normalizer.layout();
  std::vector<double> bounds(layout.dimension(), 0.0);
  for (std::size_t e = 0; e < layout.entities.size(); ++e) {
    for (std::size_t k = 0; k < layout.metrics.size(); ++k) {
      bounds[layout.index_of(e, k)] =
          normalizer.capacity_of(layout.metrics[k]) * spike_margin;
    }
  }
  return bounds;
}

}  // namespace

const char* to_string(DegradationState state) {
  switch (state) {
    case DegradationState::Normal:
      return "normal";
    case DegradationState::Degraded:
      return "degraded";
    case DegradationState::Failsafe:
      return "failsafe";
  }
  return "unknown";
}

double PredictionTally::accuracy() const {
  std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(t);
}

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config,
                                 monitor::SamplerOptions sampler_options)
    : StayAwayRuntime(host, probe, [&] {
        // Deprecated shim: the positional options win over config.sampler.
        config.sampler = std::move(sampler_options);
        return std::move(config);
      }()) {}

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config)
    : host_(&host),
      probe_(&probe),
      config_(config),
      sampler_(host, config.sampler),
      normalizer_(host.spec(), sampler_.layout()),
      quarantine_(quarantine_bounds(normalizer_, config.degradation.spike_margin)),
      reps_(config.dedup_epsilon, config.max_representatives),
      embedder_(config.embed_method, config.landmark_count,
                config.warm_skip_stress),
      modes_(/*max_step=*/std::sqrt(
                 static_cast<double>(sampler_.layout().dimension())),
             config.histogram_bins),
      predictor_(config.prediction_samples, config.majority_fraction,
                 config.min_mode_observations),
      governor_(config.governor, Rng(config.seed)),
      rng_(config.seed ^ 0x5eedF00dULL) {
  SA_REQUIRE(config.period_s > 0.0, "control period must be positive");
  SA_REQUIRE(config.degradation.spike_margin > 0.0,
             "spike margin must be positive");
  SA_REQUIRE(config.degradation.qos_blind_failsafe_periods > 0,
             "failsafe patience must be at least one period");
  SA_REQUIRE(config.degradation.recovery_periods > 0,
             "recovery hysteresis must be at least one period");
  SA_REQUIRE(config.degradation.degraded_majority_fraction >= 0.0 &&
                 config.degradation.degraded_majority_fraction <= 1.0,
             "degraded majority fraction must be in [0,1]");
  if (config.hot_path_threads != 0) {
    util::set_hot_path_threads(config.hot_path_threads);
  }
}

void StayAwayRuntime::install_faults(const sim::FaultPlan& plan) {
  SA_REQUIRE(records_.empty(),
             "fault plans must be installed before the first period");
  faults_.emplace(plan);
  sampler_.set_fault_injector(&*faults_);
}

void StayAwayRuntime::seed_template(const StateTemplate& t) {
  SA_REQUIRE(reps_.size() == 0, "templates must be seeded before any period");
  for (const auto& entry : t.entries) {
    SA_REQUIRE(entry.vector.size() == sampler_.layout().dimension(),
               "template dimension does not match the sampler layout");
    auto assignment = reps_.assign(entry.vector);
    if (assignment.is_new) {
      space_.add_state(entry.label);
    } else if (entry.label == StateLabel::Violation) {
      space_.mark_violation(assignment.representative);
    }
  }
  space_.sync_positions(embedder_.update(reps_));
}

StateTemplate StayAwayRuntime::export_template(
    std::string sensitive_app_name) const {
  StateTemplate t;
  t.sensitive_app = std::move(sensitive_app_name);
  t.entries.reserve(reps_.size());
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    t.entries.push_back({reps_.representative(i), space_.label(i)});
  }
  return t;
}

const PeriodRecord& StayAwayRuntime::on_period() {
  obs::Span period_span = observer_ != nullptr
                              ? observer_->span("period", host_->now())
                              : obs::Span{};
  PeriodRecord rec;
  rec.time = host_->now();
  rec.mode = monitor::detect_mode(*host_);

  // --- Mapping (§3.1): sample, quarantine, normalize, dedup, embed. ---
  obs::Span sample_span = observer_ != nullptr
                              ? observer_->span("sample", rec.time)
                              : obs::Span{};
  monitor::Measurement m = sampler_.sample();
  // Validate-and-quarantine (DESIGN.md §12): non-finite or out-of-range
  // readings never reach the embedder — they are imputed from the
  // dimension's last good value. Pure pass-through on healthy input.
  monitor::SampleHealth health = quarantine_.validate(m.values);
  rec.quarantined_dims = health.quarantined;
  rec.max_staleness = health.max_staleness;
  std::vector<double> normalized = normalizer_.normalize(m);
  monitor::Assignment assignment = reps_.assign(normalized);
  sample_span.close();
  rec.representative = assignment.representative;
  rec.new_representative = assignment.is_new;
  obs::Span embed_span = observer_ != nullptr
                             ? observer_->span("embed", rec.time)
                             : obs::Span{};
  if (assignment.is_new) space_.add_state(StateLabel::Safe);
  space_.sync_positions(embedder_.update(reps_));
  embed_span.close();
  rec.state = space_.position(assignment.representative);
  rec.stress = embedder_.stress();

  // QoS label (§3.1: the application reports violations). Labels are
  // evidence based (see StateSpace): each period contributes one
  // (visit, violated?) observation to its representative. A QoS-blind
  // period contributes nothing — a silent probe is missing evidence, not
  // evidence of safety.
  rec.qos_visible = !(faults_.has_value() && faults_->qos_blind(rec.time));
  rec.violation_observed = rec.qos_visible && probe_->violated();
  if (rec.qos_visible) {
    space_.observe_visit(assignment.representative, rec.violation_observed);
  }

  update_degradation(health, rec.qos_visible);
  rec.degradation = degradation_;

  // Trajectory observation: within-mode steps only; positions are looked
  // up fresh so re-embeddings cannot smear old coordinates into the model.
  if (prev_rep_.has_value() && prev_mode_ == rec.mode) {
    modes_.model(rec.mode).observe(space_.position(*prev_rep_), rec.state);
  }

  // --- Prediction (§3.2). ---
  obs::Span predict_span = observer_ != nullptr
                               ? observer_->span("predict", rec.time)
                               : obs::Span{};
  // Degraded telemetry widens the decision: a lower vote threshold pauses
  // earlier when the inputs are imputed or the probe just went quiet. Both
  // predict() overloads consume identical Rng draws, so widening cannot
  // shift the random stream (the no-fault golden test depends on that).
  bool widened = config_.degradation.enabled &&
                 degradation_ != DegradationState::Normal;
  Prediction prediction =
      widened ? predictor_.predict(
                    space_, modes_, rec.mode, rec.state, rng_,
                    config_.degradation.degraded_majority_fraction)
              : predictor_.predict(space_, modes_, rec.mode, rec.state, rng_);
  rec.model_ready = prediction.model_ready;
  rec.violation_predicted = prediction.violation_predicted;

  // Passive accuracy tally: last period's forecast ("will the execution
  // progress into the violation region?", §3.2) against this period's
  // realised outcome (did the mapped state actually enter the region?).
  // Only meaningful when forecasts are not acted upon.
  if (prev_predicted_.has_value()) {
    bool entered = space_.in_violation_region(rec.state);
    if (*prev_predicted_ && entered) ++tally_.true_positive;
    if (*prev_predicted_ && !entered) ++tally_.false_positive;
    if (!*prev_predicted_ && entered) ++tally_.false_negative;
    if (!*prev_predicted_ && !entered) ++tally_.true_negative;
  }
  prev_predicted_ = prediction.model_ready
                        ? std::optional<bool>(prediction.violation_predicted)
                        : std::nullopt;
  predict_span.close();

  // --- Action (§3.3). In passive mode the governor is not consulted at
  // all: a decision that is never applied must not advance its state
  // (pause ledger, beta chain).
  obs::Span act_span = observer_ != nullptr ? observer_->span("act", rec.time)
                                            : obs::Span{};
  ThrottleAction action = ThrottleAction::None;
  bool failsafe_all = false;
  if (config_.actions_enabled) {
    // Reconcile first: commands the fault channel dropped last period are
    // re-issued before any new decision can supersede them.
    if (config_.degradation.enabled) {
      rec.actuation_retries = reconcile_actuation(rec.time);
    }
    if (config_.degradation.enabled &&
        degradation_ == DegradationState::Failsafe && !failsafe_pause_) {
      // QoS-blind past the patience: the loop cannot label states, so it
      // cannot reason about interference — stop every batch VM until the
      // probe comes back (DESIGN.md §12).
      action = ThrottleAction::Pause;
      failsafe_all = true;
    } else if (failsafe_pause_ &&
               degradation_ == DegradationState::Normal) {
      // Telemetry fully recovered (with hysteresis): release the failsafe.
      action = ThrottleAction::Resume;
    } else if (!failsafe_pause_) {
      action = governor_.decide(rec.time, batch_paused_, rec.violation_predicted,
                                rec.violation_observed, rec.state);
    }
    // else: hold the failsafe pause while telemetry is still degraded.
  }
  // The set a Resume releases is cleared by apply_action — keep it for
  // the event stream.
  std::vector<sim::VmId> resumed;
  if (action == ThrottleAction::Resume) resumed = throttled_;
  apply_action(action, failsafe_all);
  act_span.close();
  rec.action = action;
  rec.batch_paused_after = batch_paused_;
  rec.actuation_pending = pending_.has_value();
  rec.beta = governor_.beta();

  prev_rep_ = assignment.representative;
  prev_mode_ = rec.mode;
  records_.push_back(rec);
  period_span.close();
  if (observer_ != nullptr) publish(records_.back(), resumed);
  transition_.reset();
  return records_.back();
}

void StayAwayRuntime::update_degradation(const monitor::SampleHealth& health,
                                         bool qos_visible) {
  if (!config_.degradation.enabled) return;  // state pinned at Normal
  if (qos_visible) {
    qos_blind_streak_ = 0;
  } else {
    ++qos_blind_streak_;
  }
  DegradationState before = degradation_;
  bool healthy = qos_visible && !health.imputed();
  if (healthy) {
    // Recovery is hysteretic and stepwise: recovery_periods clean periods
    // buy one level down, so a flapping sensor cannot bounce the loop
    // straight back to Normal.
    ++healthy_streak_;
    if (healthy_streak_ >= config_.degradation.recovery_periods &&
        degradation_ != DegradationState::Normal) {
      degradation_ = degradation_ == DegradationState::Failsafe
                         ? DegradationState::Degraded
                         : DegradationState::Normal;
      healthy_streak_ = 0;
    }
  } else {
    healthy_streak_ = 0;
    DegradationState escalated =
        qos_blind_streak_ >= config_.degradation.qos_blind_failsafe_periods
            ? DegradationState::Failsafe
            : DegradationState::Degraded;
    if (escalated > degradation_) degradation_ = escalated;
  }
  if (degradation_ != before) {
    transition_ = std::make_pair(before, degradation_);
  }
}

std::size_t StayAwayRuntime::reconcile_actuation(double now) {
  if (!pending_.has_value() || now < pending_->next_retry_time) return 0;
  std::vector<sim::VmId> undelivered;
  std::size_t reissued = 0;
  for (sim::VmId id : pending_->targets) {
    ++reissued;
    if (!deliver(pending_->op, id, now)) undelivered.push_back(id);
  }
  actuation_retries_total_ += reissued;
  if (undelivered.empty()) {
    pending_.reset();
    return reissued;
  }
  pending_->targets = std::move(undelivered);
  ++pending_->attempts;
  if (pending_->attempts > config_.degradation.actuation_max_retries) {
    // Retry budget exhausted: record the divergence and stop hammering a
    // dead channel. The next Pause/Resume decision rebuilds the ledger.
    actuation_abandoned_total_ += pending_->targets.size();
    pending_.reset();
  } else {
    double backoff = static_cast<double>(
                         config_.degradation.actuation_backoff_periods) *
                     config_.period_s *
                     static_cast<double>(1ULL << (pending_->attempts - 1));
    pending_->next_retry_time = now + backoff;
  }
  return reissued;
}

std::vector<sim::VmId> StayAwayRuntime::all_present_batch() const {
  std::vector<sim::VmId> out;
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    if (host_->vm(id).present(host_->now())) out.push_back(id);
  }
  return out;
}

bool StayAwayRuntime::deliver(ThrottleAction op, sim::VmId id, double now) {
  SA_DCHECK(op != ThrottleAction::None, "only pause/resume can be delivered");
  bool delivered = true;
  if (faults_.has_value()) {
    delivered = op == ThrottleAction::Pause ? faults_->pause_delivered(now)
                                            : faults_->resume_delivered(now);
  }
  if (delivered) {
    if (op == ThrottleAction::Pause) {
      host_->vm(id).pause();
    } else {
      host_->vm(id).resume();
    }
  }
  return delivered;
}

void StayAwayRuntime::set_observer(obs::Observer* observer) {
  observer_ = observer;
  if (observer_ == nullptr) {
    metrics_ = LoopMetrics{};
    return;
  }
  obs::MetricsRegistry& reg = observer_->metrics();
  metrics_.periods = reg.counter("loop.periods");
  metrics_.violations_observed = reg.counter("loop.violations_observed");
  metrics_.violations_predicted = reg.counter("loop.violations_predicted");
  metrics_.new_representatives = reg.counter("loop.new_representatives");
  metrics_.pauses = reg.counter("loop.pauses");
  metrics_.resumes = reg.counter("loop.resumes");
  metrics_.beta = reg.gauge("governor.beta");
  metrics_.stress = reg.gauge("embedder.stress");
  metrics_.representatives = reg.gauge("map.representatives");
  metrics_.violation_states = reg.gauge("map.violation_states");
  metrics_.tally_accuracy = reg.gauge("predictor.tally_accuracy");
  metrics_.embed_iterations = reg.gauge("embedder.smacof_iterations_total");
  metrics_.embed_cold_skips = reg.gauge("embedder.cold_runs_skipped_total");
  metrics_.embed_rebuilds = reg.gauge("embedder.matrix_rebuilds_total");
  metrics_.space_invalidations = reg.gauge("space.cache_invalidations_total");
  metrics_.space_rebuilds = reg.gauge("space.cache_rebuilds_total");
  metrics_.governor_failed_resumes = reg.gauge("governor.failed_resumes_total");
  metrics_.governor_random_resumes = reg.gauge("governor.random_resumes_total");
  metrics_.sampler_samples = reg.gauge("sampler.samples_total");
  metrics_.quarantined_readings = reg.counter("health.quarantined_readings");
  metrics_.qos_blind_periods = reg.counter("health.qos_blind_periods");
  metrics_.degraded_periods = reg.counter("health.degraded_periods");
  metrics_.degradation_transitions =
      reg.counter("health.degradation_transitions");
  metrics_.actuation_retries = reg.counter("actuation.retries");
  metrics_.degradation_state = reg.gauge("health.degradation_state");
  metrics_.sample_staleness = reg.gauge("health.sample_staleness");
  metrics_.actuation_abandoned = reg.gauge("actuation.abandoned_total");
  metrics_.faults_injected = reg.gauge("faults.faulted_samples_total");
}

void StayAwayRuntime::publish(const PeriodRecord& rec,
                              const std::vector<sim::VmId>& resumed) {
  metrics_.periods.inc();
  if (rec.violation_observed) metrics_.violations_observed.inc();
  if (rec.violation_predicted) metrics_.violations_predicted.inc();
  if (rec.new_representative) metrics_.new_representatives.inc();
  if (rec.action == ThrottleAction::Pause) metrics_.pauses.inc();
  if (rec.action == ThrottleAction::Resume) metrics_.resumes.inc();
  metrics_.beta.set(rec.beta);
  metrics_.stress.set(rec.stress);
  metrics_.representatives.set(static_cast<double>(reps_.size()));
  metrics_.violation_states.set(
      static_cast<double>(space_.violation_count()));
  metrics_.tally_accuracy.set(tally_.accuracy());
  metrics_.embed_iterations.set(
      static_cast<double>(embedder_.total_iterations()));
  metrics_.embed_cold_skips.set(
      static_cast<double>(embedder_.cold_runs_skipped()));
  metrics_.embed_rebuilds.set(static_cast<double>(embedder_.rebuilds()));
  metrics_.space_invalidations.set(
      static_cast<double>(space_.cache_invalidations()));
  metrics_.space_rebuilds.set(static_cast<double>(space_.cache_rebuilds()));
  metrics_.governor_failed_resumes.set(
      static_cast<double>(governor_.failed_resumes()));
  metrics_.governor_random_resumes.set(
      static_cast<double>(governor_.random_resumes()));
  metrics_.sampler_samples.set(static_cast<double>(sampler_.samples_taken()));
  if (rec.quarantined_dims > 0) {
    metrics_.quarantined_readings.inc(rec.quarantined_dims);
  }
  if (!rec.qos_visible) metrics_.qos_blind_periods.inc();
  if (rec.degradation != DegradationState::Normal) {
    metrics_.degraded_periods.inc();
  }
  if (transition_.has_value()) metrics_.degradation_transitions.inc();
  if (rec.actuation_retries > 0) {
    metrics_.actuation_retries.inc(rec.actuation_retries);
  }
  metrics_.degradation_state.set(static_cast<double>(rec.degradation));
  metrics_.sample_staleness.set(static_cast<double>(rec.max_staleness));
  metrics_.actuation_abandoned.set(
      static_cast<double>(actuation_abandoned_total_));
  if (faults_.has_value()) {
    metrics_.faults_injected.set(
        static_cast<double>(faults_->faulted_samples()));
  }

  if (observer_->sink() == nullptr) return;
  obs::Event e(rec.time, "period");
  e.with("period", obs::JsonValue(records_.size() - 1))
      .with("mode", obs::JsonValue(monitor::to_string(rec.mode)))
      .with("rep", obs::JsonValue(rec.representative))
      .with("new_rep", obs::JsonValue(rec.new_representative))
      .with("x", obs::JsonValue(rec.state.x))
      .with("y", obs::JsonValue(rec.state.y))
      .with("violation_observed", obs::JsonValue(rec.violation_observed))
      .with("violation_predicted", obs::JsonValue(rec.violation_predicted))
      .with("model_ready", obs::JsonValue(rec.model_ready))
      .with("action", obs::JsonValue(to_string(rec.action)))
      .with("batch_paused", obs::JsonValue(rec.batch_paused_after))
      .with("stress", obs::JsonValue(rec.stress))
      .with("beta", obs::JsonValue(rec.beta))
      .with("degradation", obs::JsonValue(to_string(rec.degradation)))
      .with("quarantined", obs::JsonValue(rec.quarantined_dims))
      .with("qos_visible", obs::JsonValue(rec.qos_visible));
  observer_->emit(e);

  if (transition_.has_value()) {
    obs::Event de(rec.time, "degradation");
    de.with("from", obs::JsonValue(to_string(transition_->first)))
        .with("to", obs::JsonValue(to_string(transition_->second)))
        .with("qos_blind_streak", obs::JsonValue(qos_blind_streak_))
        .with("max_staleness", obs::JsonValue(rec.max_staleness));
    observer_->emit(de);
  }
  if (rec.actuation_retries > 0 || rec.actuation_pending) {
    obs::Event ae(rec.time, "actuation");
    ae.with("reissued", obs::JsonValue(rec.actuation_retries))
        .with("pending", obs::JsonValue(rec.actuation_pending))
        .with("abandoned_total", obs::JsonValue(actuation_abandoned_total_));
    observer_->emit(ae);
  }

  if (rec.action == ThrottleAction::Pause) {
    obs::Event pe(rec.time, "pause");
    pe.with("reason", obs::JsonValue(rec.violation_observed
                                         ? "observed-violation"
                                         : "predicted-violation"))
        .with("targets", obs::JsonValue(throttled_.size()));
    observer_->emit(pe);
  } else if (rec.action == ThrottleAction::Resume) {
    obs::Event re(rec.time, "resume");
    auto reason = governor_.last_resume_reason();
    re.with("reason", obs::JsonValue(reason.has_value() ? to_string(*reason)
                                                        : "external"))
        .with("targets", obs::JsonValue(resumed.size()));
    observer_->emit(re);
  }
}

std::vector<sim::VmId> StayAwayRuntime::throttle_targets() const {
  // Rank active batch VMs by their demand footprint (CPU share + memory
  // share + bus share) and take the head of the ranking until it covers
  // the majority of the total batch footprint.
  struct Entry {
    sim::VmId id;
    double footprint;
  };
  std::vector<Entry> entries;
  double total = 0.0;
  const auto& spec = host_->spec();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    const auto& vm = host_->vm(id);
    if (!vm.present(host_->now())) continue;
    const auto& g = vm.last_allocation().granted;
    double f = g.cpu_cores / spec.cpu_cores + g.memory_mb / spec.memory_mb +
               g.membw_mbps / spec.membw_mbps;
    entries.push_back({id, f});
    total += f;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.footprint > b.footprint;
  });

  std::vector<sim::VmId> out;
  double covered = 0.0;
  for (const auto& e : entries) {
    out.push_back(e.id);
    covered += e.footprint;
    if (total > 0.0 && covered / total >= 0.75) break;
  }

  // §2.1 fallback: with no batch VM to throttle, sacrifice lower-priority
  // sensitive VMs (when the deployment opted in).
  if (out.empty() && config_.allow_sensitive_demotion) {
    int top = std::numeric_limits<int>::min();
    for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
      const auto& vm = host_->vm(id);
      if (vm.present(host_->now())) top = std::max(top, vm.priority());
    }
    for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
      const auto& vm = host_->vm(id);
      if (vm.present(host_->now()) && vm.priority() < top) out.push_back(id);
    }
  }
  return out;
}

void StayAwayRuntime::apply_action(ThrottleAction action,
                                   bool failsafe_all_batch) {
  // A fresh decision supersedes whatever the retry ledger was still
  // chasing; undelivered commands below seed a new ledger entry.
  double now = host_->now();
  switch (action) {
    case ThrottleAction::None:
      return;
    case ThrottleAction::Pause: {
      // throttled_ records intent — the pause set the loop believes is
      // stopped. deliver() records reality; the gap lands in pending_ and
      // reconcile_actuation() closes it with bounded retries.
      throttled_ = failsafe_all_batch ? all_present_batch()
                                      : throttle_targets();
      std::vector<sim::VmId> undelivered;
      for (sim::VmId id : throttled_) {
        if (!deliver(ThrottleAction::Pause, id, now)) undelivered.push_back(id);
      }
      batch_paused_ = true;
      failsafe_pause_ = failsafe_all_batch;
      pending_.reset();
      if (!undelivered.empty() && config_.degradation.enabled) {
        double backoff = static_cast<double>(
                             config_.degradation.actuation_backoff_periods) *
                         config_.period_s;
        pending_ = PendingActuation{ThrottleAction::Pause,
                                    std::move(undelivered), 1, now + backoff};
      }
      return;
    }
    case ThrottleAction::Resume: {
      // Resume exactly what this runtime paused (batch VMs and, under
      // §2.1 demotion, lower-priority sensitive VMs).
      std::vector<sim::VmId> undelivered;
      for (sim::VmId id : throttled_) {
        if (!deliver(ThrottleAction::Resume, id, now)) {
          undelivered.push_back(id);
        }
      }
      throttled_.clear();
      batch_paused_ = false;
      failsafe_pause_ = false;
      pending_.reset();
      if (!undelivered.empty() && config_.degradation.enabled) {
        double backoff = static_cast<double>(
                             config_.degradation.actuation_backoff_periods) *
                         config_.period_s;
        pending_ = PendingActuation{ThrottleAction::Resume,
                                    std::move(undelivered), 1, now + backoff};
      }
      return;
    }
  }
}

}  // namespace stayaway::core
