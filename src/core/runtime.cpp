#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::core {

double PredictionTally::accuracy() const {
  std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(t);
}

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config,
                                 monitor::SamplerOptions sampler_options)
    : StayAwayRuntime(host, probe, [&] {
        // Deprecated shim: the positional options win over config.sampler.
        config.sampler = std::move(sampler_options);
        return std::move(config);
      }()) {}

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config)
    : host_(&host),
      probe_(&probe),
      config_(config),
      sampler_(host, config.sampler),
      normalizer_(host.spec(), sampler_.layout()),
      reps_(config.dedup_epsilon, config.max_representatives),
      embedder_(config.embed_method, config.landmark_count,
                config.warm_skip_stress),
      modes_(/*max_step=*/std::sqrt(
                 static_cast<double>(sampler_.layout().dimension())),
             config.histogram_bins),
      predictor_(config.prediction_samples, config.majority_fraction,
                 config.min_mode_observations),
      governor_(config.governor, Rng(config.seed)),
      rng_(config.seed ^ 0x5eedF00dULL) {
  SA_REQUIRE(config.period_s > 0.0, "control period must be positive");
  if (config.hot_path_threads != 0) {
    util::set_hot_path_threads(config.hot_path_threads);
  }
}

void StayAwayRuntime::seed_template(const StateTemplate& t) {
  SA_REQUIRE(reps_.size() == 0, "templates must be seeded before any period");
  for (const auto& entry : t.entries) {
    SA_REQUIRE(entry.vector.size() == sampler_.layout().dimension(),
               "template dimension does not match the sampler layout");
    auto assignment = reps_.assign(entry.vector);
    if (assignment.is_new) {
      space_.add_state(entry.label);
    } else if (entry.label == StateLabel::Violation) {
      space_.mark_violation(assignment.representative);
    }
  }
  space_.sync_positions(embedder_.update(reps_));
}

StateTemplate StayAwayRuntime::export_template(
    std::string sensitive_app_name) const {
  StateTemplate t;
  t.sensitive_app = std::move(sensitive_app_name);
  t.entries.reserve(reps_.size());
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    t.entries.push_back({reps_.representative(i), space_.label(i)});
  }
  return t;
}

const PeriodRecord& StayAwayRuntime::on_period() {
  obs::Span period_span = observer_ != nullptr
                              ? observer_->span("period", host_->now())
                              : obs::Span{};
  PeriodRecord rec;
  rec.time = host_->now();
  rec.mode = monitor::detect_mode(*host_);

  // --- Mapping (§3.1): sample, normalize, dedup, embed. ---
  obs::Span sample_span = observer_ != nullptr
                              ? observer_->span("sample", rec.time)
                              : obs::Span{};
  monitor::Measurement m = sampler_.sample();
  std::vector<double> normalized = normalizer_.normalize(m);
  monitor::Assignment assignment = reps_.assign(normalized);
  sample_span.close();
  rec.representative = assignment.representative;
  rec.new_representative = assignment.is_new;
  obs::Span embed_span = observer_ != nullptr
                             ? observer_->span("embed", rec.time)
                             : obs::Span{};
  if (assignment.is_new) space_.add_state(StateLabel::Safe);
  space_.sync_positions(embedder_.update(reps_));
  embed_span.close();
  rec.state = space_.position(assignment.representative);
  rec.stress = embedder_.stress();

  // QoS label (§3.1: the application reports violations). Labels are
  // evidence based (see StateSpace): each period contributes one
  // (visit, violated?) observation to its representative.
  rec.violation_observed = probe_->violated();
  space_.observe_visit(assignment.representative, rec.violation_observed);

  // Trajectory observation: within-mode steps only; positions are looked
  // up fresh so re-embeddings cannot smear old coordinates into the model.
  if (prev_rep_.has_value() && prev_mode_ == rec.mode) {
    modes_.model(rec.mode).observe(space_.position(*prev_rep_), rec.state);
  }

  // --- Prediction (§3.2). ---
  obs::Span predict_span = observer_ != nullptr
                               ? observer_->span("predict", rec.time)
                               : obs::Span{};
  Prediction prediction = predictor_.predict(space_, modes_, rec.mode,
                                             rec.state, rng_);
  rec.model_ready = prediction.model_ready;
  rec.violation_predicted = prediction.violation_predicted;

  // Passive accuracy tally: last period's forecast ("will the execution
  // progress into the violation region?", §3.2) against this period's
  // realised outcome (did the mapped state actually enter the region?).
  // Only meaningful when forecasts are not acted upon.
  if (prev_predicted_.has_value()) {
    bool entered = space_.in_violation_region(rec.state);
    if (*prev_predicted_ && entered) ++tally_.true_positive;
    if (*prev_predicted_ && !entered) ++tally_.false_positive;
    if (!*prev_predicted_ && entered) ++tally_.false_negative;
    if (!*prev_predicted_ && !entered) ++tally_.true_negative;
  }
  prev_predicted_ = prediction.model_ready
                        ? std::optional<bool>(prediction.violation_predicted)
                        : std::nullopt;
  predict_span.close();

  // --- Action (§3.3). In passive mode the governor is not consulted at
  // all: a decision that is never applied must not advance its state
  // (pause ledger, beta chain).
  obs::Span act_span = observer_ != nullptr ? observer_->span("act", rec.time)
                                            : obs::Span{};
  ThrottleAction action = ThrottleAction::None;
  if (config_.actions_enabled) {
    action = governor_.decide(rec.time, batch_paused_, rec.violation_predicted,
                              rec.violation_observed, rec.state);
  }
  // The set a Resume releases is cleared by apply_action — keep it for
  // the event stream.
  std::vector<sim::VmId> resumed;
  if (action == ThrottleAction::Resume) resumed = throttled_;
  apply_action(action);
  act_span.close();
  rec.action = action;
  rec.batch_paused_after = batch_paused_;
  rec.beta = governor_.beta();

  prev_rep_ = assignment.representative;
  prev_mode_ = rec.mode;
  records_.push_back(rec);
  period_span.close();
  if (observer_ != nullptr) publish(records_.back(), resumed);
  return records_.back();
}

void StayAwayRuntime::set_observer(obs::Observer* observer) {
  observer_ = observer;
  if (observer_ == nullptr) {
    metrics_ = LoopMetrics{};
    return;
  }
  obs::MetricsRegistry& reg = observer_->metrics();
  metrics_.periods = reg.counter("loop.periods");
  metrics_.violations_observed = reg.counter("loop.violations_observed");
  metrics_.violations_predicted = reg.counter("loop.violations_predicted");
  metrics_.new_representatives = reg.counter("loop.new_representatives");
  metrics_.pauses = reg.counter("loop.pauses");
  metrics_.resumes = reg.counter("loop.resumes");
  metrics_.beta = reg.gauge("governor.beta");
  metrics_.stress = reg.gauge("embedder.stress");
  metrics_.representatives = reg.gauge("map.representatives");
  metrics_.violation_states = reg.gauge("map.violation_states");
  metrics_.tally_accuracy = reg.gauge("predictor.tally_accuracy");
  metrics_.embed_iterations = reg.gauge("embedder.smacof_iterations_total");
  metrics_.embed_cold_skips = reg.gauge("embedder.cold_runs_skipped_total");
  metrics_.embed_rebuilds = reg.gauge("embedder.matrix_rebuilds_total");
  metrics_.space_invalidations = reg.gauge("space.cache_invalidations_total");
  metrics_.space_rebuilds = reg.gauge("space.cache_rebuilds_total");
  metrics_.governor_failed_resumes = reg.gauge("governor.failed_resumes_total");
  metrics_.governor_random_resumes = reg.gauge("governor.random_resumes_total");
  metrics_.sampler_samples = reg.gauge("sampler.samples_total");
}

void StayAwayRuntime::publish(const PeriodRecord& rec,
                              const std::vector<sim::VmId>& resumed) {
  metrics_.periods.inc();
  if (rec.violation_observed) metrics_.violations_observed.inc();
  if (rec.violation_predicted) metrics_.violations_predicted.inc();
  if (rec.new_representative) metrics_.new_representatives.inc();
  if (rec.action == ThrottleAction::Pause) metrics_.pauses.inc();
  if (rec.action == ThrottleAction::Resume) metrics_.resumes.inc();
  metrics_.beta.set(rec.beta);
  metrics_.stress.set(rec.stress);
  metrics_.representatives.set(static_cast<double>(reps_.size()));
  metrics_.violation_states.set(
      static_cast<double>(space_.violation_count()));
  metrics_.tally_accuracy.set(tally_.accuracy());
  metrics_.embed_iterations.set(
      static_cast<double>(embedder_.total_iterations()));
  metrics_.embed_cold_skips.set(
      static_cast<double>(embedder_.cold_runs_skipped()));
  metrics_.embed_rebuilds.set(static_cast<double>(embedder_.rebuilds()));
  metrics_.space_invalidations.set(
      static_cast<double>(space_.cache_invalidations()));
  metrics_.space_rebuilds.set(static_cast<double>(space_.cache_rebuilds()));
  metrics_.governor_failed_resumes.set(
      static_cast<double>(governor_.failed_resumes()));
  metrics_.governor_random_resumes.set(
      static_cast<double>(governor_.random_resumes()));
  metrics_.sampler_samples.set(static_cast<double>(sampler_.samples_taken()));

  if (observer_->sink() == nullptr) return;
  obs::Event e(rec.time, "period");
  e.with("period", obs::JsonValue(records_.size() - 1))
      .with("mode", obs::JsonValue(monitor::to_string(rec.mode)))
      .with("rep", obs::JsonValue(rec.representative))
      .with("new_rep", obs::JsonValue(rec.new_representative))
      .with("x", obs::JsonValue(rec.state.x))
      .with("y", obs::JsonValue(rec.state.y))
      .with("violation_observed", obs::JsonValue(rec.violation_observed))
      .with("violation_predicted", obs::JsonValue(rec.violation_predicted))
      .with("model_ready", obs::JsonValue(rec.model_ready))
      .with("action", obs::JsonValue(to_string(rec.action)))
      .with("batch_paused", obs::JsonValue(rec.batch_paused_after))
      .with("stress", obs::JsonValue(rec.stress))
      .with("beta", obs::JsonValue(rec.beta));
  observer_->emit(e);

  if (rec.action == ThrottleAction::Pause) {
    obs::Event pe(rec.time, "pause");
    pe.with("reason", obs::JsonValue(rec.violation_observed
                                         ? "observed-violation"
                                         : "predicted-violation"))
        .with("targets", obs::JsonValue(throttled_.size()));
    observer_->emit(pe);
  } else if (rec.action == ThrottleAction::Resume) {
    obs::Event re(rec.time, "resume");
    auto reason = governor_.last_resume_reason();
    re.with("reason", obs::JsonValue(reason.has_value() ? to_string(*reason)
                                                        : "external"))
        .with("targets", obs::JsonValue(resumed.size()));
    observer_->emit(re);
  }
}

std::vector<sim::VmId> StayAwayRuntime::throttle_targets() const {
  // Rank active batch VMs by their demand footprint (CPU share + memory
  // share + bus share) and take the head of the ranking until it covers
  // the majority of the total batch footprint.
  struct Entry {
    sim::VmId id;
    double footprint;
  };
  std::vector<Entry> entries;
  double total = 0.0;
  const auto& spec = host_->spec();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    const auto& vm = host_->vm(id);
    if (!vm.present(host_->now())) continue;
    const auto& g = vm.last_allocation().granted;
    double f = g.cpu_cores / spec.cpu_cores + g.memory_mb / spec.memory_mb +
               g.membw_mbps / spec.membw_mbps;
    entries.push_back({id, f});
    total += f;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.footprint > b.footprint;
  });

  std::vector<sim::VmId> out;
  double covered = 0.0;
  for (const auto& e : entries) {
    out.push_back(e.id);
    covered += e.footprint;
    if (total > 0.0 && covered / total >= 0.75) break;
  }

  // §2.1 fallback: with no batch VM to throttle, sacrifice lower-priority
  // sensitive VMs (when the deployment opted in).
  if (out.empty() && config_.allow_sensitive_demotion) {
    int top = std::numeric_limits<int>::min();
    for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
      const auto& vm = host_->vm(id);
      if (vm.present(host_->now())) top = std::max(top, vm.priority());
    }
    for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
      const auto& vm = host_->vm(id);
      if (vm.present(host_->now()) && vm.priority() < top) out.push_back(id);
    }
  }
  return out;
}

void StayAwayRuntime::apply_action(ThrottleAction action) {
  switch (action) {
    case ThrottleAction::None:
      return;
    case ThrottleAction::Pause: {
      throttled_ = throttle_targets();
      for (sim::VmId id : throttled_) host_->vm(id).pause();
      batch_paused_ = true;
      return;
    }
    case ThrottleAction::Resume: {
      // Resume exactly what this runtime paused (batch VMs and, under
      // §2.1 demotion, lower-priority sensitive VMs).
      for (sim::VmId id : throttled_) host_->vm(id).resume();
      throttled_.clear();
      batch_paused_ = false;
      return;
    }
  }
}

}  // namespace stayaway::core
