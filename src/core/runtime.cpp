#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::core {

double PredictionTally::accuracy() const {
  std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(t);
}

StayAwayRuntime::StayAwayRuntime(sim::SimHost& host, const sim::QosProbe& probe,
                                 StayAwayConfig config,
                                 monitor::SamplerOptions sampler_options)
    : host_(&host),
      probe_(&probe),
      config_(config),
      sampler_(host, std::move(sampler_options)),
      normalizer_(host.spec(), sampler_.layout()),
      reps_(config.dedup_epsilon, config.max_representatives),
      embedder_(config.embed_method, config.landmark_count,
                config.warm_skip_stress),
      modes_(/*max_step=*/std::sqrt(
                 static_cast<double>(sampler_.layout().dimension())),
             config.histogram_bins),
      predictor_(config.prediction_samples, config.majority_fraction,
                 config.min_mode_observations),
      governor_(config.governor, Rng(config.seed)),
      rng_(config.seed ^ 0x5eedF00dULL) {
  SA_REQUIRE(config.period_s > 0.0, "control period must be positive");
  if (config.hot_path_threads != 0) {
    util::set_hot_path_threads(config.hot_path_threads);
  }
}

void StayAwayRuntime::seed_template(const StateTemplate& t) {
  SA_REQUIRE(reps_.size() == 0, "templates must be seeded before any period");
  for (const auto& entry : t.entries) {
    SA_REQUIRE(entry.vector.size() == sampler_.layout().dimension(),
               "template dimension does not match the sampler layout");
    auto assignment = reps_.assign(entry.vector);
    if (assignment.is_new) {
      space_.add_state(entry.label);
    } else if (entry.label == StateLabel::Violation) {
      space_.mark_violation(assignment.representative);
    }
  }
  space_.sync_positions(embedder_.update(reps_));
}

StateTemplate StayAwayRuntime::export_template(
    std::string sensitive_app_name) const {
  StateTemplate t;
  t.sensitive_app = std::move(sensitive_app_name);
  t.entries.reserve(reps_.size());
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    t.entries.push_back({reps_.representative(i), space_.label(i)});
  }
  return t;
}

const PeriodRecord& StayAwayRuntime::on_period() {
  PeriodRecord rec;
  rec.time = host_->now();
  rec.mode = monitor::detect_mode(*host_);

  // --- Mapping (§3.1): sample, normalize, dedup, embed. ---
  monitor::Measurement m = sampler_.sample();
  std::vector<double> normalized = normalizer_.normalize(m);
  monitor::Assignment assignment = reps_.assign(normalized);
  rec.representative = assignment.representative;
  rec.new_representative = assignment.is_new;
  if (assignment.is_new) space_.add_state(StateLabel::Safe);
  space_.sync_positions(embedder_.update(reps_));
  rec.state = space_.position(assignment.representative);
  rec.stress = embedder_.stress();

  // QoS label (§3.1: the application reports violations). Labels are
  // evidence based (see StateSpace): each period contributes one
  // (visit, violated?) observation to its representative.
  rec.violation_observed = probe_->violated();
  space_.observe_visit(assignment.representative, rec.violation_observed);

  // Trajectory observation: within-mode steps only; positions are looked
  // up fresh so re-embeddings cannot smear old coordinates into the model.
  if (prev_rep_.has_value() && prev_mode_ == rec.mode) {
    modes_.model(rec.mode).observe(space_.position(*prev_rep_), rec.state);
  }

  // --- Prediction (§3.2). ---
  Prediction prediction = predictor_.predict(space_, modes_, rec.mode,
                                             rec.state, rng_);
  rec.model_ready = prediction.model_ready;
  rec.violation_predicted = prediction.violation_predicted;

  // Passive accuracy tally: last period's forecast ("will the execution
  // progress into the violation region?", §3.2) against this period's
  // realised outcome (did the mapped state actually enter the region?).
  // Only meaningful when forecasts are not acted upon.
  if (prev_predicted_.has_value()) {
    bool entered = space_.in_violation_region(rec.state);
    if (*prev_predicted_ && entered) ++tally_.true_positive;
    if (*prev_predicted_ && !entered) ++tally_.false_positive;
    if (!*prev_predicted_ && entered) ++tally_.false_negative;
    if (!*prev_predicted_ && !entered) ++tally_.true_negative;
  }
  prev_predicted_ = prediction.model_ready
                        ? std::optional<bool>(prediction.violation_predicted)
                        : std::nullopt;

  // --- Action (§3.3). In passive mode the governor is not consulted at
  // all: a decision that is never applied must not advance its state
  // (pause ledger, beta chain).
  ThrottleAction action = ThrottleAction::None;
  if (config_.actions_enabled) {
    action = governor_.decide(rec.time, batch_paused_, rec.violation_predicted,
                              rec.violation_observed, rec.state);
  }
  apply_action(action);
  rec.action = action;
  rec.batch_paused_after = batch_paused_;
  rec.beta = governor_.beta();

  prev_rep_ = assignment.representative;
  prev_mode_ = rec.mode;
  records_.push_back(rec);
  return records_.back();
}

std::vector<sim::VmId> StayAwayRuntime::throttle_targets() const {
  // Rank active batch VMs by their demand footprint (CPU share + memory
  // share + bus share) and take the head of the ranking until it covers
  // the majority of the total batch footprint.
  struct Entry {
    sim::VmId id;
    double footprint;
  };
  std::vector<Entry> entries;
  double total = 0.0;
  const auto& spec = host_->spec();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    const auto& vm = host_->vm(id);
    if (!vm.present(host_->now())) continue;
    const auto& g = vm.last_allocation().granted;
    double f = g.cpu_cores / spec.cpu_cores + g.memory_mb / spec.memory_mb +
               g.membw_mbps / spec.membw_mbps;
    entries.push_back({id, f});
    total += f;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.footprint > b.footprint;
  });

  std::vector<sim::VmId> out;
  double covered = 0.0;
  for (const auto& e : entries) {
    out.push_back(e.id);
    covered += e.footprint;
    if (total > 0.0 && covered / total >= 0.75) break;
  }

  // §2.1 fallback: with no batch VM to throttle, sacrifice lower-priority
  // sensitive VMs (when the deployment opted in).
  if (out.empty() && config_.allow_sensitive_demotion) {
    int top = std::numeric_limits<int>::min();
    for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
      const auto& vm = host_->vm(id);
      if (vm.present(host_->now())) top = std::max(top, vm.priority());
    }
    for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
      const auto& vm = host_->vm(id);
      if (vm.present(host_->now()) && vm.priority() < top) out.push_back(id);
    }
  }
  return out;
}

void StayAwayRuntime::apply_action(ThrottleAction action) {
  switch (action) {
    case ThrottleAction::None:
      return;
    case ThrottleAction::Pause: {
      throttled_ = throttle_targets();
      for (sim::VmId id : throttled_) host_->vm(id).pause();
      batch_paused_ = true;
      return;
    }
    case ThrottleAction::Resume: {
      // Resume exactly what this runtime paused (batch VMs and, under
      // §2.1 demotion, lower-priority sensitive VMs).
      for (sim::VmId id : throttled_) host_->vm(id).resume();
      throttled_.clear();
      batch_paused_ = false;
      return;
    }
  }
}

}  // namespace stayaway::core
