#include "core/embedder.hpp"

#include <algorithm>

#include "mds/distance.hpp"
#include "mds/incremental.hpp"
#include "mds/landmark.hpp"
#include "mds/pca.hpp"
#include "mds/procrustes.hpp"
#include "mds/smacof.hpp"
#include "util/check.hpp"

namespace stayaway::core {

MapEmbedder::MapEmbedder(EmbedMethod method, std::size_t landmark_count)
    : method_(method), landmark_count_(std::max<std::size_t>(landmark_count, 3)) {}

const mds::Embedding& MapEmbedder::update(
    const monitor::RepresentativeSet& reps) {
  if (reps.size() == positions_.size()) return positions_;
  SA_REQUIRE(reps.size() > positions_.size(),
             "representative sets only ever grow");
  embed(reps);
  return positions_;
}

void MapEmbedder::embed(const monitor::RepresentativeSet& reps) {
  const auto& vectors = reps.all();
  const std::size_t n = vectors.size();
  if (n == 1) {
    positions_ = {mds::Point2{}};
    stress_ = 0.0;
    return;
  }

  linalg::Matrix delta = mds::distance_matrix(vectors);

  switch (method_) {
    case EmbedMethod::Pca: {
      positions_ = mds::pca_embed(vectors);
      stress_ = mds::normalized_stress(delta, positions_);
      return;
    }
    case EmbedMethod::Landmark: {
      if (n > landmark_count_) {
        mds::Embedding prev = positions_;
        positions_ = mds::landmark_embed(vectors, landmark_count_);
        stress_ = mds::normalized_stress(delta, positions_);
        if (prev.size() >= 2) {
          mds::Embedding head(positions_.begin(),
                              positions_.begin() +
                                  static_cast<std::ptrdiff_t>(prev.size()));
          auto align = mds::procrustes_align(head, prev,
                                             {.allow_reflection = true,
                                              .allow_scaling = false});
          positions_ = align.transform.apply(positions_);
        }
        return;
      }
      // Too few points for landmarks: fall through to full SMACOF.
      [[fallthrough]];
    }
    case EmbedMethod::SmacofCold:
    case EmbedMethod::SmacofWarm: {
      mds::Embedding prev = positions_;
      mds::SmacofResult res = mds::smacof(delta);  // classical-MDS seed
      total_iterations_ += res.iterations;
      if (method_ == EmbedMethod::SmacofWarm && !prev.empty()) {
        // Warm seed: old points keep their spot; each new one is placed
        // against everything already positioned. Warm starts converge in
        // a couple of iterations but can inherit a local minimum, so keep
        // whichever of (warm, cold) configuration has lower stress.
        mds::SmacofOptions opts;
        mds::Embedding init = prev;
        for (std::size_t i = prev.size(); i < n; ++i) {
          std::vector<double> d(i, 0.0);
          for (std::size_t j = 0; j < i; ++j) d[j] = delta.at(i, j);
          init.push_back(mds::place_point(init, d));
        }
        opts.initial = std::move(init);
        mds::SmacofResult warm = mds::smacof(delta, opts);
        total_iterations_ += warm.iterations;
        if (warm.stress < res.stress) res = std::move(warm);
      }
      positions_ = std::move(res.points);
      stress_ = res.stress;
      if (method_ == EmbedMethod::SmacofWarm && prev.size() >= 2) {
        // Whichever solution won, rotate/flip it back onto the previous
        // layout so directions in the map stay meaningful across periods.
        mds::Embedding head(positions_.begin(),
                            positions_.begin() +
                                static_cast<std::ptrdiff_t>(prev.size()));
        auto align = mds::procrustes_align(head, prev,
                                           {.allow_reflection = true,
                                            .allow_scaling = false});
        positions_ = align.transform.apply(positions_);
      }
      return;
    }
  }
}

}  // namespace stayaway::core
