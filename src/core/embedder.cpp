#include "core/embedder.hpp"

#include <algorithm>

#include "mds/distance.hpp"
#include "mds/incremental.hpp"
#include "mds/landmark.hpp"
#include "mds/pca.hpp"
#include "mds/procrustes.hpp"
#include "mds/smacof.hpp"
#include "util/check.hpp"

namespace stayaway::core {

MapEmbedder::MapEmbedder(EmbedMethod method, std::size_t landmark_count,
                         double warm_skip_stress)
    : method_(method),
      landmark_count_(std::max<std::size_t>(landmark_count, 3)),
      warm_skip_stress_(warm_skip_stress) {
  SA_REQUIRE(warm_skip_stress >= 0.0, "stress bound must be non-negative");
}

const mds::Embedding& MapEmbedder::update(
    const monitor::RepresentativeSet& reps) {
  if (reps.size() == positions_.size()) return positions_;
  if (reps.size() < positions_.size()) {
    // The set was reset or compacted (e.g. template reuse loading a
    // smaller map). The old layout and its dissimilarity matrix describe
    // points that no longer exist: drop them and re-embed from scratch.
    positions_.clear();
    delta_ = linalg::Matrix();
    ++rebuilds_;
  }
  embed(reps);
  return positions_;
}

const linalg::Matrix& MapEmbedder::refresh_delta(
    const std::vector<std::vector<double>>& vectors) {
  if (delta_.rows() == 0) {
    delta_ = mds::distance_matrix(vectors);
  } else {
    delta_ = mds::extended_distance_matrix(delta_, vectors);
  }
  return delta_;
}

void MapEmbedder::embed(const monitor::RepresentativeSet& reps) {
  const auto& vectors = reps.all();
  const std::size_t n = vectors.size();
  if (n == 1) {
    positions_ = {mds::Point2{}};
    stress_ = 0.0;
    return;
  }

  const linalg::Matrix& delta = refresh_delta(vectors);

  switch (method_) {
    case EmbedMethod::Pca: {
      positions_ = mds::pca_embed(vectors);
      stress_ = mds::normalized_stress(delta, positions_);
      return;
    }
    case EmbedMethod::Landmark: {
      if (n > landmark_count_) {
        mds::Embedding prev = positions_;
        positions_ = mds::landmark_embed(vectors, landmark_count_);
        stress_ = mds::normalized_stress(delta, positions_);
        if (prev.size() >= 2) {
          mds::Embedding head(positions_.begin(),
                              positions_.begin() +
                                  static_cast<std::ptrdiff_t>(prev.size()));
          auto align = mds::procrustes_align(head, prev,
                                             {.allow_reflection = true,
                                              .allow_scaling = false});
          positions_ = align.transform.apply(positions_);
        }
        return;
      }
      // Too few points for landmarks: fall through to full SMACOF.
      [[fallthrough]];
    }
    case EmbedMethod::SmacofCold:
    case EmbedMethod::SmacofWarm: {
      mds::Embedding prev = positions_;
      mds::SmacofResult res;
      if (method_ == EmbedMethod::SmacofWarm && !prev.empty()) {
        // Warm seed: old points keep their spot; each new one is placed
        // against everything already positioned. Warm starts converge in
        // a couple of iterations but can inherit a local minimum, so
        // unless the warm stress already meets the skip bound a cold run
        // (classical-MDS seed) verifies it and the lower-stress
        // configuration wins (ties go to cold, as historically).
        mds::SmacofOptions opts;
        mds::Embedding init = prev;
        for (std::size_t i = prev.size(); i < n; ++i) {
          std::vector<double> d(i, 0.0);
          for (std::size_t j = 0; j < i; ++j) d[j] = delta.at(i, j);
          init.push_back(mds::place_point(init, d));
        }
        opts.initial = std::move(init);
        res = mds::smacof(delta, opts);
        total_iterations_ += res.iterations;
        if (warm_skip_stress_ > 0.0 && res.stress <= warm_skip_stress_) {
          ++cold_runs_skipped_;
        } else {
          mds::SmacofResult cold = mds::smacof(delta);
          total_iterations_ += cold.iterations;
          if (cold.stress <= res.stress) res = std::move(cold);
        }
      } else {
        res = mds::smacof(delta);  // classical-MDS seed
        total_iterations_ += res.iterations;
      }
      positions_ = std::move(res.points);
      stress_ = res.stress;
      if (method_ == EmbedMethod::SmacofWarm && prev.size() >= 2) {
        // Whichever solution won, rotate/flip it back onto the previous
        // layout so directions in the map stay meaningful across periods.
        mds::Embedding head(positions_.begin(),
                            positions_.begin() +
                                static_cast<std::ptrdiff_t>(prev.size()));
        auto align = mds::procrustes_align(head, prev,
                                           {.allow_reflection = true,
                                            .allow_scaling = false});
        positions_ = align.transform.apply(positions_);
      }
      return;
    }
  }
}

}  // namespace stayaway::core
