#include "core/embedder.hpp"

#include <algorithm>
#include <cmath>

#include "mds/distance.hpp"
#include "mds/incremental.hpp"
#include "mds/landmark.hpp"
#include "mds/pca.hpp"
#include "mds/procrustes.hpp"
#include "mds/smacof.hpp"
#include "util/check.hpp"

namespace stayaway::core {

namespace {

// SA_INVARIANT audits (paranoid tier, see DESIGN.md §11). These are the
// mathematical contracts the incremental hot path must preserve: growing
// the dissimilarity matrix row-by-row must keep it a valid dissimilarity
// matrix, and every layout handed to the state space must be finite.

bool is_dissimilarity_matrix(const linalg::Matrix& m) {
  if (m.rows() != m.cols()) return false;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (m.at(i, i) != 0.0) return false;
    for (std::size_t j = i + 1; j < m.cols(); ++j) {
      double d = m.at(i, j);
      if (!(std::isfinite(d) && d >= 0.0) || d != m.at(j, i)) return false;
    }
  }
  return true;
}

bool all_finite(const mds::Embedding& points) {
  for (const auto& p : points) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
  }
  return true;
}

}  // namespace

MapEmbedder::MapEmbedder(EmbedMethod method, std::size_t landmark_count,
                         double warm_skip_stress,
                         double landmark_refresh_factor)
    : method_(method),
      landmark_count_(std::max<std::size_t>(landmark_count, 3)),
      warm_skip_stress_(warm_skip_stress),
      landmark_refresh_factor_(landmark_refresh_factor) {
  SA_REQUIRE(warm_skip_stress >= 0.0, "stress bound must be non-negative");
  SA_REQUIRE(landmark_refresh_factor >= 1.0,
             "landmark refresh factor must be at least 1");
}

const mds::Embedding& MapEmbedder::update(
    const monitor::RepresentativeSet& reps) {
  if (reps.size() == positions_.size()) return positions_;
  if (reps.size() < positions_.size()) {
    // The set was reset or compacted (e.g. template reuse loading a
    // smaller map). The old layout and its dissimilarity matrix describe
    // points that no longer exist: drop them and re-embed from scratch.
    positions_.clear();
    delta_ = linalg::Matrix();
    landmark_model_.reset();
    landmark_vectors_.clear();
    landmark_align_ = mds::ProcrustesTransform{};
    last_fit_size_ = 0;
    ++rebuilds_;
  }
  embed(reps);
  SA_CHECK(std::isfinite(stress_) && stress_ >= 0.0,
           "normalized stress must be finite and non-negative");
  SA_INVARIANT(all_finite(positions_),
               "every embedded coordinate must be finite");
  return positions_;
}

const linalg::Matrix& MapEmbedder::refresh_delta(
    const std::vector<std::vector<double>>& vectors) {
  if (delta_.rows() == 0) {
    delta_ = mds::distance_matrix(vectors);
  } else {
    delta_ = mds::extended_distance_matrix(delta_, vectors);
  }
  SA_INVARIANT(is_dissimilarity_matrix(delta_),
               "incremental growth must keep the dissimilarity matrix "
               "symmetric, zero-diagonal, finite and non-negative");
  return delta_;
}

void MapEmbedder::embed(const monitor::RepresentativeSet& reps) {
  const auto& vectors = reps.all();
  const std::size_t n = vectors.size();
  if (n == 1) {
    positions_ = {mds::Point2{}};
    stress_ = 0.0;
    return;
  }

  if (method_ == EmbedMethod::LandmarkIncremental && n > landmark_count_) {
    // Streaming regime: never touch the O(n^2) dissimilarity matrix.
    embed_landmark_incremental(vectors);
    return;
  }

  const linalg::Matrix& delta = refresh_delta(vectors);

  switch (method_) {
    case EmbedMethod::Pca: {
      positions_ = mds::pca_embed(vectors);
      stress_ = mds::normalized_stress(delta, positions_);
      return;
    }
    case EmbedMethod::Landmark: {
      if (n > landmark_count_) {
        mds::Embedding prev = positions_;
        positions_ = mds::landmark_embed(vectors, landmark_count_);
        stress_ = mds::normalized_stress(delta, positions_);
        if (prev.size() >= 2) {
          mds::Embedding head(positions_.begin(),
                              positions_.begin() +
                                  static_cast<std::ptrdiff_t>(prev.size()));
          auto align = mds::procrustes_align(head, prev,
                                             {.allow_reflection = true,
                                              .allow_scaling = false});
          positions_ = align.transform.apply(positions_);
        }
        return;
      }
      // Too few points for landmarks: fall through to full SMACOF.
      [[fallthrough]];
    }
    // Below the landmark count the incremental mode embeds exactly like
    // SmacofWarm — a handful of points is cheap to solve exactly, and the
    // warm seed keeps the map stable until the streaming regime takes
    // over.
    case EmbedMethod::LandmarkIncremental:
    case EmbedMethod::SmacofCold:
    case EmbedMethod::SmacofWarm: {
      const bool warm = method_ == EmbedMethod::SmacofWarm ||
                        method_ == EmbedMethod::LandmarkIncremental;
      mds::Embedding prev = positions_;
      mds::SmacofResult res;
      if (warm && !prev.empty()) {
        // Warm seed: old points keep their spot; each new one is placed
        // against everything already positioned. Warm starts converge in
        // a couple of iterations but can inherit a local minimum, so
        // unless the warm stress already meets the skip bound a cold run
        // (classical-MDS seed) verifies it and the lower-stress
        // configuration wins (ties go to cold, as historically).
        mds::SmacofOptions opts;
        mds::Embedding init = prev;
        for (std::size_t i = prev.size(); i < n; ++i) {
          std::vector<double> d(i, 0.0);
          for (std::size_t j = 0; j < i; ++j) d[j] = delta.at(i, j);
          init.push_back(mds::place_point(init, d));
        }
        opts.initial = std::move(init);
        res = mds::smacof(delta, opts);
        total_iterations_ += res.iterations;
        if (warm_skip_stress_ > 0.0 && res.stress <= warm_skip_stress_) {
          ++cold_runs_skipped_;
        } else {
          const double warm_stress = res.stress;
          mds::SmacofResult cold = mds::smacof(delta);
          total_iterations_ += cold.iterations;
          if (cold.stress <= res.stress) res = std::move(cold);
          // Stress monotonicity: keeping the better of the two solves can
          // never end up above the warm-started stress.
          SA_CHECK(res.stress <= warm_stress,
                   "warm/cold selection must not increase stress");
        }
      } else {
        res = mds::smacof(delta);  // classical-MDS seed
        total_iterations_ += res.iterations;
      }
      positions_ = std::move(res.points);
      stress_ = res.stress;
      if (warm && prev.size() >= 2) {
        // Whichever solution won, rotate/flip it back onto the previous
        // layout so directions in the map stay meaningful across periods.
        mds::Embedding head(positions_.begin(),
                            positions_.begin() +
                                static_cast<std::ptrdiff_t>(prev.size()));
        auto align = mds::procrustes_align(head, prev,
                                           {.allow_reflection = true,
                                            .allow_scaling = false});
        positions_ = align.transform.apply(positions_);
      }
      return;
    }
  }
}

void MapEmbedder::save_state(util::StateWriter& w) const {
  SA_REQUIRE(checkpointable(),
             "save_state on a landmark-incremental embedder");
  std::vector<double> xs, ys;
  xs.reserve(positions_.size());
  ys.reserve(positions_.size());
  for (const auto& p : positions_) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  w.reals("positions_x", xs);
  w.reals("positions_y", ys);
  w.real("stress", stress_);
  w.u64("total_iterations", total_iterations_);
  w.u64("cold_runs_skipped", cold_runs_skipped_);
  w.u64("rebuilds", rebuilds_);
}

void MapEmbedder::load_state(util::StateReader& r,
                             const std::vector<std::vector<double>>& vectors) {
  SA_REQUIRE(checkpointable(),
             "load_state on a landmark-incremental embedder");
  std::vector<double> xs = r.reals("positions_x");
  std::vector<double> ys = r.reals("positions_y");
  if (xs.size() != ys.size() || xs.size() != vectors.size()) {
    throw util::StateCodecError(
        "embedder state: position/representative count mismatch");
  }
  positions_.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) positions_[i] = {xs[i], ys[i]};
  stress_ = r.real("stress");
  total_iterations_ = static_cast<std::size_t>(r.u64("total_iterations"));
  cold_runs_skipped_ = static_cast<std::size_t>(r.u64("cold_runs_skipped"));
  rebuilds_ = static_cast<std::size_t>(r.u64("rebuilds"));
  // Rebuild the dissimilarity cache to the state the incremental growth
  // would have left it in: empty below two points (embed() short-circuits
  // there without building one), the full matrix otherwise.
  delta_ = vectors.size() >= 2 ? mds::distance_matrix(vectors)
                               : linalg::Matrix();
}

mds::Point2 MapEmbedder::place_against_landmarks(
    const std::vector<double>& v) const {
  std::vector<double> d(landmark_vectors_.size(), 0.0);
  for (std::size_t j = 0; j < landmark_vectors_.size(); ++j) {
    d[j] = linalg::euclidean_distance(landmark_vectors_[j], v);
  }
  return landmark_align_.apply(landmark_model_->place(d));
}

void MapEmbedder::embed_landmark_incremental(
    const std::vector<std::vector<double>>& vectors) {
  const std::size_t n = vectors.size();
  const bool refit =
      !landmark_model_.has_value() ||
      static_cast<double>(n) >=
          landmark_refresh_factor_ * static_cast<double>(last_fit_size_);
  if (!refit) {
    // O(new * k): triangulate only the points that arrived since the last
    // update. Existing positions (and the stress estimate) are untouched
    // — the contract the trajectory model and the flatness bench rely on.
    for (std::size_t i = positions_.size(); i < n; ++i) {
      positions_.push_back(place_against_landmarks(vectors[i]));
    }
    return;
  }
  // Refit: new maxmin landmark selection and exact classical-MDS solve
  // over k points, then every point re-placed. Triggered geometrically
  // (n >= factor * last fit size), so total refit work is O(n) amortized.
  mds::Embedding prev = positions_;
  landmark_model_ = mds::fit_landmark_mds(vectors, landmark_count_);
  landmark_vectors_.clear();
  landmark_vectors_.reserve(landmark_model_->landmark_indices.size());
  for (std::size_t idx : landmark_model_->landmark_indices) {
    landmark_vectors_.push_back(vectors[idx]);
  }
  landmark_align_ = mds::ProcrustesTransform{};
  positions_.clear();
  positions_.reserve(n);
  for (const auto& v : vectors) {
    positions_.push_back(place_against_landmarks(v));
  }
  if (prev.size() >= 2) {
    mds::Embedding head(
        positions_.begin(),
        positions_.begin() + static_cast<std::ptrdiff_t>(prev.size()));
    auto align = mds::procrustes_align(
        head, prev, {.allow_reflection = true, .allow_scaling = false});
    landmark_align_ = align.transform;
    positions_ = align.transform.apply(positions_);
  }
  if (last_fit_size_ > 0) ++rebuilds_;
  last_fit_size_ = n;
  // Stress audited over the landmark subset only — O(k^2), the full
  // matrix never exists in this regime.
  mds::Embedding landmark_positions;
  landmark_positions.reserve(landmark_model_->landmark_indices.size());
  for (std::size_t idx : landmark_model_->landmark_indices) {
    landmark_positions.push_back(positions_[idx]);
  }
  stress_ = mds::normalized_stress(mds::distance_matrix(landmark_vectors_),
                                   landmark_positions);
  delta_ = linalg::Matrix();  // drop any small-regime matrix for good
}

}  // namespace stayaway::core
