// Versioned checkpoint envelope for one host's control loop (DESIGN.md
// §17). A checkpoint is the pipeline's complete period-boundary state —
// the record history plus every stage, the actuation journal, the fault
// injector and the degradation machine — framed so a restore is either
// exact or a loud, typed failure:
//
//   stayaway-checkpoint v2        version header
//   records = <n>                 } body: fixed-order `key = value`
//   ...                           } lines via util::StateWriter
//   checksum = <fnv1a64(body)>    integrity trailer
//
// Doubles round-trip through format_double_exact, so restore-then-run
// reproduces the uninterrupted run byte for byte (the golden test in
// tests/test_checkpoint.cpp). The envelope lives in src/core/ — stages
// serialize through util/statecodec.hpp and must never include this
// header (stage-checkpoint-isolation lint rule).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/period.hpp"
#include "core/pipeline.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

// v2 appends the cluster fields (migrations_out/in) to every record and
// re-keys the actuation journal on an op kind that covers the migration
// verbs (journal_kind, was journal_pause). v1 blobs are rejected.
inline constexpr std::uint64_t kCheckpointVersion = 2;

/// The blob carries a recognized header with an unsupported version —
/// distinct from corruption so callers can message it precisely.
class CheckpointVersionError : public util::StateCodecError {
 public:
  using util::StateCodecError::StateCodecError;
};

/// The body hash disagrees with the trailer: the checkpoint rotted at
/// rest (or a CheckpointCorrupt fault fired). The supervisor falls back
/// to an older checkpoint, then to a cold start.
class CheckpointChecksumError : public util::StateCodecError {
 public:
  using util::StateCodecError::StateCodecError;
};

/// Serializes one PeriodRecord as fixed-order body lines / reads one
/// back. write→read is the identity on every field, including non-finite
/// coordinates.
void write_period_record(util::StateWriter& w, const PeriodRecord& rec);
PeriodRecord read_period_record(util::StateReader& r);

/// Canonical single-string encoding of one record. The supervisor's gap
/// replay compares regenerated records against history through this, so
/// divergence detection is exact even on NaN coordinates (where
/// operator== would lie).
std::string encode_record(const PeriodRecord& rec);

/// Encodes the full checkpoint of `pipeline` at the current period
/// boundary. Requires pipeline.checkpointable().
std::string encode_checkpoint(const HostPipeline& pipeline);

/// Decodes `blob` into a freshly built pipeline (same wiring, same fault
/// plan, no periods run) and returns the number of completed periods.
/// Throws CheckpointVersionError on a version mismatch,
/// CheckpointChecksumError on an integrity failure and
/// util::StateCodecError on truncation or malformed fields.
std::size_t restore_checkpoint(HostPipeline& pipeline,
                               const std::string& blob);

/// Restores `blob` into a freshly built pipeline and fast-forwards the
/// freshly built host through the restored periods: ticks re-run, the
/// journalled actuations re-applied at their original boundaries, no
/// observer or hook activity. Returns the restored period count; the
/// caller drives the remaining live periods. Same exactness contract as
/// the supervisor's warm restart.
std::size_t warm_start(HostPipeline& pipeline, sim::SimHost& host,
                       std::size_t ticks_per_period, const std::string& blob);

/// FNV-1a 64-bit over `text` — the envelope's integrity hash.
std::uint64_t fnv1a64(std::string_view text);

/// Deterministically flips one body byte in a stored blob so the next
/// restore fails its checksum — how the CheckpointCorrupt fault models
/// at-rest rot. No-op on blobs too short to carry a body.
void corrupt_checkpoint_blob(std::string& blob);

}  // namespace stayaway::core
