#include "core/predictor.hpp"

#include "util/check.hpp"

namespace stayaway::core {

Predictor::Predictor(std::size_t sample_count, double majority_fraction,
                     std::size_t min_observations)
    : sample_count_(sample_count),
      majority_fraction_(majority_fraction),
      min_observations_(min_observations) {
  SA_REQUIRE(sample_count > 0, "need at least one prediction sample");
  SA_REQUIRE(majority_fraction >= 0.0 && majority_fraction <= 1.0,
             "majority fraction must be in [0,1]");
}

Prediction Predictor::predict(const StateSpace& space,
                              const ModeTrajectories& modes,
                              monitor::ExecutionMode mode,
                              const mds::Point2& current, Rng& rng) const {
  return predict(space, modes, mode, current, rng, majority_fraction_);
}

Prediction Predictor::predict(const StateSpace& space,
                              const ModeTrajectories& modes,
                              monitor::ExecutionMode mode,
                              const mds::Point2& current, Rng& rng,
                              double majority_fraction) const {
  SA_REQUIRE(majority_fraction >= 0.0 && majority_fraction <= 1.0,
             "majority fraction must be in [0,1]");
  Prediction out;
  const TrajectoryModel& model = modes.model(mode);
  if (!model.ready(min_observations_) || space.violation_count() == 0) {
    return out;  // nothing to predict against yet
  }
  out.model_ready = true;
  // ready(0) holds even for a model with zero observations, and
  // sample_future requires at least one — only sample when it can.
  if (model.observations() > 0) {
    out.candidates = model.sample_future(current, sample_count_, rng);
  }
  out.samples = out.candidates.size();
  if (out.samples == 0) {
    // No candidates: nothing to vote on. Without this guard the fraction
    // below is 0/0 (NaN) and the comparison silently reads as "no
    // violation" — return the non-predicting result explicitly instead.
    return out;
  }
  for (const auto& p : out.candidates) {
    if (space.in_violation_region(p)) ++out.samples_in_violation;
  }
  SA_CHECK(out.samples_in_violation <= out.samples,
           "violating candidates cannot outnumber the sample set");
  double fraction = static_cast<double>(out.samples_in_violation) /
                    static_cast<double>(out.samples);
  SA_CHECK(fraction >= 0.0 && fraction <= 1.0,
           "violation vote fraction must be a probability");
  out.violation_predicted = fraction > majority_fraction;
  return out;
}

}  // namespace stayaway::core
