#include "core/host_port.hpp"

#include <algorithm>
#include <limits>

namespace stayaway::core {

double SimHostActuationPort::now() const { return host_->now(); }

std::vector<VmFootprint> SimHostActuationPort::batch_footprints() const {
  std::vector<VmFootprint> out;
  const auto& spec = host_->spec();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    const auto& vm = host_->vm(id);
    if (!vm.present(host_->now())) continue;
    const auto& g = vm.last_allocation().granted;
    double f = g.cpu_cores / spec.cpu_cores + g.memory_mb / spec.memory_mb +
               g.membw_mbps / spec.membw_mbps;
    out.push_back({id, f});
  }
  return out;
}

std::vector<sim::VmId> SimHostActuationPort::present_batch() const {
  std::vector<sim::VmId> out;
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    if (host_->vm(id).present(host_->now())) out.push_back(id);
  }
  return out;
}

std::vector<sim::VmId> SimHostActuationPort::all_batch() const {
  return host_->vms_of_kind(sim::VmKind::Batch);
}

std::vector<sim::VmId> SimHostActuationPort::demotion_candidates() const {
  std::vector<sim::VmId> out;
  int top = std::numeric_limits<int>::min();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
    const auto& vm = host_->vm(id);
    if (vm.present(host_->now())) top = std::max(top, vm.priority());
  }
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
    const auto& vm = host_->vm(id);
    if (vm.present(host_->now()) && vm.priority() < top) out.push_back(id);
  }
  return out;
}

ResourceUtilization SimHostActuationPort::utilization() const {
  ResourceUtilization u;
  const auto& spec = host_->spec();
  for (sim::VmId id = 0; id < host_->vm_count(); ++id) {
    const auto& g = host_->vm(id).last_allocation().granted;
    u.cpu += g.cpu_cores / spec.cpu_cores;
    u.memory += g.memory_mb / spec.memory_mb;
    u.membw += g.membw_mbps / spec.membw_mbps;
  }
  return u;
}

bool SimHostActuationPort::pause(sim::VmId id) {
  bool delivered = faults_ == nullptr || faults_->pause_delivered(host_->now());
  if (delivered) {
    host_->vm(id).pause();
    journal_.push_back({OpKind::Pause, id, host_->now()});
  }
  return delivered;
}

bool SimHostActuationPort::resume(sim::VmId id) {
  bool delivered =
      faults_ == nullptr || faults_->resume_delivered(host_->now());
  if (delivered) {
    host_->vm(id).resume();
    journal_.push_back({OpKind::Resume, id, host_->now()});
  }
  return delivered;
}

bool SimHostActuationPort::detach(sim::VmId id) {
  // Control-plane move: never fault-gated, never draws from the fault RNG
  // (the coordinator must stay invisible to the per-host fault streams).
  host_->vm(id).detach();
  journal_.push_back({OpKind::Detach, id, host_->now()});
  return true;
}

bool SimHostActuationPort::attach(sim::VmId id) {
  host_->vm(id).attach(host_->now());
  journal_.push_back({OpKind::Attach, id, host_->now()});
  return true;
}

std::vector<sim::VmId> SimHostActuationPort::parked_batch() const {
  std::vector<sim::VmId> out;
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    if (host_->vm(id).detached()) out.push_back(id);
  }
  return out;
}

void SimHostActuationPort::replay_delivered(double now) {
  while (replay_cursor_ < journal_.size() &&
         journal_[replay_cursor_].time <= now) {
    const DeliveredOp& op = journal_[replay_cursor_];
    switch (op.kind) {
      case OpKind::Pause:
        host_->vm(op.vm).pause();
        break;
      case OpKind::Resume:
        host_->vm(op.vm).resume();
        break;
      case OpKind::Detach:
        host_->vm(op.vm).detach();
        break;
      case OpKind::Attach:
        host_->vm(op.vm).attach(op.time);
        break;
    }
    ++replay_cursor_;
  }
}

void SimHostActuationPort::save_state(util::StateWriter& w) const {
  std::vector<std::uint64_t> kinds;
  std::vector<std::uint64_t> vms;
  std::vector<double> times;
  kinds.reserve(journal_.size());
  vms.reserve(journal_.size());
  times.reserve(journal_.size());
  for (const DeliveredOp& op : journal_) {
    kinds.push_back(static_cast<std::uint64_t>(op.kind));
    vms.push_back(op.vm);
    times.push_back(op.time);
  }
  w.u64s("journal_kind", kinds);
  w.u64s("journal_vm", vms);
  w.reals("journal_time", times);
}

void SimHostActuationPort::load_state(util::StateReader& r) {
  std::vector<std::uint64_t> kinds = r.u64s("journal_kind");
  std::vector<std::uint64_t> vms = r.u64s("journal_vm");
  std::vector<double> times = r.reals("journal_time");
  if (kinds.size() != vms.size() || vms.size() != times.size()) {
    throw util::StateCodecError("actuation journal arrays disagree in length");
  }
  journal_.clear();
  journal_.reserve(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] > static_cast<std::uint64_t>(OpKind::Attach)) {
      throw util::StateCodecError("actuation journal op kind out of range");
    }
    journal_.push_back({static_cast<OpKind>(kinds[i]),
                        static_cast<sim::VmId>(vms[i]), times[i]});
  }
  replay_cursor_ = 0;
}

}  // namespace stayaway::core
