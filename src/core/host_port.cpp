#include "core/host_port.hpp"

#include <algorithm>
#include <limits>

namespace stayaway::core {

double SimHostActuationPort::now() const { return host_->now(); }

std::vector<VmFootprint> SimHostActuationPort::batch_footprints() const {
  std::vector<VmFootprint> out;
  const auto& spec = host_->spec();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    const auto& vm = host_->vm(id);
    if (!vm.present(host_->now())) continue;
    const auto& g = vm.last_allocation().granted;
    double f = g.cpu_cores / spec.cpu_cores + g.memory_mb / spec.memory_mb +
               g.membw_mbps / spec.membw_mbps;
    out.push_back({id, f});
  }
  return out;
}

std::vector<sim::VmId> SimHostActuationPort::present_batch() const {
  std::vector<sim::VmId> out;
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    if (host_->vm(id).present(host_->now())) out.push_back(id);
  }
  return out;
}

std::vector<sim::VmId> SimHostActuationPort::all_batch() const {
  return host_->vms_of_kind(sim::VmKind::Batch);
}

std::vector<sim::VmId> SimHostActuationPort::demotion_candidates() const {
  std::vector<sim::VmId> out;
  int top = std::numeric_limits<int>::min();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
    const auto& vm = host_->vm(id);
    if (vm.present(host_->now())) top = std::max(top, vm.priority());
  }
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
    const auto& vm = host_->vm(id);
    if (vm.present(host_->now()) && vm.priority() < top) out.push_back(id);
  }
  return out;
}

ResourceUtilization SimHostActuationPort::utilization() const {
  ResourceUtilization u;
  const auto& spec = host_->spec();
  for (sim::VmId id = 0; id < host_->vm_count(); ++id) {
    const auto& g = host_->vm(id).last_allocation().granted;
    u.cpu += g.cpu_cores / spec.cpu_cores;
    u.memory += g.memory_mb / spec.memory_mb;
    u.membw += g.membw_mbps / spec.membw_mbps;
  }
  return u;
}

bool SimHostActuationPort::pause(sim::VmId id) {
  bool delivered = faults_ == nullptr || faults_->pause_delivered(host_->now());
  if (delivered) host_->vm(id).pause();
  return delivered;
}

bool SimHostActuationPort::resume(sim::VmId id) {
  bool delivered =
      faults_ == nullptr || faults_->resume_delivered(host_->now());
  if (delivered) host_->vm(id).resume();
  return delivered;
}

}  // namespace stayaway::core
