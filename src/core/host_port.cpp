#include "core/host_port.hpp"

#include <algorithm>
#include <limits>

namespace stayaway::core {

double SimHostActuationPort::now() const { return host_->now(); }

std::vector<VmFootprint> SimHostActuationPort::batch_footprints() const {
  std::vector<VmFootprint> out;
  const auto& spec = host_->spec();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    const auto& vm = host_->vm(id);
    if (!vm.present(host_->now())) continue;
    const auto& g = vm.last_allocation().granted;
    double f = g.cpu_cores / spec.cpu_cores + g.memory_mb / spec.memory_mb +
               g.membw_mbps / spec.membw_mbps;
    out.push_back({id, f});
  }
  return out;
}

std::vector<sim::VmId> SimHostActuationPort::present_batch() const {
  std::vector<sim::VmId> out;
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Batch)) {
    if (host_->vm(id).present(host_->now())) out.push_back(id);
  }
  return out;
}

std::vector<sim::VmId> SimHostActuationPort::all_batch() const {
  return host_->vms_of_kind(sim::VmKind::Batch);
}

std::vector<sim::VmId> SimHostActuationPort::demotion_candidates() const {
  std::vector<sim::VmId> out;
  int top = std::numeric_limits<int>::min();
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
    const auto& vm = host_->vm(id);
    if (vm.present(host_->now())) top = std::max(top, vm.priority());
  }
  for (sim::VmId id : host_->vms_of_kind(sim::VmKind::Sensitive)) {
    const auto& vm = host_->vm(id);
    if (vm.present(host_->now()) && vm.priority() < top) out.push_back(id);
  }
  return out;
}

ResourceUtilization SimHostActuationPort::utilization() const {
  ResourceUtilization u;
  const auto& spec = host_->spec();
  for (sim::VmId id = 0; id < host_->vm_count(); ++id) {
    const auto& g = host_->vm(id).last_allocation().granted;
    u.cpu += g.cpu_cores / spec.cpu_cores;
    u.memory += g.memory_mb / spec.memory_mb;
    u.membw += g.membw_mbps / spec.membw_mbps;
  }
  return u;
}

bool SimHostActuationPort::pause(sim::VmId id) {
  bool delivered = faults_ == nullptr || faults_->pause_delivered(host_->now());
  if (delivered) {
    host_->vm(id).pause();
    journal_.push_back({true, id, host_->now()});
  }
  return delivered;
}

bool SimHostActuationPort::resume(sim::VmId id) {
  bool delivered =
      faults_ == nullptr || faults_->resume_delivered(host_->now());
  if (delivered) {
    host_->vm(id).resume();
    journal_.push_back({false, id, host_->now()});
  }
  return delivered;
}

void SimHostActuationPort::replay_delivered(double now) {
  while (replay_cursor_ < journal_.size() &&
         journal_[replay_cursor_].time <= now) {
    const DeliveredOp& op = journal_[replay_cursor_];
    if (op.pause) {
      host_->vm(op.vm).pause();
    } else {
      host_->vm(op.vm).resume();
    }
    ++replay_cursor_;
  }
}

void SimHostActuationPort::save_state(util::StateWriter& w) const {
  std::vector<std::uint64_t> pauses;
  std::vector<std::uint64_t> vms;
  std::vector<double> times;
  pauses.reserve(journal_.size());
  vms.reserve(journal_.size());
  times.reserve(journal_.size());
  for (const DeliveredOp& op : journal_) {
    pauses.push_back(op.pause ? 1 : 0);
    vms.push_back(op.vm);
    times.push_back(op.time);
  }
  w.u64s("journal_pause", pauses);
  w.u64s("journal_vm", vms);
  w.reals("journal_time", times);
}

void SimHostActuationPort::load_state(util::StateReader& r) {
  std::vector<std::uint64_t> pauses = r.u64s("journal_pause");
  std::vector<std::uint64_t> vms = r.u64s("journal_vm");
  std::vector<double> times = r.reals("journal_time");
  if (pauses.size() != vms.size() || vms.size() != times.size()) {
    throw util::StateCodecError("actuation journal arrays disagree in length");
  }
  journal_.clear();
  journal_.reserve(pauses.size());
  for (std::size_t i = 0; i < pauses.size(); ++i) {
    journal_.push_back({pauses[i] != 0, static_cast<sim::VmId>(vms[i]),
                        times[i]});
  }
  replay_cursor_ = 0;
}

}  // namespace stayaway::core
