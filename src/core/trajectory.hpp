// Per-execution-mode trajectory model (§3.2.3 of the paper).
//
// "To characterize the trajectories, we capture the behaviour of each
// execution mode by the probability density function of the parameters:
// distance d and absolute angle alpha." The underlying measurement is a
// histogram; candidate future states are drawn from it by inverse-
// transform sampling. Modelling per mode matters: "no single prediction
// model can accurately model all the state transitions."
#pragma once

#include <array>
#include <cstddef>
#include <numbers>
#include <vector>

#include "mds/point.hpp"
#include "monitor/mode.hpp"
#include "stats/histogram.hpp"
#include "util/rng.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

class TrajectoryModel {
 public:
  /// max_step bounds the step-length histogram range (map steps in a
  /// normalized space are bounded by the space's diameter).
  TrajectoryModel(double max_step, std::size_t bins);

  /// Records one observed transition.
  void observe(const mds::Point2& from, const mds::Point2& to);

  std::size_t observations() const { return observations_; }
  bool ready(std::size_t min_observations) const {
    return observations_ >= min_observations;
  }

  /// Draws `count` candidate next-states from the current position by
  /// inverse-transform sampling of the step and angle histograms.
  /// Requires at least one observation.
  std::vector<mds::Point2> sample_future(const mds::Point2& current,
                                         std::size_t count, Rng& rng) const;

  const stats::Histogram& step_histogram() const { return steps_; }
  const stats::Histogram& angle_histogram() const { return angles_; }

  /// Snapshot of histogram contents + observation count (DESIGN.md §17).
  /// load_state targets a freshly constructed model with identical
  /// configuration (max_step, bins).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  stats::Histogram steps_;
  stats::Histogram angles_;
  std::size_t observations_ = 0;
};

/// One trajectory model per execution mode.
class ModeTrajectories {
 public:
  ModeTrajectories(double max_step, std::size_t bins);

  TrajectoryModel& model(monitor::ExecutionMode mode);
  const TrajectoryModel& model(monitor::ExecutionMode mode) const;

  /// Snapshots every per-mode model, in mode order.
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  std::vector<TrajectoryModel> models_;
};

}  // namespace stayaway::core
