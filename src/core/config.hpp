// Configuration of the Stay-Away runtime and its components.
//
// StayAwayConfig is the single config entry point: it carries the
// monitor's SamplerConfig and the streaming IngestConfig too, so
// StayAwayRuntime, StayAwayPolicy and harness::ExperimentSpec are
// configured through one object. FleetConfig sizes the multi-host
// controller built on top of per-host pipelines.
#pragma once

#include <cstddef>
#include <cstdint>

#include "monitor/sampler.hpp"

namespace stayaway::core {

/// Governs the pause/resume policy of §3.3.
struct GovernorConfig {
  /// Initial beta: "maximum allowed distance between the states before
  /// resuming the batch application. Initially beta is set to 0.01."
  double beta_initial = 0.01;
  /// Added to beta when a resume immediately re-violates.
  double beta_increment = 0.005;
  /// Upper bound on adaptive beta. Repeated resume-then-re-violate cycles
  /// otherwise grow beta past the map diameter, where no within-pause
  /// movement can ever exceed it and a beta-triggered resume becomes
  /// permanently unreachable (only the anti-starvation lottery remains).
  /// Must be >= beta_initial; <= 0 disables the cap.
  double beta_max = 0.25;
  /// A violation within this window after a beta-triggered resume counts
  /// as a failed resume and bumps beta.
  double resume_grace_s = 3.0;
  /// Paused this long with sub-beta movement triggers the random
  /// anti-starvation resume lottery.
  double starvation_patience_s = 20.0;
  /// Per-period probability of the anti-starvation resume once eligible.
  double random_resume_probability = 0.15;
};

/// Degraded-mode control loop (DESIGN.md §12): how the runtime responds
/// when telemetry goes missing, readings go non-finite, the QoS probe
/// goes blind, or a pause/resume command does not take.
struct DegradationConfig {
  /// Master switch for the compensating responses (conservative
  /// prediction widening, QoS-blind failsafe, actuation retry). The
  /// quarantine stage itself always runs — a non-finite reading must
  /// never reach the embedder in any configuration — but with `enabled`
  /// false nothing else reacts: the no-degradation baseline that
  /// bench_faults compares against.
  bool enabled = true;
  /// Consecutive QoS-blind periods before the failsafe: with no violation
  /// signal for this long, every batch VM is paused until telemetry
  /// recovers (protecting the sensitive app is the prime directive; lost
  /// batch throughput is the accepted cost).
  std::size_t qos_blind_failsafe_periods = 3;
  /// Hysteresis on recovery: consecutive fully-healthy periods required
  /// to step one level back toward Normal (Failsafe -> Degraded ->
  /// Normal), so a flickering sensor cannot flap the state machine.
  std::size_t recovery_periods = 3;
  /// Prediction vote threshold while Degraded or Failsafe. Lower than
  /// majority_fraction: with imputed inputs the map position is less
  /// trustworthy, so the controller pauses on weaker evidence.
  double degraded_majority_fraction = 0.35;
  /// Delivery rounds retried for a dropped pause/resume command before
  /// the ledger gives up and surfaces the divergence.
  std::size_t actuation_max_retries = 3;
  /// Control periods before the first retry; doubles every round.
  std::size_t actuation_backoff_periods = 1;
  /// Raw readings above (host capacity x this margin) quarantine as
  /// sensor spikes.
  double spike_margin = 2.0;
};

/// How the map over representatives is (re)computed each period.
enum class EmbedMethod {
  SmacofWarm,  // full SMACOF, warm-started from the previous layout (default)
  SmacofCold,  // full SMACOF from a classical-MDS seed every time (ablation)
  Landmark,    // landmark-MDS approximation (§4's fast path)
  Pca,         // PCA projection (ablation comparator, §2.2)
  LandmarkIncremental,  // streaming path (DESIGN.md §15): fit landmarks
                        // once, place only the NEW representatives each
                        // period — O(new points) — and refit (with
                        // Procrustes re-alignment) only when the set has
                        // grown past landmark_refresh_factor since the
                        // last fit
};

/// Where the control loop's samples come from (DESIGN.md §15).
enum class IngestSource {
  Synchronous,  // one Sampler::sample() per period — the historical,
                // byte-identical default
  Ring,         // a producer thread replays a trace into a per-host
                // lock-free SPSC ring the pipeline drains every period
};

/// Unified ingestion surface: the synchronous sampler, trace replay and
/// the ring feed all construct from this one block inside
/// StayAwayConfig. Scenario-file keys: ingest_source, ingest_rate_hz,
/// ingest_ring_capacity, ingest_lookahead_s, ingest_burst_rate_hz,
/// ingest_burst_start_s, ingest_burst_end_s (serialized only when the
/// block differs from the defaults, so historical run-logs stay
/// byte-identical).
struct IngestConfig {
  IngestSource source = IngestSource::Synchronous;
  /// Producer emission rate in samples per simulated second (Ring only).
  double rate_hz = 4.0;
  /// SPSC ring capacity in samples (rounded up to a power of two). A
  /// full ring drops the push and counts the overflow — backpressure is
  /// surfaced, never silently absorbed.
  std::size_t ring_capacity = 1024;
  /// How far past the consumer's gate the producer may run ahead, in
  /// simulated seconds. Samples inside the lookahead wait in the ring
  /// until their period.
  double lookahead_s = 0.25;
  /// Optional burst window: within [burst_start_s, burst_end_s) the
  /// producer emits at burst_rate_hz instead of rate_hz. 0 disables the
  /// burst. This is the window the fuzzer's shrinker minimizes.
  double burst_rate_hz = 0.0;
  double burst_start_s = 0.0;
  double burst_end_s = 0.0;

  bool streaming() const { return source == IngestSource::Ring; }
  bool operator==(const IngestConfig&) const = default;
};

struct StayAwayConfig {
  /// Control period in seconds of simulated time.
  double period_s = 1.0;
  /// Representative-set merge radius in the normalized metric space (§4).
  double dedup_epsilon = 0.06;
  /// Hard bound on the representative count (embedding cost is super-
  /// linear in it); once reached, new samples snap to their nearest
  /// representative. 0 disables the bound.
  std::size_t max_representatives = 256;
  /// "with 5 samples to model uncertainty, we are able to achieve more
  /// than 90% accuracy" (§3.2.3).
  std::size_t prediction_samples = 5;
  /// "Whenever a majority of the generated sample set fall within a
  /// violation range, Stay-Away takes an action."
  double majority_fraction = 0.5;
  /// Observations a mode's trajectory model needs before it predicts.
  std::size_t min_mode_observations = 6;
  /// Bins of the step-length and angle histograms.
  std::size_t histogram_bins = 24;
  /// When false the runtime observes, maps and predicts but never acts —
  /// used by the template-validation experiment (Fig. 18) and by the
  /// prediction-accuracy bench.
  bool actions_enabled = true;
  /// §2.1: "if multiple sensitive applications are co-scheduled Stay-Away
  /// can choose to migrate or scale resources of the lower priority
  /// sensitive application." When enabled and a pause is required while
  /// no batch VM is running, sensitive VMs with a lower priority than the
  /// highest-priority present sensitive VM are throttled instead.
  bool allow_sensitive_demotion = false;
  EmbedMethod embed_method = EmbedMethod::SmacofWarm;
  /// Landmark count when embed_method == Landmark/LandmarkIncremental.
  std::size_t landmark_count = 24;
  /// LandmarkIncremental only: refit the landmark model (full refresh +
  /// Procrustes re-alignment) once the representative count reaches this
  /// factor of the count at the last fit. Geometric refresh keeps the
  /// amortized per-point embed cost O(1) in the map size.
  double landmark_refresh_factor = 2.0;
  /// Normalized stress-1 below which a warm-started SMACOF layout is
  /// accepted without the verifying cold run (§4 overhead: the cold run
  /// doubles the per-growth embedding cost and almost never wins once the
  /// map is established). 0 disables skipping — always run both solves
  /// and keep the better, the historical behaviour.
  double warm_skip_stress = 0.0;
  /// Threads for the hot-path kernels (distance matrices, SMACOF inner
  /// loops) — applied to the process-wide pool at runtime construction.
  /// 1 = strictly sequential and bit-identical to the historical code;
  /// 0 = leave the process-wide setting untouched.
  std::size_t hot_path_threads = 0;
  GovernorConfig governor;
  /// Degraded-mode responses to telemetry and actuation faults.
  DegradationConfig degradation;
  /// How the host monitor samples per-VM usage (metric set, §5 batch
  /// aggregation, measurement noise).
  monitor::SamplerConfig sampler;
  /// How samples reach the mapping stage (DESIGN.md §15): synchronous
  /// one-per-period (default) or an async per-host ring feed.
  IngestConfig ingest;
  std::uint64_t seed = 1234;
};

/// Sizing of core::FleetController: how many worker threads drive the
/// per-host pipelines, and the base seed from which per-host RNG streams
/// are split (fleet_host_seed).
struct FleetConfig {
  /// Concurrent pipeline drivers. 1 = strictly sequential host-by-host.
  std::size_t workers = 1;
  /// Base seed; host i derives its streams via fleet_host_seed(seed, i).
  std::uint64_t seed = 1234;
  // --- Supervision (DESIGN.md §17); active only for members that carry
  // a rebuild callback. ------------------------------------------------
  /// Checkpoint every N completed periods (0 = checkpoints off; failures
  /// then recover by cold replay from period zero).
  std::size_t checkpoint_every = 0;
  /// Stalled on_period attempts the per-stage watchdog retries in place
  /// before escalating a StageStall to a full crash recovery. The budget
  /// is counted in deterministic retry attempts, never wall clock.
  std::size_t watchdog_budget = 3;
};

}  // namespace stayaway::core
