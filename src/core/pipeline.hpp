// HostPipeline — one host's control loop as a thin composition of the
// three stage interfaces (DESIGN.md §13): every period it stamps
// time/mode, runs Mapper -> (QoS labelling) -> ViolationForecaster ->
// Actuator, threads the degradation state machine between them, and
// publishes the period to an optional passive observer. Any stage may be
// absent: a null mapper/forecaster leaves that slice of the record at
// its defaults, a null actuator never acts (the no-prevention shape).
//
// With the full Stay-Away wiring (the three-argument constructor) the
// emitted PeriodRecord stream is byte-identical to the historical
// monolithic StayAwayRuntime — the invariant every figure bench and the
// fault golden rest on, pinned by tests/test_runtime.cpp and
// tests/test_fleet.cpp.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/host_port.hpp"
#include "core/period.hpp"
#include "core/stages/actuator.hpp"
#include "core/stages/forecaster.hpp"
#include "core/stages/mapper.hpp"
#include "core/stages/stage.hpp"
#include "obs/observer.hpp"
#include "sim/faults.hpp"
#include "sim/host.hpp"

namespace stayaway::core {

/// The stages a custom pipeline is wired from. Any pointer may be null.
struct StageSet {
  std::unique_ptr<Mapper> mapper;
  std::unique_ptr<ViolationForecaster> forecaster;
  std::unique_ptr<Actuator> actuator;
};

/// Injected stage failure (sim::FaultKind::StageThrow). Raised at
/// on_period entry before any stage state mutates, so the supervisor can
/// recover from the latest checkpoint and replay the period
/// byte-identically (DESIGN.md §17).
class StageThrowError : public std::runtime_error {
 public:
  explicit StageThrowError(double time);
  double time() const { return time_; }

 private:
  double time_;
};

/// Injected stage stall (sim::FaultKind::StageStall): this on_period
/// attempt overran its deterministic watchdog deadline. No stage state
/// has mutated; the supervisor retries in place up to its watchdog
/// budget, then escalates to a full crash recovery.
class StageStallError : public std::runtime_error {
 public:
  explicit StageStallError(double time);
  double time() const { return time_; }

 private:
  double time_;
};

class HostPipeline {
 public:
  /// Full Stay-Away wiring: builds StayAwayMapper, TrajectoryForecaster
  /// and GovernorActuator from `config`. host and probe must outlive the
  /// pipeline.
  HostPipeline(sim::SimHost& host, const sim::QosProbe& probe,
               StayAwayConfig config);

  /// Custom wiring: drive the given stages (each may be null). The
  /// degradation machinery still runs off config.degradation, and the
  /// actuator receives this pipeline's fault-aware ActuationPort.
  HostPipeline(sim::SimHost& host, const sim::QosProbe& probe,
               StayAwayConfig config, StageSet stages);

  ~HostPipeline();
  HostPipeline(const HostPipeline&) = delete;
  HostPipeline& operator=(const HostPipeline&) = delete;

  /// Runs one control period: sample, map, predict, act.
  const PeriodRecord& on_period();

  /// Attaches (or detaches, with nullptr) a passive observer. Must be
  /// re-attached after set_host_label. The observer must outlive the
  /// pipeline or be detached first; it never influences decisions.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() const { return observer_; }

  /// Labels this pipeline's observability: metric keys gain a
  /// "host.<label>." prefix and every event a "host" field, so N
  /// pipelines can share one observer. An empty label (the default)
  /// keeps names identical to the historical single-host stream. Call
  /// before set_observer.
  void set_host_label(std::string label);
  const std::string& host_label() const { return label_; }

  /// Installs a fault plan (DESIGN.md §12). Must be called before the
  /// first on_period(). With no plan installed (or an empty one) the
  /// emitted PeriodRecord sequence is byte-identical to the fault-free
  /// loop (golden test in tests/test_runtime.cpp).
  void install_faults(const sim::FaultPlan& plan);
  const sim::FaultInjector* fault_injector() const {
    return faults_.has_value() ? &*faults_ : nullptr;
  }
  /// Mutable injector view for the fleet supervisor, which advances the
  /// crash horizon after handling a failure (DESIGN.md §17).
  sim::FaultInjector* mutable_fault_injector() {
    return faults_.has_value() ? &*faults_ : nullptr;
  }
  /// The pipeline's host-facing port — the supervisor fast-forwards a
  /// rebuilt host through its restored actuation journal.
  SimHostActuationPort& actuation_port() { return *port_; }

  /// Checkpoint support (DESIGN.md §17). A pipeline is checkpointable
  /// when every wired stage can snapshot its full state — the synchronous
  /// sample source and a non-landmark embedder for the Stay-Away wiring.
  /// Non-checkpointable pipelines recover by cold replay instead.
  bool checkpointable() const;
  /// Snapshots everything on_period mutates except the record history
  /// (the checkpoint envelope owns the record codec): stage states, the
  /// delivered-actuation journal, the fault injector and the degradation
  /// machine. last_outcome_ is transient and deliberately not captured.
  void save_state(util::StateWriter& w) const;
  /// Mirror of save_state. The pipeline must be freshly built with the
  /// same wiring and the same fault plan installed; stage-presence
  /// mismatches throw util::StateCodecError.
  void load_state(util::StateReader& r);
  /// Seeds the record history of the run being restored. Must be called
  /// before the first live on_period().
  void seed_records(std::vector<PeriodRecord> records);

  const std::vector<PeriodRecord>& records() const { return records_; }
  const StayAwayConfig& config() const { return config_; }
  DegradationState degradation() const { return degradation_; }
  /// The actuator's outcome for the most recent period (empty before the
  /// first period or with no actuator) — what a Pause paused, what a
  /// Resume released, and why.
  const Actuator::Outcome& last_outcome() const { return last_outcome_; }

  /// Typed views of the default stages; null when a custom StageSet
  /// supplied a different implementation (or none).
  StayAwayMapper* stay_away_mapper() { return sa_mapper_; }
  const StayAwayMapper* stay_away_mapper() const { return sa_mapper_; }
  TrajectoryForecaster* trajectory_forecaster() { return sa_forecaster_; }
  const TrajectoryForecaster* trajectory_forecaster() const {
    return sa_forecaster_;
  }
  GovernorActuator* governor_actuator() { return sa_actuator_; }
  const GovernorActuator* governor_actuator() const { return sa_actuator_; }

  /// Cluster wiring seam (DESIGN.md §18): hands the wired actuator out so
  /// a decorator (core/cluster MigrationActuator) can wrap it, then
  /// set_actuator() puts the wrapped stage back. Swap before the first
  /// on_period() and before install_faults-driven state accrues; the
  /// typed governor_actuator() view re-resolves (null when the new stage
  /// is not a GovernorActuator itself).
  std::unique_ptr<Actuator> release_actuator();
  void set_actuator(std::unique_ptr<Actuator> actuator);
  Actuator* actuator() { return actuator_.get(); }
  const Actuator* actuator() const { return actuator_.get(); }

 private:
  void init(StageSet stages);
  /// Updates the degradation state machine with this period's health.
  void update_degradation(const monitor::SampleHealth& health,
                          bool qos_visible);
  /// Publishes the period's metrics and events to the attached observer.
  void publish(const PeriodRecord& rec, const std::vector<sim::VmId>& resumed);
  std::string metric_name(const char* name) const;

  sim::SimHost* host_;
  const sim::QosProbe* probe_;
  StayAwayConfig config_;
  std::unique_ptr<SimHostActuationPort> port_;
  std::unique_ptr<Mapper> mapper_;
  std::unique_ptr<ViolationForecaster> forecaster_;
  std::unique_ptr<Actuator> actuator_;
  StayAwayMapper* sa_mapper_ = nullptr;
  TrajectoryForecaster* sa_forecaster_ = nullptr;
  GovernorActuator* sa_actuator_ = nullptr;
  std::string label_;
  // --- Degraded-mode control loop (DESIGN.md §12). ----------------------
  std::optional<sim::FaultInjector> faults_;
  DegradationState degradation_ = DegradationState::Normal;
  std::size_t qos_blind_streak_ = 0;
  std::size_t healthy_streak_ = 0;
  /// Consecutive stalled on_period attempts at the current period (the
  /// injector stalls the first `magnitude` attempts; see sim::FaultSpec).
  std::size_t stall_attempts_ = 0;
  /// Set on a state transition, consumed by publish() for the event.
  std::optional<std::pair<DegradationState, DegradationState>> transition_;
  std::vector<PeriodRecord> records_;
  Actuator::Outcome last_outcome_;

  // --- Observability (passive; see set_observer). -----------------------
  obs::Observer* observer_ = nullptr;
  struct LoopMetrics {
    obs::Counter periods;
    obs::Counter violations_observed;
    obs::Counter violations_predicted;
    obs::Counter new_representatives;
    obs::Counter pauses;
    obs::Counter resumes;
    obs::Gauge beta;
    obs::Gauge stress;
    obs::Gauge representatives;
    obs::Gauge violation_states;
    obs::Gauge tally_accuracy;
    obs::Gauge embed_iterations;
    obs::Gauge embed_cold_skips;
    obs::Gauge embed_rebuilds;
    obs::Gauge space_invalidations;
    obs::Gauge space_rebuilds;
    obs::Gauge governor_failed_resumes;
    obs::Gauge governor_random_resumes;
    obs::Gauge sampler_samples;
    // Degraded-mode telemetry (DESIGN.md §12).
    obs::Counter quarantined_readings;
    obs::Counter qos_blind_periods;
    obs::Counter degraded_periods;
    obs::Counter degradation_transitions;
    obs::Counter actuation_retries;
    obs::Gauge degradation_state;
    obs::Gauge sample_staleness;
    obs::Gauge actuation_abandoned;
    obs::Gauge faults_injected;
  } metrics_;
};

}  // namespace stayaway::core
