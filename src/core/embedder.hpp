// Map embedder: keeps the 2-D layout of the representative set up to
// date across periods.
//
// The layout is recomputed only when the representative set grows (§4's
// dedup means most periods reuse an existing representative). New points
// are seeded by incremental placement and the whole configuration is then
// polished with SMACOF warm-started from the previous layout, finally
// Procrustes-aligned onto it so the map does not rotate or flip between
// periods — the trajectory model depends on directions staying put.
#pragma once

#include "core/config.hpp"
#include "linalg/matrix.hpp"
#include "mds/point.hpp"
#include "monitor/representative.hpp"

namespace stayaway::core {

class MapEmbedder {
 public:
  explicit MapEmbedder(EmbedMethod method, std::size_t landmark_count = 24);

  /// Brings the embedding in sync with the representative set and returns
  /// it. Positions are stable (not recomputed) while the set is unchanged.
  const mds::Embedding& update(const monitor::RepresentativeSet& reps);

  const mds::Embedding& positions() const { return positions_; }

  /// Normalized stress-1 of the current layout (0 when fewer than two
  /// points). §5: persistent high stress signals that 2-D is too tight.
  double stress() const { return stress_; }

  /// Cumulative SMACOF iterations spent (overhead accounting, §4).
  std::size_t total_iterations() const { return total_iterations_; }

  EmbedMethod method() const { return method_; }

 private:
  void embed(const monitor::RepresentativeSet& reps);

  EmbedMethod method_;
  std::size_t landmark_count_;
  mds::Embedding positions_;
  double stress_ = 0.0;
  std::size_t total_iterations_ = 0;
};

}  // namespace stayaway::core
