// Map embedder: keeps the 2-D layout of the representative set up to
// date across periods.
//
// The layout is recomputed only when the representative set grows (§4's
// dedup means most periods reuse an existing representative). New points
// are seeded by incremental placement and the whole configuration is then
// polished with SMACOF warm-started from the previous layout, finally
// Procrustes-aligned onto it so the map does not rotate or flip between
// periods — the trajectory model depends on directions staying put.
//
// Hot-path engineering: the dissimilarity matrix is grown by one
// row/column per new representative (entry-wise identical to a full
// rebuild, but O(growth * n) instead of O(n^2)), and when the warm-started
// solve already lands below `warm_skip_stress` the redundant cold SMACOF
// run is skipped entirely. A shrinking representative set (template reuse
// loading a smaller map, compaction) drops all incremental state and
// re-embeds from scratch instead of failing.
//
// LandmarkIncremental is the streaming-ingestion regime (DESIGN.md §15):
// past landmark_count points, each update only *places* the new points
// against a frozen landmark model — O(new * k), no O(n^2) matrix at all —
// and the model is refit (with Procrustes re-alignment) only when the set
// has grown by landmark_refresh_factor since the last fit, so refit cost
// amortizes to O(1) per point.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "linalg/matrix.hpp"
#include "mds/landmark.hpp"
#include "mds/point.hpp"
#include "mds/procrustes.hpp"
#include "monitor/representative.hpp"
#include "util/statecodec.hpp"

namespace stayaway::core {

class MapEmbedder {
 public:
  /// warm_skip_stress: normalized stress-1 below which a warm-started
  /// SMACOF solution is accepted without the verifying cold run. 0 keeps
  /// the historical behaviour (always run both, keep the better).
  /// landmark_refresh_factor (LandmarkIncremental only): geometric refit
  /// trigger — refit when n >= factor * size-at-last-fit.
  explicit MapEmbedder(EmbedMethod method, std::size_t landmark_count = 24,
                       double warm_skip_stress = 0.0,
                       double landmark_refresh_factor = 2.0);

  /// Brings the embedding in sync with the representative set and returns
  /// it. Positions are stable (not recomputed) while the set is unchanged.
  const mds::Embedding& update(const monitor::RepresentativeSet& reps);

  const mds::Embedding& positions() const { return positions_; }

  /// Normalized stress-1 of the current layout (0 when fewer than two
  /// points). §5: persistent high stress signals that 2-D is too tight.
  double stress() const { return stress_; }

  /// Cumulative SMACOF iterations spent (overhead accounting, §4).
  std::size_t total_iterations() const { return total_iterations_; }

  /// Cold SMACOF runs skipped because the warm start already met the
  /// stress bound (overhead accounting).
  std::size_t cold_runs_skipped() const { return cold_runs_skipped_; }

  /// Full matrix rebuilds forced by a shrinking representative set.
  std::size_t rebuilds() const { return rebuilds_; }

  EmbedMethod method() const { return method_; }

  /// Representative-set size at the most recent landmark-model fit
  /// (LandmarkIncremental only; 0 before the first fit).
  std::size_t landmark_fit_size() const { return last_fit_size_; }

  /// True when this embedder's full mutable state is capturable by
  /// save_state: the landmark-incremental model (frozen landmark fit +
  /// alignment chain) is deliberately out of scope — pipelines using it
  /// recover by cold replay instead (DESIGN.md §17).
  bool checkpointable() const {
    return method_ != EmbedMethod::LandmarkIncremental;
  }

  /// Snapshot of layout, stress and overhead counters. load_state
  /// rebuilds the cached dissimilarity matrix from the restored
  /// representative vectors — entry-wise identical to the incrementally
  /// grown matrix (refresh_delta's contract), so the next growth step
  /// proceeds exactly as the uninterrupted run's would. Requires
  /// checkpointable().
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r,
                  const std::vector<std::vector<double>>& vectors);

 private:
  void embed(const monitor::RepresentativeSet& reps);
  /// Grows (or builds) the cached dissimilarity matrix to cover `vectors`.
  const linalg::Matrix& refresh_delta(
      const std::vector<std::vector<double>>& vectors);
  /// LandmarkIncremental large-n path: place new points only, refit the
  /// landmark model geometrically.
  void embed_landmark_incremental(
      const std::vector<std::vector<double>>& vectors);
  /// Triangulates one high-dimensional vector against the fitted model.
  mds::Point2 place_against_landmarks(const std::vector<double>& v) const;

  EmbedMethod method_;
  std::size_t landmark_count_;
  double warm_skip_stress_;
  double landmark_refresh_factor_;
  mds::Embedding positions_;
  linalg::Matrix delta_;  // dissimilarities over the embedded vectors
  double stress_ = 0.0;
  std::size_t total_iterations_ = 0;
  std::size_t cold_runs_skipped_ = 0;
  std::size_t rebuilds_ = 0;
  // --- LandmarkIncremental state (DESIGN.md §15). -----------------------
  std::optional<mds::LandmarkModel> landmark_model_;
  /// The landmarks' high-dimensional vectors, in model order (new points
  /// measure their distances against these).
  std::vector<std::vector<double>> landmark_vectors_;
  /// Rigid transform from the current model's frame onto the map frame
  /// (identity until the first re-alignment): place() results live in the
  /// model frame, the map must not rotate or flip across refits.
  mds::ProcrustesTransform landmark_align_;
  std::size_t last_fit_size_ = 0;
};

}  // namespace stayaway::core
