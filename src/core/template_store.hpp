// Violation templates (§6 of the paper).
//
// "The captured states for a performance sensitive application double as
// a template ... that can be used for future executions alongside a
// different set of application co-locations." A template is the set of
// labelled high-dimensional (normalized) representatives from a previous
// run; because measurement vectors are normalized per resource capacity,
// states mean the same thing across runs and the violation labels remain
// valid under any batch neighbour.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/statespace.hpp"

namespace stayaway::core {

struct TemplateEntry {
  std::vector<double> vector;  // normalized measurement representative
  StateLabel label = StateLabel::Safe;
};

struct StateTemplate {
  std::string sensitive_app;  // provenance, informational
  std::vector<TemplateEntry> entries;

  std::size_t violation_count() const;

  /// CSV round trip: header row, then label,v0,v1,...
  void save(std::ostream& out) const;
  static StateTemplate load(std::istream& in);
};

}  // namespace stayaway::core
