#include "core/trajectory.hpp"

#include <cmath>

#include "stats/sampler.hpp"
#include "util/check.hpp"

namespace stayaway::core {

namespace {
constexpr double kPi = std::numbers::pi;

// Paranoid audit: a non-empty histogram's probability masses must sum to
// 1 — inverse-transform sampling silently skews if normalization drifts.
bool mass_sums_to_one(const stats::Histogram& h) {
  if (h.empty()) return false;
  double acc = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) acc += h.mass(i);
  return std::abs(acc - 1.0) <= 1e-9;
}

}  // namespace

TrajectoryModel::TrajectoryModel(double max_step, std::size_t bins)
    // Step lengths concentrate near zero (states mostly linger or move a
    // little), so the step histogram gets 4x the angular resolution: with
    // the default range of a normalized space, plain `bins` would be
    // coarser than a typical step and quantize every mode to bin 0.
    : steps_(0.0, max_step, bins * 4), angles_(-kPi, kPi, bins) {
  SA_REQUIRE(max_step > 0.0, "max step must be positive");
}

void TrajectoryModel::observe(const mds::Point2& from, const mds::Point2& to) {
  steps_.add(mds::distance(from, to));
  angles_.add(mds::step_angle(from, to));
  ++observations_;
}

std::vector<mds::Point2> TrajectoryModel::sample_future(
    const mds::Point2& current, std::size_t count, Rng& rng) const {
  SA_REQUIRE(observations_ > 0, "trajectory model has no observations");
  SA_INVARIANT(mass_sums_to_one(steps_),
               "step-length histogram masses must sum to 1");
  SA_INVARIANT(mass_sums_to_one(angles_),
               "angle histogram masses must sum to 1");
  stats::InverseTransformSampler step_sampler(steps_);
  stats::InverseTransformSampler angle_sampler(angles_);
  std::vector<mds::Point2> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double d = step_sampler.sample(rng);
    double a = angle_sampler.sample(rng);
    out.push_back(mds::step_from(current, d, a));
  }
  return out;
}

void TrajectoryModel::save_state(util::StateWriter& w) const {
  w.u64("observations", observations_);
  w.real("steps_total", steps_.total_weight());
  w.reals("steps", steps_.raw_counts());
  w.real("angles_total", angles_.total_weight());
  w.reals("angles", angles_.raw_counts());
}

void TrajectoryModel::load_state(util::StateReader& r) {
  observations_ = static_cast<std::size_t>(r.u64("observations"));
  double steps_total = r.real("steps_total");
  steps_.restore(r.reals("steps"), steps_total);
  double angles_total = r.real("angles_total");
  angles_.restore(r.reals("angles"), angles_total);
}

void ModeTrajectories::save_state(util::StateWriter& w) const {
  w.u64("modes", models_.size());
  for (const auto& m : models_) m.save_state(w);
}

void ModeTrajectories::load_state(util::StateReader& r) {
  if (r.u64("modes") != models_.size()) {
    throw util::StateCodecError(
        "trajectory state: execution-mode count mismatch");
  }
  for (auto& m : models_) m.load_state(r);
}

ModeTrajectories::ModeTrajectories(double max_step, std::size_t bins) {
  models_.reserve(monitor::kExecutionModeCount);
  for (std::size_t i = 0; i < monitor::kExecutionModeCount; ++i) {
    models_.emplace_back(max_step, bins);
  }
}

TrajectoryModel& ModeTrajectories::model(monitor::ExecutionMode mode) {
  return models_[static_cast<std::size_t>(mode)];
}

const TrajectoryModel& ModeTrajectories::model(
    monitor::ExecutionMode mode) const {
  return models_[static_cast<std::size_t>(mode)];
}

}  // namespace stayaway::core
