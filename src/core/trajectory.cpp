#include "core/trajectory.hpp"

#include <cmath>

#include "stats/sampler.hpp"
#include "util/check.hpp"

namespace stayaway::core {

namespace {
constexpr double kPi = std::numbers::pi;

// Paranoid audit: a non-empty histogram's probability masses must sum to
// 1 — inverse-transform sampling silently skews if normalization drifts.
bool mass_sums_to_one(const stats::Histogram& h) {
  if (h.empty()) return false;
  double acc = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) acc += h.mass(i);
  return std::abs(acc - 1.0) <= 1e-9;
}

}  // namespace

TrajectoryModel::TrajectoryModel(double max_step, std::size_t bins)
    // Step lengths concentrate near zero (states mostly linger or move a
    // little), so the step histogram gets 4x the angular resolution: with
    // the default range of a normalized space, plain `bins` would be
    // coarser than a typical step and quantize every mode to bin 0.
    : steps_(0.0, max_step, bins * 4), angles_(-kPi, kPi, bins) {
  SA_REQUIRE(max_step > 0.0, "max step must be positive");
}

void TrajectoryModel::observe(const mds::Point2& from, const mds::Point2& to) {
  steps_.add(mds::distance(from, to));
  angles_.add(mds::step_angle(from, to));
  ++observations_;
}

std::vector<mds::Point2> TrajectoryModel::sample_future(
    const mds::Point2& current, std::size_t count, Rng& rng) const {
  SA_REQUIRE(observations_ > 0, "trajectory model has no observations");
  SA_INVARIANT(mass_sums_to_one(steps_),
               "step-length histogram masses must sum to 1");
  SA_INVARIANT(mass_sums_to_one(angles_),
               "angle histogram masses must sum to 1");
  stats::InverseTransformSampler step_sampler(steps_);
  stats::InverseTransformSampler angle_sampler(angles_);
  std::vector<mds::Point2> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double d = step_sampler.sample(rng);
    double a = angle_sampler.sample(rng);
    out.push_back(mds::step_from(current, d, a));
  }
  return out;
}

ModeTrajectories::ModeTrajectories(double max_step, std::size_t bins) {
  models_.reserve(monitor::kExecutionModeCount);
  for (std::size_t i = 0; i < monitor::kExecutionModeCount; ++i) {
    models_.emplace_back(max_step, bins);
  }
}

TrajectoryModel& ModeTrajectories::model(monitor::ExecutionMode mode) {
  return models_[static_cast<std::size_t>(mode)];
}

const TrajectoryModel& ModeTrajectories::model(
    monitor::ExecutionMode mode) const {
  return models_[static_cast<std::size_t>(mode)];
}

}  // namespace stayaway::core
