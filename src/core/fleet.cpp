#include "core/fleet.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::core {

namespace {

// splitmix64 finalizer: full-avalanche bijection on u64.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fleet_host_seed(std::uint64_t base, std::size_t host_index) {
  // Avalanche base and index independently before combining. A single
  // finalizer over the affine input base + gamma*(i+1) is a bijection,
  // but its input lattice makes (base + gamma, i) and (base, i + 1)
  // identical — correlated fleets for golden-gamma-related base seeds.
  // Mixing base first destroys that additive structure; the +1 keeps
  // host 0 from collapsing onto mix64(mix64(base)).
  const std::uint64_t gamma = 0x9e3779b97f4a7c15ULL;
  return mix64(mix64(base) ^
               (gamma * (static_cast<std::uint64_t>(host_index) + 1)));
}

FleetController::FleetController(FleetConfig config) : config_(config) {
  SA_REQUIRE(config_.workers >= 1, "a fleet needs at least one worker");
}

void FleetController::add_member(Member member) {
  SA_REQUIRE(!member.name.empty(), "fleet members need a name");
  SA_REQUIRE(member.host != nullptr && member.pipeline != nullptr,
             "fleet members need a host and a pipeline");
  SA_REQUIRE(member.ticks_per_period >= 1,
             "each period must advance at least one tick");
  for (const Member& m : members_) {
    SA_REQUIRE(m.name != member.name, "fleet member names must be unique");
    SA_REQUIRE(m.host != member.host,
               "one host cannot belong to two fleet members");
  }
  members_.push_back(std::move(member));
}

void FleetController::drive(Member& member) const {
  for (std::size_t p = 0; p < member.periods; ++p) {
    if (member.on_tick) {
      for (std::size_t t = 0; t < member.ticks_per_period; ++t) {
        member.host->step();
        member.on_tick();
      }
    } else {
      member.host->run(member.ticks_per_period);
    }
    const PeriodRecord& rec = member.pipeline->on_period();
    if (member.on_period) member.on_period(rec);
    if (recorder_) recorder_->record_period(member.name, rec);
  }
}

void FleetController::run() {
  if (members_.empty()) return;
  std::size_t workers = std::min(config_.workers, members_.size());
  if (workers <= 1) {
    for (Member& m : members_) drive(m);
    return;
  }
  // Concurrent members each run full map->predict->act loops; the
  // process-wide hot-path pool is non-reentrant and single-owner, so
  // kernel-level parallelism must be off (1 thread = pure inline calls
  // with no shared pool state) before host-level parallelism goes on.
  SA_REQUIRE(util::hot_path_threads() == 1,
             "fleet workers > 1 requires hot_path_threads == 1 "
             "(host-level and kernel-level parallelism do not compose)");
  util::ThreadPool pool(workers);
  // RangeFn must not throw: capture per-member exceptions and surface
  // the first after the section ends.
  std::vector<std::exception_ptr> errors(members_.size());
  pool.for_ranges(members_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        drive(members_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace stayaway::core
