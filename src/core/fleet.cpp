#include "core/fleet.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::core {

namespace {

// splitmix64 finalizer: full-avalanche bijection on u64.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(MemberHealth health) {
  switch (health) {
    case MemberHealth::Normal:
      return "normal";
    case MemberHealth::Down:
      return "down";
    case MemberHealth::Recovering:
      return "recovering";
  }
  return "unknown";
}

std::uint64_t fleet_host_seed(std::uint64_t base, std::size_t host_index) {
  // Avalanche base and index independently before combining. A single
  // finalizer over the affine input base + gamma*(i+1) is a bijection,
  // but its input lattice makes (base + gamma, i) and (base, i + 1)
  // identical — correlated fleets for golden-gamma-related base seeds.
  // Mixing base first destroys that additive structure; the +1 keeps
  // host 0 from collapsing onto mix64(mix64(base)).
  const std::uint64_t gamma = 0x9e3779b97f4a7c15ULL;
  return mix64(mix64(base) ^
               (gamma * (static_cast<std::uint64_t>(host_index) + 1)));
}

FleetController::FleetController(FleetConfig config) : config_(config) {
  SA_REQUIRE(config_.workers >= 1, "a fleet needs at least one worker");
}

void FleetController::add_member(Member member) {
  SA_REQUIRE(!member.name.empty(), "fleet members need a name");
  SA_REQUIRE(member.host != nullptr && member.pipeline != nullptr,
             "fleet members need a host and a pipeline");
  SA_REQUIRE(member.ticks_per_period >= 1,
             "each period must advance at least one tick");
  for (const Member& m : members_) {
    SA_REQUIRE(m.name != member.name, "fleet member names must be unique");
    SA_REQUIRE(m.host != member.host,
               "one host cannot belong to two fleet members");
  }
  members_.push_back(std::move(member));
}

void FleetController::drive(Member& member) const {
  if (member.rebuild) {
    std::vector<std::string> checkpoints;  // oldest..newest; last 2 kept
    for (std::size_t p = 0; p < member.periods; ++p) {
      drive_one_period_supervised(member, p, checkpoints);
    }
    return;
  }
  for (std::size_t p = 0; p < member.periods; ++p) {
    drive_one_period(member);
  }
}

void FleetController::drive_one_period(Member& member) const {
  if (member.on_tick) {
    for (std::size_t t = 0; t < member.ticks_per_period; ++t) {
      member.host->step();
      member.on_tick();
    }
  } else {
    member.host->run(member.ticks_per_period);
  }
  const PeriodRecord& rec = member.pipeline->on_period();
  if (member.on_period) member.on_period(rec);
  if (recorder_) recorder_->record_period(member.name, rec);
}

void FleetController::drive_one_period_supervised(
    Member& member, std::size_t p,
    std::vector<std::string>& checkpoints) const {
  // Injected faults are masked behind the crash horizon once handled, so
  // only a genuine (deterministic) defect can make the same period fail
  // again; after this many recoveries the member is declared dead and
  // its exception surfaces through run() — the rest of the fleet keeps
  // going.
  constexpr std::size_t kMaxRecoveriesPerPeriod = 3;
  auto run_ticks = [&member] {
    if (member.on_tick) {
      for (std::size_t t = 0; t < member.ticks_per_period; ++t) {
        member.host->step();
        member.on_tick();
      }
    } else {
      member.host->run(member.ticks_per_period);
    }
  };
  std::size_t recoveries = 0;
  // HostCrash fires at the period boundary, before any tick of p, so
  // the recovered member replays nothing it has not already done.
  const sim::FaultInjector* inj = member.pipeline->fault_injector();
  if (inj != nullptr && inj->crash_signal(member.host->now())) {
    ++member.recovery.crashes;
    member.health = MemberHealth::Down;
    recover(member, checkpoints, p, member.host->now());
    ++recoveries;
  }
  bool period_done = false;
  while (!period_done) {
    run_ticks();
    std::size_t stall_retries = 0;
    bool escalate = false;
    double fail_time = 0.0;
    while (!escalate) {
      try {
        const PeriodRecord& rec = member.pipeline->on_period();
        if (member.on_period) member.on_period(rec);
        if (recorder_) recorder_->record_period(member.name, rec);
        period_done = true;
        break;
      } catch (const StageStallError& e) {
        // The watchdog's deadline is a deterministic attempt budget:
        // retry the stage in place until the budget runs out, then
        // treat the stall as a crash.
        ++member.recovery.stalls;
        ++stall_retries;
        if (stall_retries < config_.watchdog_budget) continue;
        ++member.recovery.watchdog_trips;
        if (recoveries >= kMaxRecoveriesPerPeriod) throw;
        escalate = true;
        fail_time = e.time();
      } catch (const StageThrowError& e) {
        ++member.recovery.stage_throws;
        if (recoveries >= kMaxRecoveriesPerPeriod) throw;
        escalate = true;
        fail_time = e.time();
      } catch (const std::exception&) {
        // An uninjected stage defect: trap it like a crash so the
        // rest of the fleet keeps running, but give up once it proves
        // deterministic.
        if (recoveries >= kMaxRecoveriesPerPeriod) throw;
        escalate = true;
        fail_time = member.host->now();
      }
    }
    if (escalate) {
      member.health = MemberHealth::Down;
      recover(member, checkpoints, p, fail_time);
      ++recoveries;
      // loop: re-run this period's ticks on the recovered host
    }
  }
  if (config_.checkpoint_every > 0 &&
      (p + 1) % config_.checkpoint_every == 0 &&
      member.pipeline->checkpointable()) {
    std::string blob = encode_checkpoint(*member.pipeline);
    const sim::FaultInjector* cinj = member.pipeline->fault_injector();
    if (cinj != nullptr && cinj->checkpoint_corrupt(member.host->now())) {
      corrupt_checkpoint_blob(blob);
    }
    checkpoints.push_back(std::move(blob));
    if (checkpoints.size() > 2) checkpoints.erase(checkpoints.begin());
    ++member.recovery.checkpoints_saved;
  }
}

void FleetController::recover(Member& member,
                              std::vector<std::string>& checkpoints,
                              std::size_t period, double fail_time) const {
  member.health = MemberHealth::Recovering;
  // The crashed pipeline's completed history drives the divergence
  // check; capture it (encoded, so NaN coordinates compare exactly)
  // before the rebuild tears the pipeline down.
  std::vector<std::string> history;
  history.reserve(member.pipeline->records().size());
  for (const PeriodRecord& rec : member.pipeline->records()) {
    history.push_back(encode_record(rec));
  }
  // Newest usable checkpoint wins. A checkpoint that fails to restore is
  // dropped for good (it will not get better); with none left the member
  // cold-starts and replays the whole run.
  std::size_t restored = 0;
  bool warm = false;
  while (!checkpoints.empty() && !warm) {
    Member::Rebuilt fresh = member.rebuild();
    SA_REQUIRE(fresh.host != nullptr && fresh.pipeline != nullptr,
               "rebuild must produce a host and a pipeline");
    member.host = fresh.host;
    member.pipeline = fresh.pipeline;
    try {
      restored = restore_checkpoint(*member.pipeline, checkpoints.back());
      warm = true;
    } catch (const util::StateCodecError&) {
      ++member.recovery.corrupt_checkpoints_dropped;
      checkpoints.pop_back();
    }
  }
  if (!warm) {
    Member::Rebuilt fresh = member.rebuild();
    SA_REQUIRE(fresh.host != nullptr && fresh.pipeline != nullptr,
               "rebuild must produce a host and a pipeline");
    member.host = fresh.host;
    member.pipeline = fresh.pipeline;
    ++member.recovery.cold_starts;
    restored = 0;
  }
  // Mask every crash spec whose window had already opened, so the
  // handled failure cannot re-fire during the replay or immediately
  // after it. Must happen after the restore (which rewinds the horizon
  // to its checkpointed value).
  sim::FaultInjector* minj = member.pipeline->mutable_fault_injector();
  if (minj != nullptr) minj->set_crash_horizon(fail_time);
  if (member.on_reset) member.on_reset();
  // The whole replay is silent: hooks, the recorder and the observer
  // already consumed periods 0..period-1 on the crashed run.
  obs::Observer* observer = member.pipeline->observer();
  member.pipeline->set_observer(nullptr);
  // Fast-forward through the restored prefix: re-run the ticks, re-apply
  // the journalled actuations at their original period boundaries. Tick
  // arithmetic is deterministic, so the host lands bit-for-bit where the
  // checkpointed run stood.
  SimHostActuationPort& port = member.pipeline->actuation_port();
  for (std::size_t k = 0; k < restored; ++k) {
    member.host->run(member.ticks_per_period);
    port.replay_delivered(member.host->now());
  }
  // Gap replay: live periods from the checkpoint to the failure. The
  // restored RNG streams re-draw exactly what the crashed run drew, so
  // every regenerated record must equal the history — anything else is a
  // divergence (determinism bug or non-checkpointable state leak).
  for (std::size_t q = restored; q < period; ++q) {
    // Cluster directives (attaches, gates) acted at this period's
    // opening boundary on the crashed run; re-apply them before the
    // ticks so the replayed stream matches byte for byte.
    if (member.replay_directives) member.replay_directives(q);
    member.host->run(member.ticks_per_period);
    const PeriodRecord& rec = member.pipeline->on_period();
    if (q >= history.size() || encode_record(rec) != history[q]) {
      ++member.recovery.divergences;
    }
  }
  member.recovery.gap_periods_replayed += period - restored;
  // The failed period's own boundary directives also died with the
  // crashed objects — restore them before its ticks re-run.
  if (member.replay_directives) member.replay_directives(period);
  if (observer != nullptr) member.pipeline->set_observer(observer);
  ++member.recovery.recoveries;
  member.health = MemberHealth::Normal;
}

void FleetController::run_lockstep() {
  // Coordinated fleets are sequential by construction: the hook's
  // decisions must see every member's state for period p before any
  // member starts period p+1, and determinism requires a fixed member
  // visit order. workers is deliberately ignored.
  const std::size_t periods = members_.front().periods;
  for (const Member& m : members_) {
    SA_REQUIRE(m.periods == periods,
               "lockstep fleets need a shared period count");
  }
  std::vector<std::vector<std::string>> checkpoints(members_.size());
  for (std::size_t p = 0; p < periods; ++p) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      Member& m = members_[i];
      if (m.rebuild) {
        drive_one_period_supervised(m, p, checkpoints[i]);
      } else {
        drive_one_period(m);
      }
    }
    // No hook after the final period: the run is over, and a boundary
    // mutation there would touch hosts that never tick again.
    if (p + 1 < periods) period_hook_(p);
  }
}

void FleetController::run() {
  if (members_.empty()) return;
  if (period_hook_) {
    run_lockstep();
    return;
  }
  std::size_t workers = std::min(config_.workers, members_.size());
  if (workers <= 1) {
    for (Member& m : members_) drive(m);
    return;
  }
  // Concurrent members each run full map->predict->act loops; the
  // process-wide hot-path pool is non-reentrant and single-owner, so
  // kernel-level parallelism must be off (1 thread = pure inline calls
  // with no shared pool state) before host-level parallelism goes on.
  SA_REQUIRE(util::hot_path_threads() == 1,
             "fleet workers > 1 requires hot_path_threads == 1 "
             "(host-level and kernel-level parallelism do not compose)");
  util::ThreadPool pool(workers);
  // RangeFn must not throw: capture per-member exceptions and surface
  // the first after the section ends.
  std::vector<std::exception_ptr> errors(members_.size());
  pool.for_ranges(members_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        drive(members_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace stayaway::core
