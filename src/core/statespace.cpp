#include "core/statespace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "stats/rayleigh.hpp"
#include "util/check.hpp"

namespace stayaway::core {

namespace {

bool all_finite(const mds::Embedding& points) {
  for (const auto& p : points) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
  }
  return true;
}

}  // namespace

void StateSpace::add_state(StateLabel label) {
  forced_.push_back(label == StateLabel::Violation);
  visits_.push_back(0);
  violating_.push_back(0);
  positions_.emplace_back();
  ranges_dirty_ = true;
  ++invalidations_;
}

void StateSpace::observe_visit(std::size_t i, bool violated) {
  SA_REQUIRE(i < forced_.size(), "state index out of range");
  StateLabel before = label(i);
  ++visits_[i];
  if (violated) ++violating_[i];
  SA_CHECK(violating_[i] <= visits_[i],
           "violating visits cannot exceed total visits");
  // Most visits only move the evidence fraction without crossing the
  // threshold; the range cache survives those.
  if (label(i) != before) {
    ranges_dirty_ = true;
    ++invalidations_;
  }
}

void StateSpace::force_violation(std::size_t i) {
  SA_REQUIRE(i < forced_.size(), "state index out of range");
  if (!forced_[i] && label(i) != StateLabel::Violation) {
    ranges_dirty_ = true;
    ++invalidations_;
  }
  forced_[i] = true;
}

void StateSpace::sync_positions(const mds::Embedding& positions) {
  SA_REQUIRE(positions.size() == forced_.size(),
             "positions must cover every state");
  SA_INVARIANT(all_finite(positions),
               "state coordinates must be finite after re-embedding");
  // The embedder returns the same layout whenever the representative set
  // is unchanged, which is the common case — keep the cache warm then.
  if (positions == positions_) return;
  positions_ = positions;
  ranges_dirty_ = true;
  ++invalidations_;
}

StateLabel StateSpace::label(std::size_t i) const {
  SA_REQUIRE(i < forced_.size(), "state index out of range");
  if (forced_[i]) return StateLabel::Violation;
  if (violating_[i] == 0) return StateLabel::Safe;
  double fraction = static_cast<double>(violating_[i]) /
                    static_cast<double>(visits_[i]);
  return fraction >= kViolationEvidenceFraction ? StateLabel::Violation
                                                : StateLabel::Safe;
}

const mds::Point2& StateSpace::position(std::size_t i) const {
  SA_REQUIRE(i < positions_.size(), "state index out of range");
  return positions_[i];
}

std::size_t StateSpace::visits(std::size_t i) const {
  SA_REQUIRE(i < visits_.size(), "state index out of range");
  return visits_[i];
}

std::size_t StateSpace::violating_visits(std::size_t i) const {
  SA_REQUIRE(i < violating_.size(), "state index out of range");
  return violating_[i];
}

std::size_t StateSpace::violation_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < forced_.size(); ++i) {
    if (label(i) == StateLabel::Violation) ++n;
  }
  return n;
}

double StateSpace::scale() const {
  return mds::median_coordinate_range(positions_);
}

std::optional<double> StateSpace::nearest_safe_distance(
    const mds::Point2& from) const {
  double best = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < forced_.size(); ++i) {
    if (label(i) != StateLabel::Safe) continue;
    best = std::min(best, mds::distance(from, positions_[i]));
    found = true;
  }
  if (!found) return std::nullopt;
  return best;
}

void StateSpace::rebuild_ranges() const {
  ++rebuilds_;
  ranges_cache_.clear();
  double c = scale();
  for (std::size_t i = 0; i < forced_.size(); ++i) {
    if (label(i) != StateLabel::Violation) continue;
    ViolationRange range;
    range.state = i;
    range.center = positions_[i];
    auto d = nearest_safe_distance(positions_[i]);
    // A degenerate map (c <= 0, or a safe neighbour at distance 0 because
    // every point is coincident) gets a zero radius instead of tripping
    // rayleigh_radius's scale precondition.
    range.radius = (d.has_value() && *d > 0.0 && c > 0.0)
                       ? stats::rayleigh_radius(*d, c)
                       : 0.0;
    SA_CHECK(std::isfinite(range.radius) && range.radius >= 0.0,
             "violation radius R = d*exp(-d^2/2c^2) must be finite and >= 0");
    ranges_cache_.push_back(range);
  }
  // The cache must cover exactly the violation-states: one range per
  // violation, none for safe states.
  SA_INVARIANT(ranges_cache_.size() == violation_count(),
               "violation-range cache out of sync with the labels");
  ranges_dirty_ = false;
}

const std::vector<ViolationRange>& StateSpace::violation_ranges() const {
  if (ranges_dirty_) rebuild_ranges();
  return ranges_cache_;
}

bool StateSpace::in_violation_region(const mds::Point2& p, double slack) const {
  for (const auto& range : violation_ranges()) {
    double d = mds::distance(p, range.center);
    if (d <= range.radius + slack) return true;
  }
  return false;
}

namespace {

void write_embedding(util::StateWriter& w, std::string_view key,
                     const mds::Embedding& points) {
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  w.reals(std::string(key) + "_x", xs);
  w.reals(std::string(key) + "_y", ys);
}

mds::Embedding read_embedding(util::StateReader& r, std::string_view key) {
  std::vector<double> xs = r.reals(std::string(key) + "_x");
  std::vector<double> ys = r.reals(std::string(key) + "_y");
  if (xs.size() != ys.size()) {
    throw util::StateCodecError("embedding state: x/y length mismatch");
  }
  mds::Embedding out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = {xs[i], ys[i]};
  return out;
}

}  // namespace

void StateSpace::save_state(util::StateWriter& w) const {
  std::vector<std::uint64_t> forced(forced_.size(), 0);
  for (std::size_t i = 0; i < forced_.size(); ++i) forced[i] = forced_[i] ? 1 : 0;
  w.u64s("forced", forced);
  std::vector<std::uint64_t> visits(visits_.begin(), visits_.end());
  w.u64s("visits", visits);
  std::vector<std::uint64_t> violating(violating_.begin(), violating_.end());
  w.u64s("violating", violating);
  write_embedding(w, "positions", positions_);
  w.u64("cache_invalidations", invalidations_);
  w.u64("cache_rebuilds", rebuilds_);
}

void StateSpace::load_state(util::StateReader& r) {
  std::vector<std::uint64_t> forced = r.u64s("forced");
  std::vector<std::uint64_t> visits = r.u64s("visits");
  std::vector<std::uint64_t> violating = r.u64s("violating");
  mds::Embedding positions = read_embedding(r, "positions");
  if (visits.size() != forced.size() || violating.size() != forced.size() ||
      positions.size() != forced.size()) {
    throw util::StateCodecError("statespace state: per-state vector "
                                "lengths disagree");
  }
  forced_.assign(forced.size(), false);
  for (std::size_t i = 0; i < forced.size(); ++i) forced_[i] = forced[i] != 0;
  visits_.assign(visits.begin(), visits.end());
  violating_.assign(violating.begin(), violating.end());
  positions_ = std::move(positions);
  invalidations_ = static_cast<std::size_t>(r.u64("cache_invalidations"));
  rebuilds_ = static_cast<std::size_t>(r.u64("cache_rebuilds"));
  ranges_cache_.clear();
  ranges_dirty_ = true;
}

}  // namespace stayaway::core
