// The per-period contract shared by every pipeline stage: the
// PeriodRecord each stage fills its slice of, the degradation state
// machine the pipeline threads through them, and the passive
// prediction-accuracy tally. Split out of runtime.hpp so stage
// implementations (src/core/stages/) can speak the record vocabulary
// without seeing the host or the monolithic runtime.
#pragma once

#include <cstddef>

#include "core/governor.hpp"
#include "mds/point.hpp"
#include "monitor/mode.hpp"

namespace stayaway::core {

/// Degradation state machine (DESIGN.md §12). Normal: full telemetry,
/// paper behaviour. Degraded: running on imputed samples or a briefly
/// blind QoS probe — decisions widen conservatively. Failsafe: QoS-blind
/// past the configured patience — every batch VM is paused until
/// telemetry recovers. Recovery steps down one level at a time with
/// hysteresis (DegradationConfig::recovery_periods).
enum class DegradationState {
  Normal = 0,
  Degraded = 1,
  Failsafe = 2,
};

inline const char* to_string(DegradationState state) {
  switch (state) {
    case DegradationState::Normal:
      return "normal";
    case DegradationState::Degraded:
      return "degraded";
    case DegradationState::Failsafe:
      return "failsafe";
  }
  return "unknown";
}

/// Everything the pipeline learned and did in one control period. Each
/// stage owns a slice: the Mapper fills the mapping fields
/// (representative, state, stress, quarantine health), the
/// ViolationForecaster the prediction fields, the Actuator the action
/// fields; the pipeline itself stamps time/mode/QoS/degradation.
struct PeriodRecord {
  double time = 0.0;
  monitor::ExecutionMode mode = monitor::ExecutionMode::Idle;
  mds::Point2 state;
  std::size_t representative = 0;
  bool new_representative = false;
  bool violation_observed = false;
  bool violation_predicted = false;
  bool model_ready = false;
  ThrottleAction action = ThrottleAction::None;
  bool batch_paused_after = false;
  double stress = 0.0;
  double beta = 0.0;
  // --- Degraded-mode telemetry (defaults describe a healthy period, so
  // fault-free records compare equal to the historical sequence). ------
  DegradationState degradation = DegradationState::Normal;
  std::size_t quarantined_dims = 0;  // readings imputed this period
  std::size_t max_staleness = 0;     // longest consecutive-imputation run
  bool qos_visible = true;           // the probe reported this period
  std::size_t actuation_retries = 0;  // commands re-issued this period
  bool actuation_pending = false;     // ledger still diverged afterwards
  // --- Streaming-ingestion telemetry (DESIGN.md §15). Filled only by a
  // streaming SampleSource; the synchronous path leaves all four at 0,
  // so its serialized records stay byte-identical to the historical
  // format (the run-log emits this block only when any field is set). --
  std::size_t samples_ingested = 0;   // samples drained this period
  std::size_t late_samples = 0;       // out-of-order arrivals admitted
  std::size_t duplicate_samples = 0;  // repeat deliveries dropped
  std::size_t overflow_drops = 0;     // ring overflow since last period

  // --- Cluster telemetry (DESIGN.md §18). Filled only when a
  // ClusterCoordinator is active; coordinator-off runs leave both at 0,
  // so their serialized records stay byte-identical to the historical
  // format (the run-log emits this block only when any field is set). --
  std::size_t migrations_out = 0;  // batch VMs detached this period
  std::size_t migrations_in = 0;   // batch VMs attached this period

  /// Any streaming-ingestion field set this period?
  bool ingest_any() const {
    return samples_ingested + late_samples + duplicate_samples +
               overflow_drops >
           0;
  }

  /// Any cluster field set this period?
  bool cluster_any() const { return migrations_out + migrations_in > 0; }

  bool operator==(const PeriodRecord& o) const = default;
};

/// Passive prediction-vs-outcome tallies: each period's forecast ("will
/// the execution progress into the violation region?") scored against the
/// next period's realised map position. Meaningful when actions are
/// disabled (an acted-on prediction masks its own outcome).
struct PredictionTally {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double accuracy() const {
    std::size_t t = total();
    if (t == 0) return 0.0;
    return static_cast<double>(true_positive + true_negative) /
           static_cast<double>(t);
  }
};

}  // namespace stayaway::core
