// FleetController — drives N independent per-host pipelines to
// completion, optionally concurrently on a private worker pool
// (DESIGN.md §13). Hosts never share mutable state: each member owns its
// simulated host, pipeline, RNG streams (split from the fleet seed via
// fleet_host_seed) and degradation machinery, so a fleet of one host
// with default config emits a PeriodRecord stream byte-identical to the
// single-host runtime (golden test in tests/test_fleet.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"

namespace stayaway::core {

/// Deterministic per-host seed split: avalanches the fleet base seed and
/// the host index through independent splitmix64 finalizer rounds before
/// combining, so sibling hosts get decorrelated RNG streams while host
/// i's stream is reproducible across runs and fleet sizes. The earlier
/// additive mixer (`finalize(base + gamma * (i + 1))`) made
/// fleet_host_seed(base + gamma, i) collide with fleet_host_seed(base,
/// i + 1) — two fleets whose base seeds differed by the golden gamma
/// shared shifted host streams; the two-round mix has no such lattice
/// (pinned by the independence tests in tests/test_fleet.cpp).
std::uint64_t fleet_host_seed(std::uint64_t base, std::size_t host_index);

/// Passive per-period recorder port (DESIGN.md §14): the fleet controller
/// hands every freshly emitted PeriodRecord to the attached sink, tagged
/// with the owning member's name. Implementations must be thread-safe —
/// with workers > 1 the controller invokes the sink concurrently from
/// different member drivers (always in period order per host). Sinks are
/// strictly observational: they must not touch hosts or pipelines.
class PeriodSink {
 public:
  virtual ~PeriodSink() = default;
  virtual void record_period(const std::string& host,
                             const PeriodRecord& rec) = 0;
};

class FleetController {
 public:
  /// One host's slot in the fleet. The host and pipeline are borrowed
  /// and must outlive the controller.
  struct Member {
    std::string name;
    sim::SimHost* host = nullptr;
    HostPipeline* pipeline = nullptr;
    /// Simulation ticks advanced before each control period.
    std::size_t ticks_per_period = 10;
    /// Control periods to drive this member for.
    std::size_t periods = 0;
    /// Optional per-tick hook (series accumulation); called after every
    /// host tick, on the worker thread driving this member.
    std::function<void()> on_tick;
    /// Optional per-period hook; called with the fresh record, on the
    /// worker thread driving this member.
    std::function<void(const PeriodRecord&)> on_period;
  };

  explicit FleetController(FleetConfig config);

  /// Member names must be unique and non-empty.
  void add_member(Member member);
  std::size_t size() const { return members_.size(); }

  /// Attaches a passive per-period recorder (may be null to detach). The
  /// sink is borrowed and must outlive run(); it observes every record
  /// after the member's own on_period hook.
  void set_recorder(PeriodSink* recorder) { recorder_ = recorder; }

  /// Drives every member for its configured periods, with up to
  /// config.workers members in flight at once. Requires the process-wide
  /// hot-path pool to be single-threaded when workers > 1 (host-level
  /// and kernel-level parallelism do not compose — the global pool is
  /// not reentrant). Exceptions from member loops are captured per
  /// member and the first one rethrown after every worker joined.
  void run();

 private:
  void drive(Member& member) const;

  // Lock-free by partitioning, not by accident (DESIGN.md §16): run()
  // hands each worker a disjoint slice of members_, every per-host
  // mutable thing (host, pipeline, hooks) hangs off the Member, and the
  // controller itself is immutable while workers run. Cross-host
  // aggregation goes through recorder_, which owns its own lock
  // (replay::RunRecorder). Adding controller-level mutable state shared
  // across workers would need a util::Mutex plus SA_GUARDED_BY here.
  FleetConfig config_;
  std::vector<Member> members_;
  PeriodSink* recorder_ = nullptr;
};

}  // namespace stayaway::core
