// FleetController — drives N independent per-host pipelines to
// completion, optionally concurrently on a private worker pool
// (DESIGN.md §13). Hosts never share mutable state: each member owns its
// simulated host, pipeline, RNG streams (split from the fleet seed via
// fleet_host_seed) and degradation machinery, so a fleet of one host
// with default config emits a PeriodRecord stream byte-identical to the
// single-host runtime (golden test in tests/test_fleet.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"

namespace stayaway::core {

/// Deterministic per-host seed split: mixes the fleet base seed with the
/// host index (splitmix64 finalizer) so sibling hosts get decorrelated
/// RNG streams while host i's stream is reproducible across runs and
/// fleet sizes.
std::uint64_t fleet_host_seed(std::uint64_t base, std::size_t host_index);

class FleetController {
 public:
  /// One host's slot in the fleet. The host and pipeline are borrowed
  /// and must outlive the controller.
  struct Member {
    std::string name;
    sim::SimHost* host = nullptr;
    HostPipeline* pipeline = nullptr;
    /// Simulation ticks advanced before each control period.
    std::size_t ticks_per_period = 10;
    /// Control periods to drive this member for.
    std::size_t periods = 0;
    /// Optional per-tick hook (series accumulation); called after every
    /// host tick, on the worker thread driving this member.
    std::function<void()> on_tick;
    /// Optional per-period hook; called with the fresh record, on the
    /// worker thread driving this member.
    std::function<void(const PeriodRecord&)> on_period;
  };

  explicit FleetController(FleetConfig config);

  /// Member names must be unique and non-empty.
  void add_member(Member member);
  std::size_t size() const { return members_.size(); }

  /// Drives every member for its configured periods, with up to
  /// config.workers members in flight at once. Requires the process-wide
  /// hot-path pool to be single-threaded when workers > 1 (host-level
  /// and kernel-level parallelism do not compose — the global pool is
  /// not reentrant). Exceptions from member loops are captured per
  /// member and the first one rethrown after every worker joined.
  void run();

 private:
  void drive(Member& member) const;

  FleetConfig config_;
  std::vector<Member> members_;
};

}  // namespace stayaway::core
