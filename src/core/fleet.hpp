// FleetController — drives N independent per-host pipelines to
// completion, optionally concurrently on a private worker pool
// (DESIGN.md §13). Hosts never share mutable state: each member owns its
// simulated host, pipeline, RNG streams (split from the fleet seed via
// fleet_host_seed) and degradation machinery, so a fleet of one host
// with default config emits a PeriodRecord stream byte-identical to the
// single-host runtime (golden test in tests/test_fleet.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"

namespace stayaway::core {

/// Deterministic per-host seed split: avalanches the fleet base seed and
/// the host index through independent splitmix64 finalizer rounds before
/// combining, so sibling hosts get decorrelated RNG streams while host
/// i's stream is reproducible across runs and fleet sizes. The earlier
/// additive mixer (`finalize(base + gamma * (i + 1))`) made
/// fleet_host_seed(base + gamma, i) collide with fleet_host_seed(base,
/// i + 1) — two fleets whose base seeds differed by the golden gamma
/// shared shifted host streams; the two-round mix has no such lattice
/// (pinned by the independence tests in tests/test_fleet.cpp).
std::uint64_t fleet_host_seed(std::uint64_t base, std::size_t host_index);

/// Passive per-period recorder port (DESIGN.md §14): the fleet controller
/// hands every freshly emitted PeriodRecord to the attached sink, tagged
/// with the owning member's name. Implementations must be thread-safe —
/// with workers > 1 the controller invokes the sink concurrently from
/// different member drivers (always in period order per host). Sinks are
/// strictly observational: they must not touch hosts or pipelines.
class PeriodSink {
 public:
  virtual ~PeriodSink() = default;
  virtual void record_period(const std::string& host,
                             const PeriodRecord& rec) = 0;
};

/// Supervisor view of one member's liveness (DESIGN.md §17): Normal
/// while the control loop runs, Down the moment a crash-class failure is
/// trapped, Recovering while the checkpoint restore + replay runs. Only
/// the worker thread driving the member writes or reads it.
enum class MemberHealth {
  Normal,
  Down,
  Recovering,
};

const char* to_string(MemberHealth health);

/// What the supervisor did for one member (DESIGN.md §17). All counters
/// are lifetime totals over the member's run.
struct RecoveryReport {
  std::size_t crashes = 0;           // HostCrash signals handled
  std::size_t stage_throws = 0;      // StageThrow exceptions trapped
  std::size_t stalls = 0;            // stalled attempts retried in place
  std::size_t watchdog_trips = 0;    // stalls escalated past the budget
  std::size_t recoveries = 0;        // completed warm/cold recoveries
  std::size_t corrupt_checkpoints_dropped = 0;
  std::size_t cold_starts = 0;       // recoveries with no usable checkpoint
  std::size_t checkpoints_saved = 0;
  std::size_t gap_periods_replayed = 0;
  /// Replayed records that differed from the crashed run's history — the
  /// determinism guarantee says this stays zero; the fuzzer's
  /// checkpoint-divergence detector fails a run on any other value.
  std::size_t divergences = 0;

  bool any_failures() const {
    return crashes + stage_throws + stalls + watchdog_trips +
               corrupt_checkpoints_dropped >
           0;
  }
};

class FleetController {
 public:
  /// One host's slot in the fleet. The host and pipeline are borrowed
  /// and must outlive the controller.
  struct Member {
    std::string name;
    sim::SimHost* host = nullptr;
    HostPipeline* pipeline = nullptr;
    /// Simulation ticks advanced before each control period.
    std::size_t ticks_per_period = 10;
    /// Control periods to drive this member for.
    std::size_t periods = 0;
    /// Optional per-tick hook (series accumulation); called after every
    /// host tick, on the worker thread driving this member.
    std::function<void()> on_tick;
    /// Optional per-period hook; called with the fresh record, on the
    /// worker thread driving this member.
    std::function<void(const PeriodRecord&)> on_period;

    // --- Supervision (DESIGN.md §17). --------------------------------
    /// Fresh host + pipeline produced by a rebuild.
    struct Rebuilt {
      sim::SimHost* host = nullptr;
      HostPipeline* pipeline = nullptr;
    };
    /// Setting this enables the crash supervisor for the member. The
    /// callback must tear down and reconstruct the member's host and
    /// pipeline from scratch — same wiring, same fault plan, zero
    /// periods run — and return the fresh pointers; the supervisor then
    /// restores the newest usable checkpoint and replays the gap.
    std::function<Rebuilt()> rebuild;
    /// Optional: invoked during recovery, before the failed period's
    /// ticks re-run, to clear per-period accumulators the on_tick hook
    /// fills (the crashed attempt may already have accumulated them).
    std::function<void()> on_reset;
    /// Optional (cluster mode, DESIGN.md §18): re-applies the cluster
    /// coordinator's recorded boundary directives for the given period
    /// against this member — attaches, migration gate, incoming note.
    /// Called by the supervisor once per gap-replay period (and for the
    /// failed period itself) before that period's ticks re-run, so a
    /// recovered member reproduces coordinated decisions byte for byte.
    std::function<void(std::size_t)> replay_directives;
    /// Written by the supervisor while driving; read the totals after
    /// run().
    RecoveryReport recovery;
    /// Driver-thread-local liveness; not synchronized across threads.
    MemberHealth health = MemberHealth::Normal;
  };

  explicit FleetController(FleetConfig config);

  /// Member names must be unique and non-empty.
  void add_member(Member member);
  std::size_t size() const { return members_.size(); }
  /// Post-run inspection (recovery reports, final host/pipeline views).
  const std::vector<Member>& members() const { return members_; }

  /// Attaches a passive per-period recorder (may be null to detach). The
  /// sink is borrowed and must outlive run(); it observes every record
  /// after the member's own on_period hook.
  void set_recorder(PeriodSink* recorder) { recorder_ = recorder; }

  /// Installs a fleet-period hook (cluster mode, DESIGN.md §18): run()
  /// then drives all members in lockstep — sequentially, one shared
  /// period at a time — and invokes the hook between periods (after
  /// every member finished period p, except the last). All members must
  /// share the same period count. The hook may mutate hosts through
  /// their actuation ports (the coordinator's attach path) but must not
  /// drive pipelines itself. Null restores independent driving.
  void set_period_hook(std::function<void(std::size_t)> hook) {
    period_hook_ = std::move(hook);
  }

  /// Drives every member for its configured periods, with up to
  /// config.workers members in flight at once. Requires the process-wide
  /// hot-path pool to be single-threaded when workers > 1 (host-level
  /// and kernel-level parallelism do not compose — the global pool is
  /// not reentrant). Exceptions from member loops are captured per
  /// member and the first one rethrown after every worker joined.
  /// With a period hook installed, members run in lockstep instead
  /// (workers are ignored; the coordinated fleet is sequential by
  /// construction so coordinator decisions are deterministic).
  void run();

 private:
  void drive(Member& member) const;
  /// One unsupervised period: ticks, on_period, hooks, recorder.
  void drive_one_period(Member& member) const;
  /// One supervised period: crash trap, stall watchdog, recovery, and
  /// the end-of-period checkpoint cadence. `checkpoints` spans the
  /// member's whole run (newest last, last two kept).
  void drive_one_period_supervised(Member& member, std::size_t p,
                                   std::vector<std::string>& checkpoints)
      const;
  /// Lockstep driver behind set_period_hook().
  void run_lockstep();
  /// Rebuilds the member, restores the newest usable checkpoint (corrupt
  /// ones are dropped for good; none left = cold start), masks the
  /// handled fault behind the crash horizon and silently replays up to
  /// `period` — leaving the member exactly where the crashed run stood
  /// when period `period`'s ticks were about to run.
  void recover(Member& member, std::vector<std::string>& checkpoints,
               std::size_t period, double fail_time) const;

  // Lock-free by partitioning, not by accident (DESIGN.md §16): run()
  // hands each worker a disjoint slice of members_, every per-host
  // mutable thing (host, pipeline, hooks) hangs off the Member, and the
  // controller itself is immutable while workers run. Cross-host
  // aggregation goes through recorder_, which owns its own lock
  // (replay::RunRecorder). Adding controller-level mutable state shared
  // across workers would need a util::Mutex plus SA_GUARDED_BY here.
  FleetConfig config_;
  std::vector<Member> members_;
  PeriodSink* recorder_ = nullptr;
  std::function<void(std::size_t)> period_hook_;
};

}  // namespace stayaway::core
