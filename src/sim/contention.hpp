// Proportional-share contention resolution.
//
// Rates (CPU, memory bandwidth, disk, network) are shared proportionally
// to demand when oversubscribed — the fair-share behaviour of CFS, the
// memory bus and block/network schedulers. Memory capacity is different:
// demand beyond physical memory forces swapping, and a VM with swapped
// pages pays a multiplicative progress penalty (the cliff §7.2 relies on).
#pragma once

#include <vector>

#include "sim/resource.hpp"

namespace stayaway::sim {

/// Resolves one tick of contention. demands[i] describes VM i; the result
/// is aligned by index. Zero-demand entries receive zero and progress 1.
std::vector<Allocation> resolve_contention(const HostSpec& host,
                                           const std::vector<ResourceDemand>& demands);

}  // namespace stayaway::sim
