// Discrete-time host: owns the VMs, drives the tick loop, resolves
// contention, and keeps the utilization ledger the evaluation reports.
#pragma once

#include <memory>
#include <vector>

#include "sim/contention.hpp"
#include "sim/vm.hpp"

namespace stayaway::sim {

class SimHost {
 public:
  /// tick_seconds is the simulation quantum (default 100 ms).
  explicit SimHost(HostSpec spec, double tick_seconds = 0.1);

  /// Adds a VM; returns its id (dense, starting at 0). The app pointer
  /// must be non-null. start_time is when the VM becomes schedulable;
  /// priority orders sensitive VMs (higher = more important, §2.1).
  VmId add_vm(std::string name, VmKind kind, std::unique_ptr<AppModel> app,
              SimTime start_time = 0.0, int priority = 0);

  std::size_t vm_count() const { return vms_.size(); }
  SimVm& vm(VmId id);
  const SimVm& vm(VmId id) const;

  const HostSpec& spec() const { return spec_; }
  SimTime now() const { return now_; }
  double tick_seconds() const { return tick_seconds_; }

  /// Advances the simulation by one tick: collect demands from active VMs,
  /// resolve contention, advance the apps, update ledgers.
  void step();

  /// Runs `n` ticks.
  void run(std::size_t n);

  /// Host CPU utilization in [0,1] for the most recent tick.
  double instantaneous_cpu_utilization() const { return last_utilization_; }

  /// Total CPU work granted across all VMs so far (core-seconds).
  double total_cpu_work() const { return total_cpu_work_; }

  /// True when every VM has finished its workload.
  bool all_finished() const;

  /// Ids of the VMs of a given kind.
  std::vector<VmId> vms_of_kind(VmKind kind) const;

 private:
  HostSpec spec_;
  double tick_seconds_;
  SimTime now_ = 0.0;
  std::vector<std::unique_ptr<SimVm>> vms_;
  double last_utilization_ = 0.0;
  double total_cpu_work_ = 0.0;
};

}  // namespace stayaway::sim
