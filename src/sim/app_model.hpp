// Application model interface implemented by every simulated workload.
#pragma once

#include <string_view>

#include "sim/resource.hpp"

namespace stayaway::sim {

/// A workload running inside one VM. The host queries its demand each tick
/// and reports back what was granted; the app advances its internal state
/// (work completed, phase position, QoS metric) accordingly.
class AppModel {
 public:
  virtual ~AppModel() = default;

  virtual std::string_view name() const = 0;

  /// True once the app has completed all its work; a finished app demands
  /// nothing and its VM is considered inactive.
  virtual bool finished() const { return false; }

  /// Desired resources for the tick beginning at `now`.
  virtual ResourceDemand demand(SimTime now) = 0;

  /// Advances the app by dt seconds given the allocation it received.
  virtual void advance(SimTime now, double dt, const Allocation& alloc) = 0;
};

/// Implemented additionally by latency-sensitive apps. §3.1: "Stay-Away
/// relies on the application to report whenever a QoS violation happens";
/// this is that reporting channel.
class QosProbe {
 public:
  virtual ~QosProbe() = default;

  /// Current QoS metric, where higher is better (e.g. transcode rate,
  /// transactions per second).
  virtual double qos_value() const = 0;

  /// Metric value below which the app considers its QoS violated.
  virtual double qos_threshold() const = 0;

  /// Whether the app currently reports a QoS violation. The default is a
  /// plain threshold comparison; apps with episodic QoS (buffered video,
  /// request SLOs) override this with a hysteresis latch so a violation
  /// episode ends only once the metric has clearly recovered.
  virtual bool violated() const { return qos_value() < qos_threshold(); }

  /// QoS normalized so the threshold sits at 1.0 (paper figures 8/9/14-16
  /// plot normalized QoS against a threshold line).
  double normalized_qos() const {
    double t = qos_threshold();
    return (t > 0.0) ? qos_value() / t : qos_value();
  }
};

}  // namespace stayaway::sim
