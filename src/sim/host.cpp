#include "sim/host.hpp"

#include <utility>

#include "util/check.hpp"

namespace stayaway::sim {

SimHost::SimHost(HostSpec spec, double tick_seconds)
    : spec_(spec), tick_seconds_(tick_seconds) {
  SA_REQUIRE(tick_seconds > 0.0, "tick must be positive");
}

VmId SimHost::add_vm(std::string name, VmKind kind,
                     std::unique_ptr<AppModel> app, SimTime start_time,
                     int priority) {
  VmId id = vms_.size();
  vms_.push_back(std::make_unique<SimVm>(id, std::move(name), kind,
                                         std::move(app), start_time, priority));
  return id;
}

SimVm& SimHost::vm(VmId id) {
  SA_REQUIRE(id < vms_.size(), "unknown VM id");
  return *vms_[id];
}

const SimVm& SimHost::vm(VmId id) const {
  SA_REQUIRE(id < vms_.size(), "unknown VM id");
  return *vms_[id];
}

void SimHost::step() {
  std::vector<ResourceDemand> demands(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    auto& v = *vms_[i];
    if (v.active(now_)) {
      demands[i] = v.app().demand(now_);
    } else {
      demands[i] = ResourceDemand{};  // absent/paused/finished: no demand
      if (v.present(now_) && v.paused()) v.add_paused_time(tick_seconds_);
    }
  }

  std::vector<Allocation> allocations = resolve_contention(spec_, demands);

  double cpu_used = 0.0;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    auto& v = *vms_[i];
    v.set_last_allocation(allocations[i]);
    if (v.active(now_)) {
      v.app().advance(now_, tick_seconds_, allocations[i]);
    }
    double granted_cpu = allocations[i].granted.cpu_cores;
    cpu_used += granted_cpu;
    v.add_cpu_work(granted_cpu * tick_seconds_);
  }
  last_utilization_ = cpu_used / spec_.cpu_cores;
  total_cpu_work_ += cpu_used * tick_seconds_;
  now_ += tick_seconds_;
}

void SimHost::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

bool SimHost::all_finished() const {
  for (const auto& v : vms_) {
    if (!v->app().finished()) return false;
  }
  return true;
}

std::vector<VmId> SimHost::vms_of_kind(VmKind kind) const {
  std::vector<VmId> out;
  for (const auto& v : vms_) {
    if (v->kind() == kind) out.push_back(v->id());
  }
  return out;
}

}  // namespace stayaway::sim
