#include "sim/contention.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace stayaway::sim {

namespace {

/// Max-min fair (water-filling) share of a rate resource, the behaviour of
/// CFS and of fair I/O and network schedulers: a VM demanding less than
/// its fair share receives its full demand; the remainder is split among
/// the still-hungry VMs round by round.
void share_rate_fair(double capacity, double ResourceDemand::*field,
                     const std::vector<ResourceDemand>& demands,
                     std::vector<Allocation>& out) {
  const std::size_t n = demands.size();
  double total = 0.0;
  for (const auto& d : demands) total += d.*field;
  if (total <= capacity) {
    for (std::size_t i = 0; i < n; ++i) out[i].granted.*field = demands[i].*field;
    return;
  }

  std::vector<double> granted(n, 0.0);
  std::vector<bool> satisfied(n, false);
  double remaining = capacity;
  std::size_t hungry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (demands[i].*field > 0.0) {
      ++hungry;
    } else {
      satisfied[i] = true;
    }
  }
  while (hungry > 0 && remaining > 1e-12) {
    double share = remaining / static_cast<double>(hungry);
    bool anyone_filled = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (satisfied[i]) continue;
      double want = demands[i].*field - granted[i];
      if (want <= share) {
        granted[i] += want;
        remaining -= want;
        satisfied[i] = true;
        --hungry;
        anyone_filled = true;
      }
    }
    if (!anyone_filled) {
      // Everyone still hungry wants at least the fair share: split evenly.
      for (std::size_t i = 0; i < n; ++i) {
        if (!satisfied[i]) granted[i] += share;
      }
      remaining = 0.0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i].granted.*field = granted[i];
}

double progress_of(double granted, double demanded) {
  if (demanded <= 0.0) return 1.0;
  return std::clamp(granted / demanded, 0.0, 1.0);
}

}  // namespace

std::vector<Allocation> resolve_contention(
    const HostSpec& host, const std::vector<ResourceDemand>& demands) {
  SA_REQUIRE(host.cpu_cores > 0.0 && host.memory_mb > 0.0,
             "host must have CPU and memory");
  std::vector<Allocation> out(demands.size());
  if (demands.empty()) return out;

  share_rate_fair(host.cpu_cores, &ResourceDemand::cpu_cores, demands, out);
  share_rate_fair(host.membw_mbps, &ResourceDemand::membw_mbps, demands, out);
  share_rate_fair(host.disk_mbps, &ResourceDemand::disk_mbps, demands, out);
  share_rate_fair(host.net_mbps, &ResourceDemand::net_mbps, demands, out);

  // Memory capacity: overflow beyond physical memory is swapped out,
  // distributed across VMs proportionally to working-set size (an LRU
  // approximation: the bigger the footprint, the more pages age out).
  double total_ws = 0.0;
  for (const auto& d : demands) total_ws += d.memory_mb;
  double overflow = std::max(0.0, total_ws - host.memory_mb);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    double ws = demands[i].memory_mb;
    if (ws > 0.0 && overflow > 0.0 && total_ws > 0.0) {
      double swapped = overflow * (ws / total_ws);
      out[i].swapped_fraction = std::clamp(swapped / ws, 0.0, 1.0);
    }
    out[i].granted.memory_mb = ws * (1.0 - out[i].swapped_fraction);
    // A VM actively touching a partially swapped-out working set streams
    // pages through the disk. The response is steep: missing even a few
    // percent of a multi-GB working set faults continuously, so page
    // traffic approaches disk saturation quickly.
    out[i].swap_io_mbps =
        std::min(4.0 * out[i].swapped_fraction, 1.0) * host.disk_mbps;
  }

  // Co-run friction: CPU oversubscription degrades everyone beyond the
  // pure time-slicing loss (cache pollution, context switches).
  double total_cpu = 0.0;
  for (const auto& d : demands) total_cpu += d.cpu_cores;
  double excess = std::max(0.0, total_cpu / host.cpu_cores - 1.0);
  double efficiency = 1.0 / (1.0 + host.contention_friction * excess);

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    auto& a = out[i];
    double p = progress_of(a.granted.cpu_cores, d.cpu_cores);
    p = std::min(p, progress_of(a.granted.membw_mbps, d.membw_mbps));
    p = std::min(p, progress_of(a.granted.disk_mbps, d.disk_mbps));
    p = std::min(p, progress_of(a.granted.net_mbps, d.net_mbps));
    if (d.cpu_cores > 0.0) p *= efficiency;
    p /= 1.0 + host.swap_penalty * a.swapped_fraction;
    a.progress = std::clamp(p, 0.0, 1.0);
  }
  return out;
}

}  // namespace stayaway::sim
