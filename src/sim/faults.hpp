// Deterministic fault injection for the monitoring and actuation channels.
//
// The paper's controller assumes perfect telemetry and infallible
// pause/resume; production co-location managers get neither (Alioth,
// C-Koordinator in PAPERS.md). This subsystem injects the failure modes
// the degraded-mode control loop (DESIGN.md §12) must survive:
//
//   sensor faults    dropout (reading missing -> NaN), stuck-at (reading
//                    frozen at the previous sample), spike (reading
//                    multiplied), non-finite corruption (NaN/Inf), and
//                    whole-sample staleness (previous sample replayed)
//   QoS blindness    the sensitive app's violation-reporting channel
//                    goes silent for a window
//   failed actuation pause/resume commands silently dropped; retries draw
//                    fresh delivery trials, so delays emerge from the
//                    runtime's bounded-retry loop
//
// Everything is driven by an explicitly seeded Rng owned by the
// FaultInjector: identical plans + seeds reproduce identical fault
// streams (pinned by tests/test_faults.cpp and the stayaway_lint
// deterministic-random rule, which covers src/sim/). With no plan
// installed the runtime's behaviour is byte-identical to the fault-free
// build (golden test in tests/test_runtime.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/statecodec.hpp"

namespace stayaway::sim {

enum class FaultKind {
  SensorDropout,  // reading missing: surfaces as NaN at the sampler
  StuckAt,        // reading frozen at the previous sample's raw value
  Spike,          // reading multiplied by `magnitude`
  NonFinite,      // reading replaced by +Inf (corrupted counter)
  StaleSample,    // the whole previous sample replayed verbatim
  QosBlind,        // the QoS probe reports nothing
  PauseFail,       // a pause command is silently dropped
  ResumeFail,      // a resume command is silently dropped
  IngestDelay,     // streaming: a sample is withheld and arrives late /
                   // out of order (applied by the ring producer)
  IngestDuplicate, // streaming: a sample is delivered twice (the
                   // quarantine drops the duplicate)
  // Crash-class faults (DESIGN.md §17). These are consumed by the fleet
  // supervisor, never by the sample or actuation channels, and they draw
  // NOTHING from the plan RNG: a crashing controller must not shift the
  // fault stream of the run it later replays.
  HostCrash,          // the member's pipeline dies at the period boundary
  StageStall,         // on_period overruns its deterministic deadline
  StageThrow,         // a stage raises before mutating any state
  CheckpointCorrupt,  // checkpoints saved in the window corrupt at rest
};

const char* to_string(FaultKind kind);
/// Inverse of to_string; throws PreconditionError on unknown names.
FaultKind fault_kind_from_string(const std::string& name);

/// True for the supervisor-consumed crash-class kinds (HostCrash,
/// StageStall, StageThrow, CheckpointCorrupt).
bool is_crash_fault(FaultKind kind);

/// One fault schedule entry: a kind active over [start_s, end_s), firing
/// per draw with `probability`. Sensor faults target one flat measurement
/// dimension (`dimension` >= 0) or every dimension (-1).
struct FaultSpec {
  FaultKind kind = FaultKind::SensorDropout;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  double probability = 1.0;
  double magnitude = 8.0;  // Spike multiplier
  int dimension = -1;      // flat measurement dimension; -1 = all

  bool active(double now) const { return now >= start_s && now < end_s; }
};

/// A seeded, declarative fault schedule. The seed is part of the plan so
/// a plan file fully determines the injected fault stream.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
  /// True when any spec is crash-class — what makes the fleet controller
  /// run its members under supervision (DESIGN.md §17).
  bool has_crash_faults() const;
};

/// Parses one fault line, `<kind> key=value ...` with keys start, end,
/// p, mag, dim. Errors throw PreconditionError naming `line_no`.
FaultSpec parse_fault_spec(const std::string& text, std::size_t line_no);

/// Canonical single-line form of a spec, parseable by parse_fault_spec:
/// `<kind> start=<s> [end=<s>] p=<p> mag=<m> dim=<d>` (end omitted for
/// an unbounded window). parse_fault_spec(to_spec_string(s)) == s for
/// every valid spec — the recorder serializes fault plans through this.
std::string to_spec_string(const FaultSpec& spec);

/// Parses the fault-plan text format consumed by `stayaway_sim --faults`:
///
///   # 20% sensor dropout while the batch job runs, then QoS blindness
///   seed  = 7
///   fault = sensor-dropout start=20 end=60 p=0.2
///   fault = qos-blind      start=30 end=45
///   fault = pause-fail     start=20 end=50 p=0.5
///
/// Unknown keys, unknown fault kinds and malformed values throw
/// PreconditionError naming the offending line.
FaultPlan parse_fault_plan(std::istream& in);

/// What corrupt_sample did to one measurement.
struct SensorFaultReport {
  std::size_t dropped = 0;    // dims replaced by NaN (missing reading)
  std::size_t corrupted = 0;  // dims stuck, spiked or made non-finite
  bool stale = false;         // the whole previous sample was replayed

  bool any() const { return dropped + corrupted > 0 || stale; }
};

/// Applies a FaultPlan deterministically. All stochastic draws flow
/// through the plan-seeded Rng in plan order, so two injectors built from
/// the same plan produce identical streams under identical call
/// sequences.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Applies the plan's sensor faults to a raw measurement in place.
  SensorFaultReport corrupt_sample(double now, std::vector<double>& values);

  /// True when the QoS probe is blind at `now`.
  bool qos_blind(double now);

  /// Actuation channel: false = the command was silently dropped. One
  /// draw per command, so per-VM delivery can partially fail.
  bool pause_delivered(double now);
  bool resume_delivered(double now);

  /// Samples that left corrupt_sample with at least one fault applied.
  std::size_t faulted_samples() const { return faulted_samples_; }
  /// Pause/resume commands dropped so far.
  std::size_t dropped_commands() const { return dropped_commands_; }

  /// Crash-class queries (fleet supervisor only; DESIGN.md §17). Unlike
  /// every channel above these never draw from the plan RNG — the
  /// probability field is ignored and a spec fires deterministically
  /// while its window is active — so a crash changes nothing about the
  /// sensor/QoS/actuation fault streams it interleaves with. Each query
  /// also honours the crash horizon: after handling a failure the
  /// supervisor advances the horizon to the failure time, masking every
  /// spec whose window opened at or before it, so a handled fault cannot
  /// re-fire during the replayed gap or immediately after it.
  bool crash_signal(double now) const;
  bool stage_throw(double now) const;
  /// True when on_period attempt `attempt` (0-based) at `now` should
  /// stall. A spec stalls the first `magnitude` attempts of each period
  /// in its window: with magnitude below the supervisor's watchdog
  /// budget the stage recovers in place; at or above it the watchdog
  /// escalates to a full crash recovery.
  bool stage_stall(double now, std::size_t attempt) const;
  /// True when a checkpoint saved at `now` corrupts at rest. Not horizon
  /// masked — corruption is a storage property, not a handled failure.
  bool checkpoint_corrupt(double now) const;
  double crash_horizon() const { return crash_horizon_; }
  /// Monotone: keeps the larger of the current and given horizon.
  void set_crash_horizon(double horizon);

  /// Snapshot of the injector's mutable state — the RNG stream, the
  /// stuck-at/stale replay sample, counters and the crash horizon
  /// (DESIGN.md §17).
  void save_state(util::StateWriter& w) const;
  void load_state(util::StateReader& r);

 private:
  bool command_delivered(double now, FaultKind kind);
  bool crash_query(double now, FaultKind kind) const;

  FaultPlan plan_;
  Rng rng_;
  std::vector<double> prev_raw_;  // previous pre-fault sample
  std::size_t faulted_samples_ = 0;
  std::size_t dropped_commands_ = 0;
  double crash_horizon_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stayaway::sim
