// A simulated VM/container hosting one application model.
#pragma once

#include <memory>
#include <string>

#include "sim/app_model.hpp"
#include "sim/resource.hpp"

namespace stayaway::sim {

enum class VmKind {
  Sensitive,  // latency-sensitive: QoS must be protected
  Batch,      // best-effort: may be throttled at will
};

using VmId = std::size_t;

class SimVm {
 public:
  /// The VM becomes schedulable at `start_time` (supports the paper's
  /// lifecycle where the batch VM arrives after the sensitive one).
  /// `priority` orders sensitive VMs (§2.1 of the paper: with multiple
  /// co-scheduled sensitive applications, the lower-priority one may be
  /// sacrificed); higher values are more important. Batch VMs ignore it.
  SimVm(VmId id, std::string name, VmKind kind, std::unique_ptr<AppModel> app,
        SimTime start_time, int priority = 0);

  VmId id() const { return id_; }
  const std::string& name() const { return name_; }
  VmKind kind() const { return kind_; }
  SimTime start_time() const { return start_time_; }
  int priority() const { return priority_; }

  AppModel& app() { return *app_; }
  const AppModel& app() const { return *app_; }

  /// SIGSTOP analogue: a paused VM demands nothing and makes no progress.
  /// Its resident pages are eligible for eviction at no ongoing cost —
  /// a stopped process performs no memory accesses, so its working set
  /// stops exerting pressure within a tick.
  void pause() { paused_ = true; }
  /// SIGCONT analogue.
  void resume() { paused_ = false; }
  bool paused() const { return paused_; }

  /// Migration-out analogue: a detached VM has left the host entirely —
  /// it is never present, demands nothing, and keeps its work ledger.
  void detach() { detached_ = true; }
  /// Migration-in analogue (cold restart): the VM re-arrives at `now`
  /// unpaused; its app resumes from wherever its internal clock left off.
  void attach(SimTime now);
  bool detached() const { return detached_; }

  /// Active means: arrived, not finished, not paused.
  bool active(SimTime now) const;

  /// Arrived and not finished (may still be paused).
  bool present(SimTime now) const;

  /// Usage actually granted in the most recent tick.
  const Allocation& last_allocation() const { return last_allocation_; }
  void set_last_allocation(const Allocation& a) { last_allocation_ = a; }

  /// Cumulative CPU work received (core-seconds) — the utilization ledger.
  double cpu_work_done() const { return cpu_work_done_; }
  void add_cpu_work(double core_seconds) { cpu_work_done_ += core_seconds; }

  /// Total simulated time spent paused.
  double paused_time() const { return paused_time_; }
  void add_paused_time(double dt) { paused_time_ += dt; }

 private:
  VmId id_;
  std::string name_;
  VmKind kind_;
  std::unique_ptr<AppModel> app_;
  SimTime start_time_;
  int priority_;
  bool paused_ = false;
  bool detached_ = false;
  Allocation last_allocation_;
  double cpu_work_done_ = 0.0;
  double paused_time_ = 0.0;
};

}  // namespace stayaway::sim
