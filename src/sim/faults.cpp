#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway::sim {

namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::SensorDropout,  FaultKind::StuckAt,
    FaultKind::Spike,          FaultKind::NonFinite,
    FaultKind::StaleSample,    FaultKind::QosBlind,
    FaultKind::PauseFail,      FaultKind::ResumeFail,
    FaultKind::IngestDelay,    FaultKind::IngestDuplicate,
    FaultKind::HostCrash,      FaultKind::StageStall,
    FaultKind::StageThrow,     FaultKind::CheckpointCorrupt,
};

bool is_sensor_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::SensorDropout:
    case FaultKind::StuckAt:
    case FaultKind::Spike:
    case FaultKind::NonFinite:
    case FaultKind::StaleSample:
      return true;
    case FaultKind::QosBlind:
    case FaultKind::PauseFail:
    case FaultKind::ResumeFail:
    case FaultKind::IngestDelay:
    case FaultKind::IngestDuplicate:
    case FaultKind::HostCrash:
    case FaultKind::StageStall:
    case FaultKind::StageThrow:
    case FaultKind::CheckpointCorrupt:
      return false;
  }
  return false;
}

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw PreconditionError("fault plan line " + std::to_string(line) + ": " +
                          message);
}

double parse_double(std::size_t line, const std::string& value) {
  try {
    std::size_t pos = 0;
    double v = std::stod(value, &pos);
    if (pos != value.size()) fail(line, "trailing characters in number");
    return v;
  } catch (const std::logic_error&) {
    fail(line, "expected a number, got '" + value + "'");
  }
}

void validate_spec(const FaultSpec& spec, std::size_t line_no) {
  if (!(spec.probability >= 0.0 && spec.probability <= 1.0)) {
    fail(line_no, "p must be in [0,1]");
  }
  if (!(spec.end_s > spec.start_s)) {
    fail(line_no, "fault window must satisfy end > start");
  }
  if (!std::isfinite(spec.magnitude) || spec.magnitude <= 0.0) {
    fail(line_no, "mag must be finite and positive");
  }
  if (spec.dimension < -1) fail(line_no, "dim must be >= 0, or -1 for all");
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::SensorDropout:
      return "sensor-dropout";
    case FaultKind::StuckAt:
      return "stuck-at";
    case FaultKind::Spike:
      return "spike";
    case FaultKind::NonFinite:
      return "non-finite";
    case FaultKind::StaleSample:
      return "stale-sample";
    case FaultKind::QosBlind:
      return "qos-blind";
    case FaultKind::PauseFail:
      return "pause-fail";
    case FaultKind::ResumeFail:
      return "resume-fail";
    case FaultKind::IngestDelay:
      return "ingest-delay";
    case FaultKind::IngestDuplicate:
      return "ingest-dup";
    case FaultKind::HostCrash:
      return "host-crash";
    case FaultKind::StageStall:
      return "stage-stall";
    case FaultKind::StageThrow:
      return "stage-throw";
    case FaultKind::CheckpointCorrupt:
      return "checkpoint-corrupt";
  }
  return "unknown";
}

bool is_crash_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::HostCrash:
    case FaultKind::StageStall:
    case FaultKind::StageThrow:
    case FaultKind::CheckpointCorrupt:
      return true;
    default:
      return false;
  }
}

bool FaultPlan::has_crash_faults() const {
  for (const FaultSpec& f : faults) {
    if (is_crash_fault(f.kind)) return true;
  }
  return false;
}

FaultKind fault_kind_from_string(const std::string& name) {
  for (FaultKind kind : kAllKinds) {
    if (name == to_string(kind)) return kind;
  }
  throw PreconditionError("unknown fault kind: " + name);
}

FaultSpec parse_fault_spec(const std::string& text, std::size_t line_no) {
  std::istringstream in(trim(text));
  std::string kind_name;
  in >> kind_name;
  if (kind_name.empty()) fail(line_no, "empty fault specification");

  FaultSpec spec;
  try {
    spec.kind = fault_kind_from_string(kind_name);
  } catch (const PreconditionError& e) {
    fail(line_no, e.what());
  }

  std::string token;
  while (in >> token) {
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      fail(line_no, "expected key=value, got '" + token + "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");
    if (key == "start") {
      spec.start_s = parse_double(line_no, value);
    } else if (key == "end") {
      spec.end_s = parse_double(line_no, value);
    } else if (key == "p") {
      spec.probability = parse_double(line_no, value);
    } else if (key == "mag") {
      spec.magnitude = parse_double(line_no, value);
    } else if (key == "dim") {
      spec.dimension = static_cast<int>(parse_double(line_no, value));
    } else {
      fail(line_no, "unknown fault key '" + key + "'");
    }
  }
  validate_spec(spec, line_no);
  return spec;
}

std::string to_spec_string(const FaultSpec& spec) {
  std::string out = to_string(spec.kind);
  out += " start=" + format_double_exact(spec.start_s);
  if (std::isfinite(spec.end_s)) {
    out += " end=" + format_double_exact(spec.end_s);
  }
  out += " p=" + format_double_exact(spec.probability);
  out += " mag=" + format_double_exact(spec.magnitude);
  out += " dim=" + std::to_string(spec.dimension);
  return out;
}

FaultPlan parse_fault_plan(std::istream& in) {
  FaultPlan plan;
  bool seed_seen = false;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (in.eof() && !line.empty()) {
      // getline hit end-of-input before a delimiter: the final line was
      // cut mid-record (a partial write or truncated download). Silently
      // accepting it would half-apply a plan, so fail loudly instead; an
      // unterminated blank or comment line is harmless.
      fail(line_no, "truncated final line (missing trailing newline)");
    }
    if (line.empty()) continue;

    auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");

    if (key == "seed") {
      if (seed_seen) fail(line_no, "duplicate key 'seed'");
      seed_seen = true;
      // Plain decimal parses the full 64-bit range; going through a
      // double truncates every seed above 2^53. The double fallback
      // keeps historical forms like `seed = 1e6` working.
      if (!parse_u64(value, plan.seed)) {
        plan.seed = static_cast<std::uint64_t>(parse_double(line_no, value));
      }
    } else if (key == "fault") {
      plan.faults.push_back(parse_fault_spec(value, line_no));
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    // Re-validate programmatically built plans with the parser's rules.
    validate_spec(plan_.faults[i], i + 1);
  }
}

SensorFaultReport FaultInjector::corrupt_sample(double now,
                                                std::vector<double>& values) {
  SensorFaultReport report;
  // Pre-fault copy: stuck-at and stale faults replay what the sensor
  // actually read last period, not what the previous faults produced.
  std::vector<double> raw = values;
  for (const FaultSpec& f : plan_.faults) {
    if (!is_sensor_fault(f.kind) || !f.active(now)) continue;
    if (f.kind == FaultKind::StaleSample) {
      if (prev_raw_.size() == values.size() && rng_.chance(f.probability)) {
        values = prev_raw_;
        report.stale = true;
      }
      continue;
    }
    std::size_t first = 0;
    std::size_t last = values.size();
    if (f.dimension >= 0) {
      first = static_cast<std::size_t>(f.dimension);
      if (first >= values.size()) continue;  // dimension beyond this layout
      last = first + 1;
    }
    for (std::size_t d = first; d < last; ++d) {
      if (!rng_.chance(f.probability)) continue;
      switch (f.kind) {
        case FaultKind::SensorDropout:
          values[d] = std::numeric_limits<double>::quiet_NaN();
          ++report.dropped;
          break;
        case FaultKind::StuckAt:
          if (prev_raw_.size() == values.size()) {
            values[d] = prev_raw_[d];
            ++report.corrupted;
          }
          break;
        case FaultKind::Spike:
          values[d] *= f.magnitude;
          ++report.corrupted;
          break;
        case FaultKind::NonFinite:
          values[d] = std::numeric_limits<double>::infinity();
          ++report.corrupted;
          break;
        default:
          break;
      }
    }
  }
  if (report.any()) ++faulted_samples_;
  prev_raw_ = std::move(raw);
  return report;
}

bool FaultInjector::qos_blind(double now) {
  bool blind = false;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::QosBlind || !f.active(now)) continue;
    // Draw even when already blind so the consumed stream depends only on
    // the plan and the call sequence, never on prior outcomes.
    if (rng_.chance(f.probability)) blind = true;
  }
  return blind;
}

bool FaultInjector::command_delivered(double now, FaultKind kind) {
  bool delivered = true;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != kind || !f.active(now)) continue;
    if (rng_.chance(f.probability)) delivered = false;
  }
  if (!delivered) ++dropped_commands_;
  return delivered;
}

bool FaultInjector::pause_delivered(double now) {
  return command_delivered(now, FaultKind::PauseFail);
}

bool FaultInjector::resume_delivered(double now) {
  return command_delivered(now, FaultKind::ResumeFail);
}

bool FaultInjector::crash_query(double now, FaultKind kind) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != kind || !f.active(now)) continue;
    if (f.start_s > crash_horizon_) return true;
  }
  return false;
}

bool FaultInjector::crash_signal(double now) const {
  return crash_query(now, FaultKind::HostCrash);
}

bool FaultInjector::stage_throw(double now) const {
  return crash_query(now, FaultKind::StageThrow);
}

bool FaultInjector::stage_stall(double now, std::size_t attempt) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::StageStall || !f.active(now)) continue;
    if (f.start_s <= crash_horizon_) continue;
    if (static_cast<double>(attempt) < f.magnitude) return true;
  }
  return false;
}

bool FaultInjector::checkpoint_corrupt(double now) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind == FaultKind::CheckpointCorrupt && f.active(now)) return true;
  }
  return false;
}

void FaultInjector::set_crash_horizon(double horizon) {
  crash_horizon_ = std::max(crash_horizon_, horizon);
}

void FaultInjector::save_state(util::StateWriter& w) const {
  w.line("fault_rng", rng_.save_state());
  w.reals("prev_raw", prev_raw_);
  w.u64("faulted_samples", faulted_samples_);
  w.u64("dropped_commands", dropped_commands_);
  w.real("crash_horizon", crash_horizon_);
}

void FaultInjector::load_state(util::StateReader& r) {
  rng_.load_state(r.line("fault_rng"));
  prev_raw_ = r.reals("prev_raw");
  faulted_samples_ = static_cast<std::size_t>(r.u64("faulted_samples"));
  dropped_commands_ = static_cast<std::size_t>(r.u64("dropped_commands"));
  crash_horizon_ = r.real("crash_horizon");
}

}  // namespace stayaway::sim
