// Host resource model.
//
// The paper's testbed is a 4-core i5 running LXC containers; Stay-Away
// observes per-container CPU / memory / disk-I/O / network usage. The
// simulator models those four subsystems plus memory bandwidth, with
// proportional sharing under contention and a swap cliff when working
// sets exceed physical memory.
#pragma once

namespace stayaway::sim {

/// Simulated wall-clock time in seconds.
using SimTime = double;

struct HostSpec {
  double cpu_cores = 4.0;        // total compute capacity, in cores
  double memory_mb = 4096.0;     // physical memory
  double membw_mbps = 16000.0;   // memory-bus bandwidth
  double disk_mbps = 200.0;      // disk I/O bandwidth
  double net_mbps = 1000.0;      // network bandwidth
  /// Progress divisor weight while a VM has pages swapped out: progress is
  /// multiplied by 1 / (1 + swap_penalty * swapped_fraction). The default
  /// makes even a 10% swapped working set roughly halve throughput — the
  /// latency cliff §7.2 attributes to forced page swapping.
  double swap_penalty = 8.0;
  /// Co-run efficiency loss when CPU demand exceeds capacity: every VM's
  /// progress is multiplied by 1 / (1 + friction * excess) where excess =
  /// max(0, total_cpu_demand/cores - 1). Models the shared-cache and
  /// context-switch interference that makes co-located VMs slower than
  /// their granted CPU share alone predicts — the effect Stay-Away exists
  /// to dodge. Zero disables it (pure fair-share world).
  double contention_friction = 0.8;
};

/// Per-tick resource demand of one VM. memory_mb is the active working set
/// (a capacity, not a rate); the rest are rates.
struct ResourceDemand {
  double cpu_cores = 0.0;
  double memory_mb = 0.0;
  double membw_mbps = 0.0;
  double disk_mbps = 0.0;
  double net_mbps = 0.0;

  ResourceDemand& operator+=(const ResourceDemand& o) {
    cpu_cores += o.cpu_cores;
    memory_mb += o.memory_mb;
    membw_mbps += o.membw_mbps;
    disk_mbps += o.disk_mbps;
    net_mbps += o.net_mbps;
    return *this;
  }
};

/// What one VM actually received this tick.
struct Allocation {
  ResourceDemand granted;
  /// Fraction of the VM's working set that is swapped out, in [0,1].
  double swapped_fraction = 0.0;
  /// Page-in/out traffic caused by swapping, MB/s. This is the signal a
  /// monitor actually sees when a host thrashes (iostat/vmstat): swap
  /// pressure that barely moves CPU or granted-memory readings lights up
  /// the disk, which is what lets the state space separate swap-driven
  /// violation states from benign ones.
  double swap_io_mbps = 0.0;
  /// End-to-end progress factor in [0,1]: 1 means the app ran at full
  /// demanded speed; the bottleneck resource and the swap penalty set it.
  double progress = 1.0;
};

}  // namespace stayaway::sim
