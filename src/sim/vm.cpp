#include "sim/vm.hpp"

#include <utility>

#include "util/check.hpp"

namespace stayaway::sim {

SimVm::SimVm(VmId id, std::string name, VmKind kind,
             std::unique_ptr<AppModel> app, SimTime start_time, int priority)
    : id_(id),
      name_(std::move(name)),
      kind_(kind),
      app_(std::move(app)),
      start_time_(start_time),
      priority_(priority) {
  SA_REQUIRE(app_ != nullptr, "VM requires an application model");
  SA_REQUIRE(start_time >= 0.0, "start time must be non-negative");
}

bool SimVm::active(SimTime now) const { return present(now) && !paused_; }

bool SimVm::present(SimTime now) const {
  return !detached_ && now >= start_time_ && !app_->finished();
}

void SimVm::attach(SimTime now) {
  SA_REQUIRE(now >= 0.0, "attach time must be non-negative");
  detached_ = false;
  paused_ = false;
  start_time_ = now;
}

}  // namespace stayaway::sim
