// Versioned run-log (DESIGN.md §14): everything needed to re-execute a
// fleet run deterministically — the canonical serialized scenario
// (effective config, fleet layout, per-host seeds, fault plan) plus the
// PeriodRecord stream each host emitted, one serialized line per period.
// Replay re-runs the embedded scenario and byte-diffs the fresh lines
// against the recorded ones; because record lines round-trip exactly
// (format_double_exact), a byte-equal stream is a field-equal stream.
//
// Format (text, line oriented):
//
//   stayaway-runlog v1
//   detector = beta-out-of-band        # only on fuzzer regression logs
//   scenario <line-count>
//   ...canonical scenario document, exactly <line-count> lines...
//   records "host0" <period-count>
//   ...one serialized PeriodRecord per line...
//   records "host1" <period-count>
//   ...
//   cluster-events <line-count>        # only on coordinated runs (§18)
//   ...one coordinator decision line per event, in decision order...
//   end
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/period.hpp"

namespace stayaway::replay {

/// One host's recorded stream: the serialized PeriodRecord lines in
/// emission order.
struct HostStream {
  std::string name;
  std::vector<std::string> records;
};

struct RunLog {
  static constexpr int kVersion = 1;
  /// Fuzz-detector tag for regression logs ("" on plain recordings).
  std::string detector;
  /// Canonical scenario document (serialize_fleet_scenario output).
  std::string scenario_text;
  std::vector<HostStream> hosts;
  /// Coordinator decision log for coordinated runs (ClusterReport::
  /// events, the `cluster-events` section); empty otherwise. Replay
  /// byte-diffs it like a host stream.
  std::vector<std::string> cluster_events;
};

/// Canonical single-line form of a PeriodRecord, with exact-round-trip
/// doubles. parse_period_record inverts it field-for-field, so byte
/// equality of lines is equivalent to PeriodRecord equality.
std::string serialize_period_record(const core::PeriodRecord& rec);

/// Inverse of serialize_period_record; throws PreconditionError on a
/// malformed line (wrong field order, unknown key, bad number).
core::PeriodRecord parse_period_record(const std::string& line);

std::string serialize_run_log(const RunLog& log);

/// Parses a run-log document; throws PreconditionError naming the
/// offending line on version/framing errors.
RunLog parse_run_log(std::istream& in);

/// File convenience wrappers; throw PreconditionError on I/O failure.
void save_run_log(const RunLog& log, const std::string& path);
RunLog load_run_log(const std::string& path);

}  // namespace stayaway::replay
