// Seeded scenario fuzzer (DESIGN.md §14): mutates workload / fault /
// fleet plans within declared validity bounds, runs a budgeted batch of
// recorded fleet runs hunting controller instabilities, and shrinks any
// finding to a minimal replayable RunLog. Fully deterministic: every
// draw flows through one seeded Rng, so a (seed, budget) pair always
// reproduces the same findings (pinned by tests/test_replay.cpp and the
// stayaway_lint deterministic-random rule, which covers src/replay/).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario_file.hpp"
#include "replay/run_log.hpp"

namespace stayaway::replay {

struct FuzzConfig {
  std::uint64_t seed = 1;
  /// Scenario mutations attempted (shrink re-runs ride the same budget).
  std::size_t runs = 8;
  /// Total host-periods simulated before the batch stops, shrinking
  /// included (~60 s of wall clock at the default scenario sizes).
  std::size_t max_periods = 12000;
  /// Also mutate streaming ingestion (ring source, rates, bursts, ingest
  /// anomalies — DESIGN.md §15). Off by default: the extra draws are
  /// appended after the historical ones, so pinned seeds reproduce their
  /// committed findings byte-identically only with this flag off.
  bool ingest = false;
  /// Also inject crash-class faults (HostCrash / StageStall / StageThrow
  /// / CheckpointCorrupt — DESIGN.md §17), driving every mutated run
  /// through the fleet supervisor's recovery path. Off by default for the
  /// same pinned-seed reason; the crash draws come after every other
  /// draw, ingest ones included.
  bool recovery = false;
};

/// One controller-instability detector verdict over a recorded run.
/// Detector names are stable identifiers — regression-log filenames and
/// CHANGES entries use them.
struct FuzzFinding {
  std::string detector;
  /// Which mutation (0-based) of the batch produced it.
  std::size_t run_index = 0;
  /// Shrunk, replayable run-log with `detector` stamped into it.
  RunLog log;
};

struct FuzzReport {
  std::size_t runs_executed = 0;
  std::size_t periods_executed = 0;
  std::vector<FuzzFinding> findings;
};

/// Scans one host's record stream for instabilities: non-finite map
/// coordinates, beta outside [beta_initial, beta_max], pause/resume
/// thrash, Normal<->Degraded flapping, a stuck actuation ledger, batch
/// starvation, ingest overflow and QoS-violation bursts. Returns the
/// first detector that fires. (The checkpoint-divergence detector lives
/// in the run scan, not here — it reads the supervisor's RecoveryReport,
/// not the record stream.)
std::optional<std::string> detect_instability(
    const std::vector<core::PeriodRecord>& records,
    const core::GovernorConfig& governor);

/// Runs the budgeted fuzz batch: mutate, record, detect, shrink.
FuzzReport fuzz_scenarios(const FuzzConfig& config);

}  // namespace stayaway::replay
