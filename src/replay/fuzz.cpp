#include "replay/fuzz.hpp"

#include <cmath>
#include <utility>

#include "replay/replay.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stayaway::replay {

namespace {

constexpr harness::SensitiveKind kSensitiveKinds[] = {
    harness::SensitiveKind::VlcStream, harness::SensitiveKind::WebserviceCpu,
    harness::SensitiveKind::WebserviceMem,
    harness::SensitiveKind::WebserviceMix,
    harness::SensitiveKind::VlcTranscode,
};

constexpr harness::BatchKind kBatchKinds[] = {
    harness::BatchKind::CpuBomb,        harness::BatchKind::MemBomb,
    harness::BatchKind::Soplex,         harness::BatchKind::TwitterAnalysis,
    harness::BatchKind::VlcTranscode,   harness::BatchKind::Batch1,
    harness::BatchKind::Batch2,
};

constexpr sim::FaultKind kFaultKinds[] = {
    sim::FaultKind::SensorDropout, sim::FaultKind::StuckAt,
    sim::FaultKind::Spike,         sim::FaultKind::NonFinite,
    sim::FaultKind::StaleSample,   sim::FaultKind::QosBlind,
    sim::FaultKind::PauseFail,     sim::FaultKind::ResumeFail,
};

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&options)[N]) {
  return options[rng.index(N)];
}

std::uint64_t draw_u64(Rng& rng) { return rng.engine()(); }

/// One random scenario within the declared mutation bounds. Every bound
/// keeps the document valid (parse-clean), so a mutation can only expose
/// controller bugs, never parser rejections. Ingest draws (when enabled)
/// come strictly after every historical draw, so disabling them restores
/// the historical draw stream exactly (pinned-seed byte identity).
harness::FleetScenario mutate(Rng& rng, const FuzzConfig& config) {
  harness::Scenario base;
  harness::ExperimentSpec& spec = base.spec;
  spec.policy = harness::PolicyKind::StayAway;
  spec.sensitive = pick(rng, kSensitiveKinds);
  spec.batch = pick(rng, kBatchKinds);
  spec.duration_s = std::floor(rng.uniform(20.0, 61.0));
  spec.period_s = 1.0;
  spec.tick_s = 0.1;
  spec.sensitive_start_s = 2.0;
  spec.batch_start_s = std::floor(rng.uniform(5.0, 15.0));
  spec.seed = draw_u64(rng);
  base.workload = rng.chance(0.5) ? "diurnal" : "constant";
  base.workload_cycles = rng.uniform(1.0, 4.0);

  core::GovernorConfig& gov = spec.stayaway.governor;
  gov.beta_initial = rng.uniform(0.005, 0.05);
  gov.beta_increment = rng.uniform(0.0, 0.02);
  gov.beta_max = rng.chance(0.2)
                     ? 0.0  // cap disabled: the runaway-beta regime
                     : std::max(gov.beta_initial, rng.uniform(0.05, 0.3));
  gov.resume_grace_s = rng.uniform(1.0, 5.0);
  gov.starvation_patience_s = std::floor(rng.uniform(5.0, 20.0));
  gov.random_resume_probability = rng.uniform(0.0, 0.4);
  spec.stayaway.sampler.noise_fraction = rng.uniform(0.0, 0.1);

  sim::FaultPlan plan;
  plan.seed = draw_u64(rng);
  std::size_t fault_count = 1 + rng.index(4);
  for (std::size_t i = 0; i < fault_count; ++i) {
    sim::FaultSpec fault;
    fault.kind = pick(rng, kFaultKinds);
    fault.start_s = std::floor(rng.uniform(0.0, spec.duration_s * 0.6));
    fault.end_s = fault.start_s + std::floor(rng.uniform(3.0, 30.0));
    fault.probability = rng.uniform(0.2, 1.0);
    fault.magnitude = rng.uniform(2.0, 16.0);
    fault.dimension = rng.chance(0.5) ? -1 : static_cast<int>(rng.index(5));
    plan.faults.push_back(fault);
  }
  spec.faults = std::move(plan);

  std::size_t extra_vms = rng.index(3);
  for (std::size_t i = 0; i < extra_vms; ++i) {
    harness::ExtraVmSpec vm;
    vm.name = "fz" + std::to_string(i);
    vm.kind = pick(rng, kBatchKinds);
    vm.start_s = std::floor(rng.uniform(0.0, spec.duration_s / 2.0));
    spec.extra_batch.push_back(std::move(vm));
  }

  if (config.ingest) {
    // Streaming ingestion mutations (DESIGN.md §15): ring source at a
    // randomized base rate, a small ring so burst windows can overflow
    // it, and optionally a burst window plus producer-side ingest
    // anomalies (late/out-of-order and duplicate deliveries).
    core::IngestConfig& ing = spec.stayaway.ingest;
    ing.source = core::IngestSource::Ring;
    ing.rate_hz = std::floor(rng.uniform(8.0, 64.0));
    ing.ring_capacity = std::size_t{64} << rng.index(4);  // 64..512
    if (rng.chance(0.5)) {
      ing.burst_rate_hz = std::floor(rng.uniform(128.0, 1024.0));
      ing.burst_start_s = std::floor(rng.uniform(0.0, spec.duration_s * 0.5));
      ing.burst_end_s = ing.burst_start_s + std::floor(rng.uniform(3.0, 15.0));
    }
    if (rng.chance(0.5)) {
      sim::FaultSpec fault;
      fault.kind = rng.chance(0.5) ? sim::FaultKind::IngestDelay
                                   : sim::FaultKind::IngestDuplicate;
      fault.start_s = std::floor(rng.uniform(0.0, spec.duration_s * 0.6));
      fault.end_s = fault.start_s + std::floor(rng.uniform(3.0, 30.0));
      fault.probability = rng.uniform(0.2, 1.0);
      fault.magnitude = 1.0;  // unused by ingest anomalies
      fault.dimension = -1;
      spec.faults->faults.push_back(fault);
    }
  }

  std::size_t host_count = 1 + rng.index(3);

  if (config.recovery) {
    // Crash-class mutations (DESIGN.md §17): their presence alone routes
    // the run through the fleet supervisor (has_crash_faults), so the
    // shrunk run-log replays its own recovery. Drawn strictly after
    // every other mutation — ingest included — so the historical draw
    // streams survive with this flag off.
    constexpr sim::FaultKind kCrashKinds[] = {
        sim::FaultKind::HostCrash, sim::FaultKind::StageStall,
        sim::FaultKind::StageThrow, sim::FaultKind::CheckpointCorrupt,
    };
    std::size_t crash_count = 1 + rng.index(2);
    for (std::size_t i = 0; i < crash_count; ++i) {
      sim::FaultSpec fault;
      fault.kind = pick(rng, kCrashKinds);
      fault.start_s = std::floor(rng.uniform(5.0, spec.duration_s * 0.8));
      fault.end_s = fault.start_s + std::floor(rng.uniform(2.0, 10.0));
      fault.probability = 1.0;  // crash queries never draw from the plan RNG
      fault.magnitude = std::floor(rng.uniform(1.0, 6.0));  // stall attempts
      fault.dimension = -1;
      spec.faults->faults.push_back(fault);
    }
  }

  harness::FleetScenario doc;
  doc.base = std::move(base);
  return canonical_fleet(doc, host_count);
}

/// Host-periods one recorded run of this fleet costs against the budget.
std::size_t run_cost(const harness::FleetScenario& fleet) {
  std::size_t cost = 0;
  for (const auto& [name, scenario] : fleet.hosts) {
    cost += static_cast<std::size_t>(
        std::llround(scenario.spec.duration_s / scenario.spec.period_s));
  }
  return cost;
}

/// Runs the fleet and scans every host's stream; returns the first
/// detector that fires.
std::optional<std::string> run_and_detect(const harness::FleetScenario& fleet,
                                          RecordedRun* out) {
  RecordedRun run = record_run(fleet);
  std::optional<std::string> fired;
  for (std::size_t h = 0; h < run.result.hosts.size() && !fired; ++h) {
    fired = detect_instability(run.result.hosts[h].result.stayaway_records,
                               fleet.hosts[h].second.spec.stayaway.governor);
  }
  // Checkpoint divergence (DESIGN.md §17): the supervisor's gap replay
  // regenerated a period that differs byte-wise from the pre-crash
  // history — the restore was not exact. Read off the RecoveryReport
  // rather than the records, which by definition look clean.
  for (std::size_t h = 0; h < run.result.hosts.size() && !fired; ++h) {
    if (run.result.hosts[h].recovery.divergences > 0) {
      fired = "checkpoint-divergence";
    }
  }
  if (out != nullptr) *out = std::move(run);
  return fired;
}

/// Greedy deterministic shrink: drop hosts, then fault lines, then extra
/// VMs, then halve the duration — keeping every step on which the same
/// detector still fires, until no step applies or the budget runs out.
harness::FleetScenario shrink(harness::FleetScenario fleet,
                              const std::string& detector,
                              const FuzzConfig& config, FuzzReport& report) {
  auto try_candidate = [&](const harness::FleetScenario& raw,
                           harness::FleetScenario* accepted) {
    if (report.periods_executed >= config.max_periods) return false;
    harness::FleetScenario candidate = canonical_fleet(raw, 0);
    report.periods_executed += run_cost(candidate);
    std::optional<std::string> fired = run_and_detect(candidate, nullptr);
    if (fired.has_value() && *fired == detector) {
      *accepted = std::move(candidate);
      return true;
    }
    return false;
  };

  bool improved = true;
  while (improved && report.periods_executed < config.max_periods) {
    improved = false;
    // Fewer hosts first: the largest single reduction.
    while (fleet.hosts.size() > 1) {
      harness::FleetScenario candidate = fleet;
      candidate.hosts.pop_back();
      if (!try_candidate(candidate, &fleet)) break;
      improved = true;
    }
    // Drop fault lines (the same line from every host — hosts are
    // replicas of one mutation, so indices line up). Crash-class lines
    // are exempt: supervised recovery is byte-identical by construction,
    // so no record-stream detector ever depends on them and dropping
    // would always succeed — stripping every --recovery finding down to
    // a default-mode one. Keeping them means a committed recovery-mode
    // regression replays its crash → restore path on every CI run; the
    // window-narrowing step below still tightens their intervals.
    std::size_t fault_count =
        fleet.hosts.front().second.spec.faults.has_value()
            ? fleet.hosts.front().second.spec.faults->faults.size()
            : 0;
    for (std::size_t k = fault_count; k-- > 0;) {
      if (sim::is_crash_fault(
              fleet.hosts.front().second.spec.faults->faults[k].kind)) {
        continue;
      }
      harness::FleetScenario candidate = fleet;
      for (auto& [name, scenario] : candidate.hosts) {
        auto& faults = scenario.spec.faults->faults;
        if (k < faults.size()) {
          faults.erase(faults.begin() + static_cast<std::ptrdiff_t>(k));
        }
        if (faults.empty()) scenario.spec.faults.reset();
      }
      if (try_candidate(candidate, &fleet)) improved = true;
    }
    // Narrow the surviving fault windows: halve each window's length
    // (floor 1 s) while the same detector still fires. Repeated rounds
    // of the outer loop shrink a crash or fault window to the tightest
    // interval that still reproduces the finding.
    std::size_t windows =
        fleet.hosts.front().second.spec.faults.has_value()
            ? fleet.hosts.front().second.spec.faults->faults.size()
            : 0;
    for (std::size_t k = 0; k < windows; ++k) {
      harness::FleetScenario candidate = fleet;
      bool applies = false;
      for (auto& [name, scenario] : candidate.hosts) {
        if (!scenario.spec.faults.has_value()) continue;
        auto& faults = scenario.spec.faults->faults;
        if (k >= faults.size()) continue;
        sim::FaultSpec& f = faults[k];
        double length = f.end_s - f.start_s;
        if (length <= 1.0) continue;
        f.end_s = f.start_s + std::max(1.0, std::floor(length / 2.0));
        applies = true;
      }
      if (applies && try_candidate(candidate, &fleet)) improved = true;
    }
    // Drop extra VMs.
    std::size_t vm_count = fleet.hosts.front().second.spec.extra_batch.size();
    for (std::size_t k = vm_count; k-- > 0;) {
      harness::FleetScenario candidate = fleet;
      for (auto& [name, scenario] : candidate.hosts) {
        auto& vms = scenario.spec.extra_batch;
        if (k < vms.size()) {
          vms.erase(vms.begin() + static_cast<std::ptrdiff_t>(k));
        }
      }
      if (try_candidate(candidate, &fleet)) improved = true;
    }
    // Halve the duration (floor 10 s).
    double duration = fleet.hosts.front().second.spec.duration_s;
    if (duration > 10.0) {
      harness::FleetScenario candidate = fleet;
      double halved = std::max(10.0, std::floor(duration / 2.0));
      for (auto& [name, scenario] : candidate.hosts) {
        scenario.spec.duration_s = halved;
      }
      if (try_candidate(candidate, &fleet)) improved = true;
    }
    // Minimize ingestion-rate windows, not just what fault/VM lines are
    // present: drop the burst window outright, then narrow it, then
    // halve the base rate (floor 8 Hz) — each step only if the finding
    // survives, so an overflow finding shrinks to the slowest stream
    // that still overflows.
    // (Snapshot by value before each step: an accepted candidate
    // reassigns `fleet`, invalidating references into it.)
    core::IngestConfig ing = fleet.hosts.front().second.spec.stayaway.ingest;
    if (ing.streaming()) {
      if (ing.burst_rate_hz > 0.0) {
        harness::FleetScenario candidate = fleet;
        for (auto& [name, scenario] : candidate.hosts) {
          core::IngestConfig& c = scenario.spec.stayaway.ingest;
          c.burst_rate_hz = 0.0;
          c.burst_start_s = 0.0;
          c.burst_end_s = 0.0;
        }
        if (try_candidate(candidate, &fleet)) improved = true;
      }
      ing = fleet.hosts.front().second.spec.stayaway.ingest;
      if (ing.burst_rate_hz > 0.0 &&
          ing.burst_end_s - ing.burst_start_s > 2.0) {
        harness::FleetScenario candidate = fleet;
        double narrowed = std::max(
            1.0, std::floor((ing.burst_end_s - ing.burst_start_s) / 2.0));
        for (auto& [name, scenario] : candidate.hosts) {
          core::IngestConfig& c = scenario.spec.stayaway.ingest;
          c.burst_end_s = c.burst_start_s + narrowed;
        }
        if (try_candidate(candidate, &fleet)) improved = true;
      }
      ing = fleet.hosts.front().second.spec.stayaway.ingest;
      if (ing.rate_hz > 8.0) {
        harness::FleetScenario candidate = fleet;
        double halved_rate = std::max(8.0, std::floor(ing.rate_hz / 2.0));
        for (auto& [name, scenario] : candidate.hosts) {
          scenario.spec.stayaway.ingest.rate_hz = halved_rate;
        }
        if (try_candidate(candidate, &fleet)) improved = true;
      }
    }
  }
  return fleet;
}

}  // namespace

std::optional<std::string> detect_instability(
    const std::vector<core::PeriodRecord>& records,
    const core::GovernorConfig& governor) {
  constexpr double kEps = 1e-9;
  // Window/streak thresholds are sized for the fuzzer's 20-60 s runs at
  // 1 s periods: tight enough to fire inside a run, loose enough that a
  // healthy controller under the same faults stays quiet.
  constexpr std::size_t kThrashPauses = 8;     // pauses...
  constexpr std::size_t kThrashWindow = 20;    // ...within this many periods
  constexpr std::size_t kFlapTransitions = 6;  // Normal<->Degraded edges...
  constexpr std::size_t kFlapWindow = 40;      // ...within this many periods
  constexpr std::size_t kLedgerStuck = 15;     // consecutive pending periods
  constexpr std::size_t kStarvationSlack = 30;  // periods past the patience

  std::vector<std::size_t> pause_at;
  std::vector<std::size_t> flap_at;
  std::size_t pending_streak = 0;
  std::size_t starve_streak = 0;
  const std::size_t starve_limit =
      static_cast<std::size_t>(std::llround(governor.starvation_patience_s)) +
      kStarvationSlack;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const core::PeriodRecord& rec = records[i];
    if (!std::isfinite(rec.state.x) || !std::isfinite(rec.state.y) ||
        !std::isfinite(rec.stress) || !std::isfinite(rec.beta)) {
      return "non-finite-map";
    }
    if (rec.beta + kEps < governor.beta_initial ||
        (governor.beta_max > 0.0 && rec.beta > governor.beta_max + kEps)) {
      return "beta-out-of-band";
    }
    if (rec.action == core::ThrottleAction::Pause) {
      pause_at.push_back(i);
      if (pause_at.size() >= kThrashPauses &&
          i - pause_at[pause_at.size() - kThrashPauses] < kThrashWindow) {
        return "pause-thrash";
      }
    }
    if (i > 0) {
      core::DegradationState prev = records[i - 1].degradation;
      bool normal_degraded_edge =
          (prev == core::DegradationState::Normal &&
           rec.degradation == core::DegradationState::Degraded) ||
          (prev == core::DegradationState::Degraded &&
           rec.degradation == core::DegradationState::Normal);
      if (normal_degraded_edge) {
        flap_at.push_back(i);
        if (flap_at.size() >= kFlapTransitions &&
            i - flap_at[flap_at.size() - kFlapTransitions] < kFlapWindow) {
          return "degradation-flap";
        }
      }
    }
    pending_streak = rec.actuation_pending ? pending_streak + 1 : 0;
    if (pending_streak >= kLedgerStuck) return "retry-ledger-stuck";
    bool starving = rec.batch_paused_after && rec.qos_visible &&
                    !rec.violation_observed && !rec.violation_predicted;
    starve_streak = starving ? starve_streak + 1 : 0;
    if (starve_streak >= starve_limit) return "batch-starvation";
  }
  // Queue overflow / backpressure (DESIGN.md §15): a ring-fed run whose
  // producer outpaces the drain sheds this many samples. Checked after
  // the scan so the historical detectors keep their priority (pinned
  // seeds must keep reproducing their committed findings).
  constexpr std::size_t kOverflowDrops = 64;
  std::size_t overflow = 0;
  for (const core::PeriodRecord& rec : records) overflow += rec.overflow_drops;
  if (overflow >= kOverflowDrops) return "ingest-overflow";
  // QoS-violation burst: the controller let this many observed
  // violations through inside a short window — prevention has
  // effectively collapsed. A healthy Stay-Away run stays in the low
  // single-digit percents, so a dense burst marks a real instability.
  // Also checked after the scan so the committed pinned-seed findings
  // keep their historical detectors.
  constexpr std::size_t kBurstViolations = 10;
  constexpr std::size_t kBurstWindow = 14;
  std::vector<std::size_t> violation_at;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].violation_observed) continue;
    violation_at.push_back(i);
    if (violation_at.size() >= kBurstViolations &&
        i - violation_at[violation_at.size() - kBurstViolations] <
            kBurstWindow) {
      return "qos-violation-burst";
    }
  }
  return std::nullopt;
}

FuzzReport fuzz_scenarios(const FuzzConfig& config) {
  SA_REQUIRE(config.runs >= 1, "a fuzz batch needs at least one run");
  FuzzReport report;
  Rng rng(config.seed);
  for (std::size_t run_index = 0;
       run_index < config.runs && report.periods_executed < config.max_periods;
       ++run_index) {
    harness::FleetScenario fleet = mutate(rng, config);
    report.periods_executed += run_cost(fleet);
    ++report.runs_executed;
    std::optional<std::string> fired = run_and_detect(fleet, nullptr);
    if (!fired.has_value()) continue;
    harness::FleetScenario minimal = shrink(fleet, *fired, config, report);
    RecordedRun final_run;
    report.periods_executed += run_cost(minimal);
    std::optional<std::string> still = run_and_detect(minimal, &final_run);
    // The shrunk scenario re-fires by construction; tolerate a detector
    // drifting between shrink steps by recording whichever one held.
    final_run.log.detector = still.value_or(*fired);
    report.findings.push_back(
        {final_run.log.detector, run_index, std::move(final_run.log)});
  }
  return report;
}

}  // namespace stayaway::replay
