// RunRecorder: the passive core::PeriodSink that captures a fleet run's
// PeriodRecord streams as serialized run-log lines (DESIGN.md §14).
// Strictly observational — attaching one changes nothing about the run
// (pinned by tests/test_replay.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "replay/run_log.hpp"
#include "util/sync.hpp"

namespace stayaway::replay {

class RunRecorder final : public core::PeriodSink {
 public:
  /// One stream per expected host, in fleet order; record_period rejects
  /// unknown host names (a recorder outliving its fleet wiring is a bug).
  explicit RunRecorder(const std::vector<std::string>& host_names);

  /// Thread-safe: fleet workers call concurrently for different hosts.
  void record_period(const std::string& host,
                     const core::PeriodRecord& rec) override;

  /// The captured streams, in construction order.
  std::vector<HostStream> streams() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<HostStream> streams_ SA_GUARDED_BY(mutex_);
};

}  // namespace stayaway::replay
