// Record/replay driver (DESIGN.md §14): canonicalizes a scenario
// document, runs it with a RunRecorder attached, and re-executes a
// saved RunLog byte-diffing every PeriodRecord line against the
// recording. Everything downstream of the canonical scenario text is
// deterministic, so record → replay mismatches mean a real divergence
// (nondeterminism or a changed controller), never formatting noise.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/fleet.hpp"
#include "harness/scenario_file.hpp"
#include "replay/run_log.hpp"

namespace stayaway::replay {

/// The runnable fleet of a parsed document: explicit [host] sections map
/// 1:1; a plain document becomes the degenerate one-host fleet "host0"
/// with its seed unchanged (the fleet-of-1 byte-identical contract makes
/// this exactly the single-host run).
harness::FleetSpec to_fleet_spec(const harness::FleetScenario& fleet);

/// Canonical form of a document: serialize → reparse, so the returned
/// scenario is exactly what a replayer reading the embedded text will
/// materialize (diurnal traces, fault plans). hosts_override >= 1
/// replicates the base across that many hosts with fleet_host_seed
/// splits (mirroring `stayaway_sim --hosts`); it requires a document
/// without explicit [host] sections. 0 keeps the document as written.
harness::FleetScenario canonical_fleet(const harness::FleetScenario& doc,
                                       std::size_t hosts_override);

struct RecordedRun {
  RunLog log;
  harness::FleetResult result;
};

/// Runs the (already canonical) fleet with a recorder attached and
/// returns the log plus the ordinary fleet result.
RecordedRun record_run(const harness::FleetScenario& fleet);

struct ReplayMismatch {
  std::string host;
  std::size_t period = 0;  // index into the host's stream
  std::string recorded;    // empty: the replay produced an extra period
  std::string replayed;    // empty: the replay ended early
};

struct ReplayReport {
  bool ok = false;
  std::size_t periods_checked = 0;
  /// First few divergences (capped; one is already proof of divergence).
  std::vector<ReplayMismatch> mismatches;
  /// Non-empty when the log could not be re-executed at all.
  std::string error;
};

/// Re-executes the log's embedded scenario and byte-diffs the fresh
/// PeriodRecord stream against the recorded one, host by host.
ReplayReport replay_run_log(const RunLog& log);

}  // namespace stayaway::replay
