#include "replay/recorder.hpp"

#include "util/check.hpp"

namespace stayaway::replay {

RunRecorder::RunRecorder(const std::vector<std::string>& host_names) {
  SA_REQUIRE(!host_names.empty(), "a recorder needs at least one host");
  streams_.reserve(host_names.size());
  for (const std::string& name : host_names) {
    SA_REQUIRE(!name.empty(), "host names must be non-empty");
    for (const HostStream& existing : streams_) {
      SA_REQUIRE(existing.name != name,
                 "duplicate recorder host name: " + name);
    }
    streams_.push_back(HostStream{name, {}});
  }
}

void RunRecorder::record_period(const std::string& host,
                                const core::PeriodRecord& rec) {
  // Serialize outside the lock; only the append is serialized. Per-host
  // ordering is the controller's: one worker drives one member, so a
  // host's periods arrive in emission order.
  std::string line = serialize_period_record(rec);
  util::MutexLock lock(mutex_);
  for (HostStream& stream : streams_) {
    if (stream.name == host) {
      stream.records.push_back(std::move(line));
      return;
    }
  }
  SA_REQUIRE(false, "record_period for unknown host: " + host);
}

std::vector<HostStream> RunRecorder::streams() const {
  util::MutexLock lock(mutex_);
  return streams_;
}

}  // namespace stayaway::replay
