#include "replay/replay.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/fleet.hpp"
#include "replay/recorder.hpp"
#include "util/check.hpp"

namespace stayaway::replay {

harness::FleetSpec to_fleet_spec(const harness::FleetScenario& fleet) {
  harness::FleetSpec spec;
  spec.workers = fleet.workers;
  if (fleet.hosts.empty()) {
    spec.hosts.push_back({"host0", fleet.base.spec});
  } else {
    spec.hosts.reserve(fleet.hosts.size());
    for (const auto& [name, scenario] : fleet.hosts) {
      spec.hosts.push_back({name, scenario.spec});
    }
  }
  spec.cluster = fleet.cluster;
  return spec;
}

harness::FleetScenario canonical_fleet(const harness::FleetScenario& doc,
                                       std::size_t hosts_override) {
  harness::FleetScenario expanded = doc;
  if (hosts_override >= 1) {
    SA_REQUIRE(doc.hosts.empty(),
               "host replication and explicit [host] sections are exclusive");
    expanded.fleet_syntax = true;
    expanded.hosts.clear();
    for (std::size_t i = 0; i < hosts_override; ++i) {
      harness::Scenario host = doc.base;
      host.spec.seed = core::fleet_host_seed(doc.base.spec.seed, i);
      expanded.hosts.emplace_back("host" + std::to_string(i),
                                  std::move(host));
    }
  }
  // Serialize → reparse so the returned scenario equals what replaying
  // the embedded text will materialize. This is where a per-host diurnal
  // trace is regenerated from the host's own seed — the canonical form,
  // not the base trace the pre-expansion document carried.
  std::istringstream in(harness::serialize_fleet_scenario(expanded));
  return harness::parse_fleet_scenario(in);
}

RecordedRun record_run(const harness::FleetScenario& fleet) {
  harness::FleetSpec spec = to_fleet_spec(fleet);
  std::vector<std::string> names;
  names.reserve(spec.hosts.size());
  for (const harness::FleetHostSpec& host : spec.hosts) {
    names.push_back(host.name);
  }
  RunRecorder recorder(names);
  spec.recorder = &recorder;
  RecordedRun run;
  run.result = harness::run_fleet(spec);
  run.log.scenario_text = harness::serialize_fleet_scenario(fleet);
  run.log.hosts = recorder.streams();
  if (run.result.cluster) {
    run.log.cluster_events = run.result.cluster->events;
  }
  return run;
}

ReplayReport replay_run_log(const RunLog& log) {
  constexpr std::size_t kMaxMismatches = 5;
  ReplayReport report;
  RunLog fresh_log;
  try {
    std::istringstream in(log.scenario_text);
    harness::FleetScenario fleet = harness::parse_fleet_scenario(in);
    fresh_log = record_run(fleet).log;
  } catch (const std::exception& e) {
    report.error = e.what();
    return report;
  }
  const std::vector<HostStream>& fresh = fresh_log.hosts;

  if (fresh.size() != log.hosts.size()) {
    report.error = "host count diverged: recorded " +
                   std::to_string(log.hosts.size()) + ", replayed " +
                   std::to_string(fresh.size());
    return report;
  }
  report.ok = true;
  for (std::size_t h = 0; h < log.hosts.size(); ++h) {
    const HostStream& recorded = log.hosts[h];
    const HostStream& replayed = fresh[h];
    if (recorded.name != replayed.name) {
      report.ok = false;
      report.error = "host order diverged: recorded '" + recorded.name +
                     "', replayed '" + replayed.name + "'";
      return report;
    }
    std::size_t periods =
        std::max(recorded.records.size(), replayed.records.size());
    for (std::size_t p = 0; p < periods; ++p) {
      const std::string* old_line =
          p < recorded.records.size() ? &recorded.records[p] : nullptr;
      const std::string* new_line =
          p < replayed.records.size() ? &replayed.records[p] : nullptr;
      if (old_line != nullptr && new_line != nullptr) ++report.periods_checked;
      if (old_line != nullptr && new_line != nullptr &&
          *old_line == *new_line) {
        continue;
      }
      report.ok = false;
      if (report.mismatches.size() < kMaxMismatches) {
        report.mismatches.push_back(
            {recorded.name, p, old_line != nullptr ? *old_line : "",
             new_line != nullptr ? *new_line : ""});
      }
    }
  }
  // The coordinator decision log diffs like a host stream: any byte
  // difference (order, count, content) fails the replay.
  std::size_t events = std::max(log.cluster_events.size(),
                                fresh_log.cluster_events.size());
  for (std::size_t e = 0; e < events; ++e) {
    const std::string* old_line = e < log.cluster_events.size()
                                      ? &log.cluster_events[e]
                                      : nullptr;
    const std::string* new_line = e < fresh_log.cluster_events.size()
                                      ? &fresh_log.cluster_events[e]
                                      : nullptr;
    if (old_line != nullptr && new_line != nullptr &&
        *old_line == *new_line) {
      continue;
    }
    report.ok = false;
    if (report.mismatches.size() < kMaxMismatches) {
      report.mismatches.push_back(
          {"<cluster>", e, old_line != nullptr ? *old_line : "",
           new_line != nullptr ? *new_line : ""});
    }
  }
  return report;
}

}  // namespace stayaway::replay
