#include "replay/run_log.hpp"

#include <fstream>
#include <istream>
#include <optional>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway::replay {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw PreconditionError("run-log line " + std::to_string(line) + ": " +
                          message);
}

/// Fixed field order of a serialized PeriodRecord line. Order is part of
/// the format: replay byte-diffs lines, so two encodings of one record
/// must not exist. The trailing ingest block (ing..ovf, DESIGN.md §15)
/// and cluster block (migout/migin, DESIGN.md §18) are each
/// all-or-nothing: emitted only when any of their fields is non-zero, so
/// a synchronous-source, coordinator-free record keeps its historical
/// byte encoding.
constexpr const char* kFieldOrder[] = {
    "t",     "mode",  "x",      "y",    "rep",    "newrep", "vobs",
    "vpred", "model", "act",    "paused", "stress", "beta",  "deg",
    "qdims", "stale", "qosvis", "retries", "pending",
    "ing",   "late",  "dup",    "ovf",
    "migout", "migin",
};
constexpr std::size_t kFieldCount = sizeof(kFieldOrder) / sizeof(*kFieldOrder);

class FieldReader {
 public:
  explicit FieldReader(const std::string& line) : in_(line) {}

  std::string next(std::size_t index) {
    SA_DCHECK(index < kFieldCount, "field index out of range");
    std::string token;
    if (!(in_ >> token)) {
      throw PreconditionError("period record truncated before field '" +
                              std::string(kFieldOrder[index]) + "'");
    }
    std::string prefix = std::string(kFieldOrder[index]) + "=";
    if (token.rfind(prefix, 0) != 0) {
      throw PreconditionError("period record expected field '" +
                              std::string(kFieldOrder[index]) + "', got '" +
                              token + "'");
    }
    return token.substr(prefix.size());
  }

  /// Next raw token with no key check, or nullopt when the line is
  /// exhausted — lets the caller dispatch between the optional trailing
  /// blocks (ingest vs cluster) on the token's own key.
  std::optional<std::string> raw() {
    std::string token;
    if (!(in_ >> token)) return std::nullopt;
    return token;
  }

  void finish() {
    std::string extra;
    if (in_ >> extra) {
      throw PreconditionError("trailing token in period record: '" + extra +
                              "'");
    }
  }

 private:
  std::istringstream in_;
};

double to_double(const std::string& value) {
  // strtod accepts the full format_double_exact range including
  // inf/-inf/nan (non-finite map coordinates are exactly what fuzz
  // regression logs exist to capture).
  std::size_t pos = 0;
  double v = std::stod(value, &pos);
  if (pos != value.size()) {
    throw PreconditionError("trailing characters in number '" + value + "'");
  }
  return v;
}

std::uint64_t to_u64(const std::string& value) {
  std::uint64_t v = 0;
  if (!parse_u64(value, v)) {
    throw PreconditionError("expected an unsigned integer, got '" + value +
                            "'");
  }
  return v;
}

/// Validates `token` carries `key=` and returns the value part. The
/// FieldReader::raw() counterpart of next()'s prefix check.
std::string strip_field(const std::string& token, const char* key) {
  std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    throw PreconditionError("period record expected field '" +
                            std::string(key) + "', got '" + token + "'");
  }
  return token.substr(prefix.size());
}

bool to_bool(const std::string& value) {
  if (value == "1") return true;
  if (value == "0") return false;
  throw PreconditionError("expected 0/1, got '" + value + "'");
}

}  // namespace

std::string serialize_period_record(const core::PeriodRecord& rec) {
  std::string out;
  auto field = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  };
  auto num = [&field](const char* key, double v) {
    field(key, format_double_exact(v));
  };
  auto count = [&field](const char* key, std::size_t v) {
    field(key, std::to_string(v));
  };
  auto flag = [&field](const char* key, bool v) { field(key, v ? "1" : "0"); };
  num("t", rec.time);
  count("mode", static_cast<std::size_t>(rec.mode));
  num("x", rec.state.x);
  num("y", rec.state.y);
  count("rep", rec.representative);
  flag("newrep", rec.new_representative);
  flag("vobs", rec.violation_observed);
  flag("vpred", rec.violation_predicted);
  flag("model", rec.model_ready);
  count("act", static_cast<std::size_t>(rec.action));
  flag("paused", rec.batch_paused_after);
  num("stress", rec.stress);
  num("beta", rec.beta);
  count("deg", static_cast<std::size_t>(rec.degradation));
  count("qdims", rec.quarantined_dims);
  count("stale", rec.max_staleness);
  flag("qosvis", rec.qos_visible);
  count("retries", rec.actuation_retries);
  flag("pending", rec.actuation_pending);
  if (rec.ingest_any()) {
    count("ing", rec.samples_ingested);
    count("late", rec.late_samples);
    count("dup", rec.duplicate_samples);
    count("ovf", rec.overflow_drops);
  }
  if (rec.cluster_any()) {
    count("migout", rec.migrations_out);
    count("migin", rec.migrations_in);
  }
  return out;
}

core::PeriodRecord parse_period_record(const std::string& line) {
  FieldReader fields(line);
  std::size_t i = 0;
  core::PeriodRecord rec;
  rec.time = to_double(fields.next(i++));
  std::uint64_t mode = to_u64(fields.next(i++));
  if (mode >= monitor::kExecutionModeCount) {
    throw PreconditionError("execution mode out of range");
  }
  rec.mode = static_cast<monitor::ExecutionMode>(mode);
  rec.state.x = to_double(fields.next(i++));
  rec.state.y = to_double(fields.next(i++));
  rec.representative = static_cast<std::size_t>(to_u64(fields.next(i++)));
  rec.new_representative = to_bool(fields.next(i++));
  rec.violation_observed = to_bool(fields.next(i++));
  rec.violation_predicted = to_bool(fields.next(i++));
  rec.model_ready = to_bool(fields.next(i++));
  std::uint64_t act = to_u64(fields.next(i++));
  if (act > 2) throw PreconditionError("throttle action out of range");
  rec.action = static_cast<core::ThrottleAction>(act);
  rec.batch_paused_after = to_bool(fields.next(i++));
  rec.stress = to_double(fields.next(i++));
  rec.beta = to_double(fields.next(i++));
  std::uint64_t deg = to_u64(fields.next(i++));
  if (deg > 2) throw PreconditionError("degradation state out of range");
  rec.degradation = static_cast<core::DegradationState>(deg);
  rec.quarantined_dims = static_cast<std::size_t>(to_u64(fields.next(i++)));
  rec.max_staleness = static_cast<std::size_t>(to_u64(fields.next(i++)));
  rec.qos_visible = to_bool(fields.next(i++));
  rec.actuation_retries = static_cast<std::size_t>(to_u64(fields.next(i++)));
  rec.actuation_pending = to_bool(fields.next(i++));
  // Optional trailing blocks, each all-or-nothing: the ingest block
  // (absent on synchronous-source records) then the cluster block
  // (absent on coordinator-free records). A record may carry either,
  // both, or neither; the raw() token's own key says which comes next.
  std::optional<std::string> tail = fields.raw();
  if (tail && tail->rfind("ing=", 0) == 0) {
    rec.samples_ingested =
        static_cast<std::size_t>(to_u64(strip_field(*tail, "ing")));
    rec.late_samples = static_cast<std::size_t>(to_u64(fields.next(20)));
    rec.duplicate_samples = static_cast<std::size_t>(to_u64(fields.next(21)));
    rec.overflow_drops = static_cast<std::size_t>(to_u64(fields.next(22)));
    tail = fields.raw();
  }
  if (tail) {
    rec.migrations_out =
        static_cast<std::size_t>(to_u64(strip_field(*tail, "migout")));
    rec.migrations_in = static_cast<std::size_t>(to_u64(fields.next(24)));
  }
  fields.finish();
  return rec;
}

std::string serialize_run_log(const RunLog& log) {
  std::string out = "stayaway-runlog v" + std::to_string(RunLog::kVersion) +
                    "\n";
  if (!log.detector.empty()) out += "detector = " + log.detector + "\n";
  // The scenario block is framed by an exact line count, so its body
  // needs no escaping and can never be confused with log keywords.
  std::size_t scenario_lines = 0;
  for (char c : log.scenario_text) {
    if (c == '\n') ++scenario_lines;
  }
  std::string scenario = log.scenario_text;
  if (!scenario.empty() && scenario.back() != '\n') {
    scenario += '\n';
    ++scenario_lines;
  }
  out += "scenario " + std::to_string(scenario_lines) + "\n";
  out += scenario;
  for (const HostStream& host : log.hosts) {
    out += "records \"" + host.name + "\" " +
           std::to_string(host.records.size()) + "\n";
    for (const std::string& line : host.records) {
      out += line;
      out += '\n';
    }
  }
  // Coordinator decision log (DESIGN.md §18): framed by an exact line
  // count like the scenario block, always the last section. Omitted for
  // coordinator-free runs so their historical encoding is untouched.
  if (!log.cluster_events.empty()) {
    out += "cluster-events " + std::to_string(log.cluster_events.size()) +
           "\n";
    for (const std::string& line : log.cluster_events) {
      out += line;
      out += '\n';
    }
  }
  out += "end\n";
  return out;
}

RunLog parse_run_log(std::istream& in) {
  RunLog log;
  std::string line;
  std::size_t line_no = 0;
  auto read_line = [&in, &line, &line_no](const char* what) {
    if (!std::getline(in, line)) {
      fail(line_no + 1, std::string("unexpected end of log (expected ") +
                            what + ")");
    }
    ++line_no;
    // getline only leaves eofbit set when the stream ran dry before the
    // delimiter: the final line lost its newline, i.e. the log was
    // truncated mid-line. Rejecting it here keeps a half-written record
    // from parsing as a complete one.
    if (in.eof()) {
      fail(line_no, "truncated log: final line is missing its newline");
    }
  };

  read_line("header");
  if (line != "stayaway-runlog v" + std::to_string(RunLog::kVersion)) {
    fail(line_no, "bad header '" + line + "' (expected stayaway-runlog v" +
                      std::to_string(RunLog::kVersion) + ")");
  }
  read_line("detector or scenario");
  if (line.rfind("detector = ", 0) == 0) {
    log.detector = line.substr(11);
    read_line("scenario");
  }
  if (line.rfind("scenario ", 0) != 0) {
    fail(line_no, "expected 'scenario <line-count>', got '" + line + "'");
  }
  std::uint64_t scenario_lines = 0;
  if (!parse_u64(line.substr(9), scenario_lines)) {
    fail(line_no, "bad scenario line count '" + line.substr(9) + "'");
  }
  for (std::uint64_t i = 0; i < scenario_lines; ++i) {
    read_line("scenario body");
    log.scenario_text += line;
    log.scenario_text += '\n';
  }

  read_line("records or end");
  while (line != "end") {
    if (line.rfind("cluster-events ", 0) == 0) {
      if (!log.cluster_events.empty()) {
        fail(line_no, "duplicate cluster-events section");
      }
      std::uint64_t events = 0;
      if (!parse_u64(line.substr(15), events) || events == 0) {
        fail(line_no, "bad cluster-events count '" + line.substr(15) + "'");
      }
      for (std::uint64_t i = 0; i < events; ++i) {
        read_line("cluster event");
        log.cluster_events.push_back(line);
      }
      read_line("end");
      if (line != "end") {
        fail(line_no, "cluster-events must be the last section before 'end'");
      }
      continue;
    }
    if (line.rfind("records \"", 0) != 0) {
      fail(line_no, "expected 'records \"<host>\" <count>', got '" + line +
                        "'");
    }
    std::size_t close = line.find('"', 9);
    if (close == std::string::npos || close + 2 > line.size() ||
        line[close + 1] != ' ') {
      fail(line_no, "malformed records header");
    }
    HostStream host;
    host.name = line.substr(9, close - 9);
    if (host.name.empty()) fail(line_no, "empty host name");
    std::uint64_t count = 0;
    if (!parse_u64(line.substr(close + 2), count)) {
      fail(line_no, "bad record count '" + line.substr(close + 2) + "'");
    }
    host.records.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      read_line("record line");
      host.records.push_back(line);
    }
    for (const HostStream& existing : log.hosts) {
      if (existing.name == host.name) {
        fail(line_no, "duplicate host stream '" + host.name + "'");
      }
    }
    log.hosts.push_back(std::move(host));
    read_line("records or end");
  }
  return log;
}

void save_run_log(const RunLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SA_REQUIRE(out.good(), "cannot open run-log for writing: " + path);
  std::string text = serialize_run_log(log);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  SA_REQUIRE(out.good(), "failed writing run-log: " + path);
}

RunLog load_run_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SA_REQUIRE(in.good(), "cannot open run-log: " + path);
  return parse_run_log(in);
}

}  // namespace stayaway::replay
