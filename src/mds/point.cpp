#include "mds/point.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::mds {

double distance(const Point2& a, const Point2& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double step_angle(const Point2& a, const Point2& b) {
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  if (dx == 0.0 && dy == 0.0) return 0.0;
  return std::atan2(dy, dx);
}

Point2 step_from(const Point2& from, double length, double angle) {
  return {from.x + length * std::cos(angle), from.y + length * std::sin(angle)};
}

BoundingBox bounding_box(const Embedding& points) {
  SA_REQUIRE(!points.empty(), "bounding box of an empty embedding");
  BoundingBox box{points.front().x, points.front().x, points.front().y,
                  points.front().y};
  for (const auto& p : points) {
    box.min_x = std::min(box.min_x, p.x);
    box.max_x = std::max(box.max_x, p.x);
    box.min_y = std::min(box.min_y, p.y);
    box.max_y = std::max(box.max_y, p.y);
  }
  return box;
}

double median_coordinate_range(const Embedding& points) {
  if (points.empty()) return 1e-6;
  BoundingBox box = bounding_box(points);
  double c = 0.5 * (box.range_x() + box.range_y());
  return std::max(c, 1e-6);
}

}  // namespace stayaway::mds
