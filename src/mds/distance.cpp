#include "mds/distance.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::mds {

linalg::Matrix distance_matrix(const std::vector<std::vector<double>>& vectors) {
  SA_REQUIRE(!vectors.empty(), "distance matrix of an empty set");
  const std::size_t n = vectors.size();
  linalg::Matrix d(n, n);
  // Row-parallel: iteration i writes the upper-triangle row (i, j>i) and
  // its mirror column (j>i, i). Every cell has exactly one writing
  // iteration, and each cell's value depends only on (i, j), so the result
  // is bit-identical for any thread count.
  util::hot_path_pool().for_ranges(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double dist = linalg::euclidean_distance(vectors[i], vectors[j]);
        d.at(i, j) = dist;
        d.at(j, i) = dist;
      }
    }
  });
  return d;
}

linalg::Matrix extended_distance_matrix(
    const linalg::Matrix& d, const std::vector<std::vector<double>>& vectors) {
  const std::size_t m = d.rows();
  const std::size_t n = vectors.size();
  SA_REQUIRE(d.rows() == d.cols(), "dissimilarity matrix must be square");
  SA_REQUIRE(m <= n, "matrix covers more rows than there are vectors");
  if (m == 0) return distance_matrix(vectors);
  if (m == n) return d;

  linalg::Matrix out(n, n);
  for (std::size_t r = 0; r < m; ++r) {
    auto src = d.row(r);
    auto dst = out.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  // Only the new rows/columns are computed: O((n - m) * n) distances
  // instead of the O(n^2) full rebuild. Same single-writer-per-cell
  // argument as distance_matrix, so the result is thread-count invariant
  // and entry-wise identical to distance_matrix(vectors).
  for (std::size_t i = m; i < n; ++i) {
    util::hot_path_pool().for_ranges(
        i, [&](std::size_t begin, std::size_t end) {
          for (std::size_t j = begin; j < end; ++j) {
            double dist = linalg::euclidean_distance(vectors[i], vectors[j]);
            out.at(i, j) = dist;
            out.at(j, i) = dist;
          }
        });
  }
  return out;
}

std::vector<double> distances_to(const std::vector<std::vector<double>>& vectors,
                                 const std::vector<double>& v) {
  std::vector<double> out;
  out.reserve(vectors.size());
  for (const auto& row : vectors) {
    out.push_back(linalg::euclidean_distance(row, v));
  }
  return out;
}

}  // namespace stayaway::mds
