#include "mds/distance.hpp"

#include "util/check.hpp"

namespace stayaway::mds {

linalg::Matrix distance_matrix(const std::vector<std::vector<double>>& vectors) {
  SA_REQUIRE(!vectors.empty(), "distance matrix of an empty set");
  const std::size_t n = vectors.size();
  linalg::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double dist = linalg::euclidean_distance(vectors[i], vectors[j]);
      d.at(i, j) = dist;
      d.at(j, i) = dist;
    }
  }
  return d;
}

std::vector<double> distances_to(const std::vector<std::vector<double>>& vectors,
                                 const std::vector<double>& v) {
  std::vector<double> out;
  out.reserve(vectors.size());
  for (const auto& row : vectors) {
    out.push_back(linalg::euclidean_distance(row, v));
  }
  return out;
}

}  // namespace stayaway::mds
