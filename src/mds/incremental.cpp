#include "mds/incremental.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::mds {

Point2 place_point(const Embedding& anchors,
                   const std::vector<double>& target_distances,
                   const PlacementOptions& options) {
  SA_REQUIRE(!anchors.empty(), "placement needs at least one anchor");
  SA_REQUIRE(anchors.size() == target_distances.size(),
             "anchors and distances must align");

  // Start near the most similar anchor; a zero-distance target means the
  // point coincides with it.
  std::size_t nearest = 0;
  for (std::size_t i = 1; i < target_distances.size(); ++i) {
    if (target_distances[i] < target_distances[nearest]) nearest = i;
  }
  if (target_distances[nearest] <= 0.0) return anchors[nearest];
  // Offset slightly so the Guttman step has a defined direction to every
  // anchor even when starting on top of one.
  Point2 p{anchors[nearest].x + target_distances[nearest] * 0.5,
           anchors[nearest].y};

  const double n = static_cast<double>(anchors.size());
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    double accx = 0.0;
    double accy = 0.0;
    for (std::size_t j = 0; j < anchors.size(); ++j) {
      double dj = distance(p, anchors[j]);
      if (dj > 1e-12) {
        double ratio = target_distances[j] / dj;
        accx += anchors[j].x + ratio * (p.x - anchors[j].x);
        accy += anchors[j].y + ratio * (p.y - anchors[j].y);
      } else {
        accx += anchors[j].x;
        accy += anchors[j].y;
      }
    }
    Point2 next{accx / n, accy / n};
    double moved = (next.x - p.x) * (next.x - p.x) +
                   (next.y - p.y) * (next.y - p.y);
    p = next;
    if (moved < options.tolerance) break;
  }
  return p;
}

double placement_stress(const Embedding& anchors,
                        const std::vector<double>& target_distances,
                        const Point2& p) {
  SA_REQUIRE(anchors.size() == target_distances.size(),
             "anchors and distances must align");
  double acc = 0.0;
  for (std::size_t j = 0; j < anchors.size(); ++j) {
    double diff = target_distances[j] - distance(p, anchors[j]);
    acc += diff * diff;
  }
  return acc;
}

}  // namespace stayaway::mds
