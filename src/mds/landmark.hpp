// Landmark MDS — the fast approximation path referenced in §4 of the
// paper ("existing work ... capable of doing incremental MDS with high
// performance and very low overhead", de Silva & Tenenbaum-style).
//
// A subset of k landmark points is embedded exactly with classical MDS;
// every other point is triangulated from its distances to the landmarks.
// Cost drops from O(n^2) per solve to O(nk + k^3).
#pragma once

#include <cstddef>
#include <vector>

#include "mds/point.hpp"

namespace stayaway::mds {

struct LandmarkModel {
  std::vector<std::size_t> landmark_indices;  // into the fit data set
  Embedding landmark_points;
  // Triangulation data: pseudo-inverse rows and column means of the
  // landmark squared-distance matrix.
  std::vector<double> pinv_x;
  std::vector<double> pinv_y;
  std::vector<double> mean_sq;

  /// Places a point given its distances to each landmark (same order as
  /// landmark_indices).
  Point2 place(const std::vector<double>& distances_to_landmarks) const;
};

/// Chooses k landmarks by maxmin (farthest-point) selection, which spreads
/// them across the data set; the first landmark is index 0 (deterministic).
std::vector<std::size_t> select_landmarks_maxmin(
    const std::vector<std::vector<double>>& vectors, std::size_t k);

/// Fits a landmark model on the given high-dimensional vectors.
/// Requires 2 <= k <= vectors.size().
LandmarkModel fit_landmark_mds(const std::vector<std::vector<double>>& vectors,
                               std::size_t k);

/// Convenience: fit on `vectors` and embed all of them.
Embedding landmark_embed(const std::vector<std::vector<double>>& vectors,
                         std::size_t k);

}  // namespace stayaway::mds
