// Incremental single-point placement against a fixed configuration.
//
// The Stay-Away runtime re-embeds the representative set only when it
// changes; within a period the newest measurement is placed by minimizing
// its own stress term against the existing map. This is the restriction of
// the Guttman transform to one free point and converges in a handful of
// iterations.
#pragma once

#include <cstddef>
#include <vector>

#include "mds/point.hpp"

namespace stayaway::mds {

struct PlacementOptions {
  std::size_t max_iterations = 50;
  double tolerance = 1e-9;  // squared movement per iteration
};

/// Places a new point whose high-dimensional distances to the already
/// embedded points are `target_distances` (aligned with `anchors`).
/// Starts from the anchor with the smallest target distance.
/// Requires non-empty, equal-length inputs.
Point2 place_point(const Embedding& anchors,
                   const std::vector<double>& target_distances,
                   const PlacementOptions& options = {});

/// Local (per-point) stress of a placement: sum of squared residuals
/// between target distances and realized map distances.
double placement_stress(const Embedding& anchors,
                        const std::vector<double>& target_distances,
                        const Point2& p);

}  // namespace stayaway::mds
