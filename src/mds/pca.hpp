// Principal component analysis to 2-D.
//
// §2.2 contrasts MDS against projection operators like PCA, which
// "superpose in the direction of projection". PCA is implemented as the
// ablation comparator (bench_abl_mds_vs_pca): how much violation/safe
// separability is lost when projecting instead of preserving distances.
#pragma once

#include <vector>

#include "mds/point.hpp"

namespace stayaway::mds {

struct PcaModel {
  std::vector<double> mean;         // per-dimension mean of the fit data
  std::vector<double> component_x;  // first principal axis (unit)
  std::vector<double> component_y;  // second principal axis (unit)
  double explained_fraction = 0.0;  // variance captured by the two axes

  /// Projects a vector of the fitted dimensionality.
  Point2 project(const std::vector<double>& v) const;
};

/// Fits PCA on the rows of `vectors` (all equal length, at least one row).
PcaModel fit_pca(const std::vector<std::vector<double>>& vectors);

/// Convenience: fit and project every input row.
Embedding pca_embed(const std::vector<std::vector<double>>& vectors);

}  // namespace stayaway::mds
