// 2-D point type for the mapped state space, plus the trajectory-step
// geometry (distance and absolute angle) the predictor is built on.
#pragma once

#include <vector>

namespace stayaway::mds {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 scaled(double f) const { return {x * f, y * f}; }
  bool operator==(const Point2& o) const = default;
};

/// An ordered set of mapped points; index i is the embedding of sample i.
using Embedding = std::vector<Point2>;

/// Euclidean distance between two mapped points.
double distance(const Point2& a, const Point2& b);

/// Absolute angle of the step a -> b against the x axis, in [-pi, pi).
/// §3.2.3: the trajectory is parameterised by step distance and absolute
/// angle. A zero-length step has angle 0 by convention.
double step_angle(const Point2& a, const Point2& b);

/// Destination of a step of the given length and absolute angle from `from`.
Point2 step_from(const Point2& from, double length, double angle);

/// Axis-aligned bounding box of an embedding.
struct BoundingBox {
  double min_x = 0.0;
  double max_x = 0.0;
  double min_y = 0.0;
  double max_y = 0.0;
  double range_x() const { return max_x - min_x; }
  double range_y() const { return max_y - min_y; }
};

/// Bounding box of a non-empty embedding.
BoundingBox bounding_box(const Embedding& points);

/// Median of the two coordinate ranges — the scale parameter `c` of the
/// violation-range formula (§3.2.2: "the median of the coordinate range of
/// the mapped space"). Returns a small positive floor for degenerate maps
/// so the Rayleigh scale stays valid.
double median_coordinate_range(const Embedding& points);

}  // namespace stayaway::mds
