// Pairwise distance matrices over high-dimensional measurement vectors.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace stayaway::mds {

/// Symmetric n x n matrix of Euclidean distances between the rows of
/// `vectors`. All rows must share a dimension.
linalg::Matrix distance_matrix(const std::vector<std::vector<double>>& vectors);

/// Distances from one vector to each row of `vectors`.
std::vector<double> distances_to(const std::vector<std::vector<double>>& vectors,
                                 const std::vector<double>& v);

}  // namespace stayaway::mds
