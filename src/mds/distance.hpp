// Pairwise distance matrices over high-dimensional measurement vectors.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace stayaway::mds {

/// Symmetric n x n matrix of Euclidean distances between the rows of
/// `vectors`. All rows must share a dimension.
linalg::Matrix distance_matrix(const std::vector<std::vector<double>>& vectors);

/// Grows an existing distance matrix over the first d.rows() rows of
/// `vectors` to cover all of them, computing only the new rows/columns.
/// Entry-wise identical to distance_matrix(vectors) but O((n - m) * n)
/// instead of O(n^2) when m rows are already known. Requires the square
/// matrix `d` to be the distance matrix of vectors[0 .. d.rows()).
linalg::Matrix extended_distance_matrix(
    const linalg::Matrix& d, const std::vector<std::vector<double>>& vectors);

/// Distances from one vector to each row of `vectors`.
std::vector<double> distances_to(const std::vector<std::vector<double>>& vectors,
                                 const std::vector<double>& v);

}  // namespace stayaway::mds
