// Procrustes alignment between two 2-D configurations.
//
// MDS embeddings are unique only up to rotation, reflection, translation
// and (for normalized stress) scale. Comparing two maps — e.g. validating
// that a template's violation states land where a fresh run's violations
// land (§6, Figures 17/18) — first requires aligning one onto the other.
#pragma once

#include "mds/point.hpp"

namespace stayaway::mds {

struct ProcrustesTransform {
  double rotation = 0.0;      // radians
  bool reflected = false;     // whether the source is mirrored (y negated)
  double scale = 1.0;
  Point2 translation;         // applied after rotation and scaling

  Point2 apply(const Point2& p) const;
  Embedding apply(const Embedding& points) const;
};

struct ProcrustesResult {
  ProcrustesTransform transform;
  /// Root-mean-square residual after alignment.
  double rms_error = 0.0;
};

struct ProcrustesOptions {
  bool allow_reflection = true;
  bool allow_scaling = true;
};

/// Finds the similarity transform taking `source` as close as possible to
/// `target` (least squares). Requires equal non-zero sizes; point i of the
/// source corresponds to point i of the target.
ProcrustesResult procrustes_align(const Embedding& source,
                                  const Embedding& target,
                                  const ProcrustesOptions& options = {});

}  // namespace stayaway::mds
