#include "mds/smacof.hpp"

#include <cmath>

#include "mds/classical.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::mds {

namespace {

double raw_stress(const linalg::Matrix& delta, const Embedding& x) {
  const std::size_t n = x.size();
  util::ThreadPool& pool = util::hot_path_pool();
  if (pool.size() == 1) {
    // Historical sequential accumulation, kept verbatim: the single-thread
    // configuration must stay bit-identical to the seed implementation.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double diff = delta.at(i, j) - distance(x[i], x[j]);
        acc += diff * diff;
      }
    }
    return acc;
  }
  // Parallel path: per-row partial sums, reduced in row order. The
  // association is fixed by the row structure (not by chunk boundaries),
  // so the result is identical for every thread count >= 2 — it may
  // differ from the single-thread sum only in the last ulp.
  std::vector<double> row_sum(n, 0.0);
  pool.for_ranges(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        double diff = delta.at(i, j) - distance(x[i], x[j]);
        acc += diff * diff;
      }
      row_sum[i] = acc;
    }
  });
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += row_sum[i];
  return acc;
}

double sum_delta_squared(const linalg::Matrix& delta) {
  double acc = 0.0;
  const std::size_t n = delta.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      acc += delta.at(i, j) * delta.at(i, j);
    }
  }
  return acc;
}

/// One Guttman transform: X' = (1/n) B(X) X with unit weights. Rows are
/// independent (row i reads all of x, writes only next[i]), so the
/// row-parallel result is bit-identical to the sequential one.
Embedding guttman_transform(const linalg::Matrix& delta, const Embedding& x) {
  const std::size_t n = x.size();
  Embedding next(n);

  util::hot_path_pool().for_ranges(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double bii = 0.0;
      double accx = 0.0;
      double accy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double dij = distance(x[i], x[j]);
        double bij = (dij > 1e-12) ? -delta.at(i, j) / dij : 0.0;
        bii -= bij;
        accx += bij * x[j].x;
        accy += bij * x[j].y;
      }
      next[i].x = (bii * x[i].x + accx) / static_cast<double>(n);
      next[i].y = (bii * x[i].y + accy) / static_cast<double>(n);
    }
  });
  return next;
}

void validate_dissimilarities(const linalg::Matrix& delta) {
  SA_REQUIRE(delta.rows() == delta.cols(), "dissimilarity matrix must be square");
  for (std::size_t i = 0; i < delta.rows(); ++i) {
    SA_REQUIRE(delta.at(i, i) == 0.0, "dissimilarity diagonal must be zero");
  }
}

}  // namespace

SmacofResult smacof(const linalg::Matrix& dissimilarities,
                    const SmacofOptions& options) {
  validate_dissimilarities(dissimilarities);
  const std::size_t n = dissimilarities.rows();

  SmacofResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  if (options.initial.has_value()) {
    SA_REQUIRE(options.initial->size() == n,
               "warm start must match the point count");
    result.points = *options.initial;
  } else {
    result.points = classical_mds(dissimilarities);
  }
  if (n == 1) {
    result.converged = true;
    return result;
  }

  const double denom = sum_delta_squared(dissimilarities);
  if (denom <= 0.0) {
    // All dissimilarities are zero: every configuration with coincident
    // points is optimal; collapse to the origin.
    result.points.assign(n, Point2{});
    result.converged = true;
    return result;
  }

  double stress = raw_stress(dissimilarities, result.points);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    Embedding next = guttman_transform(dissimilarities, result.points);
    double next_stress = raw_stress(dissimilarities, next);
    result.points = std::move(next);
    ++result.iterations;
    double improvement = stress - next_stress;
    stress = next_stress;
    if (improvement >= 0.0 && improvement < options.tolerance * denom) {
      result.converged = true;
      break;
    }
  }
  result.stress = std::sqrt(stress / denom);
  return result;
}

double normalized_stress(const linalg::Matrix& dissimilarities,
                         const Embedding& points) {
  validate_dissimilarities(dissimilarities);
  SA_REQUIRE(dissimilarities.rows() == points.size(),
             "configuration size must match the matrix");
  double denom = sum_delta_squared(dissimilarities);
  if (denom <= 0.0) return 0.0;
  return std::sqrt(raw_stress(dissimilarities, points) / denom);
}

}  // namespace stayaway::mds
