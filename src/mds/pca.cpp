#include "mds/pca.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "util/check.hpp"

namespace stayaway::mds {

Point2 PcaModel::project(const std::vector<double>& v) const {
  SA_REQUIRE(v.size() == mean.size(), "vector dimension mismatch");
  Point2 out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    double centered = v[i] - mean[i];
    out.x += centered * component_x[i];
    out.y += centered * component_y[i];
  }
  return out;
}

PcaModel fit_pca(const std::vector<std::vector<double>>& vectors) {
  SA_REQUIRE(!vectors.empty(), "PCA needs at least one sample");
  const std::size_t dim = vectors.front().size();
  SA_REQUIRE(dim > 0, "PCA needs non-empty vectors");
  const double n = static_cast<double>(vectors.size());

  PcaModel model;
  model.mean.assign(dim, 0.0);
  for (const auto& v : vectors) {
    SA_REQUIRE(v.size() == dim, "all samples must share a dimension");
    for (std::size_t i = 0; i < dim; ++i) model.mean[i] += v[i];
  }
  for (double& m : model.mean) m /= n;

  linalg::Matrix cov(dim, dim);
  for (const auto& v : vectors) {
    for (std::size_t i = 0; i < dim; ++i) {
      double ci = v[i] - model.mean[i];
      for (std::size_t j = i; j < dim; ++j) {
        cov.at(i, j) += ci * (v[j] - model.mean[j]);
      }
    }
  }
  double denom = (vectors.size() > 1) ? n - 1.0 : 1.0;
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i; j < dim; ++j) {
      cov.at(i, j) /= denom;
      cov.at(j, i) = cov.at(i, j);
    }
  }

  linalg::EigenDecomposition eig = linalg::eigen_symmetric(cov);
  model.component_x.assign(dim, 0.0);
  model.component_y.assign(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    model.component_x[i] = eig.vectors.at(0, i);
    model.component_y[i] = (dim > 1) ? eig.vectors.at(1, i) : 0.0;
  }

  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  double top2 = std::max(eig.values[0], 0.0) +
                ((dim > 1) ? std::max(eig.values[1], 0.0) : 0.0);
  model.explained_fraction = (total > 0.0) ? top2 / total : 1.0;
  return model;
}

Embedding pca_embed(const std::vector<std::vector<double>>& vectors) {
  PcaModel model = fit_pca(vectors);
  Embedding out;
  out.reserve(vectors.size());
  for (const auto& v : vectors) out.push_back(model.project(v));
  return out;
}

}  // namespace stayaway::mds
