// Classical (Torgerson) metric MDS.
//
// Double-centres the squared-distance matrix into a Gram matrix and takes
// its top-2 eigenpairs. Used to seed SMACOF (a good start cuts majorization
// iterations dramatically) and as the base step of landmark MDS.
#pragma once

#include "linalg/matrix.hpp"
#include "mds/point.hpp"

namespace stayaway::mds {

/// Embeds the n points described by the symmetric distance matrix into 2-D.
/// Requires a square matrix; n == 1 maps to the origin.
Embedding classical_mds(const linalg::Matrix& distances);

/// The double-centred Gram matrix B = -1/2 J D^2 J used by Torgerson
/// scaling; exposed for landmark MDS, which needs it to triangulate
/// non-landmark points.
linalg::Matrix double_centered_gram(const linalg::Matrix& distances);

}  // namespace stayaway::mds
