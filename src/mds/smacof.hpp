// SMACOF — Scaling by MAjorizing a COmplicated Function.
//
// §2.2 of the paper: coordinates are assigned by minimizing the raw stress
//   Loss(X) = sum_{i<j} w_ij (delta_ij - d_ij(X))^2
// iteratively via the Guttman transform, which majorizes the stress with a
// quadratic at every step and is guaranteed non-increasing.
#pragma once

#include <cstddef>
#include <optional>

#include "linalg/matrix.hpp"
#include "mds/point.hpp"

namespace stayaway::mds {

struct SmacofOptions {
  std::size_t max_iterations = 300;
  /// Stop when the relative stress decrease per iteration falls below this.
  double tolerance = 1e-6;
  /// Optional warm start. Must match the point count; when absent the run
  /// is seeded with classical MDS. Warm-starting from the previous period's
  /// map keeps the layout stable across periods, which the trajectory model
  /// depends on.
  std::optional<Embedding> initial;
};

struct SmacofResult {
  Embedding points;
  /// Normalized stress-1 in [0,1]: sqrt(raw stress / sum of delta^2).
  double stress = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Embeds the points described by the symmetric dissimilarity matrix into
/// 2-D. Requires a square matrix with a zero diagonal.
SmacofResult smacof(const linalg::Matrix& dissimilarities,
                    const SmacofOptions& options = {});

/// Normalized stress-1 of a given configuration against a dissimilarity
/// matrix (diagnostic; §5 uses high stress as the signal that 2-D is no
/// longer an adequate representation).
double normalized_stress(const linalg::Matrix& dissimilarities,
                         const Embedding& points);

}  // namespace stayaway::mds
