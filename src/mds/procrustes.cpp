#include "mds/procrustes.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stayaway::mds {

namespace {

Point2 centroid(const Embedding& pts) {
  Point2 c;
  for (const auto& p : pts) {
    c.x += p.x;
    c.y += p.y;
  }
  double n = static_cast<double>(pts.size());
  return {c.x / n, c.y / n};
}

struct Candidate {
  double rotation = 0.0;
  bool reflected = false;
  double scale = 1.0;
  double error = 0.0;  // sum of squared residuals in centered coordinates
};

/// Best pure-rotation (plus optional scale) fit of centered source onto
/// centered target, with the source optionally pre-reflected.
Candidate fit_rotation(const Embedding& src_centered,
                       const Embedding& tgt_centered, bool reflect,
                       bool allow_scaling) {
  double cross = 0.0;  // sum of (a x b) terms -> sin component
  double dot = 0.0;    // sum of (a . b) terms -> cos component
  double src_norm = 0.0;
  double tgt_norm = 0.0;
  for (std::size_t i = 0; i < src_centered.size(); ++i) {
    double ax = src_centered[i].x;
    double ay = reflect ? -src_centered[i].y : src_centered[i].y;
    double bx = tgt_centered[i].x;
    double by = tgt_centered[i].y;
    dot += ax * bx + ay * by;
    cross += ax * by - ay * bx;
    src_norm += ax * ax + ay * ay;
    tgt_norm += bx * bx + by * by;
  }

  Candidate c;
  c.reflected = reflect;
  c.rotation = std::atan2(cross, dot);
  double aligned_dot = std::sqrt(dot * dot + cross * cross);
  if (allow_scaling && src_norm > 1e-15) {
    c.scale = aligned_dot / src_norm;
  }
  // ||sRa - b||^2 = s^2 |a|^2 - 2 s (aligned dot) + |b|^2
  c.error = c.scale * c.scale * src_norm - 2.0 * c.scale * aligned_dot + tgt_norm;
  return c;
}

}  // namespace

Point2 ProcrustesTransform::apply(const Point2& p) const {
  double y = reflected ? -p.y : p.y;
  double cs = std::cos(rotation);
  double sn = std::sin(rotation);
  return {scale * (cs * p.x - sn * y) + translation.x,
          scale * (sn * p.x + cs * y) + translation.y};
}

Embedding ProcrustesTransform::apply(const Embedding& points) const {
  Embedding out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(apply(p));
  return out;
}

ProcrustesResult procrustes_align(const Embedding& source,
                                  const Embedding& target,
                                  const ProcrustesOptions& options) {
  SA_REQUIRE(!source.empty(), "procrustes of empty configurations");
  SA_REQUIRE(source.size() == target.size(),
             "configurations must have equal sizes");

  Point2 sc = centroid(source);
  Point2 tc = centroid(target);
  Embedding s(source.size());
  Embedding t(target.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    s[i] = source[i] - sc;
    t[i] = target[i] - tc;
  }

  Candidate best = fit_rotation(s, t, false, options.allow_scaling);
  if (options.allow_reflection) {
    Candidate mirrored = fit_rotation(s, t, true, options.allow_scaling);
    if (mirrored.error < best.error) best = mirrored;
  }

  ProcrustesResult result;
  result.transform.rotation = best.rotation;
  result.transform.reflected = best.reflected;
  result.transform.scale = best.scale;
  // translation = tc - s*R*(sc) so that apply() works on raw coordinates.
  ProcrustesTransform centered = result.transform;
  centered.translation = Point2{};
  Point2 rotated_sc = centered.apply(sc);
  result.transform.translation = {tc.x - rotated_sc.x, tc.y - rotated_sc.y};

  double mse = std::max(best.error, 0.0) / static_cast<double>(source.size());
  result.rms_error = std::sqrt(mse);
  return result;
}

}  // namespace stayaway::mds
