#include "mds/landmark.hpp"

#include <cmath>
#include <limits>

#include "linalg/eigen.hpp"
#include "mds/classical.hpp"
#include "mds/distance.hpp"
#include "util/check.hpp"

namespace stayaway::mds {

Point2 LandmarkModel::place(const std::vector<double>& d) const {
  SA_REQUIRE(d.size() == mean_sq.size(),
             "distance count must match the landmark count");
  Point2 out;
  for (std::size_t j = 0; j < d.size(); ++j) {
    double centered = d[j] * d[j] - mean_sq[j];
    out.x += -0.5 * pinv_x[j] * centered;
    out.y += -0.5 * pinv_y[j] * centered;
  }
  return out;
}

std::vector<std::size_t> select_landmarks_maxmin(
    const std::vector<std::vector<double>>& vectors, std::size_t k) {
  SA_REQUIRE(!vectors.empty(), "landmark selection over an empty set");
  SA_REQUIRE(k >= 1 && k <= vectors.size(), "invalid landmark count");

  std::vector<std::size_t> chosen{0};
  std::vector<double> best(vectors.size(),
                           std::numeric_limits<double>::infinity());
  while (chosen.size() < k) {
    std::size_t last = chosen.back();
    std::size_t argmax = 0;
    double maxdist = -1.0;
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      double dist = linalg::euclidean_distance(vectors[i], vectors[last]);
      if (dist < best[i]) best[i] = dist;
      if (best[i] > maxdist) {
        maxdist = best[i];
        argmax = i;
      }
    }
    chosen.push_back(argmax);
  }
  return chosen;
}

LandmarkModel fit_landmark_mds(const std::vector<std::vector<double>>& vectors,
                               std::size_t k) {
  SA_REQUIRE(k >= 2, "landmark MDS needs at least two landmarks");
  SA_REQUIRE(k <= vectors.size(), "more landmarks than points");

  LandmarkModel model;
  model.landmark_indices = select_landmarks_maxmin(vectors, k);

  std::vector<std::vector<double>> landmarks;
  landmarks.reserve(k);
  for (std::size_t idx : model.landmark_indices) landmarks.push_back(vectors[idx]);

  linalg::Matrix dist = distance_matrix(landmarks);
  linalg::Matrix gram = double_centered_gram(dist);
  linalg::EigenDecomposition eig = linalg::eigen_symmetric(gram);

  double l0 = std::max(eig.values[0], 0.0);
  double l1 = (eig.values.size() > 1) ? std::max(eig.values[1], 0.0) : 0.0;
  double s0 = std::sqrt(l0);
  double s1 = std::sqrt(l1);

  model.landmark_points.resize(k);
  model.pinv_x.assign(k, 0.0);
  model.pinv_y.assign(k, 0.0);
  model.mean_sq.assign(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    model.landmark_points[i].x = s0 * eig.vectors.at(0, i);
    model.landmark_points[i].y = s1 * eig.vectors.at(1, i);
    model.pinv_x[i] = (s0 > 1e-12) ? eig.vectors.at(0, i) / s0 : 0.0;
    model.pinv_y[i] = (s1 > 1e-12) ? eig.vectors.at(1, i) / s1 : 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      model.mean_sq[i] += dist.at(j, i) * dist.at(j, i);
    }
    model.mean_sq[i] /= static_cast<double>(k);
  }
  return model;
}

Embedding landmark_embed(const std::vector<std::vector<double>>& vectors,
                         std::size_t k) {
  LandmarkModel model = fit_landmark_mds(vectors, k);
  Embedding out;
  out.reserve(vectors.size());
  std::vector<double> d(model.landmark_indices.size(), 0.0);
  for (const auto& v : vectors) {
    for (std::size_t j = 0; j < model.landmark_indices.size(); ++j) {
      d[j] = linalg::euclidean_distance(vectors[model.landmark_indices[j]], v);
    }
    out.push_back(model.place(d));
  }
  return out;
}

}  // namespace stayaway::mds
