#include "mds/classical.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "util/check.hpp"

namespace stayaway::mds {

linalg::Matrix double_centered_gram(const linalg::Matrix& distances) {
  SA_REQUIRE(distances.rows() == distances.cols(),
             "distance matrix must be square");
  const std::size_t n = distances.rows();
  linalg::Matrix sq(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double d = distances.at(i, j);
      sq.at(i, j) = d * d;
    }
  }

  std::vector<double> row_mean(n, 0.0);
  double grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_mean[i] += sq.at(i, j);
    row_mean[i] /= static_cast<double>(n);
    grand += row_mean[i];
  }
  grand /= static_cast<double>(n);

  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b.at(i, j) = -0.5 * (sq.at(i, j) - row_mean[i] - row_mean[j] + grand);
    }
  }
  return b;
}

Embedding classical_mds(const linalg::Matrix& distances) {
  SA_REQUIRE(distances.rows() == distances.cols(),
             "distance matrix must be square");
  const std::size_t n = distances.rows();
  Embedding out(n);
  if (n == 1) return out;

  linalg::Matrix b = double_centered_gram(distances);
  linalg::EigenDecomposition eig = linalg::eigen_symmetric(b);

  // Negative eigenvalues (non-Euclidean noise) contribute nothing.
  double l0 = eig.values.size() > 0 ? std::max(eig.values[0], 0.0) : 0.0;
  double l1 = eig.values.size() > 1 ? std::max(eig.values[1], 0.0) : 0.0;
  double s0 = std::sqrt(l0);
  double s1 = std::sqrt(l1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].x = s0 * eig.vectors.at(0, i);
    out[i].y = (eig.values.size() > 1) ? s1 * eig.vectors.at(1, i) : 0.0;
  }
  return out;
}

}  // namespace stayaway::mds
