#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace stayaway::trace {

Trace::Trace(std::vector<double> samples, double sample_interval_s)
    : samples_(std::move(samples)), interval_(sample_interval_s) {
  SA_REQUIRE(!samples_.empty(), "trace needs at least one sample");
  SA_REQUIRE(interval_ > 0.0, "sample interval must be positive");
}

double Trace::duration() const {
  return static_cast<double>(samples_.size() - 1) * interval_;
}

double Trace::at(double t) const {
  if (t <= 0.0) return samples_.front();
  double pos = t / interval_;
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples_.size()) return samples_.back();
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double Trace::normalized_at(double t) const {
  double span = max() - min();
  if (span <= 0.0) return 0.0;
  return (at(t) - min()) / span;
}

double Trace::min() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

double Trace::max() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

double Trace::mean() const {
  double acc = 0.0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

Trace Trace::rescaled(double lo, double hi) const {
  SA_REQUIRE(lo <= hi, "rescale bounds must be ordered");
  double cur_lo = min();
  double span = max() - cur_lo;
  std::vector<double> out;
  out.reserve(samples_.size());
  for (double s : samples_) {
    double frac = (span > 0.0) ? (s - cur_lo) / span : 0.0;
    out.push_back(lo + frac * (hi - lo));
  }
  return Trace(std::move(out), interval_);
}

void Trace::save_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.header({"time_s", "value"});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    w.row(std::vector<double>{static_cast<double>(i) * interval_, samples_[i]});
  }
}

Trace Trace::load_csv(std::istream& in) {
  auto rows = parse_csv(in);
  SA_REQUIRE(rows.size() >= 3, "trace CSV needs a header and two samples");
  std::vector<double> samples;
  samples.reserve(rows.size() - 1);
  double t0 = 0.0;
  double t1 = 0.0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    auto vals = csv_row_to_doubles(rows[i]);
    SA_REQUIRE(vals.size() == 2, "trace CSV rows must be (time, value)");
    if (i == 1) t0 = vals[0];
    if (i == 2) t1 = vals[0];
    samples.push_back(vals[1]);
  }
  double interval = t1 - t0;
  SA_REQUIRE(interval > 0.0, "trace CSV times must increase");
  return Trace(std::move(samples), interval);
}

}  // namespace stayaway::trace
