// Synthetic diurnal workload generator.
//
// Figure 1 of the paper shows the Wikipedia total read workload over four
// months: a strong 24-hour cycle with clear low-intensity valleys, a
// weekly modulation and noise. The original AWS-hosted dataset link is
// dead, so this generator produces traces with the same structure; only
// the diurnal *shape* (valleys Stay-Away can exploit) matters downstream.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace stayaway::trace {

struct DiurnalSpec {
  double base = 1000.0;            // mean intensity (requests/s)
  double daily_amplitude = 0.45;   // fraction of base swung by the 24h cycle
  double second_harmonic = 0.12;   // fraction for the 12h harmonic
  double weekly_amplitude = 0.10;  // weekend dip fraction
  double noise_fraction = 0.04;    // gaussian noise as a fraction of base
  double peak_hour = 20.0;         // local hour of daily peak (Wikipedia ~20:00 UTC)
  double days = 4.0;               // trace length
  double sample_interval_s = 3600.0;  // one sample per hour, like Fig. 1
  std::uint64_t seed = 42;
};

/// Generates a trace following the spec. Intensities are floored at 5% of
/// base so a valley never reaches zero (Wikipedia traffic never does).
Trace generate_diurnal(const DiurnalSpec& spec);

}  // namespace stayaway::trace
