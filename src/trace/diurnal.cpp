#include "trace/diurnal.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stayaway::trace {

Trace generate_diurnal(const DiurnalSpec& spec) {
  SA_REQUIRE(spec.base > 0.0, "base intensity must be positive");
  SA_REQUIRE(spec.days > 0.0, "trace length must be positive");
  SA_REQUIRE(spec.sample_interval_s > 0.0, "sample interval must be positive");

  constexpr double two_pi = 2.0 * std::numbers::pi;
  constexpr double day_s = 86400.0;
  constexpr double week_s = 7.0 * day_s;

  Rng rng(spec.seed);
  auto n = static_cast<std::size_t>(spec.days * day_s / spec.sample_interval_s) + 1;
  std::vector<double> samples;
  samples.reserve(n);

  double peak_phase = two_pi * spec.peak_hour / 24.0;
  for (std::size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i) * spec.sample_interval_s;
    double daily = std::cos(two_pi * t / day_s - peak_phase);
    double half_day = std::cos(2.0 * (two_pi * t / day_s - peak_phase));
    double weekly = std::cos(two_pi * t / week_s);
    double v = spec.base *
               (1.0 + spec.daily_amplitude * daily +
                spec.second_harmonic * half_day + spec.weekly_amplitude * weekly);
    v += rng.normal(0.0, spec.noise_fraction * spec.base);
    samples.push_back(std::max(v, 0.05 * spec.base));
  }
  return Trace(std::move(samples), spec.sample_interval_s);
}

}  // namespace stayaway::trace
