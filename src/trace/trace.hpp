// Workload intensity traces.
//
// A Trace is a uniformly sampled series of request intensities; apps look
// up the intensity for the current simulated time (linear interpolation)
// to scale their demand. The Wikipedia read trace the paper uses (Fig. 1)
// is no longer downloadable, so traces here come from the generator in
// diurnal.hpp or from CSV files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stayaway::trace {

class Trace {
 public:
  /// samples[i] is the intensity at time i * sample_interval_s.
  /// Requires at least one sample and a positive interval.
  Trace(std::vector<double> samples, double sample_interval_s);

  std::size_t size() const { return samples_.size(); }
  double sample_interval() const { return interval_; }
  double duration() const;
  const std::vector<double>& samples() const { return samples_; }

  /// Intensity at time t (seconds), linearly interpolated. Times before
  /// the start clamp to the first sample, past the end to the last.
  double at(double t) const;

  /// Intensity normalized to [0,1] by the trace's own min/max.
  double normalized_at(double t) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Returns a copy rescaled so values span [lo, hi].
  Trace rescaled(double lo, double hi) const;

  /// Serialization as a two-column CSV (time_s, value).
  void save_csv(std::ostream& out) const;
  static Trace load_csv(std::istream& in);

 private:
  std::vector<double> samples_;
  double interval_;
};

}  // namespace stayaway::trace
