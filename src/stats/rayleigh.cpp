#include "stats/rayleigh.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stayaway::stats {

double rayleigh_radius(double d, double c) {
  SA_REQUIRE(d >= 0.0, "distance must be non-negative");
  SA_REQUIRE(c > 0.0, "scale must be positive");
  return d * std::exp(-(d * d) / (2.0 * c * c));
}

double rayleigh_peak_distance(double c) {
  SA_REQUIRE(c > 0.0, "scale must be positive");
  return c;
}

double rayleigh_peak_radius(double c) {
  SA_REQUIRE(c > 0.0, "scale must be positive");
  return c * std::exp(-0.5);
}

}  // namespace stayaway::stats
