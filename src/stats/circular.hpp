// Circular (directional) statistics for trajectory angles.
//
// Step angles live on [-pi, pi); averaging them linearly is wrong across
// the wrap-around, so the trajectory diagnostics use resultant-vector
// statistics instead.
#pragma once

#include <span>

namespace stayaway::stats {

/// Wraps an angle into [-pi, pi).
double wrap_angle(double radians);

/// Smallest signed difference a-b on the circle, in [-pi, pi).
double angle_difference(double a, double b);

struct CircularSummary {
  double mean = 0.0;       // circular mean direction, in [-pi, pi)
  double resultant = 0.0;  // mean resultant length in [0,1]; 1 = no spread
  double variance = 0.0;   // 1 - resultant
};

/// Summary statistics of a set of angles (radians). Requires non-empty.
CircularSummary circular_summary(std::span<const double> angles);

}  // namespace stayaway::stats
