// Inverse-transform sampling from empirical distributions.
//
// §3.2.3: "A random set of samples are then generated following the
// histogram using the inverse transform method, which computes a mapping
// from a uniform distribution to an arbitrary distribution."
#pragma once

#include <vector>

#include "stats/histogram.hpp"
#include "util/rng.hpp"

namespace stayaway::stats {

/// Draws values distributed like the observations recorded in a Histogram.
/// Within the selected bin the value is uniformly jittered, which matches
/// the piecewise-constant density the histogram represents.
class InverseTransformSampler {
 public:
  /// Snapshots the histogram's bin masses. Requires a non-empty histogram.
  explicit InverseTransformSampler(const Histogram& hist);

  double sample(Rng& rng) const;
  std::vector<double> sample_n(Rng& rng, std::size_t n) const;

 private:
  double lo_;
  double bin_width_;
  std::vector<double> cumulative_;  // cumulative mass per bin; back() == 1
};

}  // namespace stayaway::stats
