#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  SA_REQUIRE(lo < hi, "histogram range must be non-empty");
  SA_REQUIRE(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0.0);
}

void Histogram::add(double v, double weight) {
  // An infinite weight would make total_ infinite and every mass() an
  // inf/inf NaN, silently poisoning the samplers built on top.
  SA_REQUIRE(std::isfinite(weight) && weight >= 0.0,
             "histogram weight must be finite and non-negative");
  SA_REQUIRE(std::isfinite(v), "histogram observation must be finite");
  counts_[bin_index(v)] += weight;
  total_ += weight;
}

double Histogram::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t i) const {
  SA_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::count(std::size_t i) const {
  SA_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::density(std::size_t i) const {
  if (total_ <= 0.0) return 0.0;
  return count(i) / (total_ * bin_width());
}

double Histogram::mass(std::size_t i) const {
  if (total_ <= 0.0) return 0.0;
  return count(i) / total_;
}

std::size_t Histogram::bin_index(double v) const {
  if (v < lo_) return 0;
  double f = (v - lo_) / bin_width();
  auto i = static_cast<std::size_t>(f);
  return std::min(i, counts_.size() - 1);
}

double Histogram::cumulative(std::size_t i) const {
  SA_REQUIRE(i < counts_.size(), "bin index out of range");
  double acc = 0.0;
  for (std::size_t b = 0; b <= i; ++b) acc += mass(b);
  return acc;
}

double Histogram::quantile(double q) const {
  SA_REQUIRE(!empty(), "quantile of an empty histogram");
  SA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  double acc = 0.0;
  std::size_t last_loaded = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    double m = mass(b);
    // Empty bins carry no quantile mass: without this skip, quantile(0)
    // of a histogram whose support starts mid-range would report lo_.
    if (m <= 0.0) continue;
    last_loaded = b;
    if (acc + m >= q) {
      double within = std::clamp((q - acc) / m, 0.0, 1.0);
      return lo_ + (static_cast<double>(b) + within) * bin_width();
    }
    acc += m;
  }
  // Floating-point drift can leave acc a hair under q == 1; the answer is
  // the upper edge of the last mass-bearing bin (not hi_, which may sit
  // past the support).
  return lo_ + (static_cast<double>(last_loaded) + 1.0) * bin_width();
}

void Histogram::decay(double factor) {
  SA_REQUIRE(factor >= 0.0 && factor <= 1.0, "decay factor must be in [0,1]");
  for (double& c : counts_) c *= factor;
  total_ *= factor;
}

void Histogram::restore(const std::vector<double>& counts, double total) {
  SA_REQUIRE(counts.size() == counts_.size(),
             "histogram restore requires a matching bin count");
  counts_ = counts;
  total_ = total;
}

std::vector<double> Histogram::masses() const {
  std::vector<double> out(counts_.size(), 0.0);
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = mass(i);
  return out;
}

}  // namespace stayaway::stats
