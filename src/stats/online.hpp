// Streaming statistics: running min/max and Welford mean/variance.
// Used by the monitor's normalizer and by diagnostics across the library.
#pragma once

#include <cstddef>

namespace stayaway::stats {

/// Running minimum and maximum of a stream of doubles.
class OnlineMinMax {
 public:
  void observe(double v);
  bool empty() const { return count_ == 0; }
  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  /// max - min; zero before two distinct values have been seen.
  double range() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Welford's online algorithm for mean and (sample) variance.
class OnlineMoments {
 public:
  void observe(double v);
  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; zero with fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace stayaway::stats
