// Rayleigh-scaled violation-range radius (§3.2.2 of the paper).
//
//   R = d * exp(-d^2 / (2 c^2))
//
// where d is the distance between a violation-state and its nearest
// safe-state and c is the median coordinate range of the mapped space.
// The shape grows near-linearly for small d (little is known near the
// violation: keep a wide berth) and fades for large d (plenty of safe
// territory in between: allow exploration).
#pragma once

namespace stayaway::stats {

/// Radius of the violation-range. Requires d >= 0 and c > 0.
double rayleigh_radius(double d, double c);

/// The d at which rayleigh_radius(d, c) peaks (d == c), where the model is
/// maximally conservative.
double rayleigh_peak_distance(double c);

/// Peak radius value, c * exp(-1/2).
double rayleigh_peak_radius(double c);

}  // namespace stayaway::stats
