#include "stats/var1.hpp"

#include "linalg/solve.hpp"
#include "util/check.hpp"

namespace stayaway::stats {

Var1Model::Var1Model(linalg::Matrix transition, std::vector<double> intercept)
    : transition_(std::move(transition)), intercept_(std::move(intercept)) {}

Var1Model Var1Model::fit(const std::vector<std::vector<double>>& series,
                         double ridge) {
  SA_REQUIRE(series.size() >= 3, "VAR(1) needs at least three observations");
  const std::size_t dim = series.front().size();
  SA_REQUIRE(dim > 0, "VAR(1) needs non-empty state vectors");
  SA_REQUIRE(series.size() >= dim + 2,
             "VAR(1) needs more samples than dimensions");
  for (const auto& s : series) {
    SA_REQUIRE(s.size() == dim, "all state vectors must share a dimension");
  }

  // Design matrix: each row is [x_t, 1]; target column d is x_{t+1}[d].
  const std::size_t n = series.size() - 1;
  linalg::Matrix design(n, dim + 1);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t c = 0; c < dim; ++c) design.at(t, c) = series[t][c];
    design.at(t, dim) = 1.0;
  }

  linalg::Matrix transition(dim, dim);
  std::vector<double> intercept(dim, 0.0);
  std::vector<double> target(n, 0.0);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t t = 0; t < n; ++t) target[t] = series[t + 1][d];
    std::vector<double> coeff = linalg::solve_least_squares(design, target, ridge);
    for (std::size_t c = 0; c < dim; ++c) transition.at(d, c) = coeff[c];
    intercept[d] = coeff[dim];
  }
  return Var1Model(std::move(transition), std::move(intercept));
}

std::vector<double> Var1Model::predict(const std::vector<double>& state) const {
  SA_REQUIRE(state.size() == dimension(), "state dimension mismatch");
  std::vector<double> out(dimension(), 0.0);
  for (std::size_t r = 0; r < dimension(); ++r) {
    double acc = intercept_[r];
    for (std::size_t c = 0; c < dimension(); ++c) {
      acc += transition_.at(r, c) * state[c];
    }
    out[r] = acc;
  }
  return out;
}

std::vector<double> Var1Model::predict_k(const std::vector<double>& state,
                                         std::size_t steps) const {
  std::vector<double> cur = state;
  for (std::size_t i = 0; i < steps; ++i) cur = predict(cur);
  return cur;
}

}  // namespace stayaway::stats
