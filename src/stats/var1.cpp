#include "stats/var1.hpp"

#include <cmath>

#include "linalg/solve.hpp"
#include "util/check.hpp"

namespace stayaway::stats {

namespace {

// Forecast components are clamped to this magnitude so an unstable
// fitted transition (spectral radius > 1) cannot iterate predict_k into
// overflow: forecasts stay huge-but-finite and comparable.
constexpr double kForecastClamp = 1e150;

bool all_finite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

Var1Model::Var1Model(linalg::Matrix transition, std::vector<double> intercept)
    : transition_(std::move(transition)), intercept_(std::move(intercept)) {}

Var1Model Var1Model::fit(const std::vector<std::vector<double>>& series,
                         double ridge) {
  SA_REQUIRE(series.size() >= 3, "VAR(1) needs at least three observations");
  const std::size_t dim = series.front().size();
  SA_REQUIRE(dim > 0, "VAR(1) needs non-empty state vectors");
  SA_REQUIRE(series.size() >= dim + 2,
             "VAR(1) needs more samples than dimensions");
  for (const auto& s : series) {
    SA_REQUIRE(s.size() == dim, "all state vectors must share a dimension");
    SA_REQUIRE(all_finite(s), "VAR(1) observations must be finite");
  }
  SA_REQUIRE(ridge >= 0.0, "ridge must be non-negative");

  // Design matrix: each row is [x_t, 1]; target column d is x_{t+1}[d].
  const std::size_t n = series.size() - 1;
  linalg::Matrix design(n, dim + 1);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t c = 0; c < dim; ++c) design.at(t, c) = series[t][c];
    design.at(t, dim) = 1.0;
  }

  linalg::Matrix transition(dim, dim);
  std::vector<double> intercept(dim, 0.0);
  std::vector<double> target(n, 0.0);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t t = 0; t < n; ++t) target[t] = series[t + 1][d];
    // A near-singular design (constant series, collinear dimensions)
    // can defeat the caller's ridge: the normal-equation solve either
    // throws on a sub-tolerance pivot or returns enormous/non-finite
    // coefficients. Escalate the ridge until the solve is well posed —
    // the fit biases toward zero but every coefficient stays finite,
    // which is the contract forecast consumers rely on.
    std::vector<double> coeff;
    double lambda = ridge;
    for (int attempt = 0;; ++attempt) {
      bool solved = false;
      try {
        coeff = linalg::solve_least_squares(design, target, lambda);
        solved = all_finite(coeff);
      } catch (const PreconditionError&) {
        solved = false;
      }
      if (solved) break;
      SA_CHECK(attempt < 20, "VAR(1) fit failed to regularize");
      lambda = lambda > 0.0 ? lambda * 100.0 : 1e-8;
    }
    for (std::size_t c = 0; c < dim; ++c) transition.at(d, c) = coeff[c];
    intercept[d] = coeff[dim];
  }
  return Var1Model(std::move(transition), std::move(intercept));
}

std::vector<double> Var1Model::predict(const std::vector<double>& state) const {
  SA_REQUIRE(state.size() == dimension(), "state dimension mismatch");
  std::vector<double> out(dimension(), 0.0);
  for (std::size_t r = 0; r < dimension(); ++r) {
    double acc = intercept_[r];
    for (std::size_t c = 0; c < dimension(); ++c) {
      acc += transition_.at(r, c) * state[c];
    }
    // Clamp so iterated forecasts of an unstable model saturate instead
    // of overflowing to inf (and then NaN via inf - inf).
    if (acc > kForecastClamp) acc = kForecastClamp;
    if (acc < -kForecastClamp) acc = -kForecastClamp;
    out[r] = acc;
  }
  return out;
}

std::vector<double> Var1Model::predict_k(const std::vector<double>& state,
                                         std::size_t steps) const {
  std::vector<double> cur = state;
  for (std::size_t i = 0; i < steps; ++i) cur = predict(cur);
  return cur;
}

}  // namespace stayaway::stats
