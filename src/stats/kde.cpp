#include "stats/kde.hpp"

#include <cmath>
#include <numbers>

#include "stats/online.hpp"
#include "util/check.hpp"

namespace stayaway::stats {

Kde::Kde(std::span<const double> samples, double bandwidth)
    : samples_(samples.begin(), samples.end()), bandwidth_(bandwidth) {
  SA_REQUIRE(!samples_.empty(), "KDE needs at least one sample");
  SA_REQUIRE(std::isfinite(bandwidth) && bandwidth > 0.0,
             "KDE bandwidth must be finite and positive");
  // One NaN sample makes evaluate() NaN at every x; fail at construction
  // where the bad input is still attributable.
  for (double s : samples_) {
    SA_REQUIRE(std::isfinite(s), "KDE samples must be finite");
  }
}

Kde Kde::with_silverman_bandwidth(std::span<const double> samples) {
  SA_REQUIRE(!samples.empty(), "KDE needs at least one sample");
  OnlineMoments m;
  for (double s : samples) m.observe(s);
  double sigma = m.stddev();
  double n = static_cast<double>(samples.size());
  double h = 1.06 * sigma * std::pow(n, -0.2);
  if (!(h > 0.0)) h = 1e-3;  // degenerate spread: keep evaluation defined
  return Kde(samples, h);
}

double Kde::evaluate(double x) const {
  constexpr double inv_sqrt_2pi = 0.3989422804014327;
  double acc = 0.0;
  for (double s : samples_) {
    double z = (x - s) / bandwidth_;
    acc += inv_sqrt_2pi * std::exp(-0.5 * z * z);
  }
  return acc / (static_cast<double>(samples_.size()) * bandwidth_);
}

std::vector<double> Kde::evaluate_grid(double lo, double hi,
                                       std::size_t points) const {
  SA_REQUIRE(lo <= hi, "grid bounds must be ordered");
  SA_REQUIRE(points >= 2, "grid needs at least two points");
  std::vector<double> out;
  out.reserve(points);
  double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    out.push_back(evaluate(lo + static_cast<double>(i) * step));
  }
  return out;
}

}  // namespace stayaway::stats
