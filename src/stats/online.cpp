#include "stats/online.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::stats {

void OnlineMinMax::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

double OnlineMinMax::min() const {
  SA_REQUIRE(count_ > 0, "min of an empty stream");
  return min_;
}

double OnlineMinMax::max() const {
  SA_REQUIRE(count_ > 0, "max of an empty stream");
  return max_;
}

double OnlineMinMax::range() const {
  SA_REQUIRE(count_ > 0, "range of an empty stream");
  return max_ - min_;
}

void OnlineMoments::observe(double v) {
  ++count_;
  double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
}

double OnlineMoments::mean() const {
  SA_REQUIRE(count_ > 0, "mean of an empty stream");
  return mean_;
}

double OnlineMoments::variance() const {
  if (count_ < 2) return 0.0;
  // Welford's m2 can drift an ulp below zero when all samples are (nearly)
  // identical; clamping keeps stddev() out of sqrt(-0.0…) NaN territory.
  return std::max(0.0, m2_ / static_cast<double>(count_ - 1));
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

}  // namespace stayaway::stats
