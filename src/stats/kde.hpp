// Gaussian kernel density estimation.
//
// Figure 5 of the paper plots "the smoothed version of the histogram using
// kernel density estimation" for the step-length and angle distributions of
// each execution mode; this module provides that smoothing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stayaway::stats {

class Kde {
 public:
  /// Builds an estimator over the samples with explicit bandwidth (> 0).
  Kde(std::span<const double> samples, double bandwidth);

  /// Builds an estimator using Silverman's rule-of-thumb bandwidth.
  /// Requires at least two samples with non-zero spread; otherwise falls
  /// back to a small positive bandwidth so evaluation stays defined.
  static Kde with_silverman_bandwidth(std::span<const double> samples);

  double bandwidth() const { return bandwidth_; }
  std::size_t sample_count() const { return samples_.size(); }

  /// Density estimate at x.
  double evaluate(double x) const;

  /// Density sampled on a uniform grid of `points` values across [lo, hi].
  std::vector<double> evaluate_grid(double lo, double hi, std::size_t points) const;

 private:
  std::vector<double> samples_;
  double bandwidth_;
};

}  // namespace stayaway::stats
