#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  SA_REQUIRE(!sorted_.empty(), "ECDF needs at least one sample");
  // A NaN sample breaks operator<'s strict weak ordering, making the sort
  // itself undefined behaviour — reject it before sorting.
  for (double s : sorted_) {
    SA_REQUIRE(std::isfinite(s), "ECDF samples must be finite");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  SA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  double pos = q * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

}  // namespace stayaway::stats
