#include "stats/circular.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace stayaway::stats {

double wrap_angle(double radians) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  double w = std::fmod(radians + std::numbers::pi, two_pi);
  if (w < 0.0) w += two_pi;
  return w - std::numbers::pi;
}

double angle_difference(double a, double b) { return wrap_angle(a - b); }

CircularSummary circular_summary(std::span<const double> angles) {
  SA_REQUIRE(!angles.empty(), "circular summary of an empty set");
  double sx = 0.0;
  double sy = 0.0;
  for (double a : angles) {
    sx += std::cos(a);
    sy += std::sin(a);
  }
  double n = static_cast<double>(angles.size());
  CircularSummary out;
  // |Σe^{iθ}|/n is mathematically ≤ 1, but cos²+sin² can land an ulp above
  // 1 in floating point; without the clamp the variance goes negative.
  out.resultant = std::min(1.0, std::sqrt(sx * sx + sy * sy) / n);
  out.mean = std::atan2(sy, sx);
  out.variance = 1.0 - out.resultant;
  return out;
}

}  // namespace stayaway::stats
