// Empirical cumulative distribution function over a sample set.
#pragma once

#include <span>
#include <vector>

namespace stayaway::stats {

class Ecdf {
 public:
  /// Builds from the given samples (copied and sorted). Requires non-empty.
  explicit Ecdf(std::span<const double> samples);

  /// Fraction of samples <= x.
  double at(double x) const;

  /// Inverse CDF with linear interpolation between order statistics.
  /// Requires q in [0,1].
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace stayaway::stats
