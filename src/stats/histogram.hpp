// Fixed-range binned histogram.
//
// The trajectory model (§3.2.3 of the paper) characterises each execution
// mode by histograms of step length and absolute angle; new candidate
// states are drawn from these histograms by inverse-transform sampling.
#pragma once

#include <cstddef>
#include <vector>

namespace stayaway::stats {

class Histogram {
 public:
  /// Bins cover [lo, hi) uniformly. Requires lo < hi and bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation. Values outside [lo, hi) are clamped into the
  /// nearest edge bin — resource-usage streams occasionally spike past a
  /// configured range and we want the mass recorded, not dropped.
  void add(double v, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double total_weight() const { return total_; }
  bool empty() const { return total_ <= 0.0; }

  double bin_width() const;
  /// Centre of bin i.
  double bin_center(std::size_t i) const;
  /// Raw accumulated weight in bin i.
  double count(std::size_t i) const;
  /// Normalized density at bin i (integrates to ~1 over the range).
  double density(std::size_t i) const;
  /// Probability mass of bin i (sums to 1).
  double mass(std::size_t i) const;

  /// Index of the bin containing v (after clamping).
  std::size_t bin_index(double v) const;

  /// Cumulative mass up to and including bin i.
  double cumulative(std::size_t i) const;

  /// Quantile by linear interpolation inside the containing bin.
  /// Requires a non-empty histogram and q in [0,1].
  double quantile(double q) const;

  /// Multiplies every bin weight by `factor` (exponential forgetting, so a
  /// long-running mode model can track slowly drifting behaviour).
  void decay(double factor);

  /// The probability masses for all bins, in order.
  std::vector<double> masses() const;

  /// Raw per-bin weights in bin order, for state snapshots.
  const std::vector<double>& raw_counts() const { return counts_; }

  /// Restores contents captured from an identically configured histogram
  /// (same range and bin count; checked). The accumulated total is
  /// restored verbatim rather than re-summed — re-adding weights would
  /// reorder float addition and break the restore-exactness guarantee
  /// (DESIGN.md §17).
  void restore(const std::vector<double>& counts, double total);

 private:
  double lo_;
  double hi_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace stayaway::stats
