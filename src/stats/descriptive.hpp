// Batch descriptive statistics over sample vectors.
#pragma once

#include <span>

namespace stayaway::stats {

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> xs);

/// Median (average of the two middle order statistics for even n).
/// Requires non-empty input.
double median(std::span<const double> xs);

/// Percentile p in [0,100] with linear interpolation. Requires non-empty.
double percentile(std::span<const double> xs, double p);

/// Sample standard deviation; zero for fewer than two samples.
double stddev(std::span<const double> xs);

/// Fraction of samples strictly below the threshold.
double fraction_below(std::span<const double> xs, double threshold);

}  // namespace stayaway::stats
