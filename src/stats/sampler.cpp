#include "stats/sampler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stayaway::stats {

InverseTransformSampler::InverseTransformSampler(const Histogram& hist)
    : lo_(hist.lo()), bin_width_(hist.bin_width()) {
  SA_REQUIRE(!hist.empty(), "cannot sample from an empty histogram");
  cumulative_.reserve(hist.bins());
  double acc = 0.0;
  for (std::size_t i = 0; i < hist.bins(); ++i) {
    acc += hist.mass(i);
    cumulative_.push_back(acc);
  }
  // Guard against floating-point drift so upper_bound always lands in range.
  cumulative_.back() = 1.0;
}

double InverseTransformSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  auto bin = static_cast<std::size_t>(it - cumulative_.begin());
  double jitter = rng.uniform();
  return lo_ + (static_cast<double>(bin) + jitter) * bin_width_;
}

std::vector<double> InverseTransformSampler::sample_n(Rng& rng,
                                                      std::size_t n) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

}  // namespace stayaway::stats
