// Zipf-distributed key sampling.
//
// The paper's Webservice serves a Memcached-backed dataset; real key-value
// workloads are heavily skewed, so the simulated service samples keys from
// a Zipf distribution over its keyspace. Sampling uses a precomputed CDF
// with binary search.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace stayaway::stats {

class ZipfSampler {
 public:
  /// Ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^exponent.
  /// Requires n > 0 and exponent >= 0 (0 gives a uniform distribution).
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

  /// Probability mass of a given rank.
  double mass(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace stayaway::stats
