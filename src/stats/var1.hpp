// First-order vector autoregressive model, x_{t+1} = A x_t + b.
//
// §3.1 of the paper argues against forecasting directly in the
// high-dimensional metric space with VAR because reliable parameter
// estimation needs sample counts that grow with dimensionality. We
// implement VAR(1) anyway as the ablation comparator for that argument
// (bench_abl_var): histogram sampling in 2-D versus VAR in m dimensions.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace stayaway::stats {

class Var1Model {
 public:
  /// Fits on a time-ordered sequence of equal-length state vectors by
  /// per-dimension ridge least squares. Requires at least dim+2 finite
  /// samples. A near-singular design escalates the ridge until the
  /// solve conditions, so fitted coefficients are always finite; predict
  /// saturates at a huge-but-finite clamp, so forecasts of an unstable
  /// model never reach inf/NaN (pinned in tests/test_stats.cpp).
  static Var1Model fit(const std::vector<std::vector<double>>& series,
                       double ridge = 1e-6);

  std::size_t dimension() const { return intercept_.size(); }

  /// One-step-ahead forecast from the given state.
  std::vector<double> predict(const std::vector<double>& state) const;

  /// Iterated k-step forecast.
  std::vector<double> predict_k(const std::vector<double>& state,
                                std::size_t steps) const;

  const linalg::Matrix& transition() const { return transition_; }
  const std::vector<double>& intercept() const { return intercept_; }

 private:
  Var1Model(linalg::Matrix transition, std::vector<double> intercept);

  linalg::Matrix transition_;
  std::vector<double> intercept_;
};

}  // namespace stayaway::stats
