#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/online.hpp"
#include "util/check.hpp"

namespace stayaway::stats {

double mean(std::span<const double> xs) {
  SA_REQUIRE(!xs.empty(), "mean of an empty set");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  SA_REQUIRE(!xs.empty(), "percentile of an empty set");
  SA_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double stddev(std::span<const double> xs) {
  OnlineMoments m;
  for (double x : xs) m.observe(x);
  return m.stddev();
}

double fraction_below(std::span<const double> xs, double threshold) {
  SA_REQUIRE(!xs.empty(), "fraction_below of an empty set");
  std::size_t n = 0;
  for (double x : xs) {
    if (x < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

}  // namespace stayaway::stats
