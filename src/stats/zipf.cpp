#include "stats/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::stats {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  SA_REQUIRE(n > 0, "zipf needs a non-empty keyspace");
  SA_REQUIRE(std::isfinite(exponent) && exponent >= 0.0,
             "zipf exponent must be finite and non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Very large exponents make pow overflow to inf; its reciprocal is a
    // clean 0 (the tail carries no mass), never a NaN. The k = 0 term is
    // exactly 1, so acc >= 1 and the normalization below cannot divide
    // by zero.
    double weight = 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    acc += weight;
    cdf_[k] = acc;
  }
  SA_CHECK(std::isfinite(acc) && acc >= 1.0,
           "zipf normalizer must be finite and >= 1");
  // Normalize and force exact monotonicity: around s ~= 1 the division
  // can round adjacent entries out of order by one ulp, which would
  // break upper_bound's precondition in sample() and make mass() return
  // a tiny negative probability.
  double prev = 0.0;
  for (double& v : cdf_) {
    v = std::min(v / acc, 1.0);
    if (v < prev) v = prev;
    prev = v;
  }
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::mass(std::size_t rank) const {
  SA_REQUIRE(rank < cdf_.size(), "rank out of range");
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace stayaway::stats
