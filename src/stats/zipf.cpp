#include "stats/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stayaway::stats {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  SA_REQUIRE(n > 0, "zipf needs a non-empty keyspace");
  SA_REQUIRE(exponent >= 0.0, "zipf exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::mass(std::size_t rank) const {
  SA_REQUIRE(rank < cdf_.size(), "rank out of range");
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace stayaway::stats
