// Small string/number formatting helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stayaway {

/// Formats v with fixed precision, trimming trailing zeros ("1.5", "0.001").
std::string format_double(double v, int precision);

/// Shortest %g form of v that strtod parses back to the identical value
/// ("0.1", not "0.100000000000000006"); "inf"/"-inf"/"nan" for the
/// non-finite values. The exact round-trip is what record/replay's
/// byte-diff guarantee rests on (DESIGN.md §14).
std::string format_double_exact(double v);

/// Parses a full plain decimal u64 into out; false when text has signs,
/// spaces, trailing characters or overflows. Seeds must go through this
/// rather than a double parse — a 64-bit seed truncates above 2^53.
bool parse_u64(const std::string& text, std::uint64_t& out);

/// Left-pads s with spaces to the given width.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads s with spaces to the given width.
std::string pad_right(const std::string& s, std::size_t width);

/// Joins parts with the given separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace stayaway
