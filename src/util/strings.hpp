// Small string/number formatting helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace stayaway {

/// Formats v with fixed precision, trimming trailing zeros ("1.5", "0.001").
std::string format_double(double v, int precision);

/// Left-pads s with spaces to the given width.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads s with spaces to the given width.
std::string pad_right(const std::string& s, std::size_t width);

/// Joins parts with the given separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace stayaway
