// Lock-free single-producer/single-consumer ring buffer (DESIGN.md §15).
//
// The streaming-ingestion transport: one producer thread pushes timed
// samples, one consumer (the host pipeline's control thread) pops them
// each period. Capacity is rounded up to a power of two so index
// wrapping is a mask. A full ring never blocks the producer — try_push
// fails and the drop is counted, which is exactly the backpressure
// signal the ingest telemetry (and the fuzzer's ingest-overflow
// detector) surfaces instead of silently stalling the feed.
//
// Thread-safety contract: try_push/dropped-increment from exactly one
// thread, try_pop from exactly one (possibly different) thread. size
// accessors are approximate snapshots, safe from either side.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace stayaway::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : buffer_(round_up_pow2(capacity)), mask_(buffer_.size() - 1) {
    SA_REQUIRE(capacity > 0, "ring capacity must be positive");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False (and one counted drop) when the ring is full.
  bool try_push(T value) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head >= buffer_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buffer_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring has nothing pending.
  std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail) return std::nullopt;
    std::optional<T> out(std::move(buffer_[static_cast<std::size_t>(head) &
                                           mask_]));
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  /// Power-of-two slot count actually allocated.
  std::size_t capacity() const { return buffer_.size(); }

  /// Approximate occupancy (exact from either endpoint's own thread).
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  std::uint64_t pushed() const {
    return tail_.load(std::memory_order_acquire);
  }
  std::uint64_t popped() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Pushes rejected because the ring was full (overflow backpressure).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> buffer_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // consumer index
  std::atomic<std::uint64_t> tail_{0};  // producer index
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace stayaway::util
