#include "util/rng.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/statecodec.hpp"

namespace stayaway {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  SA_REQUIRE(lo <= hi, "uniform bounds must be ordered");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  SA_REQUIRE(n > 0, "index requires a non-empty range");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::normal(double mean, double sigma) {
  SA_REQUIRE(sigma >= 0.0, "normal sigma must be non-negative");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::exponential(double rate) {
  SA_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::chance(double p) {
  SA_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0,1]");
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() {
  // Mix the next engine output through splitmix64 so the child stream is
  // decorrelated from the parent even for adjacent forks.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::string Rng::save_state() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

void Rng::load_state(const std::string& text) {
  std::istringstream in(text);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    throw util::StateCodecError("rng state: malformed mt19937_64 stream");
  }
  engine_ = restored;
}

}  // namespace stayaway
