#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Bounds {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  bool valid() const { return lo <= hi; }
  double span() const { return (hi > lo) ? hi - lo : 1.0; }
};

std::size_t clamp_cell(double frac, std::size_t n) {
  if (!(frac >= 0.0)) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  auto cell = static_cast<std::size_t>(frac * static_cast<double>(n - 1) + 0.5);
  return std::min(cell, n - 1);
}

std::string render(const std::vector<std::string>& grid, const Bounds& ybounds,
                   const PlotOptions& options, const std::string& legend) {
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  for (std::size_t r = 0; r < grid.size(); ++r) {
    if (options.show_axes) {
      double frac = (grid.size() <= 1)
                        ? 0.0
                        : static_cast<double>(grid.size() - 1 - r) /
                              static_cast<double>(grid.size() - 1);
      double y = ybounds.lo + frac * ybounds.span();
      out += pad_left(format_double(y, 2), 9) + " |";
    }
    out += grid[r];
    out += '\n';
  }
  if (options.show_axes) {
    out += std::string(9, ' ') + " +" + std::string(options.width, '-') + "\n";
  }
  if (!legend.empty()) out += legend + "\n";
  return out;
}

}  // namespace

std::string plot_lines(const std::vector<std::vector<double>>& series,
                       const std::vector<std::string>& labels,
                       const PlotOptions& options) {
  SA_REQUIRE(options.width >= 8 && options.height >= 4, "plot area too small");
  Bounds yb;
  std::size_t max_len = 0;
  for (const auto& s : series) {
    max_len = std::max(max_len, s.size());
    for (double v : s) yb.include(v);
  }
  if (!yb.valid() || max_len == 0) return options.title + "\n  (no data)\n";

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    char glyph = kGlyphs[si % (sizeof kGlyphs)];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!std::isfinite(s[i])) continue;
      double xfrac = (s.size() <= 1)
                         ? 0.0
                         : static_cast<double>(i) / static_cast<double>(s.size() - 1);
      double yfrac = (s[i] - yb.lo) / yb.span();
      std::size_t col = clamp_cell(xfrac, options.width);
      std::size_t row = options.height - 1 - clamp_cell(yfrac, options.height);
      grid[row][col] = glyph;
    }
  }

  std::string legend;
  for (std::size_t si = 0; si < labels.size() && si < series.size(); ++si) {
    if (si != 0) legend += "   ";
    legend += std::string(1, kGlyphs[si % (sizeof kGlyphs)]) + " " + labels[si];
  }
  return render(grid, yb, options, legend);
}

std::string plot_scatter(const std::vector<ScatterGroup>& groups,
                         const PlotOptions& options) {
  SA_REQUIRE(options.width >= 8 && options.height >= 4, "plot area too small");
  Bounds xb, yb;
  for (const auto& g : groups) {
    for (const auto& [x, y] : g.points) {
      xb.include(x);
      yb.include(y);
    }
  }
  if (!xb.valid() || !yb.valid()) return options.title + "\n  (no data)\n";

  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  for (const auto& g : groups) {
    for (const auto& [x, y] : g.points) {
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      std::size_t col = clamp_cell((x - xb.lo) / xb.span(), options.width);
      std::size_t row = options.height - 1 - clamp_cell((y - yb.lo) / yb.span(), options.height);
      grid[row][col] = g.glyph;
    }
  }

  std::string legend;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    if (gi != 0) legend += "   ";
    legend += std::string(1, groups[gi].glyph) + " " + groups[gi].label;
  }
  return render(grid, yb, options, legend);
}

}  // namespace stayaway
