// Annotated synchronization primitives (DESIGN.md §16).
//
// std::mutex carries no thread-safety attributes on the toolchains we
// build with, so Clang's -Wthread-safety cannot connect a lock_guard to
// the fields it protects. These thin wrappers close that gap:
//
//   Mutex      a std::mutex declared as a capability; SA_GUARDED_BY
//              expressions name a Mutex member.
//   MutexLock  the RAII guard (scoped capability) — the only way
//              library code takes a Mutex.
//   CondVar    a condition variable that waits on a Mutex the caller
//              already holds (SA_REQUIRES-checked), built on
//              std::condition_variable via adopt/release so the wait
//              uses the native fast path.
//
// Zero-cost: on non-Clang builds every annotation expands to nothing
// and the wrappers inline to the std primitives they hold.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace stayaway::util {

class CondVar;

class SA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SA_ACQUIRE() { mu_.lock(); }
  void unlock() SA_RELEASE() { mu_.unlock(); }
  bool try_lock() SA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Analysis-only assertion that this mutex is held. Runtime no-op.
  /// Needed inside lambdas (condition-variable predicates) whose calling
  /// context the analysis cannot see.
  void assert_held() const SA_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex.
class SA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a Mutex at each wait site. The caller
/// must already hold the mutex (enforced by SA_REQUIRES under Clang);
/// wait atomically releases it while parked and reacquires before
/// returning, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` is true. The predicate runs with `mu` held;
  /// it must not throw (a throwing predicate would unwind with the
  /// adopted lock in an inconsistent ownership state).
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) SA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the association so the caller's MutexLock (or lock()
    // call) keeps sole ownership of the unlock.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace stayaway::util
