// Terminal plotting for bench output: line charts for time series and
// scatter charts for 2-D state-space maps. The paper's figures are either
// of these two shapes, so every bench can render a visual check next to
// its CSV series.
#pragma once

#include <string>
#include <vector>

namespace stayaway {

struct PlotOptions {
  std::size_t width = 72;
  std::size_t height = 18;
  std::string title;
  bool show_axes = true;
};

/// Renders one or more aligned series as a line chart. Each series gets a
/// distinct glyph ('*', '+', 'o', ...). Series may have different lengths;
/// x is the sample index.
std::string plot_lines(const std::vector<std::vector<double>>& series,
                       const std::vector<std::string>& labels,
                       const PlotOptions& options = {});

/// Renders labelled 2-D point groups as a scatter chart (state-space maps).
struct ScatterGroup {
  std::string label;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

std::string plot_scatter(const std::vector<ScatterGroup>& groups,
                         const PlotOptions& options = {});

}  // namespace stayaway
