// Clang thread-safety annotation macros (DESIGN.md §16).
//
// Every mutex-owning type in the tree declares its locking contract with
// these macros: which mutex guards which field (SA_GUARDED_BY), which
// methods must or must not hold it (SA_REQUIRES / SA_EXCLUDES), and
// which calls acquire or release it (SA_ACQUIRE / SA_RELEASE). Under
// Clang the contracts are machine-checked at compile time by
// -Wthread-safety (wired up as `cmake -DSTAYAWAY_ANALYZE=ON`, driven by
// `ci.sh --analyze`); under every other compiler the macros expand to
// nothing, so the annotations cost nothing and gate nothing.
//
// The companion textual check lives in tools/stayaway_analyze.cpp: its
// lock-discipline pass requires every mutable field of a mutex-owning
// class to carry SA_GUARDED_BY / SA_PT_GUARDED_BY or an explicit
//   // sa-lint: unguarded(<reason>)
// waiver, so the discipline holds even on builds without Clang.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SA_THREAD_ANNOTATION
#define SA_THREAD_ANNOTATION(x)  // no-op: analysis needs Clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define SA_CAPABILITY(x) SA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SA_SCOPED_CAPABILITY SA_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define SA_GUARDED_BY(x) SA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x` (the pointer itself
/// is immutable after construction).
#define SA_PT_GUARDED_BY(x) SA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the named capabilities held on entry (and keeps
/// them held on exit).
#define SA_REQUIRES(...) SA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires / releases the named capabilities.
#define SA_ACQUIRE(...) SA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SA_RELEASE(...) SA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `result`.
#define SA_TRY_ACQUIRE(...) \
  SA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the named capabilities held
/// (deadlock / double-lock prevention).
#define SA_EXCLUDES(...) SA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis only) that the capability is held; used
/// inside lambdas the analysis cannot see through, e.g. condition
/// variable predicates that run under the caller's lock.
#define SA_ASSERT_CAPABILITY(x) SA_THREAD_ANNOTATION(assert_capability(x))

/// Declared lock-acquisition ordering between two capabilities.
#define SA_ACQUIRED_BEFORE(...) \
  SA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SA_ACQUIRED_AFTER(...) \
  SA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: function body is exempt from the analysis. Use only for
/// internals that manipulate the underlying std primitives directly.
#define SA_NO_THREAD_SAFETY_ANALYSIS \
  SA_THREAD_ANNOTATION(no_thread_safety_analysis)
