// Small reusable worker pool for the map->predict hot-path kernels
// (distance matrices, Guttman transforms, stress sums).
//
// Design constraints, in order:
//   1. Determinism. With 1 thread every kernel runs the exact historical
//      sequential code, bit for bit. With k >= 2 threads the work is split
//      into contiguous index ranges whose *values* never depend on thread
//      scheduling — only on the range boundaries — so repeated runs agree.
//   2. Reuse. The control loop runs every period; spawning threads per
//      call would dwarf the work. Workers are parked on a condition
//      variable between calls.
//   3. No dependencies. Plain <thread>/<condition_variable>.
//
// Range functions must not throw: an exception on a worker thread would
// terminate the process. The hot-path kernels are pure arithmetic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace stayaway::util {

class ThreadPool {
 public:
  /// threads: total parallelism including the calling thread, >= 1.
  /// `ThreadPool(1)` spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;

  /// Splits [0, n) into size() contiguous chunks and runs fn on each
  /// concurrently (the caller executes chunk 0). Blocks until every chunk
  /// finished. With size() == 1 this is exactly fn(0, n) on the caller.
  /// Not reentrant: fn must not call back into the same pool (checked —
  /// the alternative is a silent deadlock).
  void for_ranges(std::size_t n, const RangeFn& fn);

  /// True while a parallel section is executing on this pool. Used by
  /// set_hot_path_threads to reject reconfiguration mid-section.
  bool in_parallel() const {
    return in_parallel_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t slot);
  static std::size_t chunk_begin(std::size_t chunk, std::size_t n,
                                 std::size_t parts) {
    return chunk * n / parts;
  }

  // sa-lint: unguarded(filled in the constructor before any dispatch and
  // joined in the destructor; workers read its size only after a
  // generation handshake through mu_ established happens-before)
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::uint64_t generation_ SA_GUARDED_BY(mu_) = 0;
  std::size_t remaining_ SA_GUARDED_BY(mu_) = 0;
  const RangeFn* fn_ SA_GUARDED_BY(mu_) = nullptr;
  std::size_t n_ SA_GUARDED_BY(mu_) = 0;
  bool stop_ SA_GUARDED_BY(mu_) = false;
  std::atomic<bool> in_parallel_{false};
};

/// Process-wide pool shared by the hot-path kernels. Defaults to a single
/// thread, which keeps every kernel bit-identical to the historical
/// sequential implementation; opt into parallelism with
/// set_hot_path_threads(). Reconfigure only from the control thread while
/// no kernel is running.
ThreadPool& hot_path_pool();

/// Replaces the global pool with one of `n` threads (0 = one per hardware
/// thread). n == current size is a no-op.
///
/// The documented ownership rule is enforced: calling this while a
/// parallel section is active throws (always), and calling it from a
/// thread other than the one that performed the first reconfiguration
/// throws in debug builds (the first caller becomes the control thread).
void set_hot_path_threads(std::size_t n);

/// Current parallelism of the global pool.
std::size_t hot_path_threads();

}  // namespace stayaway::util
