// Minimal CSV writing/reading used by benches (series dumps) and the
// template store (persisting violation templates across runs).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stayaway {

/// Streams rows of doubles/strings as comma-separated values.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& columns);
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

 private:
  std::ostream* out_;
};

/// Parses a CSV document into rows of cells. Quoting is not supported;
/// the library only reads files it wrote itself.
std::vector<std::vector<std::string>> parse_csv(std::istream& in);

/// Converts a parsed row of cells to doubles. Throws PreconditionError on
/// non-numeric cells.
std::vector<double> csv_row_to_doubles(const std::vector<std::string>& cells);

}  // namespace stayaway
