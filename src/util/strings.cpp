#include "util/strings.hpp"

#include <cstdio>

namespace stayaway {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    std::size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last = (last == 0) ? 0 : last - 1;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace stayaway
