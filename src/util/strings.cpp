#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stayaway {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    std::size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last = (last == 0) ? 0 : last - 1;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

std::string format_double_exact(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0.0 ? "inf" : "-inf";
  char buf[64];
  // 15 digits suffice for most values; some need 16 or 17 to survive the
  // decimal round trip bit-exactly.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t acc = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (acc > (UINT64_MAX - digit) / 10) return false;  // overflow
    acc = acc * 10 + digit;
  }
  out = acc;
  return true;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace stayaway
