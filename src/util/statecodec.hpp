// Typed key/value line codec for component state snapshots (DESIGN.md
// §17). Checkpointable components serialize themselves through
// StateWriter and rehydrate through StateReader; the checkpoint
// envelope (versioning, checksum, per-host framing) lives in
// core/checkpoint.hpp on top of this.
//
// Format: one `key = value` line per field, written and read in a
// fixed order — the reader names the key it expects next and fails
// loudly on any mismatch, so a truncated or reordered snapshot can
// never be half-applied. Doubles use format_double_exact, making
// write→read the identity on every value including the non-finite
// ones; that exactness is what the crash/restore byte-identity
// guarantee rests on.
#pragma once

#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stayaway::util {

/// Thrown on any malformed, truncated or out-of-order snapshot field.
class StateCodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StateWriter {
 public:
  explicit StateWriter(std::ostream& out) : out_(out) {}

  void u64(std::string_view key, std::uint64_t v);
  void i64(std::string_view key, std::int64_t v);
  void boolean(std::string_view key, bool v);
  void real(std::string_view key, double v);
  /// A single whitespace-free token (enum names, identifiers).
  void token(std::string_view key, std::string_view v);
  /// Free-form single-line text; internal spaces allowed (mt19937_64
  /// engine streams). Newlines are a caller bug.
  void line(std::string_view key, std::string_view v);
  void reals(std::string_view key, const std::vector<double>& v);
  void u64s(std::string_view key, const std::vector<std::uint64_t>& v);

 private:
  void emit(std::string_view key, std::string_view value);
  std::ostream& out_;
};

class StateReader {
 public:
  explicit StateReader(std::istream& in) : in_(in) {}

  std::uint64_t u64(std::string_view key);
  std::int64_t i64(std::string_view key);
  bool boolean(std::string_view key);
  double real(std::string_view key);
  std::string token(std::string_view key);
  std::string line(std::string_view key);
  std::vector<double> reals(std::string_view key);
  std::vector<std::uint64_t> u64s(std::string_view key);

 private:
  /// Next `key = value` line; throws unless the key matches exactly.
  std::string next_value(std::string_view key);
  std::istream& in_;
};

/// Exact double parse accepting format_double_exact's full range
/// ("inf", "-inf", "nan"); throws StateCodecError on anything else.
double parse_exact_double(const std::string& text, std::string_view what);

}  // namespace stayaway::util
