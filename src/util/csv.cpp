#include "util/csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway {

void CsvWriter::header(const std::vector<std::string>& columns) {
  row(columns);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, 6));
  row(cells);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << values[i];
  }
  *out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    rows.push_back(std::move(cells));
  }
  return rows;
}

std::vector<double> csv_row_to_doubles(const std::vector<std::string>& cells) {
  std::vector<double> out;
  out.reserve(cells.size());
  for (const auto& c : cells) {
    try {
      std::size_t pos = 0;
      double v = std::stod(c, &pos);
      SA_REQUIRE(pos == c.size(), "trailing characters in numeric cell");
      out.push_back(v);
    } catch (const std::logic_error&) {
      throw PreconditionError("non-numeric CSV cell: " + c);
    }
  }
  return out;
}

}  // namespace stayaway
