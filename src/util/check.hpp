// Contract helpers: precondition / invariant checks that throw on failure.
//
// These are enabled in all build types: the library is a control system
// whose failures should be loud, and none of the checks sit on hot paths.
#pragma once

#include <stdexcept>
#include <string>

namespace stayaway {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void fail_precondition(const char* expr, const char* file, int line,
                                    const std::string& msg);
[[noreturn]] void fail_invariant(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace stayaway

/// Check a documented precondition of a public API.
#define SA_REQUIRE(expr, msg)                                                      \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::stayaway::detail::fail_precondition(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                              \
  } while (false)

/// Check an internal invariant.
#define SA_ENSURE(expr, msg)                                                       \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::stayaway::detail::fail_invariant(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                              \
  } while (false)
