// Contract helpers: preconditions, invariants and tiered debug audits.
//
// The library is a control system whose failures should be loud, so the
// baseline checks are enabled in all build types. Three tiers exist:
//
//   SA_REQUIRE / SA_CHECK   always on. SA_REQUIRE guards documented
//                           preconditions of public APIs (caller bugs,
//                           throws PreconditionError); SA_CHECK guards
//                           internal invariants (our bugs, throws
//                           InvariantError). Neither may sit on an O(n^2)
//                           path — they are O(1)/O(n) spot checks.
//   SA_DCHECK               on unless NDEBUG is defined (i.e. on in Debug
//                           builds, compiled out of release builds). The
//                           condition is NOT evaluated when disabled, so
//                           moderately expensive checks are fine here.
//   SA_INVARIANT            on only when STAYAWAY_PARANOID is defined
//                           (cmake -DSTAYAWAY_PARANOID=ON, ./ci.sh
//                           --paranoid). Full-audit tier: O(n^2) matrix
//                           symmetry sweeps, probability-mass sums, range
//                           re-derivations. Not evaluated when disabled.
//
// SA_ENSURE is the historical name of SA_CHECK and remains as an alias.
#pragma once

#include <stdexcept>
#include <string>

namespace stayaway {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// True when SA_DCHECK conditions are evaluated in this build.
constexpr bool dchecks_enabled() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

/// True when SA_INVARIANT audits are evaluated in this build.
constexpr bool invariants_enabled() {
#ifdef STAYAWAY_PARANOID
  return true;
#else
  return false;
#endif
}

namespace detail {
[[noreturn]] void fail_precondition(const char* expr, const char* file, int line,
                                    const std::string& msg);
[[noreturn]] void fail_invariant(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace stayaway

/// Check a documented precondition of a public API.
#define SA_REQUIRE(expr, msg)                                                      \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::stayaway::detail::fail_precondition(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                              \
  } while (false)

/// Check an internal invariant (always on).
#define SA_CHECK(expr, msg)                                                        \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::stayaway::detail::fail_invariant(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                              \
  } while (false)

/// Historical alias for SA_CHECK.
#define SA_ENSURE(expr, msg) SA_CHECK(expr, msg)

// The disabled forms still name-check expr and msg (so a disabled check
// cannot rot) but never evaluate them: `false && (expr)` short-circuits.
#define SA_DISABLED_CHECK(expr, msg)                                               \
  do {                                                                             \
    if (false && !static_cast<bool>(expr)) {                                       \
      ::stayaway::detail::fail_invariant(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                              \
  } while (false)

/// Debug-tier check: evaluated only when NDEBUG is not defined.
#ifndef NDEBUG
#define SA_DCHECK(expr, msg) SA_CHECK(expr, msg)
#else
#define SA_DCHECK(expr, msg) SA_DISABLED_CHECK(expr, msg)
#endif

/// Paranoid-tier audit: evaluated only under -DSTAYAWAY_PARANOID=ON.
/// Reserved for expensive full-structure validation (O(n^2) sweeps).
#ifdef STAYAWAY_PARANOID
#define SA_INVARIANT(expr, msg) SA_CHECK(expr, msg)
#else
#define SA_INVARIANT(expr, msg) SA_DISABLED_CHECK(expr, msg)
#endif
