// Fixed-capacity ring buffer used for sliding windows of measurements.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace stayaway {

/// Keeps the most recent `capacity` elements pushed into it.
/// Index 0 is the oldest retained element; size()-1 the newest.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    SA_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
    data_.reserve(capacity);
  }

  void push(T value) {
    if (data_.size() < capacity_) {
      data_.push_back(std::move(value));
    } else {
      data_[head_] = std::move(value);
      head_ = (head_ + 1) % capacity_;
    }
  }

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return data_.empty(); }
  bool full() const { return data_.size() == capacity_; }

  /// i == 0 is the oldest element, i == size()-1 the newest.
  const T& operator[](std::size_t i) const {
    SA_REQUIRE(i < data_.size(), "ring buffer index out of range");
    return data_[(head_ + i) % data_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size() - 1]; }

  void clear() {
    data_.clear();
    head_ = 0;
  }

  /// Copies contents oldest-to-newest into a flat vector.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest element once full
  std::vector<T> data_;
};

}  // namespace stayaway
