#include "util/check.hpp"

namespace stayaway::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
  std::string out;
  out += kind;
  out += " failed: ";
  out += expr;
  out += " (";
  out += msg;
  out += ") at ";
  out += file;
  out += ":";
  out += std::to_string(line);
  return out;
}
}  // namespace

void fail_precondition(const char* expr, const char* file, int line,
                       const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void fail_invariant(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

}  // namespace stayaway::detail
