#include "util/statecodec.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace stayaway::util {

namespace {

[[noreturn]] void fail(std::string_view key, const std::string& detail) {
  throw StateCodecError("state snapshot: field '" + std::string(key) + "': " +
                        detail);
}

}  // namespace

double parse_exact_double(const std::string& text, std::string_view what) {
  if (text.empty()) fail(what, "empty double");
  const char* begin = text.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end != begin + text.size()) fail(what, "malformed double '" + text + "'");
  return v;
}

void StateWriter::emit(std::string_view key, std::string_view value) {
  SA_CHECK(key.find_first_of(" =\n") == std::string_view::npos,
           "snapshot keys are bare identifiers");
  SA_CHECK(value.find('\n') == std::string_view::npos,
           "snapshot values are single lines");
  out_ << key << " = " << value << '\n';
}

void StateWriter::u64(std::string_view key, std::uint64_t v) {
  emit(key, std::to_string(v));
}

void StateWriter::i64(std::string_view key, std::int64_t v) {
  emit(key, std::to_string(v));
}

void StateWriter::boolean(std::string_view key, bool v) {
  emit(key, v ? "true" : "false");
}

void StateWriter::real(std::string_view key, double v) {
  emit(key, format_double_exact(v));
}

void StateWriter::token(std::string_view key, std::string_view v) {
  SA_CHECK(!v.empty() && v.find_first_of(" \t\n") == std::string_view::npos,
           "snapshot tokens are single non-empty words");
  emit(key, v);
}

void StateWriter::line(std::string_view key, std::string_view v) {
  emit(key, v);
}

void StateWriter::reals(std::string_view key, const std::vector<double>& v) {
  std::string out = std::to_string(v.size());
  for (double x : v) {
    out += ' ';
    out += format_double_exact(x);
  }
  emit(key, out);
}

void StateWriter::u64s(std::string_view key,
                       const std::vector<std::uint64_t>& v) {
  std::string out = std::to_string(v.size());
  for (std::uint64_t x : v) {
    out += ' ';
    out += std::to_string(x);
  }
  emit(key, out);
}

std::string StateReader::next_value(std::string_view key) {
  std::string raw;
  if (!std::getline(in_, raw)) {
    fail(key, "snapshot truncated (field missing)");
  }
  if (in_.eof()) {
    // getline consumed characters but hit EOF before the delimiter:
    // the final line was cut mid-record.
    fail(key, "snapshot truncated (missing trailing newline)");
  }
  auto eq = raw.find(" = ");
  if (eq == std::string::npos) fail(key, "malformed line '" + raw + "'");
  std::string got = raw.substr(0, eq);
  if (got != key) fail(key, "found field '" + got + "' instead");
  return raw.substr(eq + 3);
}

std::uint64_t StateReader::u64(std::string_view key) {
  std::string v = next_value(key);
  std::uint64_t out = 0;
  if (!parse_u64(v, out)) fail(key, "malformed u64 '" + v + "'");
  return out;
}

std::int64_t StateReader::i64(std::string_view key) {
  std::string v = next_value(key);
  if (v.empty()) fail(key, "empty i64");
  bool negative = v[0] == '-';
  std::uint64_t mag = 0;
  if (!parse_u64(negative ? v.substr(1) : v, mag)) {
    fail(key, "malformed i64 '" + v + "'");
  }
  constexpr std::uint64_t kMax =
      static_cast<std::uint64_t>(INT64_MAX);
  if (mag > (negative ? kMax + 1 : kMax)) fail(key, "i64 overflow '" + v + "'");
  return negative ? -static_cast<std::int64_t>(mag)
                  : static_cast<std::int64_t>(mag);
}

bool StateReader::boolean(std::string_view key) {
  std::string v = next_value(key);
  if (v == "true") return true;
  if (v == "false") return false;
  fail(key, "malformed bool '" + v + "'");
}

double StateReader::real(std::string_view key) {
  return parse_exact_double(next_value(key), key);
}

std::string StateReader::token(std::string_view key) {
  std::string v = next_value(key);
  if (v.empty() || v.find_first_of(" \t") != std::string::npos) {
    fail(key, "malformed token '" + v + "'");
  }
  return v;
}

std::string StateReader::line(std::string_view key) { return next_value(key); }

std::vector<double> StateReader::reals(std::string_view key) {
  std::istringstream in(next_value(key));
  std::uint64_t n = 0;
  std::string head;
  if (!(in >> head) || !parse_u64(head, n)) fail(key, "malformed vector count");
  std::vector<double> out;
  out.reserve(n);
  std::string item;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!(in >> item)) fail(key, "vector shorter than its count");
    out.push_back(parse_exact_double(item, key));
  }
  if (in >> item) fail(key, "vector longer than its count");
  return out;
}

std::vector<std::uint64_t> StateReader::u64s(std::string_view key) {
  std::istringstream in(next_value(key));
  std::uint64_t n = 0;
  std::string head;
  if (!(in >> head) || !parse_u64(head, n)) fail(key, "malformed vector count");
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::string item;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    if (!(in >> item) || !parse_u64(item, v)) {
      fail(key, "vector shorter than its count or malformed entry");
    }
    out.push_back(v);
  }
  if (in >> item) fail(key, "vector longer than its count");
  return out;
}

}  // namespace stayaway::util
