#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>

#include "util/check.hpp"

namespace stayaway::util {

ThreadPool::ThreadPool(std::size_t threads) {
  SA_REQUIRE(threads >= 1, "a pool needs at least the calling thread");
  workers_.reserve(threads - 1);
  for (std::size_t slot = 0; slot + 1 < threads; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::for_ranges(std::size_t n, const RangeFn& fn) {
  const std::size_t parts = size();
  if (parts == 1 || n < 2) {
    if (n > 0) fn(0, n);
    return;
  }
  SA_CHECK(!in_parallel_.exchange(true, std::memory_order_acquire),
           "for_ranges is not reentrant: fn called back into the same pool");
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    n_ = n;
    remaining_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller owns chunk 0 so a k-thread call never idles the hot loop's
  // own core.
  fn(chunk_begin(0, n, parts), chunk_begin(1, n, parts));
  {
    MutexLock lock(mu_);
    done_cv_.wait(mu_, [this] {
      mu_.assert_held();
      return remaining_ == 0;
    });
    fn_ = nullptr;
  }
  in_parallel_.store(false, std::memory_order_release);
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const RangeFn* fn = nullptr;
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      work_cv_.wait(mu_, [&] {
        mu_.assert_held();
        return stop_ || generation_ != seen;
      });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      n = n_;
    }
    const std::size_t parts = workers_.size() + 1;
    const std::size_t chunk = slot + 1;
    std::size_t begin = chunk_begin(chunk, n, parts);
    std::size_t end = chunk_begin(chunk + 1, n, parts);
    if (begin < end) (*fn)(begin, end);
    {
      MutexLock lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

namespace {

std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(1);
  return pool;
}

// The first thread to reconfigure the global pool becomes the control
// thread; later reconfigurations must come from it (debug-checked). The
// hot-path kernels themselves only ever run on the control thread, so
// a foreign reconfigure would race the workers' unlocked state.
std::atomic<std::thread::id>& control_thread_slot() {
  static std::atomic<std::thread::id> id{};
  return id;
}

}  // namespace

ThreadPool& hot_path_pool() { return *pool_slot(); }

void set_hot_path_threads(std::size_t n) {
  std::thread::id expected{};
  control_thread_slot().compare_exchange_strong(
      expected, std::this_thread::get_id(), std::memory_order_acq_rel);
  SA_DCHECK(control_thread_slot().load(std::memory_order_acquire) ==
                std::this_thread::get_id(),
            "hot-path pool reconfigured from a non-control thread");
  SA_CHECK(!pool_slot()->in_parallel(),
           "hot-path pool reconfigured while a parallel section is active");
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (n == pool_slot()->size()) return;
  pool_slot() = std::make_unique<ThreadPool>(n);
}

std::size_t hot_path_threads() { return pool_slot()->size(); }

}  // namespace stayaway::util
