// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly
// seeded Rng so that experiments are reproducible run-to-run. The class
// wraps std::mt19937_64 and exposes the handful of distributions the
// library needs.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace stayaway {

class Rng {
 public:
  /// Seeded construction; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given rate (rate > 0).
  double exponential(double rate);

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p);

  /// Splits off an independently seeded child generator. Children are
  /// decorrelated from the parent and from each other.
  Rng fork();

  /// Access to the raw engine for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

  /// The engine state as one space-separated text line (mt19937_64's
  /// stream form). save→load is the identity: a restored Rng emits the
  /// exact draw sequence the original would have (DESIGN.md §17). Safe
  /// because every distribution helper above constructs its
  /// std:: distribution object fresh per call — the engine is the only
  /// state an Rng has.
  std::string save_state() const;

  /// Restores a state captured by save_state. Throws
  /// util::StateCodecError on malformed text.
  void load_state(const std::string& text);

 private:
  std::mt19937_64 engine_;
};

}  // namespace stayaway
