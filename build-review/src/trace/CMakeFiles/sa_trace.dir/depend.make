# Empty dependencies file for sa_trace.
# This may be replaced when dependencies are built.
