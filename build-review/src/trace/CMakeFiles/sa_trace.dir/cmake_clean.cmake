file(REMOVE_RECURSE
  "CMakeFiles/sa_trace.dir/diurnal.cpp.o"
  "CMakeFiles/sa_trace.dir/diurnal.cpp.o.d"
  "CMakeFiles/sa_trace.dir/trace.cpp.o"
  "CMakeFiles/sa_trace.dir/trace.cpp.o.d"
  "libsa_trace.a"
  "libsa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
