file(REMOVE_RECURSE
  "libsa_trace.a"
)
