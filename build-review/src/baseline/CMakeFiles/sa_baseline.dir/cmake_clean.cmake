file(REMOVE_RECURSE
  "CMakeFiles/sa_baseline.dir/policy.cpp.o"
  "CMakeFiles/sa_baseline.dir/policy.cpp.o.d"
  "CMakeFiles/sa_baseline.dir/reactive.cpp.o"
  "CMakeFiles/sa_baseline.dir/reactive.cpp.o.d"
  "CMakeFiles/sa_baseline.dir/stages/reactive_actuator.cpp.o"
  "CMakeFiles/sa_baseline.dir/stages/reactive_actuator.cpp.o.d"
  "CMakeFiles/sa_baseline.dir/stages/static_actuator.cpp.o"
  "CMakeFiles/sa_baseline.dir/stages/static_actuator.cpp.o.d"
  "CMakeFiles/sa_baseline.dir/static_threshold.cpp.o"
  "CMakeFiles/sa_baseline.dir/static_threshold.cpp.o.d"
  "libsa_baseline.a"
  "libsa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
