file(REMOVE_RECURSE
  "libsa_baseline.a"
)
