# Empty dependencies file for sa_baseline.
# This may be replaced when dependencies are built.
