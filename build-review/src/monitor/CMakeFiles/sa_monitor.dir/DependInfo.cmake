
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/health.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/health.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/health.cpp.o.d"
  "/root/repo/src/monitor/measurement.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/measurement.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/measurement.cpp.o.d"
  "/root/repo/src/monitor/mode.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/mode.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/mode.cpp.o.d"
  "/root/repo/src/monitor/normalizer.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/normalizer.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/normalizer.cpp.o.d"
  "/root/repo/src/monitor/representative.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/representative.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/representative.cpp.o.d"
  "/root/repo/src/monitor/sample_source.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/sample_source.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/sample_source.cpp.o.d"
  "/root/repo/src/monitor/sampler.cpp" "src/monitor/CMakeFiles/sa_monitor.dir/sampler.cpp.o" "gcc" "src/monitor/CMakeFiles/sa_monitor.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/sa_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
