file(REMOVE_RECURSE
  "CMakeFiles/sa_monitor.dir/health.cpp.o"
  "CMakeFiles/sa_monitor.dir/health.cpp.o.d"
  "CMakeFiles/sa_monitor.dir/measurement.cpp.o"
  "CMakeFiles/sa_monitor.dir/measurement.cpp.o.d"
  "CMakeFiles/sa_monitor.dir/mode.cpp.o"
  "CMakeFiles/sa_monitor.dir/mode.cpp.o.d"
  "CMakeFiles/sa_monitor.dir/normalizer.cpp.o"
  "CMakeFiles/sa_monitor.dir/normalizer.cpp.o.d"
  "CMakeFiles/sa_monitor.dir/representative.cpp.o"
  "CMakeFiles/sa_monitor.dir/representative.cpp.o.d"
  "CMakeFiles/sa_monitor.dir/sample_source.cpp.o"
  "CMakeFiles/sa_monitor.dir/sample_source.cpp.o.d"
  "CMakeFiles/sa_monitor.dir/sampler.cpp.o"
  "CMakeFiles/sa_monitor.dir/sampler.cpp.o.d"
  "libsa_monitor.a"
  "libsa_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
