# Empty dependencies file for sa_monitor.
# This may be replaced when dependencies are built.
