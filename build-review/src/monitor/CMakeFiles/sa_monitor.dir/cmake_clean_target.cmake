file(REMOVE_RECURSE
  "libsa_monitor.a"
)
