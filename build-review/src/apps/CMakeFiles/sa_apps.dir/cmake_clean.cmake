file(REMOVE_RECURSE
  "CMakeFiles/sa_apps.dir/cpubomb.cpp.o"
  "CMakeFiles/sa_apps.dir/cpubomb.cpp.o.d"
  "CMakeFiles/sa_apps.dir/lru_cache.cpp.o"
  "CMakeFiles/sa_apps.dir/lru_cache.cpp.o.d"
  "CMakeFiles/sa_apps.dir/membomb.cpp.o"
  "CMakeFiles/sa_apps.dir/membomb.cpp.o.d"
  "CMakeFiles/sa_apps.dir/phase.cpp.o"
  "CMakeFiles/sa_apps.dir/phase.cpp.o.d"
  "CMakeFiles/sa_apps.dir/soplex.cpp.o"
  "CMakeFiles/sa_apps.dir/soplex.cpp.o.d"
  "CMakeFiles/sa_apps.dir/twitter_analysis.cpp.o"
  "CMakeFiles/sa_apps.dir/twitter_analysis.cpp.o.d"
  "CMakeFiles/sa_apps.dir/vlc_stream.cpp.o"
  "CMakeFiles/sa_apps.dir/vlc_stream.cpp.o.d"
  "CMakeFiles/sa_apps.dir/vlc_transcode.cpp.o"
  "CMakeFiles/sa_apps.dir/vlc_transcode.cpp.o.d"
  "CMakeFiles/sa_apps.dir/webservice.cpp.o"
  "CMakeFiles/sa_apps.dir/webservice.cpp.o.d"
  "libsa_apps.a"
  "libsa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
