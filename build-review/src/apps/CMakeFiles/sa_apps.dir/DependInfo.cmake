
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cpubomb.cpp" "src/apps/CMakeFiles/sa_apps.dir/cpubomb.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/cpubomb.cpp.o.d"
  "/root/repo/src/apps/lru_cache.cpp" "src/apps/CMakeFiles/sa_apps.dir/lru_cache.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/lru_cache.cpp.o.d"
  "/root/repo/src/apps/membomb.cpp" "src/apps/CMakeFiles/sa_apps.dir/membomb.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/membomb.cpp.o.d"
  "/root/repo/src/apps/phase.cpp" "src/apps/CMakeFiles/sa_apps.dir/phase.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/phase.cpp.o.d"
  "/root/repo/src/apps/soplex.cpp" "src/apps/CMakeFiles/sa_apps.dir/soplex.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/soplex.cpp.o.d"
  "/root/repo/src/apps/twitter_analysis.cpp" "src/apps/CMakeFiles/sa_apps.dir/twitter_analysis.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/twitter_analysis.cpp.o.d"
  "/root/repo/src/apps/vlc_stream.cpp" "src/apps/CMakeFiles/sa_apps.dir/vlc_stream.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/vlc_stream.cpp.o.d"
  "/root/repo/src/apps/vlc_transcode.cpp" "src/apps/CMakeFiles/sa_apps.dir/vlc_transcode.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/vlc_transcode.cpp.o.d"
  "/root/repo/src/apps/webservice.cpp" "src/apps/CMakeFiles/sa_apps.dir/webservice.cpp.o" "gcc" "src/apps/CMakeFiles/sa_apps.dir/webservice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/sa_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/sa_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
