file(REMOVE_RECURSE
  "libsa_apps.a"
)
