# Empty dependencies file for sa_apps.
# This may be replaced when dependencies are built.
