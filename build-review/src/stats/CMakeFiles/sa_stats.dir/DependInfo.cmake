
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/circular.cpp" "src/stats/CMakeFiles/sa_stats.dir/circular.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/circular.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/sa_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/sa_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/sa_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "src/stats/CMakeFiles/sa_stats.dir/kde.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/kde.cpp.o.d"
  "/root/repo/src/stats/online.cpp" "src/stats/CMakeFiles/sa_stats.dir/online.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/online.cpp.o.d"
  "/root/repo/src/stats/rayleigh.cpp" "src/stats/CMakeFiles/sa_stats.dir/rayleigh.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/rayleigh.cpp.o.d"
  "/root/repo/src/stats/sampler.cpp" "src/stats/CMakeFiles/sa_stats.dir/sampler.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/sampler.cpp.o.d"
  "/root/repo/src/stats/var1.cpp" "src/stats/CMakeFiles/sa_stats.dir/var1.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/var1.cpp.o.d"
  "/root/repo/src/stats/zipf.cpp" "src/stats/CMakeFiles/sa_stats.dir/zipf.cpp.o" "gcc" "src/stats/CMakeFiles/sa_stats.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
