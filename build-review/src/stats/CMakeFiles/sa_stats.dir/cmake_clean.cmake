file(REMOVE_RECURSE
  "CMakeFiles/sa_stats.dir/circular.cpp.o"
  "CMakeFiles/sa_stats.dir/circular.cpp.o.d"
  "CMakeFiles/sa_stats.dir/descriptive.cpp.o"
  "CMakeFiles/sa_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/sa_stats.dir/ecdf.cpp.o"
  "CMakeFiles/sa_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/sa_stats.dir/histogram.cpp.o"
  "CMakeFiles/sa_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/sa_stats.dir/kde.cpp.o"
  "CMakeFiles/sa_stats.dir/kde.cpp.o.d"
  "CMakeFiles/sa_stats.dir/online.cpp.o"
  "CMakeFiles/sa_stats.dir/online.cpp.o.d"
  "CMakeFiles/sa_stats.dir/rayleigh.cpp.o"
  "CMakeFiles/sa_stats.dir/rayleigh.cpp.o.d"
  "CMakeFiles/sa_stats.dir/sampler.cpp.o"
  "CMakeFiles/sa_stats.dir/sampler.cpp.o.d"
  "CMakeFiles/sa_stats.dir/var1.cpp.o"
  "CMakeFiles/sa_stats.dir/var1.cpp.o.d"
  "CMakeFiles/sa_stats.dir/zipf.cpp.o"
  "CMakeFiles/sa_stats.dir/zipf.cpp.o.d"
  "libsa_stats.a"
  "libsa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
