file(REMOVE_RECURSE
  "libsa_stats.a"
)
