# Empty dependencies file for sa_stats.
# This may be replaced when dependencies are built.
