# Empty dependencies file for sa_core.
# This may be replaced when dependencies are built.
