file(REMOVE_RECURSE
  "libsa_core.a"
)
