
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/embedder.cpp" "src/core/CMakeFiles/sa_core.dir/embedder.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/embedder.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/core/CMakeFiles/sa_core.dir/fleet.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/fleet.cpp.o.d"
  "/root/repo/src/core/governor.cpp" "src/core/CMakeFiles/sa_core.dir/governor.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/governor.cpp.o.d"
  "/root/repo/src/core/host_port.cpp" "src/core/CMakeFiles/sa_core.dir/host_port.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/host_port.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/sa_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/sa_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/sa_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/stages/actuator.cpp" "src/core/CMakeFiles/sa_core.dir/stages/actuator.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/stages/actuator.cpp.o.d"
  "/root/repo/src/core/stages/forecaster.cpp" "src/core/CMakeFiles/sa_core.dir/stages/forecaster.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/stages/forecaster.cpp.o.d"
  "/root/repo/src/core/stages/mapper.cpp" "src/core/CMakeFiles/sa_core.dir/stages/mapper.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/stages/mapper.cpp.o.d"
  "/root/repo/src/core/statespace.cpp" "src/core/CMakeFiles/sa_core.dir/statespace.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/statespace.cpp.o.d"
  "/root/repo/src/core/template_store.cpp" "src/core/CMakeFiles/sa_core.dir/template_store.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/template_store.cpp.o.d"
  "/root/repo/src/core/trajectory.cpp" "src/core/CMakeFiles/sa_core.dir/trajectory.cpp.o" "gcc" "src/core/CMakeFiles/sa_core.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/monitor/CMakeFiles/sa_monitor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mds/CMakeFiles/sa_mds.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/sa_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/sa_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/sa_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
