file(REMOVE_RECURSE
  "CMakeFiles/sa_core.dir/embedder.cpp.o"
  "CMakeFiles/sa_core.dir/embedder.cpp.o.d"
  "CMakeFiles/sa_core.dir/fleet.cpp.o"
  "CMakeFiles/sa_core.dir/fleet.cpp.o.d"
  "CMakeFiles/sa_core.dir/governor.cpp.o"
  "CMakeFiles/sa_core.dir/governor.cpp.o.d"
  "CMakeFiles/sa_core.dir/host_port.cpp.o"
  "CMakeFiles/sa_core.dir/host_port.cpp.o.d"
  "CMakeFiles/sa_core.dir/pipeline.cpp.o"
  "CMakeFiles/sa_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/sa_core.dir/predictor.cpp.o"
  "CMakeFiles/sa_core.dir/predictor.cpp.o.d"
  "CMakeFiles/sa_core.dir/runtime.cpp.o"
  "CMakeFiles/sa_core.dir/runtime.cpp.o.d"
  "CMakeFiles/sa_core.dir/stages/actuator.cpp.o"
  "CMakeFiles/sa_core.dir/stages/actuator.cpp.o.d"
  "CMakeFiles/sa_core.dir/stages/forecaster.cpp.o"
  "CMakeFiles/sa_core.dir/stages/forecaster.cpp.o.d"
  "CMakeFiles/sa_core.dir/stages/mapper.cpp.o"
  "CMakeFiles/sa_core.dir/stages/mapper.cpp.o.d"
  "CMakeFiles/sa_core.dir/statespace.cpp.o"
  "CMakeFiles/sa_core.dir/statespace.cpp.o.d"
  "CMakeFiles/sa_core.dir/template_store.cpp.o"
  "CMakeFiles/sa_core.dir/template_store.cpp.o.d"
  "CMakeFiles/sa_core.dir/trajectory.cpp.o"
  "CMakeFiles/sa_core.dir/trajectory.cpp.o.d"
  "libsa_core.a"
  "libsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
