file(REMOVE_RECURSE
  "libsa_harness.a"
)
