file(REMOVE_RECURSE
  "CMakeFiles/sa_harness.dir/experiment.cpp.o"
  "CMakeFiles/sa_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/sa_harness.dir/fleet.cpp.o"
  "CMakeFiles/sa_harness.dir/fleet.cpp.o.d"
  "CMakeFiles/sa_harness.dir/report.cpp.o"
  "CMakeFiles/sa_harness.dir/report.cpp.o.d"
  "CMakeFiles/sa_harness.dir/rig.cpp.o"
  "CMakeFiles/sa_harness.dir/rig.cpp.o.d"
  "CMakeFiles/sa_harness.dir/scenario_file.cpp.o"
  "CMakeFiles/sa_harness.dir/scenario_file.cpp.o.d"
  "CMakeFiles/sa_harness.dir/scenarios.cpp.o"
  "CMakeFiles/sa_harness.dir/scenarios.cpp.o.d"
  "CMakeFiles/sa_harness.dir/stayaway_policy.cpp.o"
  "CMakeFiles/sa_harness.dir/stayaway_policy.cpp.o.d"
  "libsa_harness.a"
  "libsa_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
