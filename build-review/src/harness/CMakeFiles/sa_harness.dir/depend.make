# Empty dependencies file for sa_harness.
# This may be replaced when dependencies are built.
