
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/sa_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/fleet.cpp" "src/harness/CMakeFiles/sa_harness.dir/fleet.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/fleet.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/sa_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/rig.cpp" "src/harness/CMakeFiles/sa_harness.dir/rig.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/rig.cpp.o.d"
  "/root/repo/src/harness/scenario_file.cpp" "src/harness/CMakeFiles/sa_harness.dir/scenario_file.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/scenario_file.cpp.o.d"
  "/root/repo/src/harness/scenarios.cpp" "src/harness/CMakeFiles/sa_harness.dir/scenarios.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/scenarios.cpp.o.d"
  "/root/repo/src/harness/stayaway_policy.cpp" "src/harness/CMakeFiles/sa_harness.dir/stayaway_policy.cpp.o" "gcc" "src/harness/CMakeFiles/sa_harness.dir/stayaway_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baseline/CMakeFiles/sa_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/sa_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/sa_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/monitor/CMakeFiles/sa_monitor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mds/CMakeFiles/sa_mds.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/sa_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/sa_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
