# Empty dependencies file for sa_obs.
# This may be replaced when dependencies are built.
