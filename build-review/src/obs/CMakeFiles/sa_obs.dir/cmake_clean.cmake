file(REMOVE_RECURSE
  "CMakeFiles/sa_obs.dir/events.cpp.o"
  "CMakeFiles/sa_obs.dir/events.cpp.o.d"
  "CMakeFiles/sa_obs.dir/json.cpp.o"
  "CMakeFiles/sa_obs.dir/json.cpp.o.d"
  "CMakeFiles/sa_obs.dir/metrics.cpp.o"
  "CMakeFiles/sa_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/sa_obs.dir/observer.cpp.o"
  "CMakeFiles/sa_obs.dir/observer.cpp.o.d"
  "libsa_obs.a"
  "libsa_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
