file(REMOVE_RECURSE
  "libsa_obs.a"
)
