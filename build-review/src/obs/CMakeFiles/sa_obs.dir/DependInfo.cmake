
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/events.cpp" "src/obs/CMakeFiles/sa_obs.dir/events.cpp.o" "gcc" "src/obs/CMakeFiles/sa_obs.dir/events.cpp.o.d"
  "/root/repo/src/obs/json.cpp" "src/obs/CMakeFiles/sa_obs.dir/json.cpp.o" "gcc" "src/obs/CMakeFiles/sa_obs.dir/json.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/obs/CMakeFiles/sa_obs.dir/metrics.cpp.o" "gcc" "src/obs/CMakeFiles/sa_obs.dir/metrics.cpp.o.d"
  "/root/repo/src/obs/observer.cpp" "src/obs/CMakeFiles/sa_obs.dir/observer.cpp.o" "gcc" "src/obs/CMakeFiles/sa_obs.dir/observer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
