file(REMOVE_RECURSE
  "libsa_mds.a"
)
