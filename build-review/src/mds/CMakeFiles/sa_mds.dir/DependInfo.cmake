
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/classical.cpp" "src/mds/CMakeFiles/sa_mds.dir/classical.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/classical.cpp.o.d"
  "/root/repo/src/mds/distance.cpp" "src/mds/CMakeFiles/sa_mds.dir/distance.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/distance.cpp.o.d"
  "/root/repo/src/mds/incremental.cpp" "src/mds/CMakeFiles/sa_mds.dir/incremental.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/incremental.cpp.o.d"
  "/root/repo/src/mds/landmark.cpp" "src/mds/CMakeFiles/sa_mds.dir/landmark.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/landmark.cpp.o.d"
  "/root/repo/src/mds/pca.cpp" "src/mds/CMakeFiles/sa_mds.dir/pca.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/pca.cpp.o.d"
  "/root/repo/src/mds/point.cpp" "src/mds/CMakeFiles/sa_mds.dir/point.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/point.cpp.o.d"
  "/root/repo/src/mds/procrustes.cpp" "src/mds/CMakeFiles/sa_mds.dir/procrustes.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/procrustes.cpp.o.d"
  "/root/repo/src/mds/smacof.cpp" "src/mds/CMakeFiles/sa_mds.dir/smacof.cpp.o" "gcc" "src/mds/CMakeFiles/sa_mds.dir/smacof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/sa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
