# Empty dependencies file for sa_mds.
# This may be replaced when dependencies are built.
