file(REMOVE_RECURSE
  "CMakeFiles/sa_mds.dir/classical.cpp.o"
  "CMakeFiles/sa_mds.dir/classical.cpp.o.d"
  "CMakeFiles/sa_mds.dir/distance.cpp.o"
  "CMakeFiles/sa_mds.dir/distance.cpp.o.d"
  "CMakeFiles/sa_mds.dir/incremental.cpp.o"
  "CMakeFiles/sa_mds.dir/incremental.cpp.o.d"
  "CMakeFiles/sa_mds.dir/landmark.cpp.o"
  "CMakeFiles/sa_mds.dir/landmark.cpp.o.d"
  "CMakeFiles/sa_mds.dir/pca.cpp.o"
  "CMakeFiles/sa_mds.dir/pca.cpp.o.d"
  "CMakeFiles/sa_mds.dir/point.cpp.o"
  "CMakeFiles/sa_mds.dir/point.cpp.o.d"
  "CMakeFiles/sa_mds.dir/procrustes.cpp.o"
  "CMakeFiles/sa_mds.dir/procrustes.cpp.o.d"
  "CMakeFiles/sa_mds.dir/smacof.cpp.o"
  "CMakeFiles/sa_mds.dir/smacof.cpp.o.d"
  "libsa_mds.a"
  "libsa_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
