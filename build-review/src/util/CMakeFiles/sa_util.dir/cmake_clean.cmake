file(REMOVE_RECURSE
  "CMakeFiles/sa_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/sa_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/sa_util.dir/check.cpp.o"
  "CMakeFiles/sa_util.dir/check.cpp.o.d"
  "CMakeFiles/sa_util.dir/csv.cpp.o"
  "CMakeFiles/sa_util.dir/csv.cpp.o.d"
  "CMakeFiles/sa_util.dir/rng.cpp.o"
  "CMakeFiles/sa_util.dir/rng.cpp.o.d"
  "CMakeFiles/sa_util.dir/strings.cpp.o"
  "CMakeFiles/sa_util.dir/strings.cpp.o.d"
  "CMakeFiles/sa_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sa_util.dir/thread_pool.cpp.o.d"
  "libsa_util.a"
  "libsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
