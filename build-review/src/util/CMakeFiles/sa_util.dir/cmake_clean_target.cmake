file(REMOVE_RECURSE
  "libsa_util.a"
)
