# Empty dependencies file for sa_util.
# This may be replaced when dependencies are built.
