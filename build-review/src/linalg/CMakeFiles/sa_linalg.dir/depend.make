# Empty dependencies file for sa_linalg.
# This may be replaced when dependencies are built.
