file(REMOVE_RECURSE
  "CMakeFiles/sa_linalg.dir/eigen.cpp.o"
  "CMakeFiles/sa_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/sa_linalg.dir/matrix.cpp.o"
  "CMakeFiles/sa_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/sa_linalg.dir/solve.cpp.o"
  "CMakeFiles/sa_linalg.dir/solve.cpp.o.d"
  "libsa_linalg.a"
  "libsa_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
