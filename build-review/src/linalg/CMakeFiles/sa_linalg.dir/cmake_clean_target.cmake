file(REMOVE_RECURSE
  "libsa_linalg.a"
)
