file(REMOVE_RECURSE
  "libsa_replay.a"
)
