# Empty compiler generated dependencies file for sa_replay.
# This may be replaced when dependencies are built.
