file(REMOVE_RECURSE
  "CMakeFiles/sa_replay.dir/fuzz.cpp.o"
  "CMakeFiles/sa_replay.dir/fuzz.cpp.o.d"
  "CMakeFiles/sa_replay.dir/recorder.cpp.o"
  "CMakeFiles/sa_replay.dir/recorder.cpp.o.d"
  "CMakeFiles/sa_replay.dir/replay.cpp.o"
  "CMakeFiles/sa_replay.dir/replay.cpp.o.d"
  "CMakeFiles/sa_replay.dir/run_log.cpp.o"
  "CMakeFiles/sa_replay.dir/run_log.cpp.o.d"
  "libsa_replay.a"
  "libsa_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
