
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/contention.cpp" "src/sim/CMakeFiles/sa_sim.dir/contention.cpp.o" "gcc" "src/sim/CMakeFiles/sa_sim.dir/contention.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/sa_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/sa_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/sa_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/sa_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/vm.cpp" "src/sim/CMakeFiles/sa_sim.dir/vm.cpp.o" "gcc" "src/sim/CMakeFiles/sa_sim.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
