file(REMOVE_RECURSE
  "CMakeFiles/sa_sim.dir/contention.cpp.o"
  "CMakeFiles/sa_sim.dir/contention.cpp.o.d"
  "CMakeFiles/sa_sim.dir/faults.cpp.o"
  "CMakeFiles/sa_sim.dir/faults.cpp.o.d"
  "CMakeFiles/sa_sim.dir/host.cpp.o"
  "CMakeFiles/sa_sim.dir/host.cpp.o.d"
  "CMakeFiles/sa_sim.dir/vm.cpp.o"
  "CMakeFiles/sa_sim.dir/vm.cpp.o.d"
  "libsa_sim.a"
  "libsa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
