file(REMOVE_RECURSE
  "../bench/bench_fig17_template"
  "../bench/bench_fig17_template.pdb"
  "CMakeFiles/bench_fig17_template.dir/bench_fig17_template.cpp.o"
  "CMakeFiles/bench_fig17_template.dir/bench_fig17_template.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
