# Empty compiler generated dependencies file for bench_fig14_ws_mix.
# This may be replaced when dependencies are built.
