file(REMOVE_RECURSE
  "../bench/bench_fig14_ws_mix"
  "../bench/bench_fig14_ws_mix.pdb"
  "CMakeFiles/bench_fig14_ws_mix.dir/bench_fig14_ws_mix.cpp.o"
  "CMakeFiles/bench_fig14_ws_mix.dir/bench_fig14_ws_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ws_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
