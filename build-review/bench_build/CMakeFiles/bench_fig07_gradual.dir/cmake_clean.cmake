file(REMOVE_RECURSE
  "../bench/bench_fig07_gradual"
  "../bench/bench_fig07_gradual.pdb"
  "CMakeFiles/bench_fig07_gradual.dir/bench_fig07_gradual.cpp.o"
  "CMakeFiles/bench_fig07_gradual.dir/bench_fig07_gradual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gradual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
