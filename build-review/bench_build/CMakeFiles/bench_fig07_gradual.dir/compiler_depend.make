# Empty compiler generated dependencies file for bench_fig07_gradual.
# This may be replaced when dependencies are built.
