file(REMOVE_RECURSE
  "../bench/bench_fig04_violation_range"
  "../bench/bench_fig04_violation_range.pdb"
  "CMakeFiles/bench_fig04_violation_range.dir/bench_fig04_violation_range.cpp.o"
  "CMakeFiles/bench_fig04_violation_range.dir/bench_fig04_violation_range.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_violation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
