# Empty compiler generated dependencies file for bench_fig04_violation_range.
# This may be replaced when dependencies are built.
