# Empty compiler generated dependencies file for bench_fig12_util_webservice.
# This may be replaced when dependencies are built.
