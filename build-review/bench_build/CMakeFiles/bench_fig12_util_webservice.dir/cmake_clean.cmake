file(REMOVE_RECURSE
  "../bench/bench_fig12_util_webservice"
  "../bench/bench_fig12_util_webservice.pdb"
  "CMakeFiles/bench_fig12_util_webservice.dir/bench_fig12_util_webservice.cpp.o"
  "CMakeFiles/bench_fig12_util_webservice.dir/bench_fig12_util_webservice.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_util_webservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
