file(REMOVE_RECURSE
  "../bench/bench_fig11_util_twitter"
  "../bench/bench_fig11_util_twitter.pdb"
  "CMakeFiles/bench_fig11_util_twitter.dir/bench_fig11_util_twitter.cpp.o"
  "CMakeFiles/bench_fig11_util_twitter.dir/bench_fig11_util_twitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_util_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
