file(REMOVE_RECURSE
  "../bench/bench_sec21_priorities"
  "../bench/bench_sec21_priorities.pdb"
  "CMakeFiles/bench_sec21_priorities.dir/bench_sec21_priorities.cpp.o"
  "CMakeFiles/bench_sec21_priorities.dir/bench_sec21_priorities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec21_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
