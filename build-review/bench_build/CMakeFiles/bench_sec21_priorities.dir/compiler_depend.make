# Empty compiler generated dependencies file for bench_sec21_priorities.
# This may be replaced when dependencies are built.
