file(REMOVE_RECURSE
  "../bench/bench_hotpath"
  "../bench/bench_hotpath.pdb"
  "CMakeFiles/bench_hotpath.dir/bench_hotpath.cpp.o"
  "CMakeFiles/bench_hotpath.dir/bench_hotpath.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
