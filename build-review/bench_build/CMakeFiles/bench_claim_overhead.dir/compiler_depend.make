# Empty compiler generated dependencies file for bench_claim_overhead.
# This may be replaced when dependencies are built.
