file(REMOVE_RECURSE
  "../bench/bench_claim_overhead"
  "../bench/bench_claim_overhead.pdb"
  "CMakeFiles/bench_claim_overhead.dir/bench_claim_overhead.cpp.o"
  "CMakeFiles/bench_claim_overhead.dir/bench_claim_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
