# Empty dependencies file for bench_fig05_modes.
# This may be replaced when dependencies are built.
