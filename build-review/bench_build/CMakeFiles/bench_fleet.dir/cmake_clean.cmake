file(REMOVE_RECURSE
  "../bench/bench_fleet"
  "../bench/bench_fleet.pdb"
  "CMakeFiles/bench_fleet.dir/bench_fleet.cpp.o"
  "CMakeFiles/bench_fleet.dir/bench_fleet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
