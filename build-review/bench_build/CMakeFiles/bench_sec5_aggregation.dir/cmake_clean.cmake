file(REMOVE_RECURSE
  "../bench/bench_sec5_aggregation"
  "../bench/bench_sec5_aggregation.pdb"
  "CMakeFiles/bench_sec5_aggregation.dir/bench_sec5_aggregation.cpp.o"
  "CMakeFiles/bench_sec5_aggregation.dir/bench_sec5_aggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
