file(REMOVE_RECURSE
  "../bench/bench_abl_var"
  "../bench/bench_abl_var.pdb"
  "CMakeFiles/bench_abl_var.dir/bench_abl_var.cpp.o"
  "CMakeFiles/bench_abl_var.dir/bench_abl_var.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
