# Empty compiler generated dependencies file for bench_abl_var.
# This may be replaced when dependencies are built.
