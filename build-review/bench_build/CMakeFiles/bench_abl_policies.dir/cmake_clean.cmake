file(REMOVE_RECURSE
  "../bench/bench_abl_policies"
  "../bench/bench_abl_policies.pdb"
  "CMakeFiles/bench_abl_policies.dir/bench_abl_policies.cpp.o"
  "CMakeFiles/bench_abl_policies.dir/bench_abl_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
