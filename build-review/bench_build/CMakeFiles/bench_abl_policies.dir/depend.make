# Empty dependencies file for bench_abl_policies.
# This may be replaced when dependencies are built.
