
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl_permode.cpp" "bench_build/CMakeFiles/bench_abl_permode.dir/bench_abl_permode.cpp.o" "gcc" "bench_build/CMakeFiles/bench_abl_permode.dir/bench_abl_permode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/harness/CMakeFiles/sa_harness.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baseline/CMakeFiles/sa_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/monitor/CMakeFiles/sa_monitor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mds/CMakeFiles/sa_mds.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/sa_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/sa_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/sa_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/sa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/sa_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/sa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
