file(REMOVE_RECURSE
  "../bench/bench_abl_permode"
  "../bench/bench_abl_permode.pdb"
  "CMakeFiles/bench_abl_permode.dir/bench_abl_permode.cpp.o"
  "CMakeFiles/bench_abl_permode.dir/bench_abl_permode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_permode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
