# Empty dependencies file for bench_abl_permode.
# This may be replaced when dependencies are built.
