file(REMOVE_RECURSE
  "../bench/bench_ingest"
  "../bench/bench_ingest.pdb"
  "CMakeFiles/bench_ingest.dir/bench_ingest.cpp.o"
  "CMakeFiles/bench_ingest.dir/bench_ingest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
