# Empty compiler generated dependencies file for bench_fig09_vlc_twitter.
# This may be replaced when dependencies are built.
