file(REMOVE_RECURSE
  "../bench/bench_fig16_ws_mem"
  "../bench/bench_fig16_ws_mem.pdb"
  "CMakeFiles/bench_fig16_ws_mem.dir/bench_fig16_ws_mem.cpp.o"
  "CMakeFiles/bench_fig16_ws_mem.dir/bench_fig16_ws_mem.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ws_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
