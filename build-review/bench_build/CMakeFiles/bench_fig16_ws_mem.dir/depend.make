# Empty dependencies file for bench_fig16_ws_mem.
# This may be replaced when dependencies are built.
