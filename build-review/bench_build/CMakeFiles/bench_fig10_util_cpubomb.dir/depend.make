# Empty dependencies file for bench_fig10_util_cpubomb.
# This may be replaced when dependencies are built.
