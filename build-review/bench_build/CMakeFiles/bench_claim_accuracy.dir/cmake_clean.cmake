file(REMOVE_RECURSE
  "../bench/bench_claim_accuracy"
  "../bench/bench_claim_accuracy.pdb"
  "CMakeFiles/bench_claim_accuracy.dir/bench_claim_accuracy.cpp.o"
  "CMakeFiles/bench_claim_accuracy.dir/bench_claim_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
