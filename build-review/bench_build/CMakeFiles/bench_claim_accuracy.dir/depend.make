# Empty dependencies file for bench_claim_accuracy.
# This may be replaced when dependencies are built.
