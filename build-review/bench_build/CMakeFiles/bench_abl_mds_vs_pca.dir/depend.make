# Empty dependencies file for bench_abl_mds_vs_pca.
# This may be replaced when dependencies are built.
