file(REMOVE_RECURSE
  "../bench/bench_abl_mds_vs_pca"
  "../bench/bench_abl_mds_vs_pca.pdb"
  "CMakeFiles/bench_abl_mds_vs_pca.dir/bench_abl_mds_vs_pca.cpp.o"
  "CMakeFiles/bench_abl_mds_vs_pca.dir/bench_abl_mds_vs_pca.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_mds_vs_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
