# Empty dependencies file for bench_claim_util_summary.
# This may be replaced when dependencies are built.
