file(REMOVE_RECURSE
  "../bench/bench_claim_util_summary"
  "../bench/bench_claim_util_summary.pdb"
  "CMakeFiles/bench_claim_util_summary.dir/bench_claim_util_summary.cpp.o"
  "CMakeFiles/bench_claim_util_summary.dir/bench_claim_util_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_util_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
