# Empty dependencies file for bench_abl_radius.
# This may be replaced when dependencies are built.
