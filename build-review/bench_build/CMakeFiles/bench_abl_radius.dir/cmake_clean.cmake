file(REMOVE_RECURSE
  "../bench/bench_abl_radius"
  "../bench/bench_abl_radius.pdb"
  "CMakeFiles/bench_abl_radius.dir/bench_abl_radius.cpp.o"
  "CMakeFiles/bench_abl_radius.dir/bench_abl_radius.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
