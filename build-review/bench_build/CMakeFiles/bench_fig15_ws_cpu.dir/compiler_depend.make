# Empty compiler generated dependencies file for bench_fig15_ws_cpu.
# This may be replaced when dependencies are built.
