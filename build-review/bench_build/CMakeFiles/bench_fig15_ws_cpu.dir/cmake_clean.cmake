file(REMOVE_RECURSE
  "../bench/bench_fig15_ws_cpu"
  "../bench/bench_fig15_ws_cpu.pdb"
  "CMakeFiles/bench_fig15_ws_cpu.dir/bench_fig15_ws_cpu.cpp.o"
  "CMakeFiles/bench_fig15_ws_cpu.dir/bench_fig15_ws_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ws_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
