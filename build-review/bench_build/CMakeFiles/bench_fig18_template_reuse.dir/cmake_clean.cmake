file(REMOVE_RECURSE
  "../bench/bench_fig18_template_reuse"
  "../bench/bench_fig18_template_reuse.pdb"
  "CMakeFiles/bench_fig18_template_reuse.dir/bench_fig18_template_reuse.cpp.o"
  "CMakeFiles/bench_fig18_template_reuse.dir/bench_fig18_template_reuse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_template_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
