# Empty compiler generated dependencies file for bench_fig18_template_reuse.
# This may be replaced when dependencies are built.
