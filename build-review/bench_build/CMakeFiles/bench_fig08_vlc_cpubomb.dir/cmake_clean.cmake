file(REMOVE_RECURSE
  "../bench/bench_fig08_vlc_cpubomb"
  "../bench/bench_fig08_vlc_cpubomb.pdb"
  "CMakeFiles/bench_fig08_vlc_cpubomb.dir/bench_fig08_vlc_cpubomb.cpp.o"
  "CMakeFiles/bench_fig08_vlc_cpubomb.dir/bench_fig08_vlc_cpubomb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_vlc_cpubomb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
