# Empty compiler generated dependencies file for bench_fig08_vlc_cpubomb.
# This may be replaced when dependencies are built.
