# Empty compiler generated dependencies file for bench_fig06_instantaneous.
# This may be replaced when dependencies are built.
