file(REMOVE_RECURSE
  "../bench/bench_fig06_instantaneous"
  "../bench/bench_fig06_instantaneous.pdb"
  "CMakeFiles/bench_fig06_instantaneous.dir/bench_fig06_instantaneous.cpp.o"
  "CMakeFiles/bench_fig06_instantaneous.dir/bench_fig06_instantaneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_instantaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
