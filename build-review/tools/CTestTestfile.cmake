# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint.selftest "/root/repo/build-review/tools/stayaway_lint" "--self-test")
set_tests_properties(lint.selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint.src "/root/repo/build-review/tools/stayaway_lint" "/root/repo/src")
set_tests_properties(lint.src PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
