file(REMOVE_RECURSE
  "CMakeFiles/stayaway_fuzz.dir/stayaway_fuzz.cpp.o"
  "CMakeFiles/stayaway_fuzz.dir/stayaway_fuzz.cpp.o.d"
  "stayaway_fuzz"
  "stayaway_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stayaway_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
