# Empty compiler generated dependencies file for stayaway_fuzz.
# This may be replaced when dependencies are built.
