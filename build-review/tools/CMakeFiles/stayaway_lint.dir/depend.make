# Empty dependencies file for stayaway_lint.
# This may be replaced when dependencies are built.
