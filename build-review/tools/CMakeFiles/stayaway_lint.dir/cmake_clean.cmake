file(REMOVE_RECURSE
  "CMakeFiles/stayaway_lint.dir/stayaway_lint.cpp.o"
  "CMakeFiles/stayaway_lint.dir/stayaway_lint.cpp.o.d"
  "stayaway_lint"
  "stayaway_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stayaway_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
