# Empty compiler generated dependencies file for stayaway_sim.
# This may be replaced when dependencies are built.
