file(REMOVE_RECURSE
  "CMakeFiles/stayaway_sim.dir/stayaway_sim.cpp.o"
  "CMakeFiles/stayaway_sim.dir/stayaway_sim.cpp.o.d"
  "stayaway_sim"
  "stayaway_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stayaway_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
