# Empty compiler generated dependencies file for webservice_colocated.
# This may be replaced when dependencies are built.
