file(REMOVE_RECURSE
  "CMakeFiles/webservice_colocated.dir/webservice_colocated.cpp.o"
  "CMakeFiles/webservice_colocated.dir/webservice_colocated.cpp.o.d"
  "webservice_colocated"
  "webservice_colocated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webservice_colocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
