file(REMOVE_RECURSE
  "CMakeFiles/vlc_streaming_colocated.dir/vlc_streaming_colocated.cpp.o"
  "CMakeFiles/vlc_streaming_colocated.dir/vlc_streaming_colocated.cpp.o.d"
  "vlc_streaming_colocated"
  "vlc_streaming_colocated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlc_streaming_colocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
