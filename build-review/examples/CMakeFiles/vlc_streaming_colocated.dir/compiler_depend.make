# Empty compiler generated dependencies file for vlc_streaming_colocated.
# This may be replaced when dependencies are built.
