# Empty dependencies file for template_reuse.
# This may be replaced when dependencies are built.
