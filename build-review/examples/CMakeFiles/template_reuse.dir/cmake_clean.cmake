file(REMOVE_RECURSE
  "CMakeFiles/template_reuse.dir/template_reuse.cpp.o"
  "CMakeFiles/template_reuse.dir/template_reuse.cpp.o.d"
  "template_reuse"
  "template_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
