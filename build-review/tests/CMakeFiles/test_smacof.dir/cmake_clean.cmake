file(REMOVE_RECURSE
  "CMakeFiles/test_smacof.dir/test_smacof.cpp.o"
  "CMakeFiles/test_smacof.dir/test_smacof.cpp.o.d"
  "test_smacof"
  "test_smacof.pdb"
  "test_smacof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smacof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
