# Empty compiler generated dependencies file for test_smacof.
# This may be replaced when dependencies are built.
