# Empty dependencies file for test_hotpath.
# This may be replaced when dependencies are built.
