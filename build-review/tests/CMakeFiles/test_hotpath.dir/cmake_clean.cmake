file(REMOVE_RECURSE
  "CMakeFiles/test_hotpath.dir/test_hotpath.cpp.o"
  "CMakeFiles/test_hotpath.dir/test_hotpath.cpp.o.d"
  "test_hotpath"
  "test_hotpath.pdb"
  "test_hotpath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
