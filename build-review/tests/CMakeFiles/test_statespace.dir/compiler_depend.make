# Empty compiler generated dependencies file for test_statespace.
# This may be replaced when dependencies are built.
