file(REMOVE_RECURSE
  "CMakeFiles/test_statespace.dir/test_statespace.cpp.o"
  "CMakeFiles/test_statespace.dir/test_statespace.cpp.o.d"
  "test_statespace"
  "test_statespace.pdb"
  "test_statespace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
