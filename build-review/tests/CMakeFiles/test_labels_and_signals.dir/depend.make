# Empty dependencies file for test_labels_and_signals.
# This may be replaced when dependencies are built.
