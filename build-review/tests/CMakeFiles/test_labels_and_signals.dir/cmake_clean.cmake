file(REMOVE_RECURSE
  "CMakeFiles/test_labels_and_signals.dir/test_labels_and_signals.cpp.o"
  "CMakeFiles/test_labels_and_signals.dir/test_labels_and_signals.cpp.o.d"
  "test_labels_and_signals"
  "test_labels_and_signals.pdb"
  "test_labels_and_signals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labels_and_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
