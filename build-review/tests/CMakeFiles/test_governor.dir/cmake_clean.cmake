file(REMOVE_RECURSE
  "CMakeFiles/test_governor.dir/test_governor.cpp.o"
  "CMakeFiles/test_governor.dir/test_governor.cpp.o.d"
  "test_governor"
  "test_governor.pdb"
  "test_governor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
