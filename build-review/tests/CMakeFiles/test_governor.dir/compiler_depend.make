# Empty compiler generated dependencies file for test_governor.
# This may be replaced when dependencies are built.
