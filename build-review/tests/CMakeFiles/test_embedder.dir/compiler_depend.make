# Empty compiler generated dependencies file for test_embedder.
# This may be replaced when dependencies are built.
