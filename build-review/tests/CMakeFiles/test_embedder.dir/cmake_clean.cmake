file(REMOVE_RECURSE
  "CMakeFiles/test_embedder.dir/test_embedder.cpp.o"
  "CMakeFiles/test_embedder.dir/test_embedder.cpp.o.d"
  "test_embedder"
  "test_embedder.pdb"
  "test_embedder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
