# Empty dependencies file for test_procrustes.
# This may be replaced when dependencies are built.
