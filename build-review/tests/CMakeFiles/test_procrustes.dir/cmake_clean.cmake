file(REMOVE_RECURSE
  "CMakeFiles/test_procrustes.dir/test_procrustes.cpp.o"
  "CMakeFiles/test_procrustes.dir/test_procrustes.cpp.o.d"
  "test_procrustes"
  "test_procrustes.pdb"
  "test_procrustes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procrustes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
