file(REMOVE_RECURSE
  "CMakeFiles/test_ingest.dir/test_ingest.cpp.o"
  "CMakeFiles/test_ingest.dir/test_ingest.cpp.o.d"
  "test_ingest"
  "test_ingest.pdb"
  "test_ingest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
