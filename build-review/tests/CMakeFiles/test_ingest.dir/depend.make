# Empty dependencies file for test_ingest.
# This may be replaced when dependencies are built.
