file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency.dir/test_concurrency.cpp.o"
  "CMakeFiles/test_concurrency.dir/test_concurrency.cpp.o.d"
  "test_concurrency"
  "test_concurrency.pdb"
  "test_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
