# Empty dependencies file for test_mds.
# This may be replaced when dependencies are built.
