file(REMOVE_RECURSE
  "CMakeFiles/test_mds.dir/test_mds.cpp.o"
  "CMakeFiles/test_mds.dir/test_mds.cpp.o.d"
  "test_mds"
  "test_mds.pdb"
  "test_mds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
