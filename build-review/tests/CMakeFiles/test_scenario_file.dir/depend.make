# Empty dependencies file for test_scenario_file.
# This may be replaced when dependencies are built.
