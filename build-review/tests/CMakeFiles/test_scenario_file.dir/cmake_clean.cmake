file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_file.dir/test_scenario_file.cpp.o"
  "CMakeFiles/test_scenario_file.dir/test_scenario_file.cpp.o.d"
  "test_scenario_file"
  "test_scenario_file.pdb"
  "test_scenario_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
