# Empty compiler generated dependencies file for test_template.
# This may be replaced when dependencies are built.
