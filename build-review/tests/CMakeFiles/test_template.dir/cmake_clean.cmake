file(REMOVE_RECURSE
  "CMakeFiles/test_template.dir/test_template.cpp.o"
  "CMakeFiles/test_template.dir/test_template.cpp.o.d"
  "test_template"
  "test_template.pdb"
  "test_template[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
