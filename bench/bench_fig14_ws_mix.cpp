// Reproduces Figure 14: "QoS of Webservice with a mix of CPU and Memory
// intensive workload when co-located with different Batch Applications."
//
// One QoS panel per batch app (Soplex, Twitter, MemBomb, Batch-1,
// Batch-2), Stay-Away active, with the no-prevention run for contrast.
// Expected: Stay-Away keeps QoS above threshold nearly always.
#include "bench_common.hpp"

int main() {
  stayaway::bench::print_webservice_qos_figure(
      stayaway::harness::SensitiveKind::WebserviceMix,
      "Figure 14: Webservice (mixed workload) QoS x batch apps", 700);
  return 0;
}
