// Reproduces the §3.2.3 claim: "with 5 samples to model uncertainty, we
// are able to achieve more than 90% accuracy on average for all the
// different co-locations we experimented with."
//
// Accuracy is measured passively (actions disabled, so predictions cannot
// mask their own outcomes): each period's forecast is scored against the
// next period's observed QoS state. Swept over the sample count K and
// over several co-locations.
#include "bench_common.hpp"

int main() {
  using namespace stayaway;
  using namespace stayaway::bench;

  std::cout << "=== Claim: prediction accuracy vs sample count (passive) "
               "===\n\n";

  const std::vector<std::size_t> sample_counts{1, 3, 5, 7, 9};
  const std::vector<std::pair<harness::SensitiveKind, harness::BatchKind>>
      colocations{
          {harness::SensitiveKind::VlcStream, harness::BatchKind::CpuBomb},
          {harness::SensitiveKind::VlcStream,
           harness::BatchKind::TwitterAnalysis},
          {harness::SensitiveKind::WebserviceMem, harness::BatchKind::MemBomb},
          {harness::SensitiveKind::WebserviceMix, harness::BatchKind::Batch1},
      };

  std::cout << pad_right("co-location", 36);
  for (std::size_t k : sample_counts) {
    std::cout << pad_left("K=" + std::to_string(k), 9);
  }
  std::cout << "\n";

  std::vector<double> k5_accuracies;
  for (const auto& [sensitive, batch] : colocations) {
    std::string label =
        std::string(to_string(sensitive)) + "+" + to_string(batch);
    std::cout << pad_right(label, 36);
    for (std::size_t k : sample_counts) {
      auto spec = figure_spec(sensitive, batch, /*duration_s=*/300.0,
                              /*seed=*/3000 + k);
      spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, 91);
      spec.stayaway.actions_enabled = false;
      spec.stayaway.prediction_samples = k;
      harness::ExperimentResult run = harness::run_experiment(spec);
      double acc = run.tally.accuracy();
      if (k == 5) k5_accuracies.push_back(acc);
      std::cout << pad_left(format_double(acc * 100.0, 1) + "%", 9);
    }
    std::cout << "\n";
  }

  double avg = 0.0;
  for (double a : k5_accuracies) avg += a;
  avg /= static_cast<double>(k5_accuracies.size());
  std::cout << "\naverage accuracy at K=5: " << format_double(avg * 100.0, 1)
            << "%  (paper claims > 90%)\n";
  return 0;
}
