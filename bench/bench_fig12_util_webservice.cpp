// Reproduces Figure 12: "Gained Utilization when Webservice is co-located
// with different Batch Applications" — a bar chart over batch apps
// {Soplex, Twitter-Analysis, MemoryBomb, Batch-1, Batch-2} x workload
// types {CPU, memory, mixed}, with Stay-Away active.
//
// Expected shape: the gain is workload-dependent; Twitter-Analysis with
// the memory-intensive workload gains the most (it is throttled only in
// its own memory phases); gains against the CPU-intensive workload are
// lower because most batch apps are CPU-hungry too.
#include "bench_common.hpp"

int main() {
  using namespace stayaway;
  using namespace stayaway::bench;

  std::cout << "=== Figure 12: gained utilization, Webservice x batch apps "
               "(Stay-Away active) ===\n\n";

  const std::vector<harness::BatchKind> batches{
      harness::BatchKind::Soplex, harness::BatchKind::TwitterAnalysis,
      harness::BatchKind::MemBomb, harness::BatchKind::Batch1,
      harness::BatchKind::Batch2};
  const std::vector<harness::SensitiveKind> workloads{
      harness::SensitiveKind::WebserviceCpu,
      harness::SensitiveKind::WebserviceMem,
      harness::SensitiveKind::WebserviceMix};

  std::cout << pad_right("batch \\ workload", 20);
  for (auto w : workloads) std::cout << pad_left(to_string(w), 17);
  std::cout << pad_left("(gain %, viol %)", 18) << "\n";

  for (auto b : batches) {
    std::cout << pad_right(to_string(b), 20);
    for (auto w : workloads) {
      auto spec = figure_spec(w, b, /*duration_s=*/240.0,
                              /*seed=*/1000 + static_cast<std::uint64_t>(b));
      spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, 41);
      harness::ExperimentResult sa = harness::run_experiment(spec);
      harness::ExperimentResult iso = harness::run_isolated(spec);
      double gain =
          harness::series_mean(harness::gained_utilization(sa, iso)) * 100.0;
      std::string cell = format_double(gain, 1) + "% / " +
                         format_double(sa.violation_fraction * 100.0, 1) + "%";
      std::cout << pad_left(cell, 17);
    }
    std::cout << "\n";
  }
  std::cout << "\ncells: gained utilization % / violating-period %.\n";
  std::cout << "Expected ordering (paper): twitter-analysis x mem workload\n"
               "largest; gains against the CPU-intensive workload smallest\n"
               "for CPU-hungry batch apps.\n";
  return 0;
}
