// Reproduces Figure 8: "VLC with CPUBomb" — normalized QoS of the VLC
// streaming server co-located with CPUBomb, with and without Stay-Away,
// against the real-time delivery threshold.
//
// Expected shape: without prevention the co-location violates nearly all
// the time; with Stay-Away violations are confined to the early learning
// phase (the first contention has to be seen once to be learned).
#include "bench_common.hpp"

int main() {
  using namespace stayaway;
  using namespace stayaway::bench;

  FigureRuns runs =
      run_figure(diurnal_figure_spec(harness::SensitiveKind::VlcStream,
                                     harness::BatchKind::CpuBomb,
                                     /*workload_seed=*/31));
  print_qos_figure("Figure 8: VLC streaming + CPUBomb", runs);

  // Paper claim: violations concentrate in the early phase.
  std::size_t half = runs.stay_away.violated.size() / 2;
  std::size_t early = 0;
  std::size_t late = 0;
  for (std::size_t i = 0; i < runs.stay_away.violated.size(); ++i) {
    if (runs.stay_away.violated[i] != 0) {
      (i < half ? early : late) += 1;
    }
  }
  std::cout << "\nviolations early half: " << early << ", late half: " << late
            << " (paper: \"most violations seen are in the early phase\")\n";
  return 0;
}
