// Ablation (§3.1): 2-D histogram-sampling forecasts versus a VAR(1)
// forecaster in the full metric space. The paper argues that reliable
// parameter estimation in high dimensions needs sample counts that grow
// exponentially, which is why it reduces to 2-D first.
//
// Protocol: passive run; train both forecasters on the first 60% of the
// record stream; forecast violations over the rest. The VAR forecaster
// predicts the next *high-dimensional* vector and checks whether its
// nearest representative is a violation state; the histogram forecaster
// is the paper's 2-D sampler.
#include "bench_common.hpp"

#include "core/trajectory.hpp"
#include "linalg/matrix.hpp"
#include "stats/var1.hpp"

namespace {

using namespace stayaway;
using namespace stayaway::bench;

OfflineTally evaluate_var(const OfflineData& data) {
  std::size_t split = data.records.size() * 3 / 5;
  std::vector<std::vector<double>> train;
  for (std::size_t i = 0; i < split; ++i) {
    train.push_back(data.rep_vectors[data.records[i].representative]);
  }
  OfflineTally tally;
  stats::Var1Model model = stats::Var1Model::fit(train, 1e-4);
  for (std::size_t i = split; i + 1 < data.records.size(); ++i) {
    const auto& cur_vec = data.rep_vectors[data.records[i].representative];
    std::vector<double> next = model.predict(cur_vec);
    // Nearest representative decides the predicted label.
    std::size_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < data.rep_vectors.size(); ++r) {
      double d = linalg::euclidean_distance(data.rep_vectors[r], next);
      if (d < best) {
        best = d;
        nearest = r;
      }
    }
    bool predicted =
        data.space.label(nearest) == core::StateLabel::Violation;
    tally.score(predicted, data.records[i + 1].violation_observed);
  }
  return tally;
}

OfflineTally evaluate_histogram(const OfflineData& data, std::uint64_t seed) {
  const std::size_t dim = data.rep_vectors.front().size();
  core::ModeTrajectories models(std::sqrt(static_cast<double>(dim)), 24);
  std::size_t split = data.records.size() * 3 / 5;
  for (std::size_t i = 1; i < split; ++i) {
    if (data.records[i - 1].mode == data.records[i].mode) {
      models.model(data.records[i].mode)
          .observe(data.records[i - 1].state, data.records[i].state);
    }
  }
  OfflineTally tally;
  Rng rng(seed);
  for (std::size_t i = split; i + 1 < data.records.size(); ++i) {
    const auto& cur = data.records[i];
    const auto& model = models.model(cur.mode);
    if (model.observations() < 6) continue;
    auto futures = model.sample_future(cur.state, 5, rng);
    std::size_t hits = 0;
    for (const auto& f : futures) {
      if (data.space.in_violation_region(f)) ++hits;
    }
    tally.score(hits * 2 > futures.size(),
                data.records[i + 1].violation_observed);
  }
  return tally;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: 2-D histogram sampler vs VAR(1) in metric space "
               "===\n\n";
  std::cout << pad_right("co-location", 34) << pad_left("forecaster", 12)
            << pad_left("accuracy", 10) << pad_left("recall", 9)
            << pad_left("fpr", 8) << "\n";

  const std::vector<std::pair<harness::SensitiveKind, harness::BatchKind>>
      colocations{
          {harness::SensitiveKind::VlcStream, harness::BatchKind::CpuBomb},
          {harness::SensitiveKind::VlcStream,
           harness::BatchKind::TwitterAnalysis},
          {harness::SensitiveKind::WebserviceMem, harness::BatchKind::MemBomb},
      };

  for (const auto& [sensitive, batch] : colocations) {
    auto spec = figure_spec(sensitive, batch, /*duration_s=*/360.0, 1700);
    spec.workload = harness::compressed_diurnal(spec.duration_s, 2.0, 97);
    OfflineData data = passive_run(spec);
    std::string label =
        std::string(to_string(sensitive)) + "+" + to_string(batch);

    OfflineTally hist = evaluate_histogram(data, 13);
    OfflineTally var = evaluate_var(data);
    for (const auto& [name, t] :
         {std::pair<const char*, OfflineTally>{"histogram", hist},
          std::pair<const char*, OfflineTally>{"var(1)", var}}) {
      std::cout << pad_right(label, 34) << pad_left(name, 12)
                << pad_left(format_double(t.accuracy() * 100.0, 1) + "%", 10)
                << pad_left(format_double(t.recall() * 100.0, 1) + "%", 9)
                << pad_left(
                       format_double(t.false_positive_rate() * 100.0, 1) + "%",
                       8)
                << "\n";
    }
  }
  std::cout << "\nExpected: the 2-D histogram sampler matches or beats VAR,\n"
               "which must estimate (m^2 + m) parameters from the same few\n"
               "samples (§3.1's argument for the 2-D reduction).\n";
  return 0;
}
