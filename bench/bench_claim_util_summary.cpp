// Reproduces the abstract/§1 headline: "we are able to guarantee a high
// level of QoS, and are able to increase the machine utilization by
// 10%-70%, depending on the type of co-located batch application."
//
// One row per co-location: gained utilization under Stay-Away (vs the
// isolated run), the unsafe maximum, and the violation rates.
#include "bench_common.hpp"

int main() {
  using namespace stayaway;
  using namespace stayaway::bench;

  std::cout << "=== Headline: utilization gain by co-located batch type "
               "===\n\n";
  std::cout << pad_right("co-location", 38) << pad_left("safe gain", 11)
            << pad_left("max gain", 10) << pad_left("viol(SA)", 10)
            << pad_left("viol(none)", 11) << "\n";

  const std::vector<std::pair<harness::SensitiveKind, harness::BatchKind>>
      colocations{
          {harness::SensitiveKind::VlcStream, harness::BatchKind::CpuBomb},
          {harness::SensitiveKind::VlcStream,
           harness::BatchKind::TwitterAnalysis},
          {harness::SensitiveKind::VlcStream, harness::BatchKind::Soplex},
          {harness::SensitiveKind::VlcStream, harness::BatchKind::VlcTranscode},
          {harness::SensitiveKind::WebserviceMix,
           harness::BatchKind::TwitterAnalysis},
          {harness::SensitiveKind::WebserviceMem, harness::BatchKind::MemBomb},
          {harness::SensitiveKind::WebserviceCpu, harness::BatchKind::Soplex},
      };

  double min_gain = 1.0;
  double max_gain = 0.0;
  for (const auto& [sensitive, batch] : colocations) {
    auto spec = figure_spec(sensitive, batch, /*duration_s=*/300.0,
                            /*seed=*/500 + static_cast<std::uint64_t>(batch));
    spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, 45);
    FigureRuns runs = run_figure(spec);
    double safe_gain = harness::series_mean(
        harness::gained_utilization(runs.stay_away, runs.isolated));
    double max_unsafe = harness::series_mean(
        harness::gained_utilization(runs.no_prevention, runs.isolated));
    min_gain = std::min(min_gain, safe_gain);
    max_gain = std::max(max_gain, safe_gain);

    std::string label =
        std::string(to_string(sensitive)) + "+" + to_string(batch);
    std::cout << pad_right(label, 38)
              << pad_left(format_double(safe_gain * 100.0, 1) + "%", 11)
              << pad_left(format_double(max_unsafe * 100.0, 1) + "%", 10)
              << pad_left(
                     format_double(
                         runs.stay_away.violation_fraction * 100.0, 1) + "%",
                     10)
              << pad_left(
                     format_double(
                         runs.no_prevention.violation_fraction * 100.0, 1) +
                         "%",
                     11)
              << "\n";
  }
  std::cout << "\nsafe gain range across batch types: "
            << format_double(min_gain * 100.0, 1) << "% - "
            << format_double(max_gain * 100.0, 1)
            << "%  (paper: 10%-70%, depending on batch type)\n";
  return 0;
}
