// Ablation: the Stay-Away policy against the actuation-equivalent
// baselines — reactive throttling (act only after an observed violation)
// and static-threshold throttling (fixed utilization caps) — plus the
// no-prevention bound, across the main co-locations.
//
// This quantifies what the prediction machinery buys over simpler rules
// with identical pause/resume actuation.
#include "bench_common.hpp"

int main() {
  using namespace stayaway;
  using namespace stayaway::bench;

  std::cout << "=== Ablation: policy comparison ===\n\n";
  std::cout << pad_right("co-location", 32) << pad_left("policy", 18)
            << pad_left("viol%", 8) << pad_left("avg_qos", 9)
            << pad_left("gain%", 8) << "\n";

  const std::vector<std::pair<harness::SensitiveKind, harness::BatchKind>>
      colocations{
          {harness::SensitiveKind::VlcStream, harness::BatchKind::CpuBomb},
          {harness::SensitiveKind::VlcStream,
           harness::BatchKind::TwitterAnalysis},
          {harness::SensitiveKind::WebserviceMem, harness::BatchKind::MemBomb},
      };
  const std::vector<harness::PolicyKind> policies{
      harness::PolicyKind::StayAway, harness::PolicyKind::Reactive,
      harness::PolicyKind::StaticThreshold, harness::PolicyKind::NoPrevention};

  for (const auto& [sensitive, batch] : colocations) {
    auto base = figure_spec(sensitive, batch, /*duration_s=*/300.0, 1900);
    base.workload = harness::compressed_diurnal(base.duration_s, 1.5, 99);
    harness::ExperimentResult iso = harness::run_isolated(base);
    std::string label =
        std::string(to_string(sensitive)) + "+" + to_string(batch);
    for (auto policy : policies) {
      auto spec = base;
      spec.policy = policy;
      harness::ExperimentResult run = harness::run_experiment(spec);
      double gain =
          harness::series_mean(harness::gained_utilization(run, iso)) * 100.0;
      std::cout << pad_right(label, 32) << pad_left(to_string(policy), 18)
                << pad_left(
                       format_double(run.violation_fraction * 100.0, 1) + "%",
                       8)
                << pad_left(format_double(run.avg_qos, 3), 9)
                << pad_left(format_double(gain, 1) + "%", 8) << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Expected: stay-away dominates the violation/utilization\n"
               "trade-off — fewer violations than reactive (which must eat\n"
               "one violation per episode) at comparable or better gain, and\n"
               "far fewer violations than static thresholds on swap-driven\n"
               "interference they cannot see.\n";
  return 0;
}
