// Reproduces Figure 16: "QoS of Webservice with Memory intensive workload
// when co-located with different Batch Applications."
//
// Expected: the memory-hungry neighbours (MemBomb, Twitter's scan phase,
// Batch-2) force swapping of the service's large working set without
// prevention — the paper's sharpest degradation channel; Stay-Away
// throttles them during exactly those phases.
#include "bench_common.hpp"

int main() {
  stayaway::bench::print_webservice_qos_figure(
      stayaway::harness::SensitiveKind::WebserviceMem,
      "Figure 16: Webservice (memory-intensive workload) QoS x batch apps",
      900);
  return 0;
}
