// Streaming-ingestion benchmark (DESIGN.md §15).
//
// Two measurements back the acceptance bounds of the async-ingestion
// redesign:
//
//   throughput  The same 32 Hz sample stream pushed through both ingestion
//               architectures for the same simulated duration. The
//               synchronous path can only ingest one sample per control
//               period, so matching the rate forces period_s = 1/32 and a
//               full pipeline iteration (drain, dedup, SMACOF re-embed,
//               predict, act) per sample. The ring path drains the whole
//               32-sample batch in one 1 s period and embeds with the
//               O(new) LandmarkIncremental placer. Reported as ingested
//               samples per wall-second; bound: ring >= 5x sync. (The sync
//               run also steps the simulator at the finer tick, which works
//               in its favor on none of the measured cost — the per-period
//               pipeline dominates.)
//
//   flatness    Per-point cost of MapEmbedder in LandmarkIncremental mode
//               as the representative set grows. With the geometric refit
//               policy the amortized refit share is constant per point, so
//               the mean cost over a late window must stay within 4x of an
//               early window; the specific check is window [4096, 8192)
//               vs window [1024, 2048).
//
// `--smoke` shrinks both measurements for CI (`ci.sh --ingest`); the
// bounds still apply. Exits nonzero when a bound fails. Prints a CSV
// block; when STAYAWAY_BENCH_JSON_DIR is set a BENCH_ingest.json perf
// record is written there.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/embedder.hpp"
#include "harness/experiment.hpp"
#include "monitor/representative.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace stayaway::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kRateHz = 32.0;
constexpr double kMinSpeedup = 5.0;
constexpr double kMaxFlatnessRatio = 4.0;

struct ThroughputRow {
  double sync_wall_s = 0.0;
  double ring_wall_s = 0.0;
  std::size_t sync_samples = 0;
  std::size_t ring_samples = 0;
  double speedup = 0.0;
};

ThroughputRow run_throughput(double duration_s) {
  ThroughputRow row;

  // Both architectures ingest a stream diverse enough that nearly every
  // sample becomes a representative (tiny merge radius, uncapped set):
  // that is the regime the redesign targets — the map keeps growing and
  // the embed cost per control decision is what separates the two paths.
  harness::ExperimentSpec sync_spec;
  sync_spec.duration_s = duration_s;
  sync_spec.period_s = 1.0 / kRateHz;
  sync_spec.tick_s = 1.0 / kRateHz;
  sync_spec.stayaway.warm_skip_stress = 0.05;
  sync_spec.stayaway.dedup_epsilon = 0.0005;
  sync_spec.stayaway.max_representatives = 0;
  {
    auto start = Clock::now();
    harness::ExperimentResult res = harness::run_experiment(sync_spec);
    row.sync_wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    // One drain per period in the synchronous architecture.
    row.sync_samples = res.stayaway_records.size();
  }

  harness::ExperimentSpec ring_spec;
  ring_spec.duration_s = duration_s;
  ring_spec.period_s = 1.0;
  ring_spec.tick_s = 0.1;
  ring_spec.stayaway.embed_method = core::EmbedMethod::LandmarkIncremental;
  ring_spec.stayaway.warm_skip_stress = 0.05;
  ring_spec.stayaway.dedup_epsilon = 0.0005;
  ring_spec.stayaway.max_representatives = 0;
  ring_spec.stayaway.ingest.source = core::IngestSource::Ring;
  ring_spec.stayaway.ingest.rate_hz = kRateHz;
  ring_spec.stayaway.ingest.ring_capacity = 64;
  {
    auto start = Clock::now();
    harness::ExperimentResult res = harness::run_experiment(ring_spec);
    row.ring_wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (const auto& rec : res.stayaway_records) {
      row.ring_samples += rec.samples_ingested;
    }
  }

  double sync_rate =
      static_cast<double>(row.sync_samples) / row.sync_wall_s;
  double ring_rate =
      static_cast<double>(row.ring_samples) / row.ring_wall_s;
  row.speedup = ring_rate / sync_rate;
  return row;
}

struct FlatnessRow {
  std::size_t early_begin = 0, early_end = 0;
  std::size_t late_begin = 0, late_end = 0;
  double early_us_per_point = 0.0;
  double late_us_per_point = 0.0;
  double ratio = 0.0;
};

// Same latent-manifold synthetic states as bench_hotpath: two workload
// coordinates drive all metrics plus sensor noise.
std::vector<double> make_vector(Rng& rng) {
  constexpr std::size_t kDim = 6;
  double a = rng.uniform();
  double b = rng.uniform();
  std::vector<double> v;
  for (std::size_t d = 0; d < kDim; ++d) {
    double wa = 0.3 + 0.1 * static_cast<double>(d % 3);
    double wb = 0.8 - 0.1 * static_cast<double>(d % 4);
    v.push_back(wa * a + wb * b + rng.normal(0.0, 0.01));
  }
  return v;
}

FlatnessRow run_flatness(std::size_t early_begin, std::size_t early_end,
                         std::size_t late_begin, std::size_t late_end) {
  FlatnessRow row;
  row.early_begin = early_begin;
  row.early_end = early_end;
  row.late_begin = late_begin;
  row.late_end = late_end;

  Rng rng(23);
  monitor::RepresentativeSet reps(0.0);  // every state is a new point
  core::MapEmbedder embedder(core::EmbedMethod::LandmarkIncremental, 24,
                             0.05);
  double early_total = 0.0, late_total = 0.0;
  for (std::size_t n = 0; n < late_end; ++n) {
    reps.assign(make_vector(rng));
    auto start = Clock::now();
    embedder.update(reps);
    double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    if (n >= early_begin && n < early_end) early_total += us;
    if (n >= late_begin) late_total += us;
  }
  row.early_us_per_point =
      early_total / static_cast<double>(early_end - early_begin);
  row.late_us_per_point =
      late_total / static_cast<double>(late_end - late_begin);
  row.ratio = row.late_us_per_point / row.early_us_per_point;
  return row;
}

}  // namespace
}  // namespace stayaway::bench

int main(int argc, char** argv) {
  using namespace stayaway;
  using namespace stayaway::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: bench_ingest [--smoke]\n";
      return 2;
    }
  }

  std::cout << "=== bench_ingest: streaming ingestion (DESIGN.md "
               "\xC2\xA7"
               "15) ===\n";

  const double duration_s = smoke ? 10.0 : 16.0;
  std::cout << "\nthroughput: " << format_double(kRateHz, 0)
            << " Hz stream, " << format_double(duration_s, 0)
            << " s simulated\n";
  ThroughputRow tp = run_throughput(duration_s);
  std::cout << "  sync (period 1/" << format_double(kRateHz, 0)
            << " s, SMACOF warm): " << tp.sync_samples << " samples in "
            << format_double(tp.sync_wall_s, 3) << " s = "
            << format_double(static_cast<double>(tp.sync_samples) /
                                 tp.sync_wall_s,
                             0)
            << " samples/s\n";
  std::cout << "  ring (period 1 s, landmark-incremental): "
            << tp.ring_samples << " samples in "
            << format_double(tp.ring_wall_s, 3) << " s = "
            << format_double(static_cast<double>(tp.ring_samples) /
                                 tp.ring_wall_s,
                             0)
            << " samples/s\n";
  std::cout << "  -> " << format_double(tp.speedup, 1)
            << "x ingestion throughput (bound: >= "
            << format_double(kMinSpeedup, 0) << "x)\n";

  const std::size_t early_begin = smoke ? 256 : 1024;
  const std::size_t early_end = smoke ? 512 : 2048;
  const std::size_t late_begin = smoke ? 1024 : 4096;
  const std::size_t late_end = smoke ? 2048 : 8192;
  std::cout << "\nflatness: landmark-incremental per-point embed cost\n";
  FlatnessRow fl = run_flatness(early_begin, early_end, late_begin, late_end);
  std::cout << "  window [" << fl.early_begin << ", " << fl.early_end
            << "): " << format_double(fl.early_us_per_point, 2)
            << " us/point\n";
  std::cout << "  window [" << fl.late_begin << ", " << fl.late_end
            << "): " << format_double(fl.late_us_per_point, 2)
            << " us/point\n";
  std::cout << "  -> " << format_double(fl.ratio, 2)
            << "x late/early (bound: <= "
            << format_double(kMaxFlatnessRatio, 0) << "x)\n";

  std::cout << "\nCSV:\n";
  std::cout << "sync_samples,sync_wall_s,ring_samples,ring_wall_s,speedup,"
               "early_us_per_point,late_us_per_point,flatness_ratio\n";
  std::cout << tp.sync_samples << "," << format_double(tp.sync_wall_s, 3)
            << "," << tp.ring_samples << ","
            << format_double(tp.ring_wall_s, 3) << ","
            << format_double(tp.speedup, 2) << ","
            << format_double(fl.early_us_per_point, 2) << ","
            << format_double(fl.late_us_per_point, 2) << ","
            << format_double(fl.ratio, 2) << "\n";

  obs::MetricsRegistry record;
  record.gauge("ingest.speedup").set(tp.speedup);
  record.gauge("ingest.sync_wall_s").set(tp.sync_wall_s);
  record.gauge("ingest.ring_wall_s").set(tp.ring_wall_s);
  record.gauge("ingest.flatness_ratio").set(fl.ratio);
  record.gauge("ingest.early_us_per_point").set(fl.early_us_per_point);
  record.gauge("ingest.late_us_per_point").set(fl.late_us_per_point);
  if (obs::write_bench_record("ingest", record)) {
    std::cout << "\nBENCH_ingest.json written\n";
  }

  bool ok = true;
  if (tp.speedup < kMinSpeedup) {
    std::cerr << "FAIL: ingestion speedup " << format_double(tp.speedup, 2)
              << "x below the " << format_double(kMinSpeedup, 0)
              << "x bound\n";
    ok = false;
  }
  if (fl.ratio > kMaxFlatnessRatio) {
    std::cerr << "FAIL: per-point embed cost ratio "
              << format_double(fl.ratio, 2) << "x above the "
              << format_double(kMaxFlatnessRatio, 0) << "x bound\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
