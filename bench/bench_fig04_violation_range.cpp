// Reproduces Figure 4: "Variation of the radius of violation-range as
// distance between the violation-state and nearest safe-state varies."
//
// The radius follows R = d * exp(-d^2 / (2 c^2)) (§3.2.2): near-linear
// growth while little is known near the violation, a peak at d == c, and
// decay once the nearest safe state is far away (ample exploration room).
// The exploration range is the remainder d - R.
#include <iostream>
#include <vector>

#include "stats/rayleigh.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"

int main() {
  using namespace stayaway;

  std::cout << "=== Figure 4: violation-range radius vs distance ===\n";
  std::cout << "R = d * exp(-d^2 / (2 c^2)), c = median coordinate range\n\n";

  const std::vector<double> scales{0.5, 1.0, 2.0};
  const double d_max = 5.0;
  const std::size_t steps = 50;

  CsvWriter csv(std::cout);
  csv.header({"d", "R_c0.5", "explore_c0.5", "R_c1", "explore_c1", "R_c2",
              "explore_c2"});
  std::vector<std::vector<double>> radius_series(scales.size());
  for (std::size_t i = 0; i <= steps; ++i) {
    double d = d_max * static_cast<double>(i) / static_cast<double>(steps);
    std::vector<double> row{d};
    for (std::size_t s = 0; s < scales.size(); ++s) {
      double r = stats::rayleigh_radius(d, scales[s]);
      radius_series[s].push_back(r);
      row.push_back(r);
      row.push_back(d - r);  // exploration range
    }
    csv.row(row);
  }

  PlotOptions opts;
  opts.title = "violation-range radius vs distance d (glyphs: c=0.5, 1, 2)";
  std::cout << "\n"
            << plot_lines(radius_series, {"c=0.5", "c=1", "c=2"}, opts);

  for (double c : scales) {
    std::cout << "peak for c=" << c << ": d=" << stats::rayleigh_peak_distance(c)
              << " R=" << stats::rayleigh_peak_radius(c) << "\n";
  }
  return 0;
}
