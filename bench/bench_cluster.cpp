// Cluster-coordination benchmark (DESIGN.md §18): migration vs pausing
// under a flash crowd.
//
// Three hosts run the flash-crowd front end (src/apps/flash_crowd.hpp):
// "front" at full load with a surge window in the middle of the run, the
// two spares at a quarter of the load. A 4-core cpubomb ("crunch") is
// registered as a mobile batch VM homed on front. When the surge hits,
// front's QoS goes under water and the per-host loop wants to pause the
// bomb; the comparison is what the cluster does about it:
//
//   - pausing   — coordinator with migrate=off: gates never open, the
//                 per-host Stay-Away governor pauses/resumes the bomb on
//                 front for the length of the surge;
//   - migration — coordinator with migrate=on: the first violating
//                 period detaches the bomb instead, and the coordinator
//                 re-attaches it on the calmer spare, where it keeps
//                 crunching while front rides out the crowd alone.
//
// Acceptance gate (the PR's headline claim): migration strictly beats
// pausing on BOTH fleet-wide violation periods AND total batch
// core-seconds. `--smoke` shrinks the tail for CI (`ci.sh --cluster`).
//
// When STAYAWAY_BENCH_JSON_DIR is set a BENCH_cluster.json perf record
// is written there.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/fleet.hpp"
#include "obs/metrics.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace stayaway::bench {
namespace {

constexpr double kSpareLoad = 0.25;

harness::ExperimentSpec host_spec(double duration_s, double load,
                                  std::uint64_t seed) {
  harness::ExperimentSpec spec;
  spec.sensitive = harness::SensitiveKind::FlashCrowd;
  spec.batch = harness::BatchKind::None;
  spec.policy = harness::PolicyKind::StayAway;
  spec.duration_s = duration_s;
  spec.seed = seed;
  if (load < 1.0) {
    // Absolute scaling (flash_crowd.hpp): a constant trace IS the load
    // fraction, so the spares idle at a quarter of front's crowd.
    spec.workload = trace::Trace({load}, duration_s);
  }
  return spec;
}

harness::FleetSpec make_fleet(double duration_s, bool migrate) {
  harness::FleetSpec fleet;
  fleet.hosts.push_back({"front", host_spec(duration_s, 1.0, 11)});
  fleet.hosts.push_back({"spare-a", host_spec(duration_s, kSpareLoad, 12)});
  fleet.hosts.push_back({"spare-b", host_spec(duration_s, kSpareLoad, 13)});
  harness::ClusterSpec cluster;
  cluster.config.migrate = migrate;
  cluster.mobile.push_back(
      {"crunch", harness::BatchKind::CpuBomb, "front", 15.0});
  fleet.cluster = std::move(cluster);
  return fleet;
}

struct Totals {
  std::size_t violations = 0;
  double batch_work = 0.0;
  std::size_t migrations = 0;
  std::vector<std::string> events;
};

Totals run_mode(double duration_s, bool migrate) {
  harness::FleetResult result =
      harness::run_fleet(make_fleet(duration_s, migrate));
  Totals t;
  for (const harness::FleetHostResult& host : result.hosts) {
    t.violations += host.result.violation_periods;
    t.batch_work += host.result.batch_cpu_work;
  }
  if (result.cluster.has_value()) {
    t.migrations = result.cluster->migrations;
    t.events = result.cluster->events;
  }
  return t;
}

}  // namespace
}  // namespace stayaway::bench

int main(int argc, char** argv) {
  using namespace stayaway;
  using namespace stayaway::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "usage: bench_cluster [--smoke]\n";
      return 2;
    }
  }
  // The surge window is fixed at 60..120 s; the tail after it is where
  // the migrated bomb's extra progress accumulates.
  const double duration_s = smoke ? 160.0 : 240.0;

  // Coordinated fleets run lockstep (sequential); keep the kernel pool
  // pinned so the comparison measures policy, not scheduling.
  util::set_hot_path_threads(1);

  std::cout << "=== bench_cluster: flash crowd on front, 2 calm spares, "
            << "mobile cpubomb ===\n";
  std::cout << "per host: " << duration_s
            << " periods; surge 60..120 s on front\n\n";

  Totals pausing = run_mode(duration_s, false);
  Totals migration = run_mode(duration_s, true);

  std::cout << "mode,violation_periods,batch_cpu_s,migrations\n";
  std::cout << "pausing," << pausing.violations << ","
            << format_double(pausing.batch_work, 1) << ","
            << pausing.migrations << "\n";
  std::cout << "migration," << migration.violations << ","
            << format_double(migration.batch_work, 1) << ","
            << migration.migrations << "\n\n";

  if (!migration.events.empty()) {
    std::cout << "coordinator events (migration mode):\n";
    for (const std::string& event : migration.events) {
      std::cout << "  " << event << "\n";
    }
    std::cout << "\n";
  }

  obs::MetricsRegistry record;
  record.gauge("cluster.pausing.violation_periods")
      .set(static_cast<double>(pausing.violations));
  record.gauge("cluster.pausing.batch_cpu_s").set(pausing.batch_work);
  record.gauge("cluster.migration.violation_periods")
      .set(static_cast<double>(migration.violations));
  record.gauge("cluster.migration.batch_cpu_s").set(migration.batch_work);
  record.gauge("cluster.migration.migrations")
      .set(static_cast<double>(migration.migrations));
  if (obs::write_bench_record("cluster", record)) {
    std::cout << "BENCH_cluster.json written\n";
  }

  bool ok = true;
  if (migration.migrations == 0) {
    std::cout << "FAIL: coordinator never migrated the mobile VM\n";
    ok = false;
  }
  if (migration.violations >= pausing.violations) {
    std::cout << "FAIL: migration violations (" << migration.violations
              << ") not strictly below pausing (" << pausing.violations
              << ")\n";
    ok = false;
  }
  if (migration.batch_work <= pausing.batch_work) {
    std::cout << "FAIL: migration batch work ("
              << format_double(migration.batch_work, 1)
              << " core-s) not strictly above pausing ("
              << format_double(pausing.batch_work, 1) << " core-s)\n";
    ok = false;
  }
  if (!ok) return 1;
  std::cout << "PASS\n";
  return 0;
}
