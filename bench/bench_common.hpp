// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cctype>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/fleet.hpp"
#include "harness/report.hpp"
#include "harness/scenarios.hpp"
#include "obs/metrics.hpp"
#include "util/ascii_plot.hpp"
#include "util/strings.hpp"

namespace stayaway::bench {

/// Standard experiment shape shared by the QoS figures: batch arrives
/// shortly after the sensitive app, several compressed diurnal cycles.
inline harness::ExperimentSpec figure_spec(harness::SensitiveKind sensitive,
                                           harness::BatchKind batch,
                                           double duration_s = 300.0,
                                           std::uint64_t seed = 99) {
  harness::ExperimentSpec spec;
  spec.sensitive = sensitive;
  spec.batch = batch;
  spec.policy = harness::PolicyKind::StayAway;
  spec.duration_s = duration_s;
  spec.sensitive_start_s = 2.0;
  spec.batch_start_s = 15.0;
  spec.seed = seed;
  return spec;
}

/// figure_spec plus the compressed diurnal workload the QoS figures
/// share; the workload seed is independent of the experiment seed.
inline harness::ExperimentSpec diurnal_figure_spec(
    harness::SensitiveKind sensitive, harness::BatchKind batch,
    std::uint64_t workload_seed, double duration_s = 300.0,
    std::uint64_t seed = 99) {
  auto spec = figure_spec(sensitive, batch, duration_s, seed);
  spec.workload =
      harness::compressed_diurnal(duration_s, /*cycles=*/1.5, workload_seed);
  return spec;
}

/// Runs the with/without/isolated triple every QoS figure needs.
struct FigureRuns {
  harness::ExperimentResult stay_away;
  harness::ExperimentResult no_prevention;
  harness::ExperimentResult isolated;
};

/// The figure triple as a three-host fleet: the spec itself, the same
/// co-location without prevention, and the sensitive app isolated.
inline harness::FleetSpec figure_fleet(const harness::ExperimentSpec& spec) {
  harness::FleetSpec fleet;
  fleet.hosts.push_back({"stay-away", spec});
  auto np = spec;
  np.policy = harness::PolicyKind::NoPrevention;
  np.seed_template.reset();
  fleet.hosts.push_back({"no-prevention", std::move(np)});
  // Mirrors run_isolated: batch off, no policy; extra VMs (if any) stay,
  // matching the historical reference runs.
  auto iso = spec;
  iso.batch = harness::BatchKind::None;
  iso.policy = harness::PolicyKind::NoPrevention;
  fleet.hosts.push_back({"isolated", std::move(iso)});
  return fleet;
}

inline FigureRuns run_figure(const harness::ExperimentSpec& spec) {
  harness::FleetResult fleet = harness::run_fleet(figure_fleet(spec));
  FigureRuns out;
  out.stay_away = std::move(fleet.hosts[0].result);
  out.no_prevention = std::move(fleet.hosts[1].result);
  out.isolated = std::move(fleet.hosts[2].result);
  return out;
}

/// Filesystem-safe slug of a figure title, for BENCH_<slug>.json names.
inline std::string bench_slug(const std::string& title) {
  std::string out;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

/// Writes a BENCH_<name>.json perf record of a figure triple's aggregates
/// when STAYAWAY_BENCH_JSON_DIR is set; silent no-op otherwise.
inline void emit_figure_bench_record(const std::string& name,
                                     const FigureRuns& runs) {
  obs::MetricsRegistry registry;
  harness::publish_result_metrics(registry, "stay_away", runs.stay_away);
  harness::publish_result_metrics(registry, "no_prevention",
                                  runs.no_prevention);
  harness::publish_result_metrics(registry, "isolated", runs.isolated);
  if (obs::write_bench_record(name, registry)) {
    std::cout << "BENCH_" << name << ".json written\n";
  }
}

/// Prints the standard QoS-figure block: plot, CSV series, summary rows.
inline void print_qos_figure(const std::string& title, const FigureRuns& runs) {
  std::cout << "=== " << title << " ===\n\n";
  std::cout << harness::render_qos_figure(
                   "normalized QoS over time (1.0 = threshold)",
                   runs.stay_away, runs.no_prevention)
            << "\n";
  harness::print_summary_header(std::cout);
  harness::print_summary_row(std::cout, "stay-away", runs.stay_away);
  harness::print_summary_row(std::cout, "no-prevention", runs.no_prevention);
  harness::print_summary_row(std::cout, "isolated", runs.isolated);

  double gain_sa = harness::series_mean(
      harness::gained_utilization(runs.stay_away, runs.isolated));
  double gain_np = harness::series_mean(
      harness::gained_utilization(runs.no_prevention, runs.isolated));
  std::cout << "\ngained utilization: stay-away "
            << format_double(gain_sa * 100.0, 1) << "% | no-prevention (max) "
            << format_double(gain_np * 100.0, 1) << "%\n";
  std::cout << "violating periods: stay-away "
            << runs.stay_away.violation_periods << " / no-prevention "
            << runs.no_prevention.violation_periods << "\n\n";
  std::cout << "series CSV (one row per series):\n";
  harness::print_series_csv(
      std::cout, {"time", "qos_stayaway", "qos_noprev", "util_stayaway",
                  "util_noprev", "util_isolated"},
      {&runs.stay_away.time, &runs.stay_away.qos, &runs.no_prevention.qos,
       &runs.stay_away.utilization, &runs.no_prevention.utilization,
       &runs.isolated.utilization});
  emit_figure_bench_record(bench_slug(title), runs);
}

/// Prints a gained-utilization figure (paper Figs. 10/11 shape): the upper
/// band is the unsafe maximum, the lower band what Stay-Away recovers.
inline void print_gain_figure(const std::string& title, const FigureRuns& runs) {
  std::cout << "=== " << title << " ===\n\n";
  auto upper = harness::gained_utilization(runs.no_prevention, runs.isolated);
  auto lower = harness::gained_utilization(runs.stay_away, runs.isolated);
  PlotOptions opts;
  opts.title = "gained utilization over time";
  std::cout << plot_lines({upper, lower}, {"no-prevention (upper band)",
                                           "stay-away (lower band)"},
                          opts)
            << "\n";
  std::cout << "mean gained utilization: no-prevention "
            << format_double(harness::series_mean(upper) * 100.0, 1)
            << "% | stay-away "
            << format_double(harness::series_mean(lower) * 100.0, 1) << "%\n";
  std::cout << "violating periods: stay-away "
            << runs.stay_away.violation_periods << " / no-prevention "
            << runs.no_prevention.violation_periods << "\n\n";
  std::cout << "series CSV:\n";
  harness::print_series_csv(std::cout,
                            {"time", "gain_noprev", "gain_stayaway"},
                            {&runs.stay_away.time, &upper, &lower});
  emit_figure_bench_record(bench_slug(title), runs);
}

/// Offline evaluation data for the ablation benches: a passive run's
/// period records plus the final labelled geometry of its state space.
struct OfflineData {
  std::vector<core::PeriodRecord> records;
  core::StateSpace space;                        // final labels + positions
  std::vector<std::vector<double>> rep_vectors;  // normalized representatives
};

inline OfflineData passive_run(harness::ExperimentSpec spec) {
  spec.policy = harness::PolicyKind::StayAway;
  spec.stayaway.actions_enabled = false;
  harness::ExperimentResult run = harness::run_experiment(spec);

  OfflineData data;
  data.records = run.stayaway_records;
  const auto& templ = *run.exported_template;
  for (const auto& entry : templ.entries) {
    data.space.add_state(entry.label);
    data.rep_vectors.push_back(entry.vector);
  }
  data.space.sync_positions(run.final_map);
  return data;
}

/// Binary-forecast tallies for the offline evaluators.
struct OfflineTally {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  std::size_t total() const { return tp + fp + tn + fn; }
  double accuracy() const {
    return total() ? static_cast<double>(tp + tn) / static_cast<double>(total())
                   : 0.0;
  }
  double recall() const {
    return (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                     : 0.0;
  }
  double false_positive_rate() const {
    return (fp + tn) ? static_cast<double>(fp) / static_cast<double>(fp + tn)
                     : 0.0;
  }
  void score(bool predicted, bool actual) {
    if (predicted && actual) ++tp;
    if (predicted && !actual) ++fp;
    if (!predicted && actual) ++fn;
    if (!predicted && !actual) ++tn;
  }
};

/// Figures 14-16 share one shape: per-batch-app QoS panels of a Webservice
/// workload mix, Stay-Away vs no-prevention.
inline void print_webservice_qos_figure(harness::SensitiveKind kind,
                                        const std::string& title,
                                        std::uint64_t seed) {
  std::cout << "=== " << title << " ===\n\n";
  harness::print_summary_header(std::cout);

  const std::vector<harness::BatchKind> batches{
      harness::BatchKind::Soplex, harness::BatchKind::TwitterAnalysis,
      harness::BatchKind::MemBomb, harness::BatchKind::Batch1,
      harness::BatchKind::Batch2};
  std::vector<FigureRuns> all;
  for (auto b : batches) {
    auto spec = figure_spec(kind, b, /*duration_s=*/240.0,
                            seed + static_cast<std::uint64_t>(b));
    spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, seed);
    FigureRuns runs = run_figure(spec);
    harness::print_summary_row(
        std::cout, std::string(to_string(b)) + " (stay-away)", runs.stay_away);
    harness::print_summary_row(std::cout,
                               std::string(to_string(b)) + " (no-prevention)",
                               runs.no_prevention);
    all.push_back(std::move(runs));
  }
  std::cout << "\n";
  for (std::size_t i = 0; i < batches.size(); ++i) {
    PlotOptions opts;
    opts.width = 72;
    opts.height = 10;
    opts.title = std::string("QoS vs time — ") + to_string(batches[i]);
    std::cout << plot_lines(
                     {all[i].stay_away.qos, all[i].no_prevention.qos,
                      std::vector<double>(all[i].stay_away.qos.size(), 1.0)},
                     {"stay-away", "no-prevention", "threshold"}, opts)
              << "\n";
  }
}

}  // namespace stayaway::bench
