// Reproduces Figure 1: "Total Workload variation of Wikipedia during the
// period 1/1/2011 to 5/1/2011" — four months of hourly read intensity
// with a strong diurnal cycle and clear low-intensity valleys.
//
// The original AWS-hosted trace is no longer downloadable; the generator
// reproduces the structural properties Stay-Away depends on (DESIGN.md §2).
#include <iostream>

#include "stats/descriptive.hpp"
#include "trace/diurnal.hpp"
#include "util/ascii_plot.hpp"
#include "util/strings.hpp"

int main() {
  using namespace stayaway;

  std::cout << "=== Figure 1: diurnal workload trace (Wikipedia-like) ===\n\n";
  trace::DiurnalSpec spec;
  spec.days = 120.0;  // 1/1 to 5/1 is ~4 months
  spec.sample_interval_s = 3600.0;
  trace::Trace t = trace::generate_diurnal(spec);

  // Print the first four days hourly, like a zoomed Fig. 1 inset.
  std::vector<double> first_days(t.samples().begin(),
                                 t.samples().begin() + 4 * 24);
  PlotOptions opts;
  opts.title = "first four days, hourly (requests/s)";
  std::cout << plot_lines({first_days}, {"workload"}, opts) << "\n";

  // Daily peak/trough statistics over the whole trace.
  std::vector<double> peaks;
  std::vector<double> troughs;
  for (std::size_t day = 0; day + 1 < t.size() / 24; ++day) {
    double peak = 0.0;
    double trough = 1e18;
    for (std::size_t h = 0; h < 24; ++h) {
      double v = t.samples()[day * 24 + h];
      peak = std::max(peak, v);
      trough = std::min(trough, v);
    }
    peaks.push_back(peak);
    troughs.push_back(trough);
  }
  std::cout << "days analysed: " << peaks.size() << "\n";
  std::cout << "mean daily peak:   " << format_double(stats::mean(peaks), 1)
            << " req/s\n";
  std::cout << "mean daily trough: " << format_double(stats::mean(troughs), 1)
            << " req/s\n";
  std::cout << "peak/trough ratio: "
            << format_double(stats::mean(peaks) / stats::mean(troughs), 2)
            << " (diurnal valleys Stay-Away exploits)\n";
  std::cout << "overall min/mean/max: " << format_double(t.min(), 1) << " / "
            << format_double(t.mean(), 1) << " / " << format_double(t.max(), 1)
            << "\n";
  return 0;
}
