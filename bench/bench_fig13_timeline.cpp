// Reproduces Figure 13a/13b: execution timelines of the Webservice
// co-located with Twitter-Analysis under varying workload intensity.
//
// 13a (CPU-intensive workload): Twitter's arrival stresses the service;
// Stay-Away throttles, then detects the low-workload valley and resumes;
// when the workload swells again it throttles *before* a violation.
// 13b (mixed workload): a deliberate phase-change window lets Twitter run
// uninterrupted because the service's states map far from the violations.
#include <algorithm>

#include "bench_common.hpp"

namespace {

void run_timeline(const char* title, stayaway::harness::SensitiveKind kind,
                  std::uint64_t seed) {
  using namespace stayaway;
  using namespace stayaway::bench;

  auto spec = figure_spec(kind, harness::BatchKind::TwitterAnalysis,
                          /*duration_s=*/240.0, seed);
  // Pronounced valleys: two compressed diurnal cycles.
  spec.workload = harness::compressed_diurnal(spec.duration_s, 2.0, seed);
  harness::ExperimentResult sa = harness::run_experiment(spec);

  std::cout << "=== " << title << " ===\n\n";
  // Stress = offered vs completed transactions (the paper's color bands).
  PlotOptions opts;
  opts.title = "offered vs completed transactions/s";
  std::cout << plot_lines({sa.offered_tps, sa.completed_tps},
                          {"offered", "completed"}, opts)
            << "\n";

  std::vector<double> running;
  for (int b : sa.batch_running) running.push_back(b);
  PlotOptions b_opts;
  b_opts.title = "Twitter-Analysis execution band (1 = running, 0 = throttled)";
  b_opts.height = 5;
  std::cout << plot_lines({running}, {"batch running"}, b_opts) << "\n";

  std::size_t running_periods = 0;
  for (int b : sa.batch_running) running_periods += static_cast<std::size_t>(b);
  std::cout << "batch ran " << running_periods << " of "
            << sa.batch_running.size() << " periods; violations "
            << sa.violation_periods << "; pauses " << sa.pauses
            << "; resumes " << sa.resumes << "\n";

  // Valley exploitation: batch running share in the lowest-load quartile
  // of periods vs the highest-load quartile.
  std::vector<std::size_t> order(sa.offered_tps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sa.offered_tps[a] < sa.offered_tps[b];
  });
  std::size_t q = order.size() / 4;
  double low_run = 0.0;
  double high_run = 0.0;
  for (std::size_t i = 0; i < q; ++i) {
    low_run += sa.batch_running[order[i]];
    high_run += sa.batch_running[order[order.size() - 1 - i]];
  }
  std::cout << "batch running share: lowest-load quartile "
            << format_double(low_run / static_cast<double>(q) * 100.0, 1)
            << "% vs highest-load quartile "
            << format_double(high_run / static_cast<double>(q) * 100.0, 1)
            << "% (Stay-Away exploits the valleys)\n\n";
}

}  // namespace

int main() {
  run_timeline("Figure 13a: Webservice (CPU-intensive) + Twitter-Analysis",
               stayaway::harness::SensitiveKind::WebserviceCpu, 51);
  run_timeline("Figure 13b: Webservice (mixed) + Twitter-Analysis",
               stayaway::harness::SensitiveKind::WebserviceMix, 52);
  return 0;
}
