// Reproduces the §5 scalability argument: "When the number of dimensions
// increase, finding an optimal configuration of points in 2-dimensional
// space can become difficult ... reflected in a high stress value. ...
// This can, however, be easily circumvented by considering all the batch
// applications as one logical VM."
//
// The same three-batch co-location (Table 1's Batch-1 plus MemBomb) is
// monitored two ways: one entity per batch VM (16-dimensional vectors)
// versus the aggregated logical batch VM (8 dimensions). Compared on the
// final map stress, passive prediction accuracy, and — with actions on —
// the QoS protection achieved.
#include "bench_common.hpp"

namespace {

using namespace stayaway;
using namespace stayaway::bench;

harness::ExperimentSpec many_batch_spec(bool aggregate, bool actions,
                                        std::uint64_t seed) {
  auto spec = figure_spec(harness::SensitiveKind::WebserviceMix,
                          harness::BatchKind::Batch2, 300.0, seed);
  spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, 73);
  spec.stayaway.sampler.aggregate_batch = aggregate;
  spec.stayaway.actions_enabled = actions;
  return spec;
}

}  // namespace

int main() {
  std::cout << "=== Section 5: aggregated logical batch VM vs per-VM "
               "monitoring ===\n\n";
  std::cout << "co-location: Webservice(mix) + Twitter-Analysis + MemoryBomb "
               "(two batch VMs)\n\n";

  std::cout << pad_right("variant", 26) << pad_left("dims", 6)
            << pad_left("reps", 6) << pad_left("stress", 9)
            << pad_left("accuracy", 10) << "\n";
  for (bool aggregate : {true, false}) {
    harness::ExperimentResult run =
        harness::run_experiment(many_batch_spec(aggregate, false, 2000));
    std::size_t dims = run.exported_template->entries.front().vector.size();
    std::cout << pad_right(aggregate ? "aggregated (logical VM)" : "per-VM",
                           26)
              << pad_left(std::to_string(dims), 6)
              << pad_left(std::to_string(run.representative_count), 6)
              << pad_left(format_double(run.final_stress, 3), 9)
              << pad_left(format_double(run.tally.accuracy() * 100.0, 1) + "%",
                          10)
              << "\n";
  }

  std::cout << "\nwith actions enabled:\n";
  std::cout << pad_right("variant", 26) << pad_left("viol%", 8)
            << pad_left("avg_qos", 9) << pad_left("batch_cpu_s", 13)
            << pad_left("pauses", 8) << "\n";
  for (bool aggregate : {true, false}) {
    harness::ExperimentResult run =
        harness::run_experiment(many_batch_spec(aggregate, true, 2001));
    std::cout << pad_right(aggregate ? "aggregated (logical VM)" : "per-VM",
                           26)
              << pad_left(
                     format_double(run.violation_fraction * 100.0, 1) + "%", 8)
              << pad_left(format_double(run.avg_qos, 3), 9)
              << pad_left(format_double(run.batch_cpu_work, 1), 13)
              << pad_left(std::to_string(run.pauses), 8) << "\n";
  }

  std::cout << "\nExpected (§5): aggregation halves the metric dimensionality"
               "\nwhile contention remains a linear composition of the batch"
               "\nusage, so the 2-D map keeps low stress and the controller"
               "\nprotects QoS equally well with a simpler state space. The"
               "\nbatch VMs are throttled collectively either way.\n";
  return 0;
}
