// Reproduces Figure 18: template reuse (§6). A template captured while
// VLC streamed alongside CPUBomb is used as the initial state for fresh
// runs alongside *different* batch applications, with Stay-Away's actions
// disabled, to show that the template's violation-states remain valid:
//
//  - alongside Soplex (the paper's §7.3 setup): a mild neighbour may
//    never map a state into the violation region — and correspondingly
//    sees (almost) no violations;
//  - alongside Twitter-Analysis (the Fig. 18 snapshot): violations do
//    occur, and they land in the area characterised by the template's
//    violation states.
#include "bench_common.hpp"
#include "core/template_store.hpp"

namespace {

struct ReuseOutcome {
  std::size_t violations = 0;
  std::size_t violations_in_template_region = 0;
  std::size_t new_states = 0;
};

ReuseOutcome run_reuse(const stayaway::core::StateTemplate& templ,
                       stayaway::harness::BatchKind batch,
                       std::uint64_t seed) {
  using namespace stayaway;
  using namespace stayaway::bench;

  auto spec = figure_spec(harness::SensitiveKind::VlcStream, batch, 300.0,
                          seed);
  spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, 72);
  spec.seed_template = templ;
  spec.stayaway.actions_enabled = false;  // observe only
  harness::ExperimentResult run = harness::run_experiment(spec);

  ReuseOutcome out;
  out.new_states = run.representative_count - templ.entries.size();

  // Which template entries are violation states?
  std::vector<bool> template_violation(run.representative_count, false);
  for (std::size_t i = 0; i < templ.entries.size(); ++i) {
    template_violation[i] =
        templ.entries[i].label == core::StateLabel::Violation;
  }
  // Violation-region geometry from the template states only, using the
  // final map so states this run never revisited are still placed.
  core::StateSpace template_space;
  for (std::size_t i = 0; i < templ.entries.size(); ++i) {
    template_space.add_state(templ.entries[i].label);
  }
  mds::Embedding template_pos(
      run.final_map.begin(),
      run.final_map.begin() + static_cast<std::ptrdiff_t>(templ.entries.size()));
  template_space.sync_positions(template_pos);

  for (const auto& rec : run.stayaway_records) {
    if (!rec.violation_observed) continue;
    ++out.violations;
    bool in_region = rec.representative < templ.entries.size()
                         ? template_violation[rec.representative]
                         : false;
    if (!in_region) in_region = template_space.in_violation_region(rec.state);
    if (in_region) ++out.violations_in_template_region;
  }
  return out;
}

}  // namespace

int main() {
  using namespace stayaway;
  using namespace stayaway::bench;

  std::cout << "=== Figure 18: template reuse across batch apps (actions "
               "disabled) ===\n\n";

  // Capture the template against CPUBomb (as in Figure 17).
  auto capture = figure_spec(harness::SensitiveKind::VlcStream,
                             harness::BatchKind::CpuBomb, 300.0, 77);
  capture.workload = harness::compressed_diurnal(capture.duration_s, 1.5, 71);
  harness::ExperimentResult first = harness::run_experiment(capture);
  const core::StateTemplate& templ = *first.exported_template;
  std::cout << "template: " << templ.entries.size() << " states, "
            << templ.violation_count() << " violations (from VLC+CPUBomb)\n\n";

  for (auto [batch, seed] :
       {std::pair{harness::BatchKind::Soplex, std::uint64_t{201}},
        std::pair{harness::BatchKind::TwitterAnalysis, std::uint64_t{202}}}) {
    ReuseOutcome out = run_reuse(templ, batch, seed);
    std::cout << "VLC + " << to_string(batch) << ": " << out.violations
              << " violations observed, " << out.violations_in_template_region
              << " inside the template's violation region; " << out.new_states
              << " new states discovered\n";
    if (out.violations > 0) {
      double frac = static_cast<double>(out.violations_in_template_region) /
                    static_cast<double>(out.violations);
      std::cout << "  -> " << format_double(frac * 100.0, 1)
                << "% of violations land where the template predicted\n";
    } else {
      std::cout << "  -> this neighbour never maps into the violation "
                   "region (and indeed never violates)\n";
    }
  }
  std::cout << "\nPaper's claim: \"the violated-states from map-A would still\n"
               "correspond to a valid violation-state for the new execution\".\n";
  return 0;
}
