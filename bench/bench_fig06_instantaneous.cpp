// Reproduces Figure 6: "Snapshot of instantaneous transition of states
// when VLC transcoding is co-located with CPUBomb ... Action status:False"
//
// CPUBomb runs first (cluster A), VLC transcoding joins (cluster B), the
// CPU contention is instantaneous — states jump into the violation region
// (C) with almost no transit time. Stay-Away observes but does not act.
#include <iostream>
#include <memory>

#include "apps/cpubomb.hpp"
#include "apps/vlc_transcode.hpp"
#include "core/runtime.hpp"
#include "harness/scenarios.hpp"
#include "util/ascii_plot.hpp"
#include "util/strings.hpp"

int main() {
  using namespace stayaway;

  std::cout << "=== Figure 6: instantaneous transitions, "
               "VLC transcoding + CPUBomb (actions off) ===\n\n";

  sim::SimHost host(harness::paper_host(), 0.1);
  auto transcode = std::make_unique<apps::VlcTranscode>();
  const sim::QosProbe* probe = transcode.get();
  // The transcode is the rate-thresholded app here; CPUBomb arrives first.
  host.add_vm("cpubomb", sim::VmKind::Batch, std::make_unique<apps::CpuBomb>(),
              0.0);
  host.add_vm("vlc-transcode", sim::VmKind::Sensitive, std::move(transcode),
              20.0);

  core::StayAwayConfig cfg;
  cfg.actions_enabled = false;
  core::StayAwayRuntime runtime(host, *probe, cfg);

  std::size_t first_violation_period = 0;
  std::size_t colocation_period = 0;
  for (int period = 0; period < 120; ++period) {
    host.run(10);
    const auto& rec = runtime.on_period();
    if (colocation_period == 0 &&
        rec.mode == monitor::ExecutionMode::CoLocated) {
      colocation_period = static_cast<std::size_t>(period);
    }
    if (first_violation_period == 0 && rec.violation_observed) {
      first_violation_period = static_cast<std::size_t>(period);
    }
  }

  ScatterGroup batch_only{"A: cpubomb alone", 'A', {}};
  ScatterGroup colocated{"B: co-located", 'B', {}};
  ScatterGroup violation{"C: violation", '#', {}};
  const auto& space = runtime.state_space();
  for (const auto& rec : runtime.records()) {
    if (space.label(rec.representative) == core::StateLabel::Violation) {
      violation.points.emplace_back(rec.state.x, rec.state.y);
    } else if (rec.mode == monitor::ExecutionMode::BatchOnly) {
      batch_only.points.emplace_back(rec.state.x, rec.state.y);
    } else if (rec.mode == monitor::ExecutionMode::CoLocated) {
      colocated.points.emplace_back(rec.state.x, rec.state.y);
    }
  }
  PlotOptions opts;
  opts.title = "mapped space snapshot (Action status: False)";
  std::cout << plot_scatter({batch_only, colocated, violation}, opts) << "\n";

  std::cout << "co-location begins at period " << colocation_period
            << ", first violation at period " << first_violation_period
            << " -> transition took "
            << (first_violation_period - colocation_period)
            << " period(s): instantaneous, as the paper describes for CPU\n"
               "contention (\"sudden changes ... reducing the reaction time\").\n\n";
  std::cout << "violation states: " << space.violation_count() << " of "
            << space.size() << " representatives\n";
  std::cout << "CSV of states (x,y,label):\n";
  for (std::size_t i = 0; i < space.size(); ++i) {
    std::cout << format_double(space.position(i).x, 4) << ","
              << format_double(space.position(i).y, 4) << ","
              << (space.label(i) == core::StateLabel::Violation ? "violation"
                                                                : "safe")
              << "\n";
  }
  return 0;
}
