// Ablation (§2.2): MDS versus PCA as the 2-D representation. The paper
// chooses MDS because it preserves relative distances, where a projection
// "gives superposition in the direction of projection" — states that are
// far apart in metric space can land on top of each other under PCA.
//
// Compared on identical passive runs: passive prediction accuracy, map
// stress (distance distortion), and violation/safe separation margin.
#include "bench_common.hpp"

namespace {

using namespace stayaway;
using namespace stayaway::bench;

/// Smallest map distance between any violation state and any safe state,
/// normalized by the map scale — the margin the violation-range geometry
/// has to work with.
double separation_margin(const core::StateSpace& space) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < space.size(); ++v) {
    if (space.label(v) != core::StateLabel::Violation) continue;
    auto d = space.nearest_safe_distance(space.position(v));
    if (d.has_value()) best = std::min(best, *d);
  }
  if (!std::isfinite(best)) return 0.0;
  return best / space.scale();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: MDS (SMACOF) vs PCA embedding ===\n\n";
  std::cout << pad_right("co-location", 34) << pad_left("embed", 8)
            << pad_left("accuracy", 10) << pad_left("stress", 9)
            << pad_left("margin", 9) << "\n";

  const std::vector<std::pair<harness::SensitiveKind, harness::BatchKind>>
      colocations{
          {harness::SensitiveKind::VlcStream, harness::BatchKind::CpuBomb},
          {harness::SensitiveKind::WebserviceMem, harness::BatchKind::MemBomb},
          {harness::SensitiveKind::VlcStream,
           harness::BatchKind::TwitterAnalysis},
      };

  for (const auto& [sensitive, batch] : colocations) {
    std::string label =
        std::string(to_string(sensitive)) + "+" + to_string(batch);
    for (auto method : {core::EmbedMethod::SmacofWarm, core::EmbedMethod::Pca}) {
      auto spec = figure_spec(sensitive, batch, /*duration_s=*/300.0, 1600);
      spec.workload = harness::compressed_diurnal(spec.duration_s, 1.5, 96);
      spec.stayaway.actions_enabled = false;
      spec.stayaway.embed_method = method;
      harness::ExperimentResult run = harness::run_experiment(spec);

      // Rebuild the final labelled geometry for the margin metric.
      OfflineData data;
      data.records = run.stayaway_records;
      const auto& templ = *run.exported_template;
      for (const auto& e : templ.entries) data.space.add_state(e.label);
      data.space.sync_positions(run.final_map);

      std::cout << pad_right(label, 34)
                << pad_left(method == core::EmbedMethod::Pca ? "pca" : "mds", 8)
                << pad_left(
                       format_double(run.tally.accuracy() * 100.0, 1) + "%", 10)
                << pad_left(format_double(run.final_stress, 3), 9)
                << pad_left(format_double(separation_margin(data.space), 3), 9)
                << "\n";
    }
  }
  std::cout << "\nExpected: MDS keeps stress lower (distances preserved) and\n"
               "at least matches PCA's accuracy; PCA superposition can fold\n"
               "violation states onto safe neighbourhoods (smaller margin).\n";
  return 0;
}
