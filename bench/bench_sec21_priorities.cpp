// Demonstrates the §2.1 capability: "if multiple sensitive applications
// are co-scheduled Stay-Away can choose to migrate or scale resources of
// the lower priority sensitive application" — in this implementation, to
// throttle it (the same low-cost, instantaneous actuation the paper
// chooses over migration).
//
// Two sensitive services share the host with no batch VM: a
// high-priority VLC stream and a lower-priority VLC transcode, whose
// combined CPU demand oversubscribes the host. With demotion enabled the
// middleware sacrifices the lower-priority service exactly when the
// high-priority one approaches violation.
#include <memory>

#include "apps/vlc_stream.hpp"
#include "apps/vlc_transcode.hpp"
#include "bench_common.hpp"
#include "core/runtime.hpp"

namespace {

using namespace stayaway;
using namespace stayaway::bench;

struct Outcome {
  std::size_t high_violations = 0;
  double low_frames = 0.0;
  double low_paused_s = 0.0;
  std::size_t pauses = 0;
};

Outcome run(bool demotion) {
  sim::SimHost host(harness::paper_host(), 0.1);
  auto workload = harness::compressed_diurnal(300.0, 1.5, 42);
  auto vlc = std::make_unique<apps::VlcStream>(apps::VlcStreamSpec{}, workload);
  const sim::QosProbe* probe = vlc.get();
  host.add_vm("vlc-high", sim::VmKind::Sensitive, std::move(vlc), 2.0,
              /*priority=*/10);
  apps::VlcTranscodeSpec low_spec;
  low_spec.total_frames = 1e9;  // unbounded for the experiment
  sim::VmId low = host.add_vm("transcode-low", sim::VmKind::Sensitive,
                              std::make_unique<apps::VlcTranscode>(low_spec),
                              15.0, /*priority=*/1);

  core::StayAwayConfig cfg;
  cfg.allow_sensitive_demotion = demotion;
  cfg.seed = 31;
  core::StayAwayRuntime runtime(host, *probe, cfg);

  Outcome out;
  for (int p = 0; p < 300; ++p) {
    host.run(10);
    const auto& rec = runtime.on_period();
    if (rec.violation_observed) ++out.high_violations;
  }
  const auto& transcode =
      dynamic_cast<const apps::VlcTranscode&>(host.vm(low).app());
  out.low_frames = transcode.frames_done();
  out.low_paused_s = host.vm(low).paused_time();
  out.pauses = runtime.governor().pauses();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Section 2.1: priorities between co-scheduled sensitive "
               "applications ===\n\n";
  std::cout << "host: 4 cores; vlc-high (priority 10, QoS-protected) + "
               "transcode-low (priority 1)\n\n";
  std::cout << pad_right("variant", 22) << pad_left("high-prio viol", 16)
            << pad_left("low frames", 12) << pad_left("low paused s", 14)
            << pad_left("pauses", 8) << "\n";
  for (bool demotion : {false, true}) {
    Outcome out = run(demotion);
    std::cout << pad_right(demotion ? "demotion enabled" : "no demotion", 22)
              << pad_left(std::to_string(out.high_violations), 16)
              << pad_left(format_double(out.low_frames, 0), 12)
              << pad_left(format_double(out.low_paused_s, 1), 14)
              << pad_left(std::to_string(out.pauses), 8) << "\n";
  }
  std::cout << "\nExpected: without demotion there is nothing to throttle and\n"
               "the high-priority stream violates under contention; with\n"
               "demotion the low-priority service is paused during exactly\n"
               "those episodes and still progresses in between.\n";
  return 0;
}
