// Reproduces Figure 5: "All 4 execution modes when VLC streaming is
// co-located with Soplex from SPEC CPU 2006" — the lifecycle steps through
// idle -> sensitive-only -> co-located -> batch-only, each mode forming
// its own cluster with a distinct trajectory pattern, plus the step-length
// and angle distributions per mode.
#include <iostream>
#include <memory>

#include "apps/soplex.hpp"
#include "apps/vlc_stream.hpp"
#include "core/runtime.hpp"
#include "harness/scenarios.hpp"
#include "stats/circular.hpp"
#include "util/ascii_plot.hpp"
#include "util/strings.hpp"

int main() {
  using namespace stayaway;

  std::cout << "=== Figure 5: execution modes, VLC streaming + Soplex ===\n\n";

  sim::SimHost host(harness::paper_host(), 0.1);
  apps::VlcStreamSpec vlc_spec;
  vlc_spec.duration_s = 100.0;  // finishes mid-run -> batch-only tail
  auto vlc = std::make_unique<apps::VlcStream>(vlc_spec);
  const sim::QosProbe* probe = vlc.get();
  host.add_vm("vlc", sim::VmKind::Sensitive, std::move(vlc), 5.0);

  apps::SoplexSpec sp_spec;
  sp_spec.total_work_s = 160.0;
  host.add_vm("soplex", sim::VmKind::Batch,
              std::make_unique<apps::Soplex>(sp_spec), 30.0);

  core::StayAwayConfig cfg;
  cfg.actions_enabled = false;  // observe the natural lifecycle
  core::StayAwayRuntime runtime(host, *probe, cfg);

  for (int period = 0; period < 260; ++period) {
    host.run(10);
    runtime.on_period();
  }

  // Scatter: one glyph per execution mode.
  const char glyphs[] = {'.', 'B', 'S', '#'};
  std::vector<ScatterGroup> groups(4);
  for (std::size_t m = 0; m < 4; ++m) {
    groups[m].label = monitor::to_string(static_cast<monitor::ExecutionMode>(m));
    groups[m].glyph = glyphs[m];
  }
  for (const auto& rec : runtime.records()) {
    groups[static_cast<std::size_t>(rec.mode)].points.emplace_back(rec.state.x,
                                                                   rec.state.y);
  }
  PlotOptions opts;
  opts.title = "mapped state space (2-D MDS of normalized usage vectors)";
  std::cout << plot_scatter(groups, opts) << "\n";

  // Per-mode trajectory statistics + distributions (the pdf panels).
  std::cout << "mode                steps  mean_step  angle_bias(resultant)\n";
  for (std::size_t m = 0; m < 4; ++m) {
    auto mode = static_cast<monitor::ExecutionMode>(m);
    const auto& model = runtime.trajectories().model(mode);
    if (model.observations() == 0) {
      std::cout << pad_right(monitor::to_string(mode), 20) << "0\n";
      continue;
    }
    const auto& steps = model.step_histogram();
    double mean_step = 0.0;
    for (std::size_t b = 0; b < steps.bins(); ++b) {
      mean_step += steps.mass(b) * steps.bin_center(b);
    }
    // Approximate angle concentration from the angle histogram.
    std::vector<double> angle_samples;
    const auto& angles = model.angle_histogram();
    for (std::size_t b = 0; b < angles.bins(); ++b) {
      auto copies = static_cast<std::size_t>(angles.count(b));
      for (std::size_t r = 0; r < copies; ++r) {
        angle_samples.push_back(angles.bin_center(b));
      }
    }
    double resultant = angle_samples.empty()
                           ? 0.0
                           : stats::circular_summary(angle_samples).resultant;
    std::cout << pad_right(monitor::to_string(mode), 20)
              << pad_right(std::to_string(model.observations()), 7)
              << pad_right(format_double(mean_step, 4), 11)
              << format_double(resultant, 3) << "\n";
  }

  std::cout << "\nstep-length densities per mode (histogram, normalized):\n";
  for (std::size_t m = 1; m < 4; ++m) {  // skip idle: trivial
    auto mode = static_cast<monitor::ExecutionMode>(m);
    const auto& model = runtime.trajectories().model(mode);
    if (model.observations() < 3) continue;
    std::vector<double> density;
    const auto& h = model.step_histogram();
    for (std::size_t b = 0; b < h.bins() / 2; ++b) density.push_back(h.density(b));
    PlotOptions p;
    p.title = std::string("pdf(step length) — ") + monitor::to_string(mode);
    p.height = 8;
    std::cout << plot_lines({density}, {"density"}, p) << "\n";
  }

  std::cout << "representatives: " << runtime.representatives().size()
            << ", map stress: " << format_double(runtime.embedder().stress(), 4)
            << "\n";
  std::cout << "\nExpected shape (paper): soplex-only follows a consistent\n"
               "orientation (high resultant), co-located execution oscillates\n"
               "with bigger steps, VLC-only moves in short correlated bursts.\n";
  return 0;
}
